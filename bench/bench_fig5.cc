/**
 * @file
 * Reproduces Figure 5: the MRU scheme in detail.
 *
 * Left graph: read-in hit probes for *reduced* MRU lists (lengths
 * 1, 2, 4, 8 and the full list) versus associativity.
 * Right graph: the MRU-distance hit distribution f_i for 4-, 8- and
 * 16-way level-two caches (the paper reads 75% / 60% / 36% at
 * distance 1).
 */

#include <cstdio>
#include <iostream>

#include "core/analytic.h"
#include "support.h"

using namespace assoc;
using namespace assoc::bench;

int
main(int argc, char **argv)
{
    ArgParser parser("bench_fig5",
                     "Figure 5: reduced MRU lists and the MRU "
                     "distance distribution");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_fig5", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);

        std::printf("Figure 5 — the MRU scheme in detail "
                    "(16K-16 L1, 256K-32 L2, read-in hits)\n\n");

        // Left graph: reduced list lengths.
        TextTable left;
        left.setHeader({"Assoc", "list=1", "list=2", "list=4",
                        "list=8", "full"});
        const unsigned lengths[] = {1, 2, 4, 8, 0};
        const unsigned assocs[] = {4u, 8u, 16u};
        std::vector<std::vector<double>> fcurves;
        std::vector<RunSpec> specs;
        for (unsigned a : assocs) {
            RunSpec spec;
            spec.hier = mem::HierarchyConfig{
                mem::CacheGeometry(16384, 16, 1),
                mem::CacheGeometry(262144, 32, a), true};
            for (unsigned len : lengths) {
                core::SchemeSpec mru;
                mru.kind = core::SchemeKind::Mru;
                mru.mru_list_len = len;
                spec.schemes.push_back(mru);
            }
            spec.with_distances = true;
            specs.push_back(spec);
        }
        SweepResult run = bench::runSweepChecked(specs, args, "fig5");
        maybeWriteSweepJson(args, specs, run);

        std::size_t idx = 0;
        for (unsigned a : assocs) {
            const JobResult &job = run.jobs[idx++];
            if (!job.ok()) {
                left.addRow(gapRow(std::to_string(a), 5));
                left.addRow(
                    gapRow(std::to_string(a) + " (theory)", 5));
                fcurves.push_back({}); // gap column on the right
                continue;
            }
            const RunOutput &out = job.output;

            std::vector<std::string> row{std::to_string(a)};
            for (std::size_t i = 0; i < 5; ++i)
                row.push_back(TextTable::num(
                    out.probes[i].read_in_hits.mean(), 2));
            left.addRow(row);
            // Companion row: the analytic prediction from the
            // measured f_i (Section 2.1 extended to reduced lists).
            std::vector<std::string> pred{std::to_string(a) +
                                          " (theory)"};
            for (unsigned len : lengths)
                pred.push_back(TextTable::num(
                    core::analytic::mruReducedHit(out.f, len), 2));
            left.addRow(pred);
            fcurves.push_back(out.f);
        }
        std::printf("Reduced MRU lists — read-in hit probes "
                    "(measured, with the prediction from the "
                    "measured f_i below each row):\n\n");
        left.print(std::cout, args.format);

        // Right graph: f_i distributions.
        std::printf("\nMRU distance distribution f_i "
                    "(fraction of read-in hits at distance i):\n\n");
        TextTable right;
        right.setHeader({"Distance i", "4-way", "8-way", "16-way"});
        for (unsigned i = 1; i <= 16; ++i) {
            std::vector<std::string> row{std::to_string(i)};
            for (const auto &f : fcurves) {
                if (f.empty()) // that associativity's job failed
                    row.push_back(gapCell());
                else if (i < f.size())
                    row.push_back(TextTable::num(f[i], 4));
                else
                    row.push_back("");
            }
            right.addRow(row);
        }
        right.print(std::cout, args.format);
        return sweepExitCode(run);
    });
}
