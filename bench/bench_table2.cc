/**
 * @file
 * Reproduces Table 2: trial implementations of the tag memory and
 * comparison logic for a direct-mapped and a 4-way set-associative
 * cache holding one million 24-bit tags, in DRAM and SRAM.
 *
 * The first half prints the paper's table verbatim (symbolic in x,
 * u, y). The second half *evaluates* those expressions with probe
 * statistics measured by the trace-driven simulator — the
 * end-to-end cost/performance composition the paper leaves to the
 * reader.
 */

#include <cstdio>
#include <iostream>

#include "hw/impl_model.h"
#include "support.h"

using namespace assoc;
using namespace assoc::bench;
using namespace assoc::hw;

int
main(int argc, char **argv)
{
    ArgParser parser("bench_table2",
                     "Table 2: trial implementations and measured "
                     "effective access times");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_table2", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);

        Table2Catalog catalog;

        std::printf("Table 2 — trial set-associativity "
                    "implementations (1M 24-bit tags)\n\n");
        TextTable table;
        table.setHeader({"Tech", "Implementation", "Chip",
                         "Access(ns)", "Cycle(ns)", "Packages"});
        for (RamTech tech : {RamTech::Dram, RamTech::Sram}) {
            for (const ImplSpec &spec : catalog.all(tech)) {
                table.addRow({ramTechName(tech),
                              implKindName(spec.kind),
                              spec.chip.organization,
                              spec.accessExpr(), spec.cycleExpr(),
                              std::to_string(spec.packages)});
            }
            table.addRule();
        }
        table.print(std::cout, args.format);

        // --- Evaluate x, u and y from simulation. ---
        // Configuration: 16K-16 L1, 256K-32 4-way L2 (Figure 3's),
        // 16-bit tags, paper partial parameters.
        std::printf("\nEvaluating x, u, y on the ATUM-like trace "
                    "(16K-16 L1, 256K-32 4-way L2, %u segments)...\n",
                    args.segments);

        trace::AtumLikeGenerator gen(traceConfig(args));
        RunSpec spec;
        spec.hier =
            mem::HierarchyConfig{mem::CacheGeometry(16384, 16, 1),
                                 mem::CacheGeometry(262144, 32, 4),
                                 true};
        core::SchemeSpec mru;
        mru.kind = core::SchemeKind::Mru;
        spec.schemes = {mru, core::SchemeSpec::paperPartial(4)};
        spec.with_distances = true;
        RunOutput out = runTrace(gen, spec);

        // x: expected probes after reading the MRU list = MRU meter
        // probes - 1 (the list read itself). Averaged over priced
        // (read-in) requests.
        double x = out.probes[0].readInMean() - 1.0;
        // u: probability the MRU list must be updated = fraction of
        // accesses whose MRU entry changes (any read-in hit beyond
        // distance 1, every miss, every write-back beyond MRU-1 —
        // approximated here by 1 - f1*hitshare over read-ins).
        double read_ins = static_cast<double>(out.stats.read_ins);
        double hit_share =
            static_cast<double>(out.stats.read_in_hits) / read_ins;
        double u = 1.0 - out.f[1] * hit_share;
        // y: step-2 probes of the partial scheme = probes - s.
        double y = out.probes[1].readInMean() - 1.0; // s = 1 at 4-way

        std::printf("measured: x = %.3f, u = %.3f, y = %.3f\n\n", x,
                    u, y);

        TextTable eval;
        eval.setHeader({"Tech", "Implementation", "Access(ns)",
                        "Cycle(ns)", "Packages"});
        for (RamTech tech : {RamTech::Dram, RamTech::Sram}) {
            for (const ImplSpec &s : catalog.all(tech)) {
                double probes = 0.0, update = 0.0;
                if (s.kind == ImplKind::Mru) {
                    probes = x;
                    update = u;
                } else if (s.kind == ImplKind::Partial) {
                    probes = y;
                }
                eval.addRow({ramTechName(tech), implKindName(s.kind),
                             TextTable::num(s.accessNs(probes), 1),
                             TextTable::num(s.cycleNs(probes, update),
                                            1),
                             std::to_string(s.packages)});
            }
            eval.addRule();
        }
        std::printf("Table 2 (evaluated) — effective tag-path "
                    "timings with measured probe counts\n\n");
        eval.print(std::cout, args.format);
        return 0;
    });
}
