/**
 * @file
 * Ablations beyond the paper's figures, exercising the design
 * choices DESIGN.md calls out:
 *
 *  1. Subset-count sweep: probes for every feasible s at fixed
 *     associativity (the paper only reports the chosen s).
 *  2. Write-back-hint accuracy when the level-two cache is small
 *     (inclusion violated often): how safe the "hints, not always
 *     correct" relaxation is.
 *  3. Tag-width sweep for the partial scheme: 8..32-bit tags.
 *  4. Write-back miss allocation policy (allocate vs drop).
 *  5. The Section-2.1 swapping MRU scheme and the Section-1 b*t
 *     intermediate tag-memory widths.
 *  6. Multi-level inclusion enforcement and write-through L1.
 *  7. Cold vs warm caches.
 *  8. Hash-rehash vs 2-way MRU (footnote 2's comparison).
 */

#include <cstdio>
#include <iostream>

#include "core/analytic.h"
#include "core/hash_rehash.h"
#include "core/mru_lookup.h"
#include "core/swap_mru_lookup.h"
#include "core/wide_lookup.h"
#include "support.h"

using namespace assoc;
using namespace assoc::bench;

namespace {

void
subsetSweep(const CommonArgs &args)
{
    std::printf("Ablation 1 — subset-count sweep (16K-16 L1, "
                "256K-32 8-way L2, t = 16):\n\n");
    TextTable table;
    table.setHeader({"Subsets", "k", "Hits", "Misses", "Total",
                     "TheoryHit", "TheoryMiss"});
    const unsigned a = 8, t = 16;
    struct Point
    {
        unsigned s, k;
    };
    std::vector<Point> points;
    std::vector<RunSpec> specs;
    for (unsigned s = 1; s <= a; s *= 2) {
        unsigned k = core::analytic::partialWidth(a, t, s);
        if (k == 0)
            continue;
        RunSpec spec;
        spec.hier = mem::HierarchyConfig{
            mem::CacheGeometry(16384, 16, 1),
            mem::CacheGeometry(262144, 32, a), true};
        core::SchemeSpec p;
        p.kind = core::SchemeKind::Partial;
        p.partial_k = k;
        p.partial_subsets = s;
        p.tag_bits = t;
        spec.schemes = {p};
        points.push_back({s, k});
        specs.push_back(spec);
    }
    std::vector<RunOutput> outs =
        bench::runSweep(specs, args, "ablation1");
    for (std::size_t i = 0; i < outs.size(); ++i) {
        const unsigned s = points[i].s, k = points[i].k;
        const RunOutput &out = outs[i];
        table.addRow(
            {std::to_string(s), std::to_string(k),
             TextTable::num(out.probes[0].read_in_hits.mean(), 2),
             TextTable::num(out.probes[0].read_in_misses.mean(), 2),
             TextTable::num(out.probes[0].totalMean(), 2),
             TextTable::num(core::analytic::partialHit(a, k, s), 2),
             TextTable::num(core::analytic::partialMiss(a, k, s),
                            2)});
    }
    table.print(std::cout, args.format);
}

void
hintAccuracy(const CommonArgs &args)
{
    std::printf("\nAblation 2 — write-back-hint accuracy vs "
                "level-two size (4K-16 L1, 4-way L2):\n\n");
    TextTable table;
    table.setHeader({"L2", "SizeRatio", "WB-miss ratio",
                     "Hint accuracy"});
    const std::uint32_t l2_sizes[] = {8u * 1024, 16u * 1024,
                                      64u * 1024, 256u * 1024};
    std::vector<RunSpec> specs;
    for (std::uint32_t l2 : l2_sizes) {
        RunSpec spec;
        spec.hier =
            mem::HierarchyConfig{mem::CacheGeometry(4096, 16, 1),
                                 mem::CacheGeometry(l2, 32, 4), true};
        specs.push_back(spec);
    }
    std::vector<RunOutput> outs =
        bench::runSweep(specs, args, "ablation2");
    std::size_t idx = 0;
    for (std::uint32_t l2 : l2_sizes) {
        const RunOutput &out = outs[idx++];
        double wb = static_cast<double>(out.stats.write_backs);
        double wbmiss =
            wb == 0 ? 0.0 : out.stats.write_back_misses / wb;
        table.addRow({cacheName(l2, 32),
                      std::to_string(l2 / 4096) + "x",
                      TextTable::num(wbmiss, 4),
                      TextTable::num(out.stats.hintAccuracy(), 4)});
    }
    table.print(std::cout, args.format);
}

void
tagWidthSweep(const CommonArgs &args)
{
    std::printf("\nAblation 3 — tag-width sweep for the partial "
                "scheme (16K-16 L1, 256K-32 8-way L2):\n\n");
    TextTable table;
    table.setHeader({"TagBits", "k", "Subsets", "Hits", "Misses",
                     "Total"});
    std::vector<unsigned> widths;
    std::vector<RunSpec> specs;
    for (unsigned t : {8u, 12u, 16u, 24u, 32u}) {
        core::SchemeSpec p;
        try {
            p = core::SchemeSpec::paperPartial(8, t, 2);
        } catch (const FatalError &) {
            continue;
        }
        RunSpec spec;
        spec.hier = mem::HierarchyConfig{
            mem::CacheGeometry(16384, 16, 1),
            mem::CacheGeometry(262144, 32, 8), true};
        spec.schemes = {p};
        widths.push_back(t);
        specs.push_back(spec);
    }
    std::vector<RunOutput> outs =
        bench::runSweep(specs, args, "ablation3");
    for (std::size_t i = 0; i < outs.size(); ++i) {
        unsigned t = widths[i];
        const core::SchemeSpec &p = specs[i].schemes[0];
        const RunOutput &out = outs[i];
        table.addRow(
            {std::to_string(t), std::to_string(p.partial_k),
             std::to_string(p.partial_subsets),
             TextTable::num(out.probes[0].read_in_hits.mean(), 2),
             TextTable::num(out.probes[0].read_in_misses.mean(), 2),
             TextTable::num(out.probes[0].totalMean(), 2)});
    }
    table.print(std::cout, args.format);
}

void
wbAllocationPolicy(const CommonArgs &args)
{
    std::printf("\nAblation 4 — write-back miss policy with a small "
                "level two (4K-16 L1, 16K-32 4-way L2):\n\n");
    TextTable table;
    table.setHeader({"Policy", "Local miss", "Global miss",
                     "WB-miss count"});
    std::vector<RunSpec> specs;
    for (bool allocate : {true, false}) {
        RunSpec spec;
        spec.hier = mem::HierarchyConfig{
            mem::CacheGeometry(4096, 16, 1),
            mem::CacheGeometry(16384, 32, 4), allocate};
        specs.push_back(spec);
    }
    std::vector<RunOutput> outs =
        bench::runSweep(specs, args, "ablation4");
    std::size_t idx = 0;
    for (bool allocate : {true, false}) {
        const RunOutput &out = outs[idx++];
        table.addRow(
            {allocate ? "allocate" : "drop",
             TextTable::num(out.stats.localMissRatio(), 4),
             TextTable::num(out.stats.globalMissRatio(), 4),
             TextTable::num(out.stats.write_back_misses)});
    }
    table.print(std::cout, args.format);
}

void
swapMruAndWideWidths(const CommonArgs &args)
{
    std::printf("\nAblation 5 — swapping MRU and intermediate "
                "tag-memory widths b*t (16K-16 L1, 256K-32 8-way "
                "L2):\n\n");

    const unsigned a = 8;
    trace::AtumLikeGenerator gen(traceConfig(args));
    mem::HierarchyConfig hcfg{mem::CacheGeometry(16384, 16, 1),
                              mem::CacheGeometry(262144, 32, a),
                              true};
    mem::TwoLevelHierarchy hier(hcfg);

    core::MeterConfig mcfg;
    std::vector<std::unique_ptr<core::ProbeMeter>> meters;
    auto *swap_raw = new core::SwapMruLookup();
    meters.push_back(std::make_unique<core::ProbeMeter>(
        std::unique_ptr<core::LookupStrategy>(swap_raw), mcfg));
    meters.push_back(std::make_unique<core::ProbeMeter>(
        std::make_unique<core::MruLookup>(), mcfg));
    for (unsigned b : {1u, 2u, 4u, 8u}) {
        meters.push_back(std::make_unique<core::ProbeMeter>(
            std::make_unique<core::WideNaiveLookup>(b), mcfg));
        meters.push_back(std::make_unique<core::ProbeMeter>(
            std::make_unique<core::WideMruLookup>(b), mcfg));
    }
    for (auto &m : meters)
        hier.addObserver(m.get());
    hier.run(gen);

    TextTable table;
    table.setHeader({"Scheme", "Hits", "Misses", "Total", "Note"});
    double accesses = static_cast<double>(hier.stats().read_ins +
                                          hier.stats().write_backs);
    for (const auto &m : meters) {
        std::string note;
        if (m->name() == "SwapMRU") {
            double spa = static_cast<double>(swap_raw->swaps()) /
                         accesses;
            note = TextTable::num(spa, 2) +
                   " block moves per access";
        } else if (m->name() == "WideNaive-8") {
            note = "= traditional (b = a)";
        } else if (m->name() == "WideNaive-1") {
            note = "= naive";
        }
        table.addRow(
            {m->name(),
             TextTable::num(m->stats().read_in_hits.mean(), 2),
             TextTable::num(m->stats().read_in_misses.mean(), 2),
             TextTable::num(m->stats().totalMean(), 2), note});
    }
    table.print(std::cout, args.format);
    std::printf("\nSwapMRU saves the MRU scheme's list-read probe "
                "but needs the printed volume of tag+data block "
                "moves: the paper's viability concern, "
                "quantified.\n");
}

void
inclusionAndWritePolicy(const CommonArgs &args)
{
    std::printf("\nAblation 6 — inclusion enforcement and level-one "
                "write policy (16K-16 L1, 256K-32 4-way L2):\n\n");
    TextTable table;
    table.setHeader({"Variant", "L1 miss", "Local miss", "L2 reqs",
                     "WB misses", "L1 invals"});
    struct Variant
    {
        const char *name;
        bool inclusion;
        mem::L1WritePolicy policy;
    };
    const std::vector<Variant> variants = {
        {"write-back (paper)", false, mem::L1WritePolicy::WriteBack},
        {"write-back + inclusion", true,
         mem::L1WritePolicy::WriteBack},
        {"write-through", false, mem::L1WritePolicy::WriteThrough}};

    // These variants drive the hierarchy directly (no RunSpec), so
    // they go through the generic job runner: one stats slot per
    // variant, filled independently, printed in order.
    std::vector<mem::HierarchyStats> stats(variants.size());
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        jobs.push_back([&, i] {
            trace::AtumLikeGenerator gen(traceConfig(args));
            mem::HierarchyConfig hcfg{
                mem::CacheGeometry(16384, 16, 1),
                mem::CacheGeometry(262144, 32, 4), true};
            hcfg.enforce_inclusion = variants[i].inclusion;
            hcfg.write_policy = variants[i].policy;
            mem::TwoLevelHierarchy hier(hcfg);
            hier.run(gen);
            stats[i] = hier.stats();
        });
    }
    bench::runJobs(std::move(jobs), args, "ablation6");
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const Variant &v = variants[i];
        const mem::HierarchyStats &s = stats[i];
        table.addRow({v.name, TextTable::num(s.l1MissRatio(), 4),
                      TextTable::num(s.localMissRatio(), 4),
                      TextTable::num(s.read_ins + s.write_backs),
                      TextTable::num(s.write_back_misses),
                      TextTable::num(s.inclusion_invalidations)});
    }
    table.print(std::cout, args.format);
    std::printf("\nInclusion enforcement removes write-back misses "
                "at almost no miss-ratio cost (the paper's "
                "extrapolation); write-through multiplies level-two "
                "traffic ([Shor88]'s conclusion).\n");
}

void
warmVsCold(const CommonArgs &args)
{
    std::printf("\nAblation 7 — cold-start flushes between "
                "sub-traces (16K-16 L1, 256K-32 4-way L2):\n\n");
    TextTable table;
    table.setHeader({"Trace", "L1 miss", "Local miss", "Global"});
    const bool flushes[] = {true, false};
    std::vector<mem::HierarchyStats> stats(2);
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < 2; ++i) {
        jobs.push_back([&, i] {
            trace::AtumLikeConfig tcfg = traceConfig(args);
            tcfg.flush_between_segments = flushes[i];
            trace::AtumLikeGenerator gen(tcfg);
            mem::HierarchyConfig hcfg{
                mem::CacheGeometry(16384, 16, 1),
                mem::CacheGeometry(262144, 32, 4), true};
            mem::TwoLevelHierarchy hier(hcfg);
            hier.run(gen);
            stats[i] = hier.stats();
        });
    }
    bench::runJobs(std::move(jobs), args, "ablation7");
    for (std::size_t i = 0; i < 2; ++i) {
        bool flush = flushes[i];
        const mem::HierarchyStats &s = stats[i];
        table.addRow({flush ? "cold (paper)" : "warm",
                      TextTable::num(s.l1MissRatio(), 4),
                      TextTable::num(s.localMissRatio(), 4),
                      TextTable::num(s.globalMissRatio(), 4)});
    }
    table.print(std::cout, args.format);
    std::printf("\nThe paper: \"limited 'warmer' results were "
                "found to be similar, except that the miss ratios "
                "were smaller.\"\n");
}

void
replacementPolicies(const CommonArgs &args)
{
    std::printf("\nAblation 9 — level-two replacement policy "
                "(16K-16 L1, 256K-32 4-way L2):\n\n");
    TextTable table;
    table.setHeader({"Policy", "Local miss", "Global miss",
                     "MRU probes", "Extra state/set"});
    const mem::ReplPolicy policies[] = {
        mem::ReplPolicy::Lru, mem::ReplPolicy::TreePlru,
        mem::ReplPolicy::Fifo, mem::ReplPolicy::Random};
    std::vector<RunSpec> specs;
    for (mem::ReplPolicy p : policies) {
        RunSpec spec;
        spec.hier.l2_replacement = p;
        core::SchemeSpec mru;
        mru.kind = core::SchemeKind::Mru;
        spec.schemes = {mru};
        specs.push_back(spec);
    }
    std::vector<RunOutput> outs =
        bench::runSweep(specs, args, "ablation9");
    std::size_t idx = 0;
    for (mem::ReplPolicy p : policies) {
        const RunOutput &out = outs[idx++];
        const char *state = "none";
        if (p == mem::ReplPolicy::Lru)
            state = "full LRU list (shared with MRU scheme)";
        else if (p == mem::ReplPolicy::TreePlru)
            state = "a-1 tree bits";
        else if (p == mem::ReplPolicy::Fifo)
            state = "fill pointer";
        table.addRow(
            {mem::replPolicyName(p),
             TextTable::num(out.stats.localMissRatio(), 4),
             TextTable::num(out.stats.globalMissRatio(), 4),
             TextTable::num(out.probes[0].totalMean(), 2), state});
    }
    table.print(std::cout, args.format);
    std::printf("\nThe paper picks LRU because its per-set state "
                "doubles as the MRU scheme's search list; random "
                "replacement is cheaper in state but costs miss "
                "ratio (and would make the MRU scheme pay for its "
                "own list).\n");
}

void
hashRehashVsTwoWay(const CommonArgs &args)
{
    std::printf("\nAblation 8 — hash-rehash vs 2-way swapping MRU "
                "(footnote 2), 16K-16 L1, 256K-32 L2, equal "
                "capacity, read-ins:\n\n");

    trace::AtumLikeGenerator gen(traceConfig(args));
    mem::HierarchyConfig hcfg{mem::CacheGeometry(16384, 16, 1),
                              mem::CacheGeometry(262144, 32, 2),
                              true};
    mem::TwoLevelHierarchy hier(hcfg);

    core::MeterConfig mcfg;
    auto *swap_raw = new core::SwapMruLookup();
    core::ProbeMeter swap_meter(
        std::unique_ptr<core::LookupStrategy>(swap_raw), mcfg);
    core::ProbeMeter mru_meter(std::make_unique<core::MruLookup>(),
                               mcfg);
    core::HashRehashShadow rehash(262144 / 32);
    hier.addObserver(&swap_meter);
    hier.addObserver(&mru_meter);
    hier.addObserver(&rehash);
    hier.run(gen);

    double ri = static_cast<double>(hier.stats().read_ins);
    double two_way_hr = hier.stats().read_in_hits / ri;

    TextTable table;
    table.setHeader({"Organization", "Hit ratio", "Hit probes",
                     "Miss probes", "Total", "Swaps/read-in"});
    MeanAccum swap_all = swap_meter.stats().read_in_hits;
    swap_all.merge(swap_meter.stats().read_in_misses);
    MeanAccum mru_all = mru_meter.stats().read_in_hits;
    mru_all.merge(mru_meter.stats().read_in_misses);
    table.addRow(
        {"2-way swap-MRU", TextTable::num(two_way_hr, 4),
         TextTable::num(swap_meter.stats().read_in_hits.mean(), 2),
         TextTable::num(swap_meter.stats().read_in_misses.mean(), 2),
         TextTable::num(swap_all.mean(), 2),
         TextTable::num(static_cast<double>(swap_raw->swaps()) / ri,
                        2)});
    table.addRow(
        {"2-way list-MRU", TextTable::num(two_way_hr, 4),
         TextTable::num(mru_meter.stats().read_in_hits.mean(), 2),
         TextTable::num(mru_meter.stats().read_in_misses.mean(), 2),
         TextTable::num(mru_all.mean(), 2), "0.00"});
    table.addRow(
        {"hash-rehash DM",
         TextTable::num(rehash.hits().ratio(), 4),
         TextTable::num(rehash.hitProbes().mean(), 2),
         TextTable::num(rehash.missProbes().mean(), 2),
         TextTable::num(rehash.totalProbes(), 2),
         TextTable::num(static_cast<double>(rehash.swaps()) / ri,
                        2)});
    table.print(std::cout, args.format);
    std::printf("\nFootnote 2: for 2-way associativity, "
                "hash-rehash (a probed-twice direct-mapped array) "
                "can beat the MRU schemes — it swaps only on rehash "
                "hits and misses, not on every recency change.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser parser("bench_ablation",
                     "Ablations: subsets, hints, tag widths, "
                     "write-back policy, swap-MRU, wide tag "
                     "memories, inclusion, warm caches");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_ablation", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);
        subsetSweep(args);
        hintAccuracy(args);
        tagWidthSweep(args);
        wbAllocationPolicy(args);
        swapMruAndWideWidths(args);
        inclusionAndWritePolicy(args);
        warmVsCold(args);
        hashRehashVsTwoWay(args);
        replacementPolicies(args);
        return 0;
    });
}
