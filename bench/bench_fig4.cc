/**
 * @file
 * Reproduces Figure 4: probes for read-in *hits* (left graph) and
 * read-in *misses* (right graph) separately, versus associativity,
 * for the Naive, MRU and Partial schemes.
 *
 * Shows the paper's headline split: MRU and Partial are close on
 * hits; Partial dominates on misses (Naive and MRU pay a and a+1).
 */

#include <cstdio>
#include <iostream>

#include "support.h"

using namespace assoc;
using namespace assoc::bench;

int
main(int argc, char **argv)
{
    ArgParser parser("bench_fig4",
                     "Figure 4: probes for read-in hits and misses");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_fig4", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);

        std::printf("Figure 4 — read-in hits (left) and misses "
                    "(right), 16K-16 L1, 256K-32 L2\n\n");

        TextTable hits, misses;
        hits.setHeader({"Assoc", "Partial", "MRU", "Naive"});
        misses.setHeader({"Assoc", "Partial", "Naive", "MRU"});

        const unsigned assocs[] = {2u, 4u, 8u, 16u};
        std::vector<RunSpec> specs;
        for (unsigned a : assocs) {
            RunSpec spec;
            spec.hier = mem::HierarchyConfig{
                mem::CacheGeometry(16384, 16, 1),
                mem::CacheGeometry(262144, 32, a), true};
            core::SchemeSpec naive, mru;
            naive.kind = core::SchemeKind::Naive;
            mru.kind = core::SchemeKind::Mru;
            spec.schemes = {core::SchemeSpec::paperPartial(a), mru,
                            naive};
            specs.push_back(spec);
        }
        SweepResult run = bench::runSweepChecked(specs, args, "fig4");
        maybeWriteSweepJson(args, specs, run);

        std::size_t idx = 0;
        for (unsigned a : assocs) {
            const JobResult &job = run.jobs[idx++];
            if (!job.ok()) {
                hits.addRow(gapRow(std::to_string(a), 3));
                misses.addRow(gapRow(std::to_string(a), 3));
                continue;
            }
            const RunOutput &out = job.output;
            hits.addRow(
                {std::to_string(a),
                 TextTable::num(out.probes[0].read_in_hits.mean(), 2),
                 TextTable::num(out.probes[1].read_in_hits.mean(), 2),
                 TextTable::num(out.probes[2].read_in_hits.mean(),
                                2)});
            misses.addRow(
                {std::to_string(a),
                 TextTable::num(out.probes[0].read_in_misses.mean(),
                                2),
                 TextTable::num(out.probes[2].read_in_misses.mean(),
                                2),
                 TextTable::num(out.probes[1].read_in_misses.mean(),
                                2)});
        }
        std::printf("Read-in hits:\n\n");
        hits.print(std::cout, args.format);
        std::printf("\nRead-in misses:\n\n");
        misses.print(std::cout, args.format);
        return sweepExitCode(run);
    });
}
