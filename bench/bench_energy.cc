/**
 * @file
 * Energy and energy·delay across the whole scheme zoo: Traditional,
 * Naive, MRU, Partial, WayMemo and WayPredict observed over one
 * shared simulation, priced per event by the hw energy model
 * (docs/ENERGY.md) and per probe by the Table 2 SRAM timing model.
 *
 * The lookup outcomes are identical across schemes by construction
 * (the memo-consistency invariant); what differs is where the
 * probes and the nanojoules go. Delay uses the Table 2 design that
 * matches each scheme's probe discipline, with the measured mean
 * extra probes as the probe variable — a memo scheme's mean can
 * fall below one probe, modeling the skipped tag phase.
 */

#include <cstdio>
#include <iostream>

#include "hw/energy_model.h"
#include "hw/impl_model.h"
#include "support.h"

using namespace assoc;
using namespace assoc::bench;
using namespace assoc::hw;

namespace {

/** Table 2 design and probe baseline for one scheme. */
struct DelayModel
{
    ImplKind impl;
    double base_probes; ///< probes the design's base time covers
};

DelayModel
delayModelFor(const core::SchemeSpec &s)
{
    switch (s.kind) {
      case core::SchemeKind::Traditional:
        return {ImplKind::Traditional, 1.0};
      case core::SchemeKind::Partial:
        return {ImplKind::Partial,
                static_cast<double>(s.partial_subsets)};
      case core::SchemeKind::Naive:
      case core::SchemeKind::Mru:
      case core::SchemeKind::WayMemo:
      case core::SchemeKind::WayPredict:
        // Serial-probe designs all ride the MRU column: its timing
        // is "base + per-extra-probe", exactly the serial discipline.
        return {ImplKind::Mru, 1.0};
    }
    return {ImplKind::Traditional, 1.0};
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser parser("bench_energy",
                     "energy and energy-delay across the scheme zoo");
    parser.addFlag("tagbits", "16", "tag width t in bits");
    parser.addFlag("assoc", "4", "level-two associativity");
    parser.addFlag("l1", "16384", "level-one bytes");
    parser.addFlag("l2", "262144", "level-two bytes");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_energy", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);
        unsigned t = static_cast<unsigned>(parser.getUint("tagbits"));
        unsigned assoc =
            static_cast<unsigned>(parser.getUint("assoc"));
        std::uint32_t l1_bytes =
            static_cast<std::uint32_t>(parser.getUint("l1"));
        std::uint32_t l2_bytes =
            static_cast<std::uint32_t>(parser.getUint("l2"));

        // One simulation, six observers: every scheme prices the
        // same access stream.
        RunSpec spec;
        spec.hier = mem::HierarchyConfig{
            mem::CacheGeometry(l1_bytes, 16, 1),
            mem::CacheGeometry(l2_bytes, 32, assoc), true};

        core::SchemeSpec traditional;
        traditional.kind = core::SchemeKind::Traditional;
        core::SchemeSpec naive;
        naive.kind = core::SchemeKind::Naive;
        core::SchemeSpec mru;
        mru.kind = core::SchemeKind::Mru;
        core::SchemeSpec partial =
            core::SchemeSpec::paperPartial(assoc, t);
        core::SchemeSpec waymemo;
        waymemo.kind = core::SchemeKind::WayMemo;
        core::SchemeSpec waypredict;
        waypredict.kind = core::SchemeKind::WayPredict;
        spec.schemes = {traditional, naive,   mru,
                        partial,     waymemo, waypredict};
        for (core::SchemeSpec &s : spec.schemes)
            s.tag_bits = t;

        SweepResult run =
            bench::runSweepChecked({spec}, args, "energy");
        maybeWriteSweepJson(args, {spec}, run);
        const JobResult &job = run.jobs[0];

        Table2Catalog catalog;
        const EnergySpec energy = EnergySpec::defaultSram();
        SystemTimings sys;

        std::printf("Energy per level-two access and energy-delay "
                    "per request\n(a=%u, t=%u, SRAM tag path, "
                    "per-event nJ: tag=%.3f field=%.3f cmp=%.3f "
                    "list=%.3f memo=%.3f data=%.3f miss=%.1f)\n\n",
                    assoc, t, energy.tag_read_nj,
                    energy.field_read_nj, energy.tag_compare_nj,
                    energy.list_read_nj, energy.memo_access_nj,
                    energy.data_read_nj, energy.miss_nj);

        TextTable table;
        table.setHeader({"Scheme", "Probes", "TagNJ", "MemoNJ",
                         "nJ/acc", "ns/req", "EDP", "MemoHit%"});
        if (!job.ok()) {
            table.addRow(gapRow("all schemes", 7));
            table.print(std::cout, args.format);
            return sweepExitCode(run);
        }
        const RunOutput &out = job.output;

        const double l1mr = out.stats.l1MissRatio();
        const double ri = static_cast<double>(out.stats.read_ins);
        const double l2mr =
            ri == 0 ? 0.0 : out.stats.read_in_misses / ri;

        for (std::size_t i = 0; i < spec.schemes.size(); ++i) {
            const core::SchemeSpec &s = spec.schemes[i];
            const core::ProbeStats &ps = out.probes[i];

            EnergyEvents ev;
            ev.tag_reads = ps.events.tag_reads;
            ev.field_reads = ps.events.field_reads;
            ev.tag_compares = ps.events.tag_compares;
            ev.list_reads = ps.events.list_reads;
            ev.memo_reads = ps.events.memo_reads;
            ev.memo_writes = ps.events.memo_writes;
            ev.accesses = ps.metered;
            ev.hits = ps.read_in_hits.count() +
                      ps.write_backs.count();
            ev.misses = ps.read_in_misses.count();
            EnergyBreakdown eb = energyOf(energy, ev);

            DelayModel dm = delayModelFor(s);
            const ImplSpec &impl = catalog.get(dm.impl, RamTech::Sram);
            EffectiveInputs in;
            in.extra_hit_probes =
                ps.read_in_hits.mean() - dm.base_probes;
            in.extra_miss_probes =
                ps.read_in_misses.mean() - dm.base_probes;
            in.l1_miss_ratio = l1mr;
            in.l2_miss_ratio = l2mr;
            EffectiveResult er = effectiveAccess(impl, in, sys);
            EnergyDelay ed = energyDelay(eb, er);

            const double memo_pct =
                ps.metered
                    ? 100.0 * static_cast<double>(ps.memo_hits) /
                          static_cast<double>(ps.metered)
                    : 0.0;
            table.addRow({out.names[i],
                          TextTable::num(ps.totalMean(), 2),
                          TextTable::num(eb.tag_nj / 1e6, 3),
                          TextTable::num(eb.memo_nj / 1e6, 3),
                          TextTable::num(eb.per_access_nj, 3),
                          TextTable::num(ed.delay_ns, 1),
                          TextTable::num(ed.edp_nj_ns, 1),
                          TextTable::num(memo_pct, 1)});
        }
        table.print(std::cout, args.format);
        std::printf("\nTagNJ/MemoNJ are whole-run millijoules; "
                    "nJ/acc includes the phased data-way read and "
                    "the miss fill. EDP = nJ/acc x ns/request.\n");
        return sweepExitCode(run);
    });
}
