/**
 * @file
 * Reproduces Table 4: the full configuration sweep. For each of the
 * paper's eight (L1, L2) configurations and each associativity
 * (4, 8, 16), reports global/local miss ratio, write-back fraction,
 * and the Naive / MRU / Partial probe counts (hits and total;
 * Partial also misses). The best total per row is starred, as in
 * the paper.
 *
 * Accounting follows the paper: write-backs cost zero probes (the
 * write-back optimization) but count as hit references in the
 * averages.
 */

#include <cstdio>
#include <iostream>

#include "support.h"

using namespace assoc;
using namespace assoc::bench;

int
main(int argc, char **argv)
{
    ArgParser parser("bench_table4",
                     "Table 4: probes for all cache configurations");
    parser.addFlag("tagbits", "16", "tag width t in bits");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_table4", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);
        unsigned t = static_cast<unsigned>(parser.getUint("tagbits"));

        // All 24 (associativity x configuration) runs are
        // independent: submit them as one sweep, then render the
        // tables from the in-order results.
        std::vector<RunSpec> specs;
        for (unsigned assoc : {4u, 8u, 16u}) {
            for (const Table4Config &cfg : table4Configs()) {
                RunSpec spec;
                spec.hier = mem::HierarchyConfig{
                    mem::CacheGeometry(cfg.l1_bytes, cfg.l1_block, 1),
                    mem::CacheGeometry(cfg.l2_bytes, cfg.l2_block,
                                       assoc),
                    true};
                core::SchemeSpec naive, mru;
                naive.kind = core::SchemeKind::Naive;
                naive.tag_bits = t;
                mru.kind = core::SchemeKind::Mru;
                mru.tag_bits = t;
                spec.schemes = {naive, mru,
                                core::SchemeSpec::paperPartial(assoc,
                                                               t)};
                specs.push_back(spec);
            }
        }
        SweepResult run =
            bench::runSweepChecked(specs, args, "table4");
        maybeWriteSweepJson(args, specs, run);

        std::size_t idx = 0;
        for (unsigned assoc : {4u, 8u, 16u}) {
            std::printf("\n%u-Way Set-Associative Level Two Cache "
                        "(t = %u)\n\n",
                        assoc, t);
            TextTable table;
            table.setHeader({"Configuration", "Global", "Local",
                             "WBfrac", "Naive-H", "Naive-T", "MRU-H",
                             "MRU-T", "Part-H", "Part-M", "Part-T"});

            for (const Table4Config &cfg : table4Configs()) {
                const JobResult &job = run.jobs[idx++];
                std::string name =
                    cacheName(cfg.l1_bytes, cfg.l1_block) + " " +
                    cacheName(cfg.l2_bytes, cfg.l2_block);
                if (!job.ok()) {
                    table.addRow(gapRow(name, 10));
                    continue;
                }
                const RunOutput &out = job.output;

                double naive_t = out.probes[0].totalMean();
                double mru_t = out.probes[1].totalMean();
                double part_t = out.probes[2].totalMean();
                double best =
                    std::min(naive_t, std::min(mru_t, part_t));
                auto star = [&](double v) {
                    std::string s = TextTable::num(v, 2);
                    return v == best ? "*" + s : s;
                };

                table.addRow(
                    {name,
                     TextTable::num(out.stats.globalMissRatio(), 4),
                     TextTable::num(out.stats.localMissRatio(), 4),
                     TextTable::num(out.stats.writeBackFraction(), 4),
                     TextTable::num(out.probes[0].hitsMean(), 2),
                     star(naive_t),
                     TextTable::num(out.probes[1].hitsMean(), 2),
                     star(mru_t),
                     TextTable::num(out.probes[2].hitsMean(), 2),
                     TextTable::num(
                         out.probes[2].read_in_misses.mean(), 2),
                     star(part_t)});
            }
            table.print(std::cout, args.format);
        }
        std::printf("\n(*) best method in total for the row. "
                    "Write-backs are zero-probe (write-back "
                    "optimization) and counted as hits.\n");
        return sweepExitCode(run);
    });
}
