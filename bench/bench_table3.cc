/**
 * @file
 * Reproduces Table 3: the trace and cache configuration summary —
 * in particular the miss ratios of the three level-one caches
 * (paper: 0.1181 for 4K-16, 0.0657 for 16K-16, 0.0513 for 16K-32)
 * and the overall trace statistics (8M+ references, 23 sub-traces).
 */

#include <cstdio>
#include <iostream>

#include "support.h"
#include "trace/trace_stats.h"

using namespace assoc;
using namespace assoc::bench;

int
main(int argc, char **argv)
{
    ArgParser parser("bench_table3",
                     "Table 3: trace summary and level-one cache "
                     "miss ratios");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_table3", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);
        trace::AtumLikeConfig tcfg = traceConfig(args);

        std::printf("Table 3 — trace-driven two-level cache "
                    "simulation setup\n\n");

        {
            trace::AtumLikeGenerator gen(tcfg);
            trace::TraceStats ts = trace::collectStats(gen, 32);
            std::printf("Synthetic ATUM-like trace (%u segments of "
                        "%llu refs):\n",
                        tcfg.segments,
                        static_cast<unsigned long long>(
                            tcfg.refs_per_segment));
            ts.print(std::cout);
            std::printf("\n");
        }

        TextTable table;
        table.setHeader({"L1 cache", "Miss ratio",
                         "Paper miss ratio"});
        struct L1
        {
            std::uint32_t bytes, block;
            const char *paper;
        };
        for (L1 l1 : {L1{4096, 16, "0.1181"}, L1{16384, 16, "0.0657"},
                      L1{16384, 32, "0.0513"}}) {
            trace::AtumLikeGenerator gen(tcfg);
            RunSpec spec;
            spec.hier = mem::HierarchyConfig{
                mem::CacheGeometry(l1.bytes, l1.block, 1),
                mem::CacheGeometry(262144, 32, 4), true};
            RunOutput out = runTrace(gen, spec);
            table.addRow({cacheName(l1.bytes, l1.block),
                          TextTable::num(out.stats.l1MissRatio(), 4),
                          l1.paper});
        }
        std::printf("Level-one cache miss ratios (direct-mapped, "
                    "write-back):\n\n");
        table.print(std::cout, args.format);
        return 0;
    });
}
