/**
 * @file
 * Shared plumbing for the benchmark harnesses: common command-line
 * flags (trace length, seed, output format) on top of the library's
 * experiment runner (sim/runner.h).
 *
 * Every bench binary regenerates one table or figure of the paper;
 * see DESIGN.md section 5 for the experiment index.
 */

#ifndef ASSOC_BENCH_SUPPORT_H
#define ASSOC_BENCH_SUPPORT_H

#include "sim/runner.h"
#include "trace/atum_like.h"
#include "util/argparse.h"
#include "util/table.h"

namespace assoc {
namespace bench {

// The runner API, re-exported under the bench namespace.
using sim::cacheName;
using sim::RunOutput;
using sim::RunSpec;
using sim::runTrace;
using sim::Table4Config;
using sim::table4Configs;

/** Flags shared by every bench binary. */
struct CommonArgs
{
    unsigned segments = 23;     ///< ATUM-like sub-traces to run
    std::uint64_t seed = 0;     ///< 0 = the generator's default
    TextTable::Format format = TextTable::Format::Text;
};

/** Register the shared flags on @p parser. */
void addCommonFlags(ArgParser &parser);

/** Extract the shared flags after parsing. */
CommonArgs readCommonFlags(const ArgParser &parser);

/** Trace configuration implied by the shared flags. */
trace::AtumLikeConfig traceConfig(const CommonArgs &args);

} // namespace bench
} // namespace assoc

#endif // ASSOC_BENCH_SUPPORT_H
