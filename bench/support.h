/**
 * @file
 * Shared plumbing for the benchmark harnesses: common command-line
 * flags (trace length, seed, output format, parallelism) on top of
 * the library's experiment runner (sim/runner.h) and the parallel
 * sweep engine (exec/sweep.h).
 *
 * Every bench binary regenerates one table or figure of the paper;
 * see DESIGN.md section 5 for the experiment index. Sweep-shaped
 * benches submit all their RunSpecs through runSweep(), which fans
 * them across a work-stealing thread pool (--jobs N; --jobs 1 is
 * the exact old serial path) and returns results in submission
 * order, so the printed tables are identical at any job count.
 */

#ifndef ASSOC_BENCH_SUPPORT_H
#define ASSOC_BENCH_SUPPORT_H

#include "exec/fault.h"
#include "exec/sweep.h"
#include "sim/runner.h"
#include "trace/atum_like.h"
#include "util/argparse.h"
#include "util/error.h"
#include "util/table.h"

namespace assoc {
namespace bench {

// The runner and sweep APIs, re-exported under the bench namespace.
using exec::JobResult;
using exec::JobStatus;
using exec::SweepResult;
using sim::cacheName;
using sim::RunOutput;
using sim::RunSpec;
using sim::runTrace;
using sim::Table4Config;
using sim::table4Configs;

/** Flags shared by every bench binary. */
struct CommonArgs
{
    unsigned segments = 23;     ///< ATUM-like sub-traces to run
    std::uint64_t seed = 0;     ///< 0 = the generator's default
    TextTable::Format format = TextTable::Format::Text;
    unsigned jobs = 0;          ///< sweep workers; 0 = all cores
    bool progress = false;      ///< stderr progress lines
    std::string json_path;      ///< machine-readable sweep results

    unsigned retries = 1;       ///< per-job retries (transient errors)
    bool keep_going = false;    ///< render failed jobs as gaps
    std::string journal_path;   ///< --journal: fresh checkpoint file
    std::string resume_path;    ///< --resume: replay missing jobs only
    std::int64_t fail_job = -1; ///< --fail-job: inject a failure (tests)

    std::uint64_t job_timeout_ns = 0;    ///< --job-timeout (0 = none)
    std::uint64_t sweep_deadline_ns = 0; ///< --sweep-deadline (0 = none)
    std::uint64_t mem_budget = 0;        ///< --mem-budget bytes (0 = none)
};

/** Register the shared flags on @p parser. */
void addCommonFlags(ArgParser &parser);

/** Extract the shared flags after parsing. */
CommonArgs readCommonFlags(const ArgParser &parser);

/** Trace configuration implied by the shared flags. */
trace::AtumLikeConfig traceConfig(const CommonArgs &args);

/** Sweep options implied by the shared flags (progress unset). */
exec::SweepOptions sweepOptions(const CommonArgs &args);

/**
 * Run @p specs in parallel per the shared flags, each job replaying
 * the identical trace implied by them. Results come back in
 * submission order; output built from them is byte-identical to the
 * serial loop's at any --jobs value.
 */
std::vector<RunOutput> runSweep(const std::vector<RunSpec> &specs,
                                const CommonArgs &args,
                                const std::string &label = "sweep");

/**
 * Fault-isolated variant of runSweep(): one JobResult per spec. A
 * failing job never aborts the sweep; each failure is reported to
 * stderr and the caller decides (usually via --keep-going) whether
 * to render gaps or give up. Honors --retries, --journal, --resume
 * and --fail-job, and installs a SIGINT handler when a journal is
 * in use so ^C checkpoints cleanly (the sweep then throws a
 * Cancelled ErrorException, exiting 130 under guardedMain()).
 *
 * Honors the runaway-work flags too: --job-timeout, --sweep-deadline
 * and --mem-budget (see docs/ROBUSTNESS.md). Jobs those kill come
 * back TimedOut / OverBudget and always render as gaps — no
 * --keep-going needed, since a deadline cutting a sweep short is the
 * requested behavior, not a malfunction; sweepExitCode() still
 * reports them via exit code 4.
 *
 * Throws when the sweep was interrupted, or when jobs *failed* and
 * @p args.keep_going is unset.
 */
SweepResult runSweepChecked(const std::vector<RunSpec> &specs,
                            const CommonArgs &args,
                            const std::string &label = "sweep");

/** Exit code for a finished checked sweep: 4 when any job was
 *  timed out or over budget (resource-killed partial output), else
 *  2 when any job failed (partial output), 0 otherwise. */
int sweepExitCode(const SweepResult &result);

/** The table cell rendered for a failed sweep point. */
std::string gapCell();

/** A whole table row of gap cells behind a leading label. */
std::vector<std::string> gapRow(const std::string &head,
                                std::size_t cols);

/**
 * Run arbitrary independent thunks per the shared flags (for bench
 * sections that drive hierarchies directly instead of runTrace).
 * Each thunk must write only to its own pre-allocated slot.
 */
void runJobs(std::vector<std::function<void()>> jobs,
             const CommonArgs &args,
             const std::string &label = "sweep");

/** When --json was given, write the sweep results there. */
void maybeWriteSweepJson(const CommonArgs &args,
                         const std::vector<RunSpec> &specs,
                         const std::vector<RunOutput> &outs);

/** Checked-sweep variant: carries per-job status/error/attempts. */
void maybeWriteSweepJson(const CommonArgs &args,
                         const std::vector<RunSpec> &specs,
                         const SweepResult &result);

} // namespace bench
} // namespace assoc

#endif // ASSOC_BENCH_SUPPORT_H
