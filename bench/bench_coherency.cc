/**
 * @file
 * Tests footnote 1 of the paper: under frequent coherency
 * invalidations, wider associativity keeps more of the cache
 * usefully full, because an invalidated (empty) frame anywhere in
 * a set can be reused by the next miss to that set, whereas a
 * direct-mapped cache can refill an invalidated frame only when a
 * miss maps to exactly that frame.
 *
 * Sweeps invalidation rate x level-two associativity, reporting
 * average occupancy (valid-frame fraction, sampled periodically)
 * and the local miss ratio.
 */

#include <cstdio>
#include <iostream>

#include "mem/coherency.h"
#include "support.h"

using namespace assoc;
using namespace assoc::bench;

int
main(int argc, char **argv)
{
    ArgParser parser("bench_coherency",
                     "cache utilization under coherency "
                     "invalidations vs associativity");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_coherency", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);

        std::printf("Coherency-invalidation study "
                    "(16K-16 L1, 256K-32 L2)\n\n");

        for (double rate : {0.0, 0.001, 0.005, 0.02}) {
            TextTable table;
            table.setHeader({"Assoc", "Invalidations", "Occupancy",
                             "Local miss"});
            for (unsigned a : {1u, 2u, 4u, 8u}) {
                trace::AtumLikeConfig tcfg = traceConfig(args);
                trace::AtumLikeGenerator gen(tcfg);
                mem::HierarchyConfig hcfg{
                    mem::CacheGeometry(16384, 16, 1),
                    mem::CacheGeometry(262144, 32, a), true};
                mem::TwoLevelHierarchy hier(hcfg);
                mem::CoherencyTraffic remote(rate);

                // Stream manually: one remote step per processor
                // reference, sampling occupancy every 10k refs.
                trace::MemRef r;
                gen.reset();
                double occupancy_sum = 0.0;
                std::uint64_t samples = 0, n = 0;
                while (gen.next(r)) {
                    hier.access(r);
                    remote.step(hier);
                    if (++n % 10000 == 0) {
                        occupancy_sum += mem::l2ValidFraction(hier);
                        ++samples;
                    }
                }
                table.addRow(
                    {std::to_string(a),
                     TextTable::num(remote.invalidations()),
                     TextTable::num(occupancy_sum / samples, 4),
                     TextTable::num(hier.stats().localMissRatio(),
                                    4)});
            }
            std::printf("Invalidation rate %.3f per reference:\n\n",
                        rate);
            table.print(std::cout, args.format);
            std::printf("\n");
        }
        std::printf("Higher associativity keeps occupancy higher "
                    "under invalidations (footnote 1's claim): "
                    "empty frames are reusable by any miss to the "
                    "set.\n");
        return 0;
    });
}
