/**
 * @file
 * Reproduces Figure 3: average probes per level-two access
 * (read-ins + write-backs) versus associativity for the
 * Traditional, Naive, MRU and Partial implementations, with and
 * without the write-back optimization.
 *
 * Configuration: 16K-16 level-one cache, 256K-32 level-two cache,
 * 16-bit tags, k = 4, subsets 1/2/4 for 4/8/16-way.
 */

#include <cstdio>
#include <iostream>

#include "support.h"

using namespace assoc;
using namespace assoc::bench;

int
main(int argc, char **argv)
{
    ArgParser parser("bench_fig3",
                     "Figure 3: probes vs associativity, with and "
                     "without the write-back optimization");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_fig3", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);

        std::printf("Figure 3 — probes per L2 access (read-ins + "
                    "write-backs), 16K-16 L1, 256K-32 L2\n\n");

        std::vector<RunSpec> specs;
        for (bool wb_opt : {true, false}) {
            for (unsigned a : {2u, 4u, 8u, 16u}) {
                RunSpec spec;
                spec.hier = mem::HierarchyConfig{
                    mem::CacheGeometry(16384, 16, 1),
                    mem::CacheGeometry(262144, 32, a), true};
                spec.wb_optimization = wb_opt;
                core::SchemeSpec trad, naive, mru;
                trad.kind = core::SchemeKind::Traditional;
                naive.kind = core::SchemeKind::Naive;
                mru.kind = core::SchemeKind::Mru;
                spec.schemes = {trad,
                                core::SchemeSpec::paperPartial(a),
                                mru, naive};
                specs.push_back(spec);
            }
        }
        SweepResult run = bench::runSweepChecked(specs, args, "fig3");
        maybeWriteSweepJson(args, specs, run);

        std::size_t idx = 0;
        for (bool wb_opt : {true, false}) {
            TextTable table;
            table.setHeader({"Assoc", "Traditional", "Partial",
                             "MRU", "Naive"});
            for (unsigned a : {2u, 4u, 8u, 16u}) {
                const JobResult &job = run.jobs[idx++];
                if (!job.ok()) {
                    table.addRow(gapRow(std::to_string(a), 4));
                    continue;
                }
                const RunOutput &out = job.output;
                table.addRow(
                    {std::to_string(a),
                     TextTable::num(out.probes[0].totalMean(), 2),
                     TextTable::num(out.probes[1].totalMean(), 2),
                     TextTable::num(out.probes[2].totalMean(), 2),
                     TextTable::num(out.probes[3].totalMean(), 2)});
            }
            std::printf("%s the write-back optimization:\n\n",
                        wb_opt ? "With" : "Without");
            table.print(std::cout, args.format);
            std::printf("\n");
        }
        return sweepExitCode(run);
    });
}
