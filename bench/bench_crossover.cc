/**
 * @file
 * The crossover experiment the paper's introduction argues for but
 * never plots: at what miss penalty does a 4-way level-two cache
 * with a *cheap serial* lookup beat a direct-mapped level two?
 *
 * "Wide associativity is important when (1) miss times are very
 * long or (2) memory and memory interconnect contention delay is
 * significant." We sweep the memory service time and compose
 * measured miss ratios and probe counts with the Table 2 timing
 * model (SRAM designs) into time-per-processor-reference.
 */

#include <cstdio>
#include <iostream>

#include "hw/effective.h"
#include "support.h"

using namespace assoc;
using namespace assoc::bench;
using namespace assoc::hw;

int
main(int argc, char **argv)
{
    ArgParser parser("bench_crossover",
                     "direct-mapped vs cheap-associative level two "
                     "as the miss penalty grows");
    parser.addFlag("l1", "16384", "level-one bytes");
    parser.addFlag("l2", "262144", "level-two bytes");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_crossover", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);
        std::uint32_t l1_bytes =
            static_cast<std::uint32_t>(parser.getUint("l1"));
        std::uint32_t l2_bytes =
            static_cast<std::uint32_t>(parser.getUint("l2"));

        Table2Catalog catalog;

        // Measure each design once.
        struct Design
        {
            std::string name;
            ImplKind impl;
            unsigned assoc;
            EffectiveInputs in;
        };
        std::vector<Design> designs = {
            {"DM L2", ImplKind::DirectMapped, 1, {}},
            {"4-way traditional", ImplKind::Traditional, 4, {}},
            {"4-way MRU", ImplKind::Mru, 4, {}},
            {"4-way partial", ImplKind::Partial, 4, {}},
        };

        std::vector<RunSpec> specs;
        std::vector<unsigned> subsets_per_design;
        for (Design &d : designs) {
            RunSpec spec;
            spec.hier = mem::HierarchyConfig{
                mem::CacheGeometry(l1_bytes, 16, 1),
                mem::CacheGeometry(l2_bytes, 32, d.assoc), true};
            core::SchemeSpec scheme;
            unsigned subsets = 1;
            switch (d.impl) {
              case ImplKind::Mru:
                scheme.kind = core::SchemeKind::Mru;
                break;
              case ImplKind::Partial:
                scheme = core::SchemeSpec::paperPartial(d.assoc);
                subsets = scheme.partial_subsets;
                break;
              default:
                scheme.kind = core::SchemeKind::Traditional;
                break;
            }
            spec.schemes = {scheme};
            specs.push_back(spec);
            subsets_per_design.push_back(subsets);
        }
        std::vector<RunOutput> outs =
            bench::runSweep(specs, args, "crossover");
        maybeWriteSweepJson(args, specs, outs);

        for (std::size_t i = 0; i < designs.size(); ++i) {
            Design &d = designs[i];
            const RunOutput &out = outs[i];
            unsigned subsets = subsets_per_design[i];

            d.in.l1_miss_ratio = out.stats.l1MissRatio();
            double ri =
                static_cast<double>(out.stats.read_ins);
            d.in.l2_miss_ratio =
                ri == 0 ? 0.0 : out.stats.read_in_misses / ri;
            if (d.impl == ImplKind::Mru) {
                d.in.extra_hit_probes =
                    out.probes[0].read_in_hits.mean() - 1.0;
                d.in.extra_miss_probes =
                    out.probes[0].read_in_misses.mean() - 1.0;
            } else if (d.impl == ImplKind::Partial) {
                d.in.extra_hit_probes =
                    out.probes[0].read_in_hits.mean() - subsets;
                d.in.extra_miss_probes =
                    out.probes[0].read_in_misses.mean() - subsets;
            }
            std::printf("%-18s l1mr=%.4f l2mr=%.4f extra probes "
                        "hit=%.2f miss=%.2f\n",
                        d.name.c_str(), d.in.l1_miss_ratio,
                        d.in.l2_miss_ratio, d.in.extra_hit_probes,
                        d.in.extra_miss_probes);
        }

        std::printf("\nTime per processor reference (ns), SRAM "
                    "tag-path designs, vs memory service time:\n\n");
        TextTable table;
        table.setHeader({"memory(ns)", "DM L2", "4w trad", "4w MRU",
                         "4w partial", "winner"});
        for (double mem_ns :
             {100.0, 200.0, 400.0, 600.0, 1000.0, 2000.0, 4000.0}) {
            SystemTimings sys;
            sys.memory_ns = mem_ns;
            std::vector<double> eat;
            for (const Design &d : designs) {
                const ImplSpec &impl =
                    catalog.get(d.impl, RamTech::Sram);
                eat.push_back(
                    effectiveAccess(impl, d.in, sys).per_ref_ns);
            }
            std::size_t best = 0;
            for (std::size_t i = 1; i < eat.size(); ++i)
                if (eat[i] < eat[best])
                    best = i;
            table.addRow({TextTable::num(mem_ns, 0),
                          TextTable::num(eat[0], 1),
                          TextTable::num(eat[1], 1),
                          TextTable::num(eat[2], 1),
                          TextTable::num(eat[3], 1),
                          designs[best].name});
        }
        table.print(std::cout, args.format);
        std::printf("\nAs the miss penalty grows, the lower miss "
                    "ratio of 4-way associativity pays for the "
                    "serial schemes' extra probes — with half the "
                    "packages of the traditional design "
                    "(Table 2).\n");
        return 0;
    });
}
