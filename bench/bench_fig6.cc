/**
 * @file
 * Reproduces Figure 6: the partial-compare scheme with larger tags
 * and different transformations.
 *
 * Left graph: read-in hit probes versus associativity for 16- and
 * 32-bit tags under no transform, the simple XOR transform, the
 * improved ("new") transform, and the analytic lower bound.
 * Right graph: best partial transform versus the MRU scheme at both
 * tag widths.
 */

#include <cstdio>
#include <iostream>

#include "core/analytic.h"
#include "support.h"

using namespace assoc;
using namespace assoc::bench;
using core::TransformKind;

int
main(int argc, char **argv)
{
    ArgParser parser("bench_fig6",
                     "Figure 6: partial compares with larger tags "
                     "and different transformations");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_fig6", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);

        std::printf("Figure 6 — partial scheme on read-in hits "
                    "(16K-16 L1, 256K-32 L2)\n\n");

        const TransformKind kinds[] = {
            TransformKind::None, TransformKind::XorLow,
            TransformKind::Improved, TransformKind::Swap};
        const unsigned tags[] = {16u, 32u};
        const unsigned assocs[] = {4u, 8u, 16u};

        std::vector<RunSpec> specs;
        for (unsigned t : tags) {
            for (unsigned a : assocs) {
                RunSpec spec;
                spec.hier = mem::HierarchyConfig{
                    mem::CacheGeometry(16384, 16, 1),
                    mem::CacheGeometry(262144, 32, a), true};
                for (TransformKind kind : kinds) {
                    core::SchemeSpec p =
                        core::SchemeSpec::paperPartial(a, t);
                    p.transform = kind;
                    spec.schemes.push_back(p);
                }
                core::SchemeSpec mru;
                mru.kind = core::SchemeKind::Mru;
                spec.schemes.push_back(mru);
                specs.push_back(spec);
            }
        }
        SweepResult run = bench::runSweepChecked(specs, args, "fig6");
        maybeWriteSweepJson(args, specs, run);

        std::size_t idx = 0;
        for (unsigned t : tags) {
            TextTable table;
            table.setHeader({"Assoc", "None", "XOR", "New", "Swap",
                             "Theory", "MRU"});
            for (unsigned a : assocs) {
                const JobResult &job = run.jobs[idx++];
                if (!job.ok()) {
                    table.addRow(gapRow(std::to_string(a), 6));
                    continue;
                }
                const RunOutput &out = job.output;

                core::SchemeSpec sample =
                    core::SchemeSpec::paperPartial(a, t);
                double theory = core::analytic::partialHit(
                    a, sample.partial_k, sample.partial_subsets);

                table.addRow(
                    {std::to_string(a),
                     TextTable::num(out.probes[0].read_in_hits.mean(),
                                    2),
                     TextTable::num(out.probes[1].read_in_hits.mean(),
                                    2),
                     TextTable::num(out.probes[2].read_in_hits.mean(),
                                    2),
                     TextTable::num(out.probes[3].read_in_hits.mean(),
                                    2),
                     TextTable::num(theory, 2),
                     TextTable::num(out.probes[4].read_in_hits.mean(),
                                    2)});
            }
            std::printf("%u-bit tags (k = %u/%u/%u, subsets per the "
                        "paper's rule):\n\n",
                        t, core::SchemeSpec::paperPartial(4, t).partial_k,
                        core::SchemeSpec::paperPartial(8, t).partial_k,
                        core::SchemeSpec::paperPartial(16, t).partial_k);
            table.print(std::cout, args.format);
            std::printf("\n");
        }
        std::printf("Theory is the probabilistic lower bound of "
                    "Section 2 (uniform independent fields).\n");
        return sweepExitCode(run);
    });
}
