#include "support.h"

#include <fstream>
#include <limits>

#include "util/logging.h"

namespace assoc {
namespace bench {

void
addCommonFlags(ArgParser &parser)
{
    parser.addFlag("segments", "23",
                   "ATUM-like sub-traces to simulate (23 = the "
                   "paper's full concatenated trace)");
    parser.addFlag("seed", "0",
                   "trace generator seed (0 = built-in default)");
    parser.addFlag("output", "text",
                   "table format: text, csv, markdown or json");
    parser.addFlag("jobs", "0",
                   "parallel simulations (0 = all hardware "
                   "threads, 1 = serial)");
    parser.addSwitch("progress",
                     "print per-job completion lines to stderr");
    parser.addFlag("json", "",
                   "also write machine-readable sweep results to "
                   "this file");
}

CommonArgs
readCommonFlags(const ArgParser &parser)
{
    CommonArgs args;
    std::uint64_t segments = parser.getUint("segments");
    // getUint hands back 64 bits; the config field is unsigned, so
    // reject anything the cast would silently truncate.
    constexpr std::uint64_t seg_max =
        std::numeric_limits<unsigned>::max();
    fatalIf(segments == 0 || segments > seg_max,
            "--segments must be in [1, " + std::to_string(seg_max) +
                "], got " + parser.getString("segments"));
    args.segments = static_cast<unsigned>(segments);
    args.seed = parser.getUint("seed");
    std::string fmt = parser.getString("output");
    if (fmt == "text") {
        args.format = TextTable::Format::Text;
    } else if (fmt == "csv") {
        args.format = TextTable::Format::Csv;
    } else if (fmt == "markdown" || fmt == "md") {
        args.format = TextTable::Format::Markdown;
    } else if (fmt == "json") {
        args.format = TextTable::Format::Json;
    } else {
        fatal("unknown --output format '" + fmt + "'");
    }
    std::uint64_t jobs = parser.getUint("jobs");
    fatalIf(jobs > std::numeric_limits<unsigned>::max(),
            "--jobs is out of range");
    args.jobs = static_cast<unsigned>(jobs);
    args.progress = parser.getBool("progress");
    args.json_path = parser.getString("json");
    return args;
}

trace::AtumLikeConfig
traceConfig(const CommonArgs &args)
{
    trace::AtumLikeConfig cfg;
    cfg.segments = args.segments;
    if (args.seed != 0)
        cfg.seed = args.seed;
    return cfg;
}

exec::SweepOptions
sweepOptions(const CommonArgs &args)
{
    exec::SweepOptions opts;
    opts.jobs = args.jobs;
    return opts;
}

std::vector<RunOutput>
runSweep(const std::vector<RunSpec> &specs, const CommonArgs &args,
         const std::string &label)
{
    exec::SweepOptions opts = sweepOptions(args);
    exec::ProgressMeter meter(specs.size(), args.progress, label);
    if (args.progress)
        opts.progress = &meter;
    return exec::runSweep(specs,
                          exec::atumTraceFactory(traceConfig(args)),
                          opts);
}

void
runJobs(std::vector<std::function<void()>> jobs,
        const CommonArgs &args, const std::string &label)
{
    exec::SweepOptions opts = sweepOptions(args);
    exec::ProgressMeter meter(jobs.size(), args.progress, label);
    if (args.progress)
        opts.progress = &meter;
    exec::runJobs(std::move(jobs), opts);
}

void
maybeWriteSweepJson(const CommonArgs &args,
                    const std::vector<RunSpec> &specs,
                    const std::vector<RunOutput> &outs)
{
    if (args.json_path.empty())
        return;
    std::ofstream os(args.json_path);
    fatalIf(!os, "cannot write --json file '" + args.json_path + "'");
    exec::writeSweepJson(os, specs, outs);
}

} // namespace bench
} // namespace assoc
