#include "support.h"

#include <fstream>
#include <limits>

#include "exec/journal.h"
#include "util/logging.h"

namespace assoc {
namespace bench {

void
addCommonFlags(ArgParser &parser)
{
    parser.addFlag("segments", "23",
                   "ATUM-like sub-traces to simulate (23 = the "
                   "paper's full concatenated trace)");
    parser.addFlag("seed", "0",
                   "trace generator seed (0 = built-in default)");
    parser.addFlag("output", "text",
                   "table format: text, csv, markdown or json");
    parser.addFlag("jobs", "0",
                   "parallel simulations (0 = all hardware "
                   "threads, 1 = serial)");
    parser.addSwitch("progress",
                     "print per-job completion lines to stderr");
    parser.addFlag("json", "",
                   "also write machine-readable sweep results to "
                   "this file");
    parser.addFlag("retries", "1",
                   "extra attempts per sweep job after a transient "
                   "failure");
    parser.addSwitch("keep-going",
                     "finish the sweep when jobs fail and render "
                     "the failed points as gaps (exit 2)");
    parser.addFlag("journal", "",
                   "checkpoint completed sweep jobs to this file "
                   "(^C drains and keeps it for --resume)");
    parser.addFlag("resume", "",
                   "restore completed jobs from this journal and "
                   "run only the missing ones (appends new "
                   "completions)");
    parser.addFlag("fail-job", "",
                   "deliberately fail this job index "
                   "(fault-injection testing)");
    parser.addFlag("job-timeout", "",
                   "cancel any sweep job that runs longer than this "
                   "(e.g. 30s, 500ms); a timed-out job is retried "
                   "per --retries, then rendered as a gap (exit 4)");
    parser.addFlag("sweep-deadline", "",
                   "give up on the whole sweep this long after it "
                   "starts (e.g. 5m); unfinished points become gaps "
                   "(exit 4)");
    parser.addFlag("mem-budget", "",
                   "byte budget for the sweep's big allocations "
                   "(e.g. 512M); a job pushing past it fails with a "
                   "budget error instead of summoning the OOM "
                   "killer (exit 4)");
}

namespace {

/** Parse an empty-defaulted duration flag ("" = 0 = disabled). */
std::uint64_t
durationFlag(const ArgParser &parser, const std::string &name)
{
    std::string text = parser.getString(name);
    if (text.empty())
        return 0;
    Expected<std::uint64_t> ns = parseDuration(text);
    if (!ns.ok())
        throwError(Error(ns.error()).withContext("--" + name));
    return ns.value();
}

/** Parse an empty-defaulted byte-size flag ("" = 0 = disabled). */
std::uint64_t
byteSizeFlag(const ArgParser &parser, const std::string &name)
{
    std::string text = parser.getString(name);
    if (text.empty())
        return 0;
    Expected<std::uint64_t> bytes = parseByteSize(text);
    if (!bytes.ok())
        throwError(Error(bytes.error()).withContext("--" + name));
    return bytes.value();
}

} // namespace

CommonArgs
readCommonFlags(const ArgParser &parser)
{
    CommonArgs args;
    std::uint64_t segments = parser.getUint("segments");
    // getUint hands back 64 bits; the config field is unsigned, so
    // reject anything the cast would silently truncate.
    constexpr std::uint64_t seg_max =
        std::numeric_limits<unsigned>::max();
    fatalIf(segments == 0 || segments > seg_max,
            "--segments must be in [1, " + std::to_string(seg_max) +
                "], got " + parser.getString("segments"));
    args.segments = static_cast<unsigned>(segments);
    args.seed = parser.getUint("seed");
    std::string fmt = parser.getString("output");
    if (fmt == "text") {
        args.format = TextTable::Format::Text;
    } else if (fmt == "csv") {
        args.format = TextTable::Format::Csv;
    } else if (fmt == "markdown" || fmt == "md") {
        args.format = TextTable::Format::Markdown;
    } else if (fmt == "json") {
        args.format = TextTable::Format::Json;
    } else {
        fatal("unknown --output format '" + fmt + "'");
    }
    std::uint64_t jobs = parser.getUint("jobs");
    fatalIf(jobs > std::numeric_limits<unsigned>::max(),
            "--jobs is out of range");
    args.jobs = static_cast<unsigned>(jobs);
    args.progress = parser.getBool("progress");
    args.json_path = parser.getString("json");
    std::uint64_t retries = parser.getUint("retries");
    fatalIf(retries > 100, "--retries is out of range");
    args.retries = static_cast<unsigned>(retries);
    args.keep_going = parser.getBool("keep-going");
    args.journal_path = parser.getString("journal");
    args.resume_path = parser.getString("resume");
    if (parser.given("fail-job"))
        args.fail_job =
            static_cast<std::int64_t>(parser.getUint("fail-job"));
    args.job_timeout_ns = durationFlag(parser, "job-timeout");
    args.sweep_deadline_ns = durationFlag(parser, "sweep-deadline");
    args.mem_budget = byteSizeFlag(parser, "mem-budget");
    return args;
}

trace::AtumLikeConfig
traceConfig(const CommonArgs &args)
{
    trace::AtumLikeConfig cfg;
    cfg.segments = args.segments;
    if (args.seed != 0)
        cfg.seed = args.seed;
    return cfg;
}

exec::SweepOptions
sweepOptions(const CommonArgs &args)
{
    exec::SweepOptions opts;
    opts.jobs = args.jobs;
    return opts;
}

SweepResult
runSweepChecked(const std::vector<RunSpec> &specs,
                const CommonArgs &args, const std::string &label)
{
    exec::SweepOptions opts = sweepOptions(args);
    exec::ProgressMeter meter(specs.size(), args.progress, label);
    if (args.progress)
        opts.progress = &meter;

    opts.max_retries = args.retries;
    opts.journal_path = args.journal_path;
    opts.resume_path = args.resume_path;
    opts.job_timeout_ns = args.job_timeout_ns;
    opts.sweep_deadline_ns = args.sweep_deadline_ns;
    opts.mem_budget = args.mem_budget;
    trace::AtumLikeConfig tcfg = traceConfig(args);
    opts.spec_hash =
        exec::hashSpecs(specs, tcfg.seed * 1000003ull + tcfg.segments);

    // With a journal in play, ^C must drain and checkpoint instead
    // of killing the process mid-write.
    exec::CancelToken cancel;
    if (!args.journal_path.empty() || !args.resume_path.empty()) {
        exec::installSigintHandler();
        cancel.watchSigint();
        opts.cancel = &cancel;
    }

    exec::FaultPlan plan;
    plan.fail_job = args.fail_job;
    exec::FaultInjector inject(plan);
    if (args.fail_job >= 0)
        opts.inject = &inject;

    SweepResult result = exec::runSweepChecked(
        specs, exec::atumTraceFactory(tcfg), opts);

    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        const JobResult &j = result.jobs[i];
        if (j.status == JobStatus::Failed)
            warn(label + ": job " + std::to_string(i) + " failed (" +
                 std::to_string(j.attempts) + " attempt(s)): " +
                 j.error.text());
        else if (j.status == JobStatus::TimedOut ||
                 j.status == JobStatus::OverBudget)
            warn(label + ": job " + std::to_string(i) + " " +
                 exec::jobStatusName(j.status) + " (" +
                 std::to_string(j.attempts) + " attempt(s)): " +
                 j.error.text());
    }

    if (result.interrupted) {
        const std::string &journal = !args.journal_path.empty()
                                         ? args.journal_path
                                         : args.resume_path;
        Error e = Error::cancelled(
            label + " interrupted: " +
            std::to_string(result.cancelled()) + " of " +
            std::to_string(result.jobs.size()) + " jobs not run");
        if (!journal.empty())
            e.withContext("completed jobs are checkpointed; rerun "
                          "with --resume=" + journal);
        throwError(std::move(e));
    }
    // Resource-killed jobs (TimedOut / OverBudget) always render as
    // gaps: a deadline cutting a sweep short is the behavior the
    // flag asked for, not a malfunction. Only genuine failures need
    // --keep-going to continue.
    if (result.failures() > 0 && !args.keep_going) {
        Error e;
        for (const JobResult &j : result.jobs)
            if (j.status == JobStatus::Failed) {
                e = j.error;
                break;
            }
        throwError(std::move(e.withContext(
            "sweep '" + label + "' (pass --keep-going to render "
            "failed points as gaps)")));
    }
    return result;
}

std::vector<RunOutput>
runSweep(const std::vector<RunSpec> &specs, const CommonArgs &args,
         const std::string &label)
{
    // Route through the checked engine so --retries / --journal /
    // --resume work for every bench; callers of this signature need
    // every output, so any failure (already reported per job) is
    // rethrown regardless of --keep-going — including resource
    // kills, which the checked path would render as gaps.
    CommonArgs strict = args;
    strict.keep_going = false;
    SweepResult result = runSweepChecked(specs, strict, label);
    if (!result.allOk())
        throwError(Error(result.firstError())
                       .withContext("sweep '" + label +
                                    "' needs every point; it cannot "
                                    "render gaps"));
    std::vector<RunOutput> outs;
    outs.reserve(result.jobs.size());
    for (JobResult &j : result.jobs)
        outs.push_back(std::move(j.output));
    return outs;
}

int
sweepExitCode(const SweepResult &result)
{
    // Resource kills outrank plain failures: exit 4 tells a driver
    // "raise the deadline/budget", exit 2 "inspect the errors".
    if (result.resourceKilled() > 0)
        return 4;
    return result.failures() == 0 ? 0 : 2;
}

std::string
gapCell()
{
    return "-";
}

std::vector<std::string>
gapRow(const std::string &head, std::size_t cols)
{
    std::vector<std::string> row;
    row.reserve(cols + 1);
    row.push_back(head);
    for (std::size_t i = 0; i < cols; ++i)
        row.push_back(gapCell());
    return row;
}

void
runJobs(std::vector<std::function<void()>> jobs,
        const CommonArgs &args, const std::string &label)
{
    exec::SweepOptions opts = sweepOptions(args);
    exec::ProgressMeter meter(jobs.size(), args.progress, label);
    if (args.progress)
        opts.progress = &meter;
    exec::runJobs(std::move(jobs), opts);
}

void
maybeWriteSweepJson(const CommonArgs &args,
                    const std::vector<RunSpec> &specs,
                    const std::vector<RunOutput> &outs)
{
    if (args.json_path.empty())
        return;
    Expected<void> ok =
        exec::writeSweepJsonFile(args.json_path, specs, outs);
    if (!ok.ok())
        throwError(ok.takeError().withContext("--json"));
}

void
maybeWriteSweepJson(const CommonArgs &args,
                    const std::vector<RunSpec> &specs,
                    const SweepResult &result)
{
    if (args.json_path.empty())
        return;
    Expected<void> ok =
        exec::writeSweepJsonFile(args.json_path, specs, result);
    if (!ok.ok())
        throwError(ok.takeError().withContext("--json"));
}

} // namespace bench
} // namespace assoc
