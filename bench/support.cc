#include "support.h"

#include "util/logging.h"

namespace assoc {
namespace bench {

void
addCommonFlags(ArgParser &parser)
{
    parser.addFlag("segments", "23",
                   "ATUM-like sub-traces to simulate (23 = the "
                   "paper's full concatenated trace)");
    parser.addFlag("seed", "0",
                   "trace generator seed (0 = built-in default)");
    parser.addFlag("output", "text",
                   "table format: text, csv or markdown");
}

CommonArgs
readCommonFlags(const ArgParser &parser)
{
    CommonArgs args;
    args.segments = static_cast<unsigned>(parser.getUint("segments"));
    fatalIf(args.segments == 0, "--segments must be positive");
    args.seed = parser.getUint("seed");
    std::string fmt = parser.getString("output");
    if (fmt == "text") {
        args.format = TextTable::Format::Text;
    } else if (fmt == "csv") {
        args.format = TextTable::Format::Csv;
    } else if (fmt == "markdown" || fmt == "md") {
        args.format = TextTable::Format::Markdown;
    } else {
        fatal("unknown --output format '" + fmt + "'");
    }
    return args;
}

trace::AtumLikeConfig
traceConfig(const CommonArgs &args)
{
    trace::AtumLikeConfig cfg;
    cfg.segments = args.segments;
    if (args.seed != 0)
        cfg.seed = args.seed;
    return cfg;
}

} // namespace bench
} // namespace assoc
