/**
 * @file
 * Reproduces Table 1: analytic expected probes per lookup for the
 * Traditional, Naive, MRU and Partial implementations.
 *
 * Pure formula evaluation (Section 2); no simulation. The MRU hit
 * entry is an interval because it depends on the f_i distribution,
 * exactly as the paper prints "[2, 5]".
 */

#include <cstdio>
#include <iostream>

#include "core/analytic.h"
#include "support.h"

using namespace assoc;
using namespace assoc::core;

namespace {

std::string
tagMemWidth(unsigned a, unsigned t, unsigned s, unsigned k,
            const char *method)
{
    if (std::string(method) == "Traditional")
        return std::to_string(a * t);
    if (std::string(method) == "Partial")
        return std::to_string(std::max(t, (a / s) * k));
    return std::to_string(t);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser parser("bench_table1",
                     "Table 1: analytic expected probes per lookup");
    parser.addFlag("tagbits", "16", "tag width t in bits");
    bench::addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_table1", [&]() -> int {
        unsigned t =
            static_cast<unsigned>(parser.getUint("tagbits"));
        bench::CommonArgs args = bench::readCommonFlags(parser);

        TextTable table;
        table.setHeader({"Method", "Assoc", "Subsets",
                         "TagMemWidth", "E[probes|hit]",
                         "E[probes|miss]"});

        // The paper's example associativity is 4 (and 8 for the
        // subset rows); print the general formula rows for 4, 8, 16.
        for (unsigned a : {4u, 8u, 16u}) {
            table.addRow({"Traditional", std::to_string(a), "1",
                          tagMemWidth(a, t, 1, 0, "Traditional"),
                          TextTable::num(analytic::traditionalHit(), 2),
                          TextTable::num(analytic::traditionalMiss(),
                                         2)});
        }
        table.addRule();
        for (unsigned a : {4u, 8u, 16u}) {
            table.addRow({"Naive", std::to_string(a), "1",
                          tagMemWidth(a, t, 1, 0, "Naive"),
                          TextTable::num(analytic::naiveHit(a), 2),
                          TextTable::num(analytic::naiveMiss(a), 2)});
        }
        table.addRule();
        for (unsigned a : {4u, 8u, 16u}) {
            // MRU hit depends on f_i: bounded by [2, a + 1].
            table.addRow({"MRU", std::to_string(a), "1",
                          tagMemWidth(a, t, 1, 0, "MRU"),
                          "[2, " + std::to_string(a + 1) + "]",
                          TextTable::num(analytic::mruMiss(a), 2)});
        }
        table.addRule();
        // Partial rows: the paper's k = 4 single-subset 4-way row,
        // the k = 2 8-way row, and the k = 4 two-subset 8-way row,
        // generalized over associativities with the paper's subset
        // rule.
        struct PartialRow
        {
            unsigned a, k, s;
        };
        for (PartialRow row : {PartialRow{4, 4, 1}, PartialRow{8, 2, 1},
                               PartialRow{8, 4, 2},
                               PartialRow{16, 4, 4}}) {
            if ((row.a / row.s) * row.k > t)
                continue; // infeasible at this tag width
            table.addRow(
                {"Partial(k=" + std::to_string(row.k) + ")",
                 std::to_string(row.a), std::to_string(row.s),
                 tagMemWidth(row.a, t, row.s, row.k, "Partial"),
                 TextTable::num(
                     analytic::partialHit(row.a, row.k, row.s), 2),
                 TextTable::num(
                     analytic::partialMiss(row.a, row.k, row.s), 2)});
        }

        std::printf("Table 1 — expected probes per lookup "
                    "(t = %u-bit tags)\n\n",
                    t);
        table.print(std::cout, args.format);

        std::printf("\nOptimum partial-compare width k_opt = "
                    "log2(t) - 1/2 = %.2f bits\n",
                    analytic::kOpt(t));
        std::printf("Subset choice (hits-only): a=4 -> %u, a=8 -> %u, "
                    "a=16 -> %u\n",
                    analytic::chooseSubsets(4, t),
                    analytic::chooseSubsets(8, t),
                    analytic::chooseSubsets(16, t));
        return 0;
    });
}
