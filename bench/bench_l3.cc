/**
 * @file
 * Extension experiment: the schemes at a *third* cache level.
 *
 * The abstract targets "level two (or higher) caches in a cache
 * hierarchy"; the paper evaluates only the second level. Here a
 * 4K-16 L1 and a 64K-32 4-way L2 feed an a-way L3, and the same
 * probe meters price the L3 lookups. The L3's reference stream is
 * twice-filtered, so its hit time matters even less per processor
 * reference — and the serial schemes' shapes (probes vs
 * associativity, MRU vs partial crossover) carry over.
 */

#include <cstdio>
#include <iostream>

#include "core/probe_meter.h"
#include "core/scheme.h"
#include "mem/third_level.h"
#include "support.h"

using namespace assoc;
using namespace assoc::bench;

int
main(int argc, char **argv)
{
    ArgParser parser("bench_l3",
                     "the cheap-associativity schemes at a third "
                     "cache level");
    parser.addFlag("l3", "1048576", "level-three bytes");
    parser.addFlag("l3block", "64", "level-three block bytes");
    addCommonFlags(parser);
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("bench_l3", [&]() -> int {
        CommonArgs args = readCommonFlags(parser);
        std::uint32_t l3_bytes =
            static_cast<std::uint32_t>(parser.getUint("l3"));
        std::uint32_t l3_block =
            static_cast<std::uint32_t>(parser.getUint("l3block"));

        std::printf("Third-level study: 4K-16 L1, 64K-32 4-way L2, "
                    "%s a-way L3\n\n",
                    cacheName(l3_bytes, l3_block).c_str());

        TextTable table;
        table.setHeader({"L3 assoc", "L3 reqs", "Local miss",
                         "Naive", "MRU", "Partial", "f1"});
        const unsigned assocs[] = {2u, 4u, 8u, 16u};
        // Each associativity is an independent simulation driving
        // the hierarchy directly; fan them out with one row slot
        // per job and print in submission order.
        std::vector<std::vector<std::string>> rows(4);
        std::vector<std::function<void()>> jobs;
        for (std::size_t i = 0; i < 4; ++i) {
            jobs.push_back([&, i] {
                unsigned a = assocs[i];
                trace::AtumLikeGenerator gen(traceConfig(args));
                mem::HierarchyConfig cfg{
                    mem::CacheGeometry(4096, 16, 1),
                    mem::CacheGeometry(65536, 32, 4), true};
                mem::TwoLevelHierarchy hier(cfg);
                mem::ThirdLevelCache l3(
                    mem::CacheGeometry(l3_bytes, l3_block, a),
                    cfg.l2);
                hier.setMemorySide(&l3);

                core::SchemeSpec naive, mru;
                naive.kind = core::SchemeKind::Naive;
                mru.kind = core::SchemeKind::Mru;
                auto m_naive = naive.makeMeter();
                auto m_mru = mru.makeMeter();
                auto m_part =
                    core::SchemeSpec::paperPartial(a).makeMeter();
                core::MruDistanceMeter dist(a);
                l3.addObserver(m_naive.get());
                l3.addObserver(m_mru.get());
                l3.addObserver(m_part.get());
                l3.addObserver(&dist);
                hier.run(gen);

                const mem::ThirdLevelStats &ts = l3.stats();
                rows[i] = {
                    std::to_string(a),
                    TextTable::num(ts.read_ins + ts.write_backs),
                    TextTable::num(ts.localMissRatio(), 4),
                    TextTable::num(m_naive->stats().totalMean(), 2),
                    TextTable::num(m_mru->stats().totalMean(), 2),
                    TextTable::num(m_part->stats().totalMean(), 2),
                    TextTable::num(dist.f(1), 3)};
            });
        }
        bench::runJobs(std::move(jobs), args, "l3");
        for (auto &row : rows)
            table.addRow(std::move(row));
        table.print(std::cout, args.format);
        std::printf("\nTotals include zero-probe write-backs (the "
                    "optimization generalizes: the level two keeps "
                    "way hints for its blocks in the level "
                    "three).\n");
        return 0;
    });
}
