/**
 * @file
 * google-benchmark microbenchmarks: raw software cost of the
 * building blocks (lookup strategies, tag transforms, cache model,
 * trace generation). These measure the *simulator*, not the
 * hardware schemes — they guard the repository's own performance.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include <mutex>

#include "core/kernels.h"
#include "core/mru_lookup.h"
#include "core/partial_lookup.h"
#include "core/scheme.h"
#include "core/transform.h"
#include "core/way_memo.h"
#include "mem/hierarchy.h"
#include "sim/runner.h"
#include "svc/service.h"
#include "trace/atum_like.h"
#include "trace/trace_source.h"
#include "util/rng.h"

using namespace assoc;

namespace {

/** Random set fixture shared by the lookup benchmarks. */
struct BenchSet
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> order;
    std::uint32_t incoming;
    std::uint32_t block_addr;

    explicit BenchSet(unsigned a, Pcg32 &rng)
        : tags(a), valid(a, 1), order(a)
    {
        for (unsigned w = 0; w < a; ++w) {
            tags[w] = rng.next() & 0xffff;
            order[w] = static_cast<std::uint8_t>(w);
        }
        incoming = rng.chance(0.8) ? tags[rng.below(a)]
                                   : (rng.next() & 0xffff);
        // Address-indexed strategies (way memoization) key their
        // tables on the block address; a 12-bit space over 256
        // fixture sets gives a realistic mix of memo hits, misses
        // and tagged-entry conflicts.
        block_addr = rng.next() & 0xfff;
    }

    core::LookupInput
    input() const
    {
        core::LookupInput in;
        in.assoc = static_cast<unsigned>(tags.size());
        in.stored_tags = tags.data();
        in.valid = valid.data();
        in.mru_order = order.data();
        in.incoming_tag = incoming;
        in.block_addr = block_addr;
        in.set = block_addr & 255;
        return in;
    }
};

void
runLookup(benchmark::State &state, const core::LookupStrategy &strat)
{
    const unsigned a = static_cast<unsigned>(state.range(0));
    Pcg32 rng(1234);
    std::vector<BenchSet> sets;
    for (int i = 0; i < 256; ++i)
        sets.emplace_back(a, rng);
    std::size_t i = 0;
    for (auto _ : state) {
        core::LookupResult r = strat.lookup(sets[i & 255].input());
        benchmark::DoNotOptimize(r);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_TraditionalLookup(benchmark::State &state)
{
    runLookup(state, core::TraditionalLookup{});
}

void
BM_NaiveLookup(benchmark::State &state)
{
    runLookup(state, core::NaiveLookup{});
}

void
BM_MruLookup(benchmark::State &state)
{
    runLookup(state, core::MruLookup{});
}

void
BM_PartialLookup(benchmark::State &state)
{
    core::SchemeSpec spec = core::SchemeSpec::paperPartial(
        static_cast<unsigned>(state.range(0)));
    core::PartialConfig cfg;
    cfg.tag_bits = spec.tag_bits;
    cfg.field_bits = spec.partial_k;
    cfg.subsets = spec.partial_subsets;
    cfg.transform = spec.transform;
    core::PartialLookup pl(cfg);
    runLookup(state, pl);
}

void
BM_WayMemoLookup(benchmark::State &state)
{
    // Software cost of the memo wrapper on top of its underlying
    // strategy: table index, entry check, and the fallback lookup.
    core::WayMemoConfig cfg;
    core::WayMemoLookup wm(
        std::make_unique<core::TraditionalLookup>(), cfg);
    runLookup(state, wm);
}

void
BM_WayPredictLookup(benchmark::State &state)
{
    runLookup(state, core::WayPredictLookup{});
}

BENCHMARK(BM_TraditionalLookup)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_NaiveLookup)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_MruLookup)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_PartialLookup)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_WayMemoLookup)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_WayPredictLookup)->Arg(4)->Arg(8)->Arg(16);

// -----------------------------------------------------------------
// Kernel sections: the raw dispatch-free cost of each registered
// ISA table (BM_Kernel*_scalar vs _swar vs _avx2 prices the vector
// win in isolation; the strategy benchmarks above price it through
// activeKernels()). Registered dynamically in main() because the
// set of tables is a runtime property of the machine.
// -----------------------------------------------------------------

void
runEqMask(benchmark::State &state, const core::LookupKernels &kern)
{
    const unsigned a = static_cast<unsigned>(state.range(0));
    Pcg32 rng(41);
    std::vector<BenchSet> sets;
    for (int i = 0; i < 256; ++i)
        sets.emplace_back(a, rng);
    std::size_t i = 0;
    for (auto _ : state) {
        const BenchSet &s = sets[i & 255];
        benchmark::DoNotOptimize(kern.eq_mask(
            s.tags.data(), s.valid.data(), a, s.incoming));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

void
runPartialMask(benchmark::State &state,
               const core::LookupKernels &kern)
{
    // One subset spanning the whole set, k sized so g*k fills the
    // 16-bit tag: (g, k) = (4,4), (8,2), (16,1).
    const unsigned g = static_cast<unsigned>(state.range(0));
    const unsigned k = 16 / g;
    auto xf =
        core::TagTransform::make(core::TransformKind::XorLow, 16, k);
    Pcg32 rng(42);
    std::vector<BenchSet> sets;
    std::vector<std::vector<std::uint32_t>> inc_fields;
    for (int i = 0; i < 256; ++i) {
        sets.emplace_back(g, rng);
        std::vector<std::uint32_t> inc(g);
        for (unsigned l = 0; l < g; ++l)
            inc[l] = xf->field(xf->apply(sets.back().incoming, l), l);
        inc_fields.push_back(std::move(inc));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const BenchSet &s = sets[i & 255];
        benchmark::DoNotOptimize(kern.partial_mask(
            s.tags.data(), s.valid.data(), g,
            inc_fields[i & 255].data(), k,
            core::TransformKind::XorLow, *xf));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

void
runPlaneDecode(benchmark::State &state,
               const core::LookupKernels &kern)
{
    // The snapshotSet() decode: shift a tag plane, expand a valid
    // bitmask and a packed recency word into per-way bytes.
    const unsigned a = static_cast<unsigned>(state.range(0));
    Pcg32 rng(43);
    std::vector<std::uint32_t> raw(a), tags(a);
    std::vector<std::uint8_t> valid(a), order(a);
    for (unsigned w = 0; w < a; ++w)
        raw[w] = rng.next();
    std::uint64_t vbits = rng.next64();
    std::uint64_t packed = rng.next64();
    for (auto _ : state) {
        kern.shift_tags(raw.data(), a, 13, tags.data());
        kern.expand_bits(vbits, a, valid.data());
        kern.expand_nibbles(packed, a, order.data());
        benchmark::DoNotOptimize(tags.data());
        benchmark::DoNotOptimize(valid.data());
        benchmark::DoNotOptimize(order.data());
    }
    state.SetItemsProcessed(state.iterations());
}

void
registerKernelBenchmarks()
{
    for (const core::LookupKernels *k : core::registeredKernels()) {
        const std::string suffix = std::string("_") + k->name;
        benchmark::RegisterBenchmark(
            ("BM_KernelEqMask" + suffix).c_str(),
            [k](benchmark::State &st) { runEqMask(st, *k); })
            ->Arg(4)
            ->Arg(8)
            ->Arg(16)
            ->Arg(64);
        benchmark::RegisterBenchmark(
            ("BM_KernelPartialMask" + suffix).c_str(),
            [k](benchmark::State &st) { runPartialMask(st, *k); })
            ->Arg(4)
            ->Arg(8)
            ->Arg(16);
        benchmark::RegisterBenchmark(
            ("BM_KernelPlaneDecode" + suffix).c_str(),
            [k](benchmark::State &st) { runPlaneDecode(st, *k); })
            ->Arg(16);
    }
}

void
BM_Transform(benchmark::State &state, core::TransformKind kind)
{
    auto xf = core::TagTransform::make(kind, 16, 4);
    Pcg32 rng(7);
    std::uint32_t tag = rng.next() & 0xffff;
    for (auto _ : state) {
        tag = xf->apply(tag ^ 1, 0);
        benchmark::DoNotOptimize(tag);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_TransformXor(benchmark::State &state)
{
    BM_Transform(state, core::TransformKind::XorLow);
}

void
BM_TransformImproved(benchmark::State &state)
{
    BM_Transform(state, core::TransformKind::Improved);
}

void
BM_TransformSwap(benchmark::State &state)
{
    BM_Transform(state, core::TransformKind::Swap);
}

BENCHMARK(BM_TransformXor);
BENCHMARK(BM_TransformImproved);
BENCHMARK(BM_TransformSwap);

void
BM_CacheFindWay(benchmark::State &state)
{
    mem::WriteBackCache cache(
        mem::CacheGeometry(262144, 32, static_cast<std::uint32_t>(
                                           state.range(0))));
    Pcg32 rng(5);
    std::vector<mem::BlockAddr> blocks;
    for (int i = 0; i < 4096; ++i) {
        mem::BlockAddr b = rng.next() & 0xffff;
        if (cache.findWay(b) < 0)
            cache.fill(b, false);
        blocks.push_back(b);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.findWay(blocks[i & 4095]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CacheFindWay)->Arg(1)->Arg(4)->Arg(16);

void
BM_CacheFillEvict(benchmark::State &state)
{
    mem::WriteBackCache cache(mem::CacheGeometry(65536, 32, 4));
    Pcg32 rng(6);
    for (auto _ : state) {
        mem::BlockAddr b = rng.next() & 0xfffff;
        int way = cache.findWay(b);
        if (way >= 0)
            cache.touch(cache.geom().setOf(b), way);
        else
            benchmark::DoNotOptimize(cache.fill(b, false));
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CacheFillEvict);

void
BM_CacheTouch(benchmark::State &state)
{
    mem::WriteBackCache cache(
        mem::CacheGeometry(262144, 32, static_cast<std::uint32_t>(
                                           state.range(0))));
    const unsigned a = cache.geom().assoc();
    Pcg32 rng(8);
    // Fully warm one stretch of sets so touch() always promotes a
    // valid way through the packed recency word.
    for (std::uint32_t set = 0; set < 256; ++set)
        for (unsigned w = 0; w < a; ++w)
            cache.fill(static_cast<mem::BlockAddr>(
                           set + (w + 1) * cache.geom().sets()),
                       false);
    std::size_t i = 0;
    for (auto _ : state) {
        cache.touch(static_cast<std::uint32_t>(i & 255),
                    static_cast<unsigned>(rng.below(a)));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CacheTouch)->Arg(4)->Arg(16);

void
BM_CacheSnapshotSet(benchmark::State &state)
{
    mem::WriteBackCache cache(
        mem::CacheGeometry(262144, 32, static_cast<std::uint32_t>(
                                           state.range(0))));
    const unsigned a = cache.geom().assoc();
    for (unsigned w = 0; w < a; ++w)
        cache.fill(static_cast<mem::BlockAddr>(
                       (w + 1) * cache.geom().sets()),
                   false);
    std::vector<std::uint32_t> tags(a);
    std::vector<std::uint8_t> valid(a);
    std::vector<std::uint8_t> order(a);
    for (auto _ : state) {
        cache.snapshotSet(0, tags.data(), valid.data(), order.data());
        benchmark::DoNotOptimize(tags.data());
        benchmark::DoNotOptimize(valid.data());
        benchmark::DoNotOptimize(order.data());
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CacheSnapshotSet)->Arg(4)->Arg(16);

void
BM_TraceGeneration(benchmark::State &state)
{
    trace::AtumLikeConfig cfg;
    cfg.segments = 1;
    cfg.refs_per_segment = 100000;
    trace::AtumLikeGenerator gen(cfg);
    trace::MemRef r;
    for (auto _ : state) {
        if (!gen.next(r))
            gen.reset();
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_TraceGeneration);

/** 100k AtumLike references materialized once, replayed from memory
 *  so the hierarchy benchmarks time the hierarchy, not the trace
 *  generator (BM_TraceGeneration prices that separately). */
const std::vector<trace::MemRef> &
replayRefs()
{
    static const std::vector<trace::MemRef> refs = [] {
        trace::AtumLikeConfig cfg;
        cfg.segments = 1;
        cfg.refs_per_segment = 100000;
        trace::AtumLikeGenerator gen(cfg);
        std::vector<trace::MemRef> v;
        trace::MemRef r;
        while (gen.next(r))
            v.push_back(r);
        return v;
    }();
    return refs;
}

void
BM_HierarchySimulation(benchmark::State &state)
{
    const std::vector<trace::MemRef> &refs = replayRefs();
    mem::HierarchyConfig hcfg{mem::CacheGeometry(16384, 16, 1),
                              mem::CacheGeometry(262144, 32, 4),
                              true};
    mem::TwoLevelHierarchy hier(hcfg);
    std::size_t i = 0;
    for (auto _ : state) {
        hier.access(refs[i]);
        if (++i == refs.size())
            i = 0;
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_HierarchySimulation);

void
BM_HierarchyWithMeters(benchmark::State &state)
{
    const std::vector<trace::MemRef> &refs = replayRefs();
    mem::HierarchyConfig hcfg{mem::CacheGeometry(16384, 16, 1),
                              mem::CacheGeometry(262144, 32, 4),
                              true};
    mem::TwoLevelHierarchy hier(hcfg);
    std::vector<std::unique_ptr<core::ProbeMeter>> meters;
    core::SchemeSpec naive, mru;
    naive.kind = core::SchemeKind::Naive;
    mru.kind = core::SchemeKind::Mru;
    for (const core::SchemeSpec &s :
         {naive, mru, core::SchemeSpec::paperPartial(4)}) {
        meters.push_back(s.makeMeter());
        hier.addObserver(meters.back().get());
    }
    std::size_t i = 0;
    for (auto _ : state) {
        hier.access(refs[i]);
        if (++i == refs.size())
            i = 0;
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_HierarchyWithMeters);

void
BM_HierarchyBatchedReplay(benchmark::State &state)
{
    // Whole-trace replay through TwoLevelHierarchy::run at a given
    // RunSpec::batch_size (1 = the old per-reference loop; 64 = the
    // default batched pull with set-plane prefetch).
    const std::vector<trace::MemRef> &refs = replayRefs();
    trace::VectorTraceSource src(refs);
    mem::HierarchyConfig hcfg{mem::CacheGeometry(16384, 16, 1),
                              mem::CacheGeometry(262144, 32, 4),
                              true};
    const unsigned batch = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        mem::TwoLevelHierarchy hier(hcfg);
        hier.run(src, batch);
        benchmark::DoNotOptimize(hier.stats().proc_refs);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(refs.size()));
}

BENCHMARK(BM_HierarchyBatchedReplay)
    ->Arg(1)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void
BM_EndToEndTrace(benchmark::State &state)
{
    // The full experiment pipeline a bench_* table regeneration
    // runs: trace synthesis + hierarchy + three metered schemes per
    // iteration, via the same sim::runTrace entry point.
    trace::AtumLikeConfig cfg;
    cfg.segments = 1;
    cfg.refs_per_segment = 100000;
    trace::AtumLikeGenerator gen(cfg);
    sim::RunSpec spec;
    core::SchemeSpec naive, mru;
    naive.kind = core::SchemeKind::Naive;
    mru.kind = core::SchemeKind::Mru;
    spec.schemes = {naive, mru, core::SchemeSpec::paperPartial(4)};
    for (auto _ : state) {
        sim::RunOutput out = sim::runTrace(gen, spec);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() *
                            cfg.refs_per_segment);
}

BENCHMARK(BM_EndToEndTrace)->Unit(benchmark::kMillisecond);

/**
 * Shared fixture for the concurrent-service benchmarks: one
 * CacheService with a session per benchmark thread, rebuilt when
 * the thread count changes. Whichever thread arrives first builds
 * it (google-benchmark's start barrier then lines everyone up
 * before the timed loop).
 */
struct SvcFixture
{
    // 64K / 32B / 8-way = 2048 lines; probes draw from a prefilled
    // working set (hits, the seqlock fast path), accesses from 4x
    // capacity (misses + evictions under the stripe locks).
    static constexpr std::uint32_t kLines = 2048;
    static constexpr std::uint32_t kAccessSpace = 4 * kLines;

    std::mutex mu;
    std::unique_ptr<svc::CacheService> service;
    std::vector<svc::Session *> sessions;

    svc::Session *
    sessionFor(unsigned threads, unsigned index)
    {
        std::lock_guard<std::mutex> g(mu);
        if (!service || sessions.size() != threads) {
            Expected<std::unique_ptr<svc::CacheService>> e =
                svc::CacheService::create(
                    mem::CacheGeometry(65536, 32, 8));
            if (!e.ok())
                throw std::runtime_error(e.error().message());
            service = e.take();
            sessions.clear();
            for (unsigned t = 0; t < threads; ++t) {
                Expected<svc::Session *> s =
                    service->openSession();
                if (!s.ok())
                    throw std::runtime_error(s.error().message());
                sessions.push_back(s.take());
            }
            for (std::uint32_t b = 0; b < kLines; ++b)
                sessions[0]->fill(b, false);
        }
        return sessions[index];
    }
};

SvcFixture &
svcProbeFixture()
{
    static SvcFixture fx;
    return fx;
}

SvcFixture &
svcAccessFixture()
{
    static SvcFixture fx;
    return fx;
}

void
BM_SvcProbe(benchmark::State &state)
{
    // Read-only lookups on a prefilled service: every probe rides
    // the optimistic seqlock path, no stripe lock taken.
    svc::Session *session = svcProbeFixture().sessionFor(
        static_cast<unsigned>(state.threads()),
        static_cast<unsigned>(state.thread_index()));
    Pcg32 rng(0x9e0b, 7 + state.thread_index());
    for (auto _ : state) {
        svc::OpResult r =
            session->probe(rng.below(SvcFixture::kLines));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SvcProbe)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void
BM_SvcAccess(benchmark::State &state)
{
    // The classic service op (lookup, fill on miss) over 4x the
    // cache capacity: stripe locks, MRU promotion, evictions.
    svc::Session *session = svcAccessFixture().sessionFor(
        static_cast<unsigned>(state.threads()),
        static_cast<unsigned>(state.thread_index()));
    Pcg32 rng(0xacce, 7 + state.thread_index());
    for (auto _ : state) {
        std::uint32_t b = rng.below(SvcFixture::kAccessSpace);
        svc::OpResult r = session->access(b, (b & 7) == 0);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SvcAccess)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

} // namespace

int
main(int argc, char **argv)
{
    registerKernelBenchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
