/**
 * @file
 * MRU / way-prediction study.
 *
 * The MRU search order of this paper is the ancestor of way
 * prediction: if the first MRU entry is usually right, a cache can
 * speculatively read just that way. This example quantifies the
 * idea on the level-two miss stream: first-probe accuracy (f_1),
 * the probe cost of reduced MRU lists, and the storage each list
 * costs per set — the accuracy/storage trade-off a designer would
 * plot.
 *
 *   $ ./mru_study [--assoc=8] [--segments=6]
 */

#include <cstdio>
#include <iostream>

#include "core/probe_meter.h"
#include "core/scheme.h"
#include "mem/hierarchy.h"
#include "trace/atum_like.h"
#include "util/argparse.h"
#include "util/bitops.h"
#include "util/table.h"
#include "util/error.h"

using namespace assoc;

int
main(int argc, char **argv)
{
    ArgParser parser("mru_study",
                     "MRU list length vs accuracy and storage");
    parser.addFlag("segments", "6", "trace segments to simulate");
    parser.addFlag("assoc", "8", "level-two associativity");
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("mru_study", [&]() -> int {
        unsigned segments =
            static_cast<unsigned>(parser.getUint("segments"));
        unsigned assoc =
            static_cast<unsigned>(parser.getUint("assoc"));
        fatalIf(!isPow2(assoc) || assoc < 2,
                "--assoc must be a power of two >= 2");

        trace::AtumLikeConfig tcfg;
        tcfg.segments = segments;
        trace::AtumLikeGenerator gen(tcfg);

        mem::HierarchyConfig hcfg{mem::CacheGeometry(16384, 16, 1),
                                  mem::CacheGeometry(262144, 32,
                                                     assoc),
                                  true};
        mem::TwoLevelHierarchy hier(hcfg);

        std::vector<std::unique_ptr<core::ProbeMeter>> meters;
        std::vector<unsigned> lengths;
        for (unsigned len = 1; len <= assoc; len *= 2)
            lengths.push_back(len % assoc == 0 ? 0 : len); // 0=full
        for (unsigned len : lengths) {
            core::SchemeSpec spec;
            spec.kind = core::SchemeKind::Mru;
            spec.mru_list_len = len;
            meters.push_back(spec.makeMeter());
            hier.addObserver(meters.back().get());
        }
        core::MruDistanceMeter dist(assoc);
        hier.addObserver(&dist);
        hier.run(gen);

        std::printf("MRU study, %u-way 256K-32 L2 behind a 16K-16 "
                    "L1 (%llu read-ins)\n\n",
                    assoc,
                    static_cast<unsigned long long>(
                        hier.stats().read_ins));

        // Way-prediction view: cumulative first-i-probes accuracy.
        std::printf("Prediction accuracy by MRU distance "
                    "(read-in hits):\n\n");
        TextTable acc;
        acc.setHeader({"i", "f_i", "cumulative"});
        double cum = 0.0;
        for (unsigned i = 1; i <= assoc; ++i) {
            cum += dist.f(i);
            acc.addRow({std::to_string(i),
                        TextTable::num(dist.f(i), 4),
                        TextTable::num(cum, 4)});
        }
        acc.print(std::cout);
        std::printf("\nf_1 = %.1f%%: a way predictor reading only "
                    "the MRU way first is right that often.\n\n",
                    100.0 * dist.f(1));

        // Reduced-list trade-off.
        std::printf("Reduced MRU lists — probes vs storage:\n\n");
        TextTable table;
        table.setHeader({"List length", "Hit probes", "Total probes",
                         "Bits/set"});
        unsigned way_bits = log2i(assoc);
        for (std::size_t i = 0; i < meters.size(); ++i) {
            unsigned len = lengths[i] == 0 ? assoc : lengths[i];
            table.addRow(
                {lengths[i] == 0 ? "full (" + std::to_string(assoc) +
                                       ")"
                                 : std::to_string(len),
                 TextTable::num(meters[i]->stats().read_in_hits.mean(),
                                2),
                 TextTable::num(meters[i]->stats().totalMean(), 2),
                 std::to_string(len * way_bits)});
        }
        table.print(std::cout);
        std::printf("\nThe paper's observation: a list of ~a/4 "
                    "entries performs nearly as well as the full "
                    "list, at a fraction of the storage (unless "
                    "full LRU replacement already pays for it).\n");
        return 0;
    });
}
