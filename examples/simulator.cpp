/**
 * @file
 * The omnibus simulator driver: every knob of the library on one
 * command line. Configure the hierarchy, pick the lookup schemes to
 * price, choose the workload, and get the paper-style report.
 *
 *   # the paper's Figure 3 configuration, all four schemes
 *   $ ./simulator
 *
 *   # 8-way with a third level, reduced-MRU and tuned partial
 *   $ ./simulator --l2=256K-32:8 --l3=1M-64:8 \
 *                 --schemes=mru:2,partial:k=4;s=2;tr=improved
 *
 *   # a trace file, FIFO replacement, inclusion enforced
 *   $ ./simulator --trace=run.din --policy=fifo --inclusion
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/probe_meter.h"
#include "mem/third_level.h"
#include "sim/config_parse.h"
#include "sim/runner.h"
#include "trace/atum_like.h"
#include "trace/bin_io.h"
#include "trace/din_io.h"
#include "util/argparse.h"
#include "util/table.h"
#include "util/error.h"

using namespace assoc;

namespace {

std::unique_ptr<trace::TraceSource>
openWorkload(const std::string &spec, unsigned segments,
             std::uint64_t seed)
{
    if (spec == "atum") {
        trace::AtumLikeConfig cfg;
        cfg.segments = segments;
        if (seed != 0)
            cfg.seed = seed;
        return std::make_unique<trace::AtumLikeGenerator>(cfg);
    }
    if (spec.size() >= 4 &&
        spec.compare(spec.size() - 4, 4, ".din") == 0)
        return std::make_unique<trace::DinTraceSource>(spec);
    return std::make_unique<trace::BinTraceSource>(spec);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser parser("simulator",
                     "configurable two/three-level simulation with "
                     "probe accounting");
    parser.addFlag("trace", "atum",
                   "'atum' (built-in generator) or a .din/.bin file");
    parser.addFlag("segments", "6", "segments for the generator");
    parser.addFlag("seed", "0", "generator seed (0 = default)");
    parser.addFlag("l1", "16K-16", "level-one spec SIZE-BLOCK");
    parser.addFlag("l2", "256K-32:4",
                   "level-two spec SIZE-BLOCK:ASSOC");
    parser.addFlag("l3", "",
                   "optional level-three spec SIZE-BLOCK:ASSOC");
    parser.addFlag("schemes", "traditional,naive,mru,partial",
                   "comma-separated lookup schemes to price");
    parser.addFlag("tagbits", "16", "stored tag width t");
    parser.addFlag("policy", "lru",
                   "L2 replacement: lru, fifo or random");
    parser.addSwitch("inclusion", "enforce multi-level inclusion");
    parser.addSwitch("write-through", "write-through level one");
    parser.addSwitch("no-wbopt",
                     "disable the write-back optimization");
    parser.addFlag("coherency", "0",
                   "remote invalidations per reference");
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("simulator", [&]() -> int {
        auto workload = openWorkload(
            parser.getString("trace"),
            static_cast<unsigned>(parser.getUint("segments")),
            parser.getUint("seed"));

        unsigned tag_bits =
            static_cast<unsigned>(parser.getUint("tagbits"));
        mem::HierarchyConfig hcfg{
            sim::parseCacheSpec(parser.getString("l1")),
            sim::parseCacheSpec(parser.getString("l2")), true};
        fatalIf(hcfg.l1.assoc() != 1,
                "the level one is direct-mapped in this model");
        hcfg.enforce_inclusion = parser.getBool("inclusion");
        if (parser.getBool("write-through"))
            hcfg.write_policy = mem::L1WritePolicy::WriteThrough;
        hcfg.l2_replacement =
            sim::parseReplPolicy(parser.getString("policy"));

        std::vector<sim::ParsedScheme> schemes =
            sim::parseSchemeList(parser.getString("schemes"),
                                 hcfg.l2.assoc(), tag_bits);
        bool wb_opt = !parser.getBool("no-wbopt");

        mem::TwoLevelHierarchy hier(hcfg);
        std::unique_ptr<mem::ThirdLevelCache> l3;
        std::vector<std::unique_ptr<core::ProbeMeter>> meters;
        std::vector<std::unique_ptr<core::ProbeMeter>> l3_meters;

        core::MeterConfig mcfg;
        mcfg.tag_bits = tag_bits;
        mcfg.wb_optimization = wb_opt;
        for (const sim::ParsedScheme &s : schemes) {
            meters.push_back(std::make_unique<core::ProbeMeter>(
                s.makeStrategy(), mcfg));
            hier.addObserver(meters.back().get());
        }
        if (!parser.getString("l3").empty()) {
            l3 = std::make_unique<mem::ThirdLevelCache>(
                sim::parseCacheSpec(parser.getString("l3")), hcfg.l2,
                hcfg.l2_replacement);
            hier.setMemorySide(l3.get());
            for (const sim::ParsedScheme &s : schemes) {
                l3_meters.push_back(
                    std::make_unique<core::ProbeMeter>(
                        s.makeStrategy(), mcfg));
                l3->addObserver(l3_meters.back().get());
            }
        }

        double coherency = parser.getDouble("coherency");
        if (coherency == 0.0) {
            hier.run(*workload);
        } else {
            mem::CoherencyTraffic remote(coherency);
            trace::MemRef r;
            workload->reset();
            while (workload->next(r)) {
                hier.access(r);
                remote.step(hier);
            }
        }

        const mem::HierarchyStats &st = hier.stats();
        std::printf("L1 %s | L2 %s (%s)%s%s%s\n",
                    hcfg.l1.name().c_str(), hcfg.l2.name().c_str(),
                    mem::replPolicyName(hcfg.l2_replacement),
                    l3 ? (" | L3 " + l3->cache().geom().name())
                             .c_str()
                       : "",
                    hcfg.enforce_inclusion ? " | inclusion" : "",
                    hcfg.write_policy ==
                            mem::L1WritePolicy::WriteThrough
                        ? " | write-through"
                        : "");
        std::printf("refs %llu | L1 miss %.4f | local %.4f | global "
                    "%.4f | wb %.4f | hints %.4f\n\n",
                    static_cast<unsigned long long>(st.proc_refs),
                    st.l1MissRatio(), st.localMissRatio(),
                    st.globalMissRatio(), st.writeBackFraction(),
                    st.hintAccuracy());

        auto report = [&](const char *title, const auto &ms) {
            std::printf("%s\n\n", title);
            TextTable t;
            t.setHeader({"Scheme", "Hits", "(sd)", "Misses",
                         "Total"});
            for (const auto &m : ms) {
                t.addRow(
                    {m->name(),
                     TextTable::num(m->stats().read_in_hits.mean(),
                                    2),
                     TextTable::num(
                         m->stats().read_in_hits.stddev(), 2),
                     TextTable::num(
                         m->stats().read_in_misses.mean(), 2),
                     TextTable::num(m->stats().totalMean(), 2)});
            }
            t.print(std::cout);
            std::printf("\n");
        };
        report("Level-two lookup probes:", meters);
        if (l3) {
            std::printf("L3 local miss %.4f | L3 wb fraction "
                        "%.4f\n\n",
                        l3->stats().localMissRatio(),
                        l3->stats().writeBackFraction());
            report("Level-three lookup probes:", l3_meters);
        }
        return 0;
    });
}
