/**
 * @file
 * Level-two cache design-space explorer.
 *
 * The question the paper leaves the designer with: given a board
 * budget and a workload, which L2 organization and which lookup
 * implementation minimizes the *effective* tag-path time? This
 * example sweeps L2 size x associativity x scheme, combines the
 * measured probe counts with the Table 2 timing model, and ranks
 * the designs by effective access time per L2 request, flagging
 * the package cost of each.
 *
 * The size x associativity grid is embarrassingly parallel: each
 * cell is one independent simulation, fanned across the exec
 * thread pool (--jobs N, --jobs 1 = serial).
 *
 *   $ ./l2_design_space [--segments=N] [--tech=sram|dram] [--jobs=N]
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "core/probe_meter.h"
#include "core/scheme.h"
#include "exec/sweep.h"
#include "hw/impl_model.h"
#include "mem/hierarchy.h"
#include "trace/atum_like.h"
#include "util/argparse.h"
#include "util/table.h"
#include "util/error.h"

using namespace assoc;

namespace {

struct Design
{
    std::string cache;
    std::string scheme;
    double local_miss;
    double access_ns;
    int packages;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser parser("l2_design_space",
                     "rank L2 designs by effective tag-path time");
    parser.addFlag("segments", "6", "trace segments to simulate");
    parser.addFlag("tech", "sram", "RAM technology: sram or dram");
    parser.addFlag("l1", "16384", "level-one cache bytes");
    parser.addFlag("jobs", "0",
                   "parallel simulations (0 = all hardware "
                   "threads, 1 = serial)");
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("l2_design_space", [&]() -> int {
        unsigned segments =
            static_cast<unsigned>(parser.getUint("segments"));
        std::string tech_name = parser.getString("tech");
        fatalIf(tech_name != "sram" && tech_name != "dram",
                "--tech must be sram or dram");
        hw::RamTech tech = tech_name == "sram" ? hw::RamTech::Sram
                                               : hw::RamTech::Dram;
        std::uint32_t l1_bytes =
            static_cast<std::uint32_t>(parser.getUint("l1"));

        unsigned jobs =
            static_cast<unsigned>(parser.getUint("jobs"));

        hw::Table2Catalog catalog;

        // One job per grid cell, each writing its own slice of the
        // design list; slices are concatenated in submission order
        // after the pool drains, so the ranking input is identical
        // at any job count.
        struct Cell
        {
            std::uint32_t l2_bytes;
            unsigned assoc;
        };
        std::vector<Cell> cells;
        for (std::uint32_t l2_bytes : {65536u, 262144u})
            for (unsigned assoc : {1u, 2u, 4u, 8u})
                cells.push_back({l2_bytes, assoc});

        std::vector<std::vector<Design>> slices(cells.size());
        std::vector<std::function<void()>> cell_jobs;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            cell_jobs.push_back([&, c] {
                const std::uint32_t l2_bytes = cells[c].l2_bytes;
                const unsigned assoc = cells[c].assoc;
                trace::AtumLikeConfig tcfg;
                tcfg.segments = segments;
                trace::AtumLikeGenerator gen(tcfg);

                mem::HierarchyConfig hcfg{
                    mem::CacheGeometry(l1_bytes, 16, 1),
                    mem::CacheGeometry(l2_bytes, 32, assoc), true};
                mem::TwoLevelHierarchy hier(hcfg);

                std::vector<std::unique_ptr<core::ProbeMeter>> meters;
                std::vector<hw::ImplKind> kinds;
                if (assoc == 1) {
                    core::SchemeSpec trad;
                    trad.kind = core::SchemeKind::Traditional;
                    meters.push_back(trad.makeMeter());
                    kinds.push_back(hw::ImplKind::DirectMapped);
                } else {
                    core::SchemeSpec trad, mru;
                    trad.kind = core::SchemeKind::Traditional;
                    mru.kind = core::SchemeKind::Mru;
                    meters.push_back(trad.makeMeter());
                    kinds.push_back(hw::ImplKind::Traditional);
                    meters.push_back(mru.makeMeter());
                    kinds.push_back(hw::ImplKind::Mru);
                    meters.push_back(
                        core::SchemeSpec::paperPartial(assoc)
                            .makeMeter());
                    kinds.push_back(hw::ImplKind::Partial);
                }
                for (auto &m : meters)
                    hier.addObserver(m.get());
                hier.run(gen);

                for (std::size_t i = 0; i < meters.size(); ++i) {
                    const hw::ImplSpec &impl =
                        catalog.get(kinds[i], tech);
                    // Extra serial probes beyond the first access:
                    // x for MRU (probes - 1), y for partial
                    // (probes - s), 0 for the one-probe designs.
                    double extra = 0.0;
                    double probes =
                        meters[i]->stats().readInMean();
                    if (kinds[i] == hw::ImplKind::Mru) {
                        extra = probes - 1.0;
                    } else if (kinds[i] == hw::ImplKind::Partial) {
                        extra = probes -
                                core::SchemeSpec::paperPartial(assoc)
                                    .partial_subsets;
                    }
                    // Label by hardware design: the "Traditional"
                    // lookup on a 1-way cache is the direct-mapped
                    // implementation.
                    std::string label =
                        kinds[i] == hw::ImplKind::DirectMapped
                            ? "Direct-mapped"
                            : meters[i]->name();
                    slices[c].push_back(Design{
                        hcfg.l2.name(), label,
                        hier.stats().localMissRatio(),
                        impl.accessNs(extra), impl.packages});
                }
            });
        }
        exec::SweepOptions opts;
        opts.jobs = jobs;
        exec::runJobs(std::move(cell_jobs), opts);

        std::vector<Design> designs;
        for (auto &slice : slices)
            designs.insert(designs.end(), slice.begin(), slice.end());

        std::sort(designs.begin(), designs.end(),
                  [](const Design &a, const Design &b) {
                      return a.access_ns < b.access_ns;
                  });

        std::printf("L2 design space, %s, L1 = %u KB "
                    "(sorted by effective tag-path access time):\n\n",
                    hw::ramTechName(tech), l1_bytes / 1024);
        TextTable table;
        table.setHeader({"L2 cache", "Lookup scheme", "Local miss",
                         "Access(ns)", "Packages"});
        for (const Design &d : designs) {
            table.addRow({d.cache, d.scheme,
                          TextTable::num(d.local_miss, 4),
                          TextTable::num(d.access_ns, 1),
                          std::to_string(d.packages)});
        }
        table.print(std::cout);
        std::printf(
            "\nReading guide: the traditional scheme has the lowest "
            "access time but roughly double the packages; the "
            "serial schemes trade probes for board area. Weight "
            "access time by your miss penalty to choose.\n");
        return 0;
    });
}
