/**
 * @file
 * Trace utility: generate, convert, and inspect trace files.
 *
 * Subcommands (first positional argument):
 *   generate <out>   write the ATUM-like trace to a file
 *                    (.din = ASCII Dinero, .ftr = framed binary,
 *                    anything else = flat binary)
 *   convert <in> <out>  convert between the three formats
 *   stats <in>       print reference mix / footprint statistics
 *                    (--per-segment for one row per sub-trace)
 *   simulate <in>    run the file through the paper's default
 *                    hierarchy and print miss ratios
 *
 *   $ ./trace_tools generate /tmp/atum.bin --segments=2
 *   $ ./trace_tools convert /tmp/atum.bin /tmp/atum.din
 *   $ ./trace_tools stats /tmp/atum.din --per-segment
 *   $ ./trace_tools simulate /tmp/atum.bin
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "sim/runner.h"
#include "trace/atum_like.h"
#include "trace/bin_io.h"
#include "trace/din_io.h"
#include "trace/ftr_writer.h"
#include "trace/trace_file.h"
#include "trace/trace_stats.h"
#include "util/argparse.h"
#include "util/table.h"
#include "util/error.h"

using namespace assoc;
using namespace assoc::trace;

namespace {

std::unique_ptr<TraceSource>
openTrace(const std::string &path, const ErrorPolicy &policy)
{
    // Format from the extension (.din/.bin/.ftr) or magic sniff.
    return openTraceFile(path, policy);
}

void
writeTrace(TraceSource &src, const std::string &path)
{
    switch (detectTraceFormat(path)) {
      case TraceFormat::Din:
        writeDin(src, path);
        break;
      case TraceFormat::Ftr: {
        Expected<std::uint64_t> n = writeFtr(src, path);
        if (!n.ok())
            throwError(Error(n.error()));
        break;
      }
      case TraceFormat::Bin:
        writeBin(src, path);
        break;
    }
}

/** Propagate a reader failure (and report skips) after a drain. */
void
finishRead(const TraceSource &src, const std::string &path)
{
    if (src.failed())
        throwError(src.error());
    if (src.skippedRecords() > 0)
        std::fprintf(stderr,
                     "trace_tools: skipped %llu bad record(s) in %s\n",
                     static_cast<unsigned long long>(
                         src.skippedRecords()),
                     path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser parser("trace_tools",
                     "generate / convert / inspect trace files");
    parser.addFlag("segments", "2", "segments when generating");
    parser.addFlag("seed", "0", "generator seed (0 = default)");
    parser.addFlag("block", "32", "footprint block size for stats");
    parser.addFlag("errors", "fail-fast",
                   "bad-record policy: fail-fast|skip|strict");
    parser.addFlag("max-skips", "100",
                   "skip mode: give up past this many bad records");
    parser.addSwitch("per-segment",
                     "stats: one row per flush-delimited segment");
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("trace_tools", [&]() -> int {
        ErrorPolicy policy;
        Expected<ErrorMode> mode =
            errorModeFromString(parser.getString("errors"));
        if (!mode.ok())
            throwError(mode.error());
        policy.mode = mode.value();
        policy.max_skips = parser.getUint("max-skips");
        const auto &pos = parser.positional();
        fatalIf(pos.empty(),
                "usage: trace_tools generate|convert|stats <files>");
        const std::string &cmd = pos[0];

        if (cmd == "generate") {
            fatalIf(pos.size() != 2,
                    "usage: trace_tools generate <out>");
            AtumLikeConfig cfg;
            cfg.segments =
                static_cast<unsigned>(parser.getUint("segments"));
            if (parser.getUint("seed") != 0)
                cfg.seed = parser.getUint("seed");
            AtumLikeGenerator gen(cfg);
            writeTrace(gen, pos[1]);
            std::printf("wrote %llu references to %s\n",
                        static_cast<unsigned long long>(
                            gen.totalRefs()),
                        pos[1].c_str());
        } else if (cmd == "convert") {
            fatalIf(pos.size() != 3,
                    "usage: trace_tools convert <in> <out>");
            auto in = openTrace(pos[1], policy);
            writeTrace(*in, pos[2]);
            finishRead(*in, pos[1]);
            std::printf("converted %s -> %s\n", pos[1].c_str(),
                        pos[2].c_str());
        } else if (cmd == "stats") {
            fatalIf(pos.size() != 2,
                    "usage: trace_tools stats <in>");
            auto in = openTrace(pos[1], policy);
            unsigned block =
                static_cast<unsigned>(parser.getUint("block"));
            if (parser.getBool("per-segment")) {
                std::vector<TraceStats> segs =
                    collectSegmentStats(*in, block);
                finishRead(*in, pos[1]);
                TextTable t;
                t.setHeader({"Segment", "Refs", "Read%", "Write%",
                             "Ifetch%", "Footprint(KB)"});
                for (std::size_t i = 0; i < segs.size(); ++i) {
                    const TraceStats &s = segs[i];
                    t.addRow(
                        {std::to_string(i),
                         TextTable::num(s.refs),
                         TextTable::num(100 * s.readFraction(), 1),
                         TextTable::num(100 * s.writeFraction(), 1),
                         TextTable::num(100 * s.ifetchFraction(), 1),
                         TextTable::num(s.footprintBytes() / 1024)});
                }
                t.print(std::cout);
            } else {
                TraceStats stats = collectStats(*in, block);
                finishRead(*in, pos[1]);
                stats.print(std::cout);
            }
        } else if (cmd == "simulate") {
            fatalIf(pos.size() != 2,
                    "usage: trace_tools simulate <in>");
            auto in = openTrace(pos[1], policy);
            sim::RunSpec spec; // the paper's Figure 3 hierarchy
            core::SchemeSpec naive, mru;
            naive.kind = core::SchemeKind::Naive;
            mru.kind = core::SchemeKind::Mru;
            spec.schemes = {naive, mru,
                            core::SchemeSpec::paperPartial(
                                spec.hier.l2.assoc())};
            sim::RunOutput out = sim::runTrace(*in, spec);
            std::printf("L1 %s  L2 %s\n",
                        spec.hier.l1.name().c_str(),
                        spec.hier.l2.name().c_str());
            std::printf("L1 miss ratio %.4f | local %.4f | global "
                        "%.4f | wb fraction %.4f\n\n",
                        out.stats.l1MissRatio(),
                        out.stats.localMissRatio(),
                        out.stats.globalMissRatio(),
                        out.stats.writeBackFraction());
            TextTable t;
            t.setHeader({"Scheme", "Hits", "Misses", "Total"});
            for (std::size_t i = 0; i < out.names.size(); ++i) {
                t.addRow(
                    {out.names[i],
                     TextTable::num(out.probes[i].read_in_hits.mean(),
                                    2),
                     TextTable::num(
                         out.probes[i].read_in_misses.mean(), 2),
                     TextTable::num(out.probes[i].totalMean(), 2)});
            }
            t.print(std::cout);
        } else {
            fatal("unknown subcommand '" + cmd + "'");
        }
        return 0;
    });
}
