/**
 * @file
 * Quickstart: the smallest complete use of the library.
 *
 * Builds a two-level cache hierarchy (direct-mapped L1, 4-way L2),
 * attaches one probe meter per lookup scheme, streams a synthetic
 * multiprogrammed trace through it, and prints the cost of each
 * implementation of set-associativity in probes per access.
 *
 *   $ ./quickstart [--segments=N]
 */

#include <cstdio>
#include <iostream>

#include "core/probe_meter.h"
#include "core/scheme.h"
#include "mem/hierarchy.h"
#include "trace/atum_like.h"
#include "util/argparse.h"
#include "util/table.h"
#include "util/error.h"

using namespace assoc;

int
main(int argc, char **argv)
{
    ArgParser parser("quickstart",
                     "minimal end-to-end use of the library");
    parser.addFlag("segments", "6", "trace segments to simulate");
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("quickstart", [&]() -> int {
        // 1. A workload: the built-in ATUM-like multiprogrammed
        //    trace (deterministic; ~350k references per segment).
        trace::AtumLikeConfig tcfg;
        tcfg.segments =
            static_cast<unsigned>(parser.getUint("segments"));
        trace::AtumLikeGenerator trace(tcfg);

        // 2. A cache hierarchy: 16 KB direct-mapped write-back L1
        //    in front of a 256 KB 4-way LRU write-back L2.
        mem::HierarchyConfig hcfg{mem::CacheGeometry(16384, 16, 1),
                                  mem::CacheGeometry(262144, 32, 4),
                                  true};
        mem::TwoLevelHierarchy hierarchy(hcfg);

        // 3. Probe meters: one per implementation of
        //    set-associativity. Meters observe the simulation; they
        //    never change its behaviour.
        core::SchemeSpec traditional, naive, mru;
        traditional.kind = core::SchemeKind::Traditional;
        naive.kind = core::SchemeKind::Naive;
        mru.kind = core::SchemeKind::Mru;
        core::SchemeSpec partial = core::SchemeSpec::paperPartial(
            hcfg.l2.assoc());

        std::vector<std::unique_ptr<core::ProbeMeter>> meters;
        for (const core::SchemeSpec &spec :
             {traditional, naive, mru, partial}) {
            meters.push_back(spec.makeMeter());
            hierarchy.addObserver(meters.back().get());
        }

        // 4. Run.
        hierarchy.run(trace);

        // 5. Report.
        const mem::HierarchyStats &s = hierarchy.stats();
        std::printf("Simulated %llu references "
                    "(L1 %s, L2 %s)\n\n",
                    static_cast<unsigned long long>(s.proc_refs),
                    hcfg.l1.name().c_str(), hcfg.l2.name().c_str());
        std::printf("L1 miss ratio:        %.4f\n", s.l1MissRatio());
        std::printf("L2 local miss ratio:  %.4f\n",
                    s.localMissRatio());
        std::printf("Global miss ratio:    %.4f\n",
                    s.globalMissRatio());
        std::printf("Write-back fraction:  %.4f\n\n",
                    s.writeBackFraction());

        TextTable table;
        table.setHeader({"Scheme", "Hit probes", "(stddev)",
                         "Miss probes", "Probes/access"});
        for (const auto &m : meters) {
            table.addRow(
                {m->name(),
                 TextTable::num(m->stats().read_in_hits.mean(), 2),
                 TextTable::num(m->stats().read_in_hits.stddev(), 2),
                 TextTable::num(m->stats().read_in_misses.mean(), 2),
                 TextTable::num(m->stats().totalMean(), 2)});
        }
        table.print(std::cout);
        std::printf("\nLower probes = faster serial lookup. The "
                    "traditional scheme always needs one probe but "
                    "costs an a-wide tag memory and a comparators; "
                    "the others use direct-mapped-style hardware.\n");
        return 0;
    });
}
