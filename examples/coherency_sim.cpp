/**
 * @file
 * Multiprocessor-flavoured scenario: the workload the paper's
 * introduction motivates ("caches in multiprocessors designed to
 * reduce memory interconnection traffic").
 *
 * Simulates one node of a shared-memory machine: the local two-level
 * hierarchy runs the ATUM-like trace while remote processors
 * invalidate shared blocks at a configurable rate. Reports, per
 * level-two associativity: interconnect traffic (read-ins that go
 * to the network), cache occupancy under invalidations, and the
 * probes each cheap lookup scheme would pay — the three quantities
 * whose product motivates cheap wide associativity.
 *
 *   $ ./coherency_sim [--rate=0.005] [--segments=4]
 */

#include <cstdio>
#include <iostream>

#include "sim/runner.h"
#include "trace/atum_like.h"
#include "util/argparse.h"
#include "util/table.h"
#include "util/error.h"

using namespace assoc;

int
main(int argc, char **argv)
{
    ArgParser parser("coherency_sim",
                     "one multiprocessor node under remote "
                     "invalidations");
    parser.addFlag("segments", "4", "trace segments to simulate");
    parser.addFlag("rate", "0.005",
                   "remote invalidations per processor reference");
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("coherency_sim", [&]() -> int {
        unsigned segments =
            static_cast<unsigned>(parser.getUint("segments"));
        double rate = parser.getDouble("rate");

        std::printf("One node: 16K-16 L1 + 256K-32 L2, remote "
                    "invalidation rate %.4f/ref\n\n",
                    rate);

        TextTable table;
        table.setHeader({"L2 assoc", "Net reqs/1k refs", "Occupancy",
                         "MRU probes", "Partial probes",
                         "Invalidations"});
        for (unsigned a : {1u, 2u, 4u, 8u}) {
            trace::AtumLikeConfig tcfg;
            tcfg.segments = segments;
            trace::AtumLikeGenerator gen(tcfg);

            sim::RunSpec spec;
            spec.hier = mem::HierarchyConfig{
                mem::CacheGeometry(16384, 16, 1),
                mem::CacheGeometry(262144, 32, a), true};
            if (a > 1) {
                core::SchemeSpec mru;
                mru.kind = core::SchemeKind::Mru;
                spec.schemes = {mru,
                                core::SchemeSpec::paperPartial(a)};
            } else {
                core::SchemeSpec trad;
                trad.kind = core::SchemeKind::Traditional;
                spec.schemes = {trad, trad};
            }
            spec.coherency_rate = rate;
            spec.occupancy_sample_period = 10000;
            sim::RunOutput out = sim::runTrace(gen, spec);

            // Interconnect traffic: level-two misses go to the
            // network (reads) — the quantity multiprocessors must
            // minimize.
            double net_per_1k =
                1000.0 *
                static_cast<double>(out.stats.read_in_misses) /
                static_cast<double>(out.stats.proc_refs);
            table.addRow(
                {a == 1 ? "DM" : std::to_string(a) + "-way",
                 TextTable::num(net_per_1k, 2),
                 TextTable::num(out.mean_occupancy, 4),
                 TextTable::num(out.probes[0].totalMean(), 2),
                 TextTable::num(out.probes[1].totalMean(), 2),
                 TextTable::num(out.coherency_invalidations)});
        }
        table.print(std::cout);
        std::printf(
            "\nThe multiprocessor argument in one table: wider "
            "associativity cuts network requests and keeps the "
            "cache fuller under invalidations; the serial schemes "
            "price that associativity at direct-mapped hardware "
            "cost, paying only the printed probe counts per local "
            "L2 access.\n");
        return 0;
    });
}
