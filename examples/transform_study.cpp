/**
 * @file
 * Tag-transformation study for the partial-compare scheme.
 *
 * Demonstrates *why* the transform matters: prints the per-field
 * value distribution of real stored tags before and after each
 * transform (entropy per compared field), then the probe cost each
 * transform achieves on the trace. Use it to evaluate a custom
 * hash before building it into a cache controller.
 *
 *   $ ./transform_study [--tagbits=16] [--assoc=8] [--segments=4]
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/probe_meter.h"
#include "core/scheme.h"
#include "core/tagbits.h"
#include "core/transform.h"
#include "mem/hierarchy.h"
#include "trace/atum_like.h"
#include "util/argparse.h"
#include "util/table.h"
#include "util/error.h"

using namespace assoc;
using core::TransformKind;

namespace {

/** Collects the stored-tag stream of read-ins (what the tag memory
 *  would hold) for entropy analysis. */
class TagCollector : public mem::L2Observer
{
  public:
    explicit TagCollector(unsigned tag_bits) : tag_bits_(tag_bits) {}

    void
    observe(const mem::L2AccessView &view) override
    {
        if (view.type != mem::L2ReqType::ReadIn)
            return;
        tags_.push_back(core::sliceTag(view.full_tag, tag_bits_));
    }

    const std::vector<std::uint32_t> &tags() const { return tags_; }

  private:
    unsigned tag_bits_;
    std::vector<std::uint32_t> tags_;
};

/** Shannon entropy (bits) of one k-bit field over a tag stream. */
double
fieldEntropy(const std::vector<std::uint32_t> &tags,
             const core::TagTransform &xf, unsigned field)
{
    std::vector<std::uint64_t> counts(std::size_t{1}
                                          << xf.fieldBits(),
                                      0);
    for (std::uint32_t tag : tags)
        ++counts[xf.field(xf.apply(tag, field), field)];
    double h = 0.0;
    for (std::uint64_t c : counts) {
        if (c == 0)
            continue;
        double p = static_cast<double>(c) / tags.size();
        h -= p * std::log2(p);
    }
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser parser("transform_study",
                     "entropy and probe cost of tag transforms");
    parser.addFlag("segments", "4", "trace segments to simulate");
    parser.addFlag("tagbits", "16", "stored tag width t");
    parser.addFlag("assoc", "8", "level-two associativity");
    if (!parser.parse(argc, argv))
        return 0;
    return guardedMain("transform_study", [&]() -> int {
        unsigned segments =
            static_cast<unsigned>(parser.getUint("segments"));
        unsigned t = static_cast<unsigned>(parser.getUint("tagbits"));
        unsigned assoc =
            static_cast<unsigned>(parser.getUint("assoc"));

        const TransformKind kinds[] = {
            TransformKind::None, TransformKind::XorLow,
            TransformKind::Improved, TransformKind::Swap};

        // --- Pass 1: collect the stored-tag stream. ---
        trace::AtumLikeConfig tcfg;
        tcfg.segments = segments;
        trace::AtumLikeGenerator gen(tcfg);
        mem::HierarchyConfig hcfg{mem::CacheGeometry(16384, 16, 1),
                                  mem::CacheGeometry(262144, 32,
                                                     assoc),
                                  true};
        mem::TwoLevelHierarchy hier(hcfg);
        TagCollector collector(t);
        hier.addObserver(&collector);

        std::vector<std::unique_ptr<core::ProbeMeter>> meters;
        for (TransformKind kind : kinds) {
            core::SchemeSpec spec =
                core::SchemeSpec::paperPartial(assoc, t);
            spec.transform = kind;
            meters.push_back(spec.makeMeter());
            hier.addObserver(meters.back().get());
        }
        hier.run(gen);

        unsigned k = core::SchemeSpec::paperPartial(assoc, t).partial_k;
        std::printf("Stored-tag field entropy (t = %u, k = %u, "
                    "%zu read-in tags, max %.1f bits/field):\n\n",
                    t, k, collector.tags().size(),
                    static_cast<double>(k));

        TextTable etable;
        std::vector<std::string> header{"Transform"};
        unsigned nfields = t / k;
        for (unsigned f = 0; f < nfields; ++f)
            header.push_back("field" + std::to_string(f));
        etable.setHeader(header);
        for (TransformKind kind : kinds) {
            auto xf = core::TagTransform::make(kind, t, k);
            std::vector<std::string> row{
                core::transformKindName(kind)};
            for (unsigned f = 0; f < nfields; ++f)
                row.push_back(TextTable::num(
                    fieldEntropy(collector.tags(), *xf, f), 2));
            etable.addRow(row);
        }
        etable.print(std::cout);

        std::printf("\nProbe cost on the same trace "
                    "(%u-way L2, read-ins):\n\n",
                    assoc);
        TextTable ptable;
        ptable.setHeader({"Transform", "Hit probes", "Miss probes",
                          "Total"});
        for (std::size_t i = 0; i < meters.size(); ++i) {
            ptable.addRow(
                {core::transformKindName(kinds[i]),
                 TextTable::num(
                     meters[i]->stats().read_in_hits.mean(), 2),
                 TextTable::num(
                     meters[i]->stats().read_in_misses.mean(), 2),
                 TextTable::num(meters[i]->stats().totalMean(), 2)});
        }
        ptable.print(std::cout);
        std::printf("\nLow entropy in *any* compared field means "
                    "false partial matches: probes track the worst "
                    "field, which is why hashing high tag bits with "
                    "the (random) low bits pays off.\n");
        return 0;
    });
}
