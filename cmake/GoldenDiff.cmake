# Run TOOL with ARGS and require stdout to match the checked-in
# GOLDEN file byte for byte.
#
# Variables: TOOL (executable), ARGS (;-list), GOLDEN (reference
# file), WORKDIR, OUT (captured-output filename under WORKDIR).

execute_process(
    COMMAND ${TOOL} ${ARGS}
    WORKING_DIRECTORY ${WORKDIR}
    OUTPUT_FILE ${WORKDIR}/${OUT}
    ERROR_VARIABLE stderr_text
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${TOOL} failed (rc=${rc}):\n${stderr_text}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    file(READ ${WORKDIR}/${OUT} got)
    file(READ ${GOLDEN} want)
    message(FATAL_ERROR
            "output diverges from ${GOLDEN}.\n"
            "If the change is intended, regenerate the golden file "
            "(command in tests/CMakeLists.txt).\n"
            "--- got ---\n${got}\n--- want ---\n${want}")
endif()
