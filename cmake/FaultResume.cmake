# Two-phase fault + resume equivalence check for a bench tool.
#
# Phase 1 runs TOOL with an injected hard failure on one job
# (--fail-job) plus --keep-going and a checkpoint journal: the run
# must complete with the data-error exit code (2), render the failed
# row as a gap, and mark the job "failed" in the JSON report.
#
# Phase 2 re-runs the same sweep with --resume pointing at the
# phase-1 journal and no fault: only the missing jobs execute, and
# stdout must match the checked-in GOLDEN file byte for byte — i.e.
# a crashed-and-resumed sweep is indistinguishable from a clean one.
#
# Variables: TOOL (executable), ARGS (;-list of common flags),
# FAIL_JOB (index to fail in phase 1), GOLDEN (reference stdout),
# WORKDIR, OUT_PREFIX (filenames under WORKDIR).

set(journal ${WORKDIR}/${OUT_PREFIX}.journal)
set(json ${WORKDIR}/${OUT_PREFIX}.json)
file(REMOVE ${journal} ${json})

# --- Phase 1: one job fails, the sweep survives and checkpoints ---
execute_process(
    COMMAND ${TOOL} ${ARGS} --fail-job=${FAIL_JOB} --keep-going
            --journal=${journal} --json=${json}
    WORKING_DIRECTORY ${WORKDIR}
    OUTPUT_FILE ${WORKDIR}/${OUT_PREFIX}_phase1.txt
    ERROR_VARIABLE stderr_text
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
    message(FATAL_ERROR
            "phase 1: expected exit code 2 (data error) from the "
            "injected job failure, got rc=${rc}:\n${stderr_text}")
endif()

file(READ ${json} json_text)
string(FIND "${json_text}" "\"status\": \"failed\"" found)
if(found EQUAL -1)
    message(FATAL_ERROR
            "phase 1: JSON report lacks a \"failed\" job:\n"
            "${json_text}")
endif()

# The failed job must be reported on stderr ("...: job N failed
# (M attempt(s)): ..."); its table row renders as a gap.
string(FIND "${stderr_text}" "job ${FAIL_JOB} failed" warn_found)
if(warn_found EQUAL -1)
    message(FATAL_ERROR
            "phase 1: missing per-job failure report on stderr:\n"
            "${stderr_text}")
endif()

# --- Phase 2: resume from the journal; result must be golden ---
execute_process(
    COMMAND ${TOOL} ${ARGS} --resume=${journal}
    WORKING_DIRECTORY ${WORKDIR}
    OUTPUT_FILE ${WORKDIR}/${OUT_PREFIX}_phase2.txt
    ERROR_VARIABLE stderr_text
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "phase 2: resume failed (rc=${rc}):\n${stderr_text}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/${OUT_PREFIX}_phase2.txt ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    file(READ ${WORKDIR}/${OUT_PREFIX}_phase2.txt got)
    file(READ ${GOLDEN} want)
    message(FATAL_ERROR
            "resumed sweep output diverges from ${GOLDEN}:\n"
            "--- got ---\n${got}\n--- want ---\n${want}")
endif()
