# Negative self-test for the bench_compare perf gate: a synthetic
# current run 10x slower than its baseline must make the tool exit 1.
#
# Variables: TOOL (bench_compare executable), WORKDIR. BASELINE is
# accepted but unused; the synthetic pair keeps the test independent
# of the committed numbers.

set(base ${WORKDIR}/bench_neg_baseline.json)
set(curr ${WORKDIR}/bench_neg_current.json)

file(WRITE ${base} [=[
{
  "context": {"date": "seed"},
  "benchmarks": [
    {"name": "BM_Synthetic", "run_type": "iteration",
     "real_time": 10.0, "cpu_time": 10.0, "time_unit": "ns"}
  ]
}
]=])

file(WRITE ${curr} [=[
{
  "context": {"date": "regressed"},
  "benchmarks": [
    {"name": "BM_Synthetic", "run_type": "iteration",
     "real_time": 100.0, "cpu_time": 100.0, "time_unit": "ns"}
  ]
}
]=])

execute_process(
    COMMAND ${TOOL} ${base} ${curr} --max-ratio=2.0
    WORKING_DIRECTORY ${WORKDIR}
    OUTPUT_VARIABLE out
    RESULT_VARIABLE rc)

if(NOT rc EQUAL 1)
    message(FATAL_ERROR
            "bench_compare should exit 1 on a 10x regression, "
            "got rc=${rc}:\n${out}")
endif()
if(NOT out MATCHES "REGRESSION")
    message(FATAL_ERROR
            "bench_compare output lacks the REGRESSION marker:\n${out}")
endif()
