# Run TOOL with ARGS twice in fresh processes and require the two
# stdouts to be byte-identical (seed-determinism tests).
#
# Variables: TOOL (executable), ARGS (;-list), WORKDIR, OUT_PREFIX.

foreach(i 1 2)
    execute_process(
        COMMAND ${TOOL} ${ARGS}
        WORKING_DIRECTORY ${WORKDIR}
        OUTPUT_FILE ${WORKDIR}/${OUT_PREFIX}_${i}.txt
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "run ${i} of ${TOOL} failed (rc=${rc})")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/${OUT_PREFIX}_1.txt
            ${WORKDIR}/${OUT_PREFIX}_2.txt
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    file(READ ${WORKDIR}/${OUT_PREFIX}_1.txt first)
    file(READ ${WORKDIR}/${OUT_PREFIX}_2.txt second)
    message(FATAL_ERROR "outputs differ between identical runs:\n"
                        "--- run 1 ---\n${first}\n"
                        "--- run 2 ---\n${second}")
endif()
