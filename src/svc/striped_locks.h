/**
 * @file
 * The striped per-set lock/seqlock table behind the concurrent
 * cache service.
 *
 * Limited associativity makes every critical section tiny — a
 * bounded scan plus a couple of plane stores over one set's few
 * cache lines — which is exactly the property "Limited Associativity
 * Makes Concurrent Software Caches a Breeze" (Adas & Einziger)
 * exploits: with the critical section that small, one cheap
 * spinlock per set stripe is enough, and read-only probes can skip
 * locking entirely through a per-stripe sequence counter (seqlock).
 *
 * Each stripe is one cache line: a SpinLock serializing writers and
 * an even/odd sequence word versioning the stripe's sets. Writers
 * hold the lock, bump the sequence to odd, publish their relaxed
 * plane stores, and bump back to even (writeBegin / writeEnd).
 * Optimistic readers snapshot the sequence, scan through relaxed
 * atomic loads, and retry when the sequence moved (see
 * docs/SERVICE.md for the full protocol).
 */

#ifndef ASSOC_SVC_STRIPED_LOCKS_H
#define ASSOC_SVC_STRIPED_LOCKS_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/spinlock.h"

namespace assoc {
namespace svc {

/** One lock stripe; padded to a cache line to stop false sharing
 *  between stripes under concurrent writers. */
struct alignas(64) SetStripe
{
    SpinLock lock;                  ///< serializes writers
    std::atomic<std::uint64_t> seq{0}; ///< even = stable, odd = writing
};

/**
 * Begin a write on @p s (the stripe lock must be held): make the
 * sequence odd, then fence so the plane stores that follow cannot
 * be observed with the old even sequence.
 * @return the pre-write sequence value, to pass to writeEnd().
 */
inline std::uint64_t
writeBegin(SetStripe &s)
{
    std::uint64_t v = s.seq.load(std::memory_order_relaxed);
    s.seq.store(v + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    return v;
}

/**
 * Finish a write on @p s: publish the new even sequence (release,
 * pairing with readers' acquire loads).
 * @return the stripe's new state version (sequence / 2).
 */
inline std::uint64_t
writeEnd(SetStripe &s, std::uint64_t pre)
{
    s.seq.store(pre + 2, std::memory_order_release);
    return (pre + 2) >> 1;
}

/**
 * The stripe table: a power-of-two array of SetStripe mapped over
 * the cache's sets by low index bits. Defaults to one stripe per
 * set (the strongest striping the geometry admits); a cap trades
 * footprint for cross-set serialization.
 */
class StripedLockTable
{
  public:
    /**
     * @param sets number of cache sets (a power of two).
     * @param max_stripes cap on the stripe count, rounded down to a
     *        power of two; 0 means one stripe per set.
     */
    StripedLockTable(std::uint32_t sets, unsigned max_stripes = 0);

    /** Number of stripes (a power of two). */
    unsigned stripes() const { return count_; }

    /** Stripe index of @p set. */
    unsigned
    stripeOf(std::uint32_t set) const
    {
        return static_cast<unsigned>(set) & (count_ - 1);
    }

    /** The stripe guarding @p set. */
    SetStripe &
    stripeFor(std::uint32_t set) const
    {
        return stripes_[stripeOf(set)];
    }

    /** Bytes held by the stripe array (what a MemBudget is
     *  charged for the lock table). */
    std::uint64_t
    footprintBytes() const
    {
        return static_cast<std::uint64_t>(count_) * sizeof(SetStripe);
    }

  private:
    unsigned count_;
    std::unique_ptr<SetStripe[]> stripes_;
};

} // namespace svc
} // namespace assoc

#endif // ASSOC_SVC_STRIPED_LOCKS_H
