/**
 * @file
 * Admission control for the cache service: per-tenant token-bucket
 * quotas, a global in-flight cap, and explicit load-shed policies.
 *
 * A service that accepts every request degrades for *all* tenants
 * when *one* floods it. The AdmissionController decides, before any
 * engine work, whether a request runs, runs degraded, or is shed
 * with a structured Error::overloaded() the client can back off on
 * (util/backoff.h).
 *
 * Two independent gates, checked in a fixed order:
 *
 *  1. Per-tenant token bucket (quota). Deliberately driven by
 *     *logical time* — each request is one tick that refills
 *     refill_num/refill_den tokens, fixed-point, no clock reads —
 *     so the bucket's evolution is a pure function of the tenant's
 *     own request stream. Quota verdicts (and the shed_quota /
 *     shed_writes / degraded counters they feed) are therefore
 *     bit-for-bit reproducible across reruns and thread schedules,
 *     which is what lets the chaos campaign diff them.
 *  2. Global in-flight cap. A plain atomic high-water gate over all
 *     tenants; verdicts depend on real thread timing, so
 *     shed_inflight is *excluded* from determinism digests.
 *
 * The quota gate runs first even though the in-flight gate is
 * cheaper: a request that consumes a token and then bounces off the
 * in-flight cap keeps the bucket sequence schedule-independent.
 *
 * Over-quota requests are disposed of by the configured ShedPolicy:
 * reject everything (RejectNew), shed only writes (DropWritesFirst),
 * or shed writes and serve reads degraded — a relaxed Probe with no
 * MRU promotion and no fill (DegradeReads). See docs/SERVICE.md.
 */

#ifndef ASSOC_SVC_ADMISSION_H
#define ASSOC_SVC_ADMISSION_H

#include <atomic>
#include <cstdint>
#include <string>

#include "svc/concurrent_cache.h"
#include "util/error.h"

namespace assoc {
namespace svc {

/** What to do with requests that exceed their tenant's quota. */
enum class ShedPolicy : std::uint8_t {
    RejectNew,      ///< shed every over-quota request
    DropWritesFirst,///< shed over-quota writes; reads still run
    DegradeReads,   ///< shed writes; serve reads as relaxed probes
};

/** Printable policy name ("reject-new", ...). */
const char *shedPolicyName(ShedPolicy policy);

/** Parse a --shed-policy flag value; usage error otherwise. */
Expected<ShedPolicy> shedPolicyFromString(const std::string &s);

/** Admission knobs (SvcConfig::admission). */
struct AdmissionConfig
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;
    /** Token-bucket capacity, in whole requests. */
    std::uint64_t quota_burst = 64;
    /** Refill per request tick: refill_num/refill_den tokens. A
     *  tenant's sustainable admit fraction under flood. */
    std::uint64_t refill_num = 1;
    std::uint64_t refill_den = 2;
    /** Global concurrent-request cap across tenants (0 = none). */
    std::uint32_t max_inflight = 0;
    ShedPolicy policy = ShedPolicy::RejectNew;
    /** Seeds the per-tenant initial-credit jitter so same-config
     *  tenants don't exhaust their buckets in lockstep. */
    std::uint64_t seed = 1;
};

/** One quota gate verdict. */
enum class AdmitDecision : std::uint8_t {
    Admit,       ///< run the request as issued
    Degrade,     ///< run it as a relaxed Probe (DegradeReads)
    ShedQuota,   ///< over quota, policy rejects it
    ShedWrite,   ///< over quota and it's a write (write-shedding
                 ///< policies)
};

/** True when (kind, is_write) mutates durable client-visible state:
 *  dirty fills, write accesses, invalidations. The write-shedding
 *  policies shed exactly these. */
inline bool
opIsWrite(OpKind kind, bool is_write)
{
    return kind == OpKind::Invalidate ||
           ((kind == OpKind::Fill || kind == OpKind::Access) &&
            is_write);
}

/**
 * Per-tenant accounting of how the service disposed of requests.
 * Lives inside the tenant's TenantStats shard (same single-writer
 * discipline) and merges exactly.
 *
 * Conservation invariant (checkAdmissionConservation in src/check):
 * every request entering the service layer ends in exactly one
 * bucket, so admitted == completed + shed() + failed() — on every
 * shard and on any merge of shards.
 *
 * Determinism split: admitted, shed_quota, shed_writes and degraded
 * are decided by the per-tenant logical-time bucket (degraded is
 * counted when the verdict is issued, not when the relaxed probe
 * completes, so a later in-flight bounce cannot perturb it), so
 * they are bit-identical across reruns of the same seeded workload.
 * shed_inflight (thread timing) and the failed_* counters (wall
 * clocks, signal arrival) are schedule-dependent and excluded from
 * identicalDeterministic() — completed inherits their variance.
 */
struct AdmissionStats
{
    std::uint64_t admitted = 0;   ///< requests entering the layer
    std::uint64_t completed = 0;  ///< ran to completion (any gate)
    std::uint64_t degraded = 0;   ///< verdicts degraded to a probe
    std::uint64_t shed_quota = 0; ///< over quota, RejectNew
    std::uint64_t shed_writes = 0;///< over quota, write-shedding
    std::uint64_t shed_inflight = 0; ///< bounced off in-flight cap
    std::uint64_t failed_timeout = 0;  ///< deadline already expired
    std::uint64_t failed_cancelled = 0;///< cancel token tripped

    std::uint64_t
    shed() const
    {
        return shed_quota + shed_writes + shed_inflight;
    }

    std::uint64_t
    failed() const
    {
        return failed_timeout + failed_cancelled;
    }

    /** The conservation invariant. */
    bool
    conservationHolds() const
    {
        return admitted == completed + shed() + failed();
    }

    void
    merge(const AdmissionStats &other)
    {
        admitted += other.admitted;
        completed += other.completed;
        degraded += other.degraded;
        shed_quota += other.shed_quota;
        shed_writes += other.shed_writes;
        shed_inflight += other.shed_inflight;
        failed_timeout += other.failed_timeout;
        failed_cancelled += other.failed_cancelled;
    }

    /** Bit-for-bit equality of the schedule-independent counters
     *  (see the struct comment for which those are). */
    bool
    identicalDeterministic(const AdmissionStats &other) const
    {
        return admitted == other.admitted &&
               shed_quota == other.shed_quota &&
               shed_writes == other.shed_writes &&
               degraded == other.degraded;
    }
};

/**
 * The service-wide admission gate. One instance per CacheService;
 * quota state lives in per-session Buckets (single-threaded like
 * the session itself), so only the in-flight gate is shared.
 * Thread-safe where shared.
 */
class AdmissionController
{
  public:
    /** A tenant's token bucket. Owned and driven by its session's
     *  one thread; fixed-point tokens scaled by refill_den. */
    class Bucket
    {
      public:
        /** Whole tokens currently available. */
        std::uint64_t
        tokens(const AdmissionConfig &cfg) const
        {
            return cfg.refill_den ? tokens_fp_ / cfg.refill_den : 0;
        }

      private:
        friend class AdmissionController;
        std::uint64_t tokens_fp_ = 0;
    };

    explicit AdmissionController(const AdmissionConfig &cfg);

    const AdmissionConfig &config() const { return cfg_; }

    /** A fresh bucket for @p tenant with seeded initial credit:
     *  uniform in [burst/2, burst] tokens, a pure function of
     *  (cfg.seed, tenant). */
    Bucket makeBucket(std::uint32_t tenant) const;

    /**
     * The quota gate: tick @p bucket (refill, then try to consume
     * one whole token) and rule on a request of shape
     * (@p kind, @p is_write). Pure function of the bucket state and
     * the request — no clocks, no shared state.
     */
    AdmitDecision checkQuota(Bucket &bucket, OpKind kind,
                             bool is_write) const;

    /** RAII occupancy of one in-flight slot; releases on
     *  destruction. Empty (moved-from / failed) guards hold
     *  nothing. */
    class InflightGuard
    {
      public:
        InflightGuard() = default;

        InflightGuard(InflightGuard &&other) noexcept
            : ctrl_(other.ctrl_)
        {
            other.ctrl_ = nullptr;
        }

        InflightGuard &
        operator=(InflightGuard &&other) noexcept
        {
            if (this != &other) {
                release();
                ctrl_ = other.ctrl_;
                other.ctrl_ = nullptr;
            }
            return *this;
        }

        InflightGuard(const InflightGuard &) = delete;
        InflightGuard &operator=(const InflightGuard &) = delete;

        ~InflightGuard() { release(); }

        void
        release()
        {
            if (ctrl_)
                ctrl_->leave();
            ctrl_ = nullptr;
        }

        bool held() const { return ctrl_ != nullptr; }

      private:
        friend class AdmissionController;
        explicit InflightGuard(AdmissionController *c) : ctrl_(c) {}
        AdmissionController *ctrl_ = nullptr;
    };

    /**
     * The in-flight gate: claim a slot, or fail when max_inflight
     * slots are already taken (the caller records shed_inflight and
     * returns Error::overloaded()). Never fails when the cap is 0
     * or admission is disabled. Thread-safe.
     */
    Expected<InflightGuard> tryEnter();

    /** Requests currently holding an in-flight slot. */
    std::uint32_t
    inflight() const
    {
        return inflight_.load(std::memory_order_relaxed);
    }

    /** High-water mark of inflight(). */
    std::uint32_t
    inflightPeak() const
    {
        return inflight_peak_.load(std::memory_order_relaxed);
    }

  private:
    void leave() { inflight_.fetch_sub(1, std::memory_order_relaxed); }

    AdmissionConfig cfg_;
    std::atomic<std::uint32_t> inflight_{0};
    std::atomic<std::uint32_t> inflight_peak_{0};
};

} // namespace svc
} // namespace assoc

#endif // ASSOC_SVC_ADMISSION_H
