/**
 * @file
 * Per-tenant statistics shards.
 *
 * Each client session owns one TenantStats and records into it with
 * no synchronization at all — sharding per tenant is what makes the
 * service's statistics scale with thread count. Shards merge
 * deterministically: every counter is an exact integer sum, and the
 * probe-cost accumulators are MeanAccums over small integer costs,
 * whose double sums are exact and therefore reassociation-safe. A
 * partitioned N-thread replay consequently merges to totals that are
 * bit-for-bit identical to a single-thread run of the same ops
 * (enforced by checkStatsMerge in src/check and the tests/svc
 * suite).
 *
 * The schedule-dependent counters (optimistic vs locked probe
 * serving, seqlock retries) are observability data about the
 * locking protocol, not about the cache: they legitimately vary
 * run-to-run and are excluded from identicalOutcomes().
 */

#ifndef ASSOC_SVC_TENANT_STATS_H
#define ASSOC_SVC_TENANT_STATS_H

#include <cstdint>

#include "core/probe_meter.h"
#include "svc/admission.h"
#include "svc/concurrent_cache.h"
#include "util/stats.h"

namespace assoc {
namespace svc {

/** One tenant's statistics shard. */
struct TenantStats
{
    // --- deterministic outcome counters -------------------------
    std::uint64_t ops = 0; ///< every recorded operation

    std::uint64_t probe_ops = 0;
    std::uint64_t probe_hits = 0;
    std::uint64_t lookups = 0;
    std::uint64_t lookup_hits = 0;
    std::uint64_t fills = 0;
    std::uint64_t fill_hits = 0; ///< fills merged into a racing fill
    std::uint64_t invalidates = 0;
    std::uint64_t invalidate_hits = 0;
    std::uint64_t accesses = 0;
    std::uint64_t access_hits = 0;

    std::uint64_t evictions = 0;
    std::uint64_t dirty_evictions = 0;

    /** MRU-scan cost of ops that found their block (the paper's
     *  "hit at recency distance d costs d probes"). */
    MeanAccum hit_probes;
    /** Scan cost of ops that missed (a full Naive scan). */
    MeanAccum miss_probes;

    // --- schedule-dependent protocol counters (excluded from
    // --- identicalOutcomes: they vary with thread interleaving) --
    std::uint64_t optimistic_reads = 0; ///< probes served lock-free
    std::uint64_t locked_reads = 0;     ///< probes that fell back
    std::uint64_t seqlock_retries = 0;  ///< torn optimistic attempts

    // --- admission accounting (Session::request only; empty when
    // --- clients drive the raw per-op interface). Conservation and
    // --- the deterministic/schedule-dependent split live in
    // --- AdmissionStats itself — see svc/admission.h. -------------
    AdmissionStats admission;

    /** Fold one operation's result into the shard. */
    void
    recordOp(const OpResult &r)
    {
        ++ops;
        switch (r.kind) {
          case OpKind::Probe:
            ++probe_ops;
            probe_hits += r.hit;
            if (r.optimistic)
                ++optimistic_reads;
            else
                ++locked_reads;
            seqlock_retries += r.retries;
            break;
          case OpKind::Lookup:
            ++lookups;
            lookup_hits += r.hit;
            break;
          case OpKind::Fill:
            ++fills;
            fill_hits += r.hit;
            break;
          case OpKind::Invalidate:
            ++invalidates;
            invalidate_hits += r.hit;
            break;
          case OpKind::Access:
            ++accesses;
            access_hits += r.hit;
            break;
        }
        evictions += r.evicted;
        dirty_evictions += r.evicted && r.victim_dirty;
        if (r.hit)
            hit_probes.record(static_cast<double>(r.probes));
        else
            miss_probes.record(static_cast<double>(r.probes));
    }

    /** Fold @p other into this shard (exact; order-independent for
     *  the deterministic counters). */
    void
    merge(const TenantStats &other)
    {
        ops += other.ops;
        probe_ops += other.probe_ops;
        probe_hits += other.probe_hits;
        lookups += other.lookups;
        lookup_hits += other.lookup_hits;
        fills += other.fills;
        fill_hits += other.fill_hits;
        invalidates += other.invalidates;
        invalidate_hits += other.invalidate_hits;
        accesses += other.accesses;
        access_hits += other.access_hits;
        evictions += other.evictions;
        dirty_evictions += other.dirty_evictions;
        hit_probes.merge(other.hit_probes);
        miss_probes.merge(other.miss_probes);
        optimistic_reads += other.optimistic_reads;
        locked_reads += other.locked_reads;
        seqlock_retries += other.seqlock_retries;
        admission.merge(other.admission);
    }

    /** Ops that found their block (any kind). */
    std::uint64_t
    hits() const
    {
        return probe_hits + lookup_hits + fill_hits +
               invalidate_hits + access_hits;
    }

    /**
     * Bit-for-bit equality of the deterministic outcome counters,
     * raw MeanAccum state included. The protocol counters are
     * deliberately not compared — see the header comment.
     */
    bool
    identicalOutcomes(const TenantStats &other) const
    {
        return ops == other.ops && probe_ops == other.probe_ops &&
               probe_hits == other.probe_hits &&
               lookups == other.lookups &&
               lookup_hits == other.lookup_hits &&
               fills == other.fills && fill_hits == other.fill_hits &&
               invalidates == other.invalidates &&
               invalidate_hits == other.invalidate_hits &&
               accesses == other.accesses &&
               access_hits == other.access_hits &&
               evictions == other.evictions &&
               dirty_evictions == other.dirty_evictions &&
               hit_probes.sum() == other.hit_probes.sum() &&
               hit_probes.sumSquares() == other.hit_probes.sumSquares() &&
               hit_probes.count() == other.hit_probes.count() &&
               miss_probes.sum() == other.miss_probes.sum() &&
               miss_probes.sumSquares() ==
                   other.miss_probes.sumSquares() &&
               miss_probes.count() == other.miss_probes.count();
    }

    /**
     * Export the shard in the ProbeMeter currency: hit scan costs
     * as read-in-hit probes, miss scan costs as read-in-miss
     * probes, and one zero-probe write-back sample per dirty
     * eviction (the paper's write-back optimization: the upper
     * level remembers the victim's way, so writing it back costs
     * no probes).
     */
    core::ProbeStats
    toProbeStats() const
    {
        core::ProbeStats ps;
        ps.read_in_hits = hit_probes;
        ps.read_in_misses = miss_probes;
        ps.write_backs = MeanAccum::fromRaw(0.0, 0.0, dirty_evictions);
        return ps;
    }
};

} // namespace svc
} // namespace assoc

#endif // ASSOC_SVC_TENANT_STATS_H
