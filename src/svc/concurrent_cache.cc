#include "svc/concurrent_cache.h"

#include <mutex>

#include "util/logging.h"

namespace assoc {
namespace svc {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Probe:
        return "probe";
      case OpKind::Lookup:
        return "lookup";
      case OpKind::Fill:
        return "fill";
      case OpKind::Invalidate:
        return "invalidate";
      case OpKind::Access:
        return "access";
    }
    return "unknown";
}

ConcurrentCache::ConcurrentCache(const mem::CacheGeometry &geom,
                                 const ConcurrentCacheConfig &cfg)
    : cache_(geom, cfg.policy), locks_(geom.sets(), cfg.max_stripes),
      retries_(cfg.optimistic_retries), hold_hook_(cfg.lock_hold_hook)
{}

Expected<std::unique_ptr<ConcurrentCache>>
ConcurrentCache::create(const mem::CacheGeometry &geom,
                        const ConcurrentCacheConfig &cfg,
                        MemBudget *budget)
{
    if (cfg.policy == mem::ReplPolicy::Random)
        return Error::usage(
            "the Random replacement policy draws from a shared RNG "
            "and cannot be serialized per set; use LRU, FIFO or "
            "TreePLRU for the concurrent service");
    std::unique_ptr<ConcurrentCache> engine(
        new ConcurrentCache(geom, cfg));
    Expected<MemCharge> charge = MemCharge::charge(
        budget, engine->footprintBytes(),
        "svc cache planes + lock stripes (" + geom.name() + ")");
    if (!charge.ok())
        return charge.error();
    engine->charge_ = charge.take();
    return engine;
}

OpResult
ConcurrentCache::probe(mem::BlockAddr b) const
{
    OpResult r;
    r.kind = OpKind::Probe;
    r.block = b;
    r.set = cache_.geom().setOf(b);
    SetStripe &s = locks_.stripeFor(r.set);
    for (unsigned attempt = 0; attempt < retries_; ++attempt) {
        std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
        if (s1 & 1) { // a writer is mid-publication
            ++r.retries;
            cpuRelax();
            continue;
        }
        unsigned probes = 0;
        // The tag scan dispatches through the torn-read-tolerant
        // kernel (eq_mask_bits_relaxed, docs/KERNELS.md): element
        // loads may tear against a mid-publication writer, and the
        // sequence re-check below is what discards such a view.
        int way = cache_.probeRelaxed(b, &probes);
        // The acquire fence orders the plane loads above before the
        // sequence re-read: an unchanged sequence proves no writer
        // intervened, so the scan saw a consistent set.
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) == s1) {
            r.hit = way >= 0;
            r.way = way;
            r.probes = probes;
            r.version = s1 >> 1;
            r.optimistic = true;
            return r;
        }
        ++r.retries;
    }
    // Persistent interference: serialize with the writers instead
    // of starving.
    std::lock_guard<SpinLock> g(s.lock);
    stallInLock(r.set);
    unsigned probes = 0;
    int way = cache_.probeRelaxed(b, &probes);
    r.hit = way >= 0;
    r.way = way;
    r.probes = probes;
    r.version = s.seq.load(std::memory_order_relaxed) >> 1;
    return r;
}

OpResult
ConcurrentCache::lookup(mem::BlockAddr b)
{
    OpResult r;
    r.kind = OpKind::Lookup;
    r.block = b;
    r.set = cache_.geom().setOf(b);
    SetStripe &s = locks_.stripeFor(r.set);
    std::lock_guard<SpinLock> g(s.lock);
    stallInLock(r.set);
    unsigned probes = 0;
    int way = cache_.probeRelaxed(b, &probes);
    r.probes = probes;
    if (way >= 0) {
        r.hit = true;
        r.way = way;
        std::uint64_t pre = writeBegin(s);
        cache_.touch(r.set, way);
        r.version = writeEnd(s, pre);
        r.mutated = true;
    } else {
        r.version = s.seq.load(std::memory_order_relaxed) >> 1;
    }
    return r;
}

OpResult
ConcurrentCache::fill(mem::BlockAddr b, bool dirty)
{
    OpResult r;
    r.kind = OpKind::Fill;
    r.block = b;
    r.is_write = dirty;
    r.set = cache_.geom().setOf(b);
    SetStripe &s = locks_.stripeFor(r.set);
    std::lock_guard<SpinLock> g(s.lock);
    stallInLock(r.set);
    unsigned probes = 0;
    int way = cache_.probeRelaxed(b, &probes);
    r.probes = probes;
    std::uint64_t pre = writeBegin(s);
    if (way >= 0) {
        // Another session filled the block since the caller's miss:
        // merge instead of double-filling.
        r.hit = true;
        r.way = way;
        cache_.touch(r.set, way);
        if (dirty)
            cache_.setDirty(r.set, way);
    } else {
        mem::FillResult f = cache_.fill(b, dirty);
        r.filled = true;
        r.way = f.way;
        r.evicted = f.evicted;
        r.victim_block = f.victim_block;
        r.victim_dirty = f.victim_dirty;
    }
    r.version = writeEnd(s, pre);
    r.mutated = true;
    return r;
}

OpResult
ConcurrentCache::invalidate(mem::BlockAddr b)
{
    OpResult r;
    r.kind = OpKind::Invalidate;
    r.block = b;
    r.set = cache_.geom().setOf(b);
    SetStripe &s = locks_.stripeFor(r.set);
    std::lock_guard<SpinLock> g(s.lock);
    stallInLock(r.set);
    unsigned probes = 0;
    int way = cache_.probeRelaxed(b, &probes);
    r.probes = probes;
    if (way >= 0) {
        r.hit = true;
        r.way = way;
        std::uint64_t pre = writeBegin(s);
        r.victim_dirty = cache_.invalidate(b);
        r.version = writeEnd(s, pre);
        r.mutated = true;
    } else {
        r.version = s.seq.load(std::memory_order_relaxed) >> 1;
    }
    return r;
}

OpResult
ConcurrentCache::access(mem::BlockAddr b, bool is_write)
{
    OpResult r;
    r.kind = OpKind::Access;
    r.block = b;
    r.is_write = is_write;
    r.set = cache_.geom().setOf(b);
    SetStripe &s = locks_.stripeFor(r.set);
    std::lock_guard<SpinLock> g(s.lock);
    stallInLock(r.set);
    unsigned probes = 0;
    int way = cache_.probeRelaxed(b, &probes);
    r.probes = probes;
    std::uint64_t pre = writeBegin(s);
    if (way >= 0) {
        r.hit = true;
        r.way = way;
        cache_.touch(r.set, way);
        if (is_write)
            cache_.setDirty(r.set, way);
    } else {
        mem::FillResult f = cache_.fill(b, is_write);
        r.filled = true;
        r.way = f.way;
        r.evicted = f.evicted;
        r.victim_block = f.victim_block;
        r.victim_dirty = f.victim_dirty;
    }
    r.version = writeEnd(s, pre);
    r.mutated = true;
    return r;
}

OpResult
ConcurrentCache::apply(OpKind kind, mem::BlockAddr b, bool is_write)
{
    switch (kind) {
      case OpKind::Probe:
        return probe(b);
      case OpKind::Lookup:
        return lookup(b);
      case OpKind::Fill:
        return fill(b, is_write);
      case OpKind::Invalidate:
        return invalidate(b);
      case OpKind::Access:
        return access(b, is_write);
    }
    panic("bad svc op kind");
}

} // namespace svc
} // namespace assoc
