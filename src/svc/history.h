/**
 * @file
 * Per-session operation histories for the serializability checker.
 *
 * Each session records its own operations into a private, fixed-
 * capacity log — no cross-thread synchronization, so recording does
 * not perturb the interleavings it documents. The per-set order of
 * the concurrent run is recoverable offline because every OpResult
 * carries the stripe version it observed (read-only ops) or
 * produced (mutating ops); checkSvcHistory in src/check sorts the
 * merged events by version and replays them against a fresh
 * reference cache.
 *
 * Capacity is fixed at construction so a CacheService can charge
 * the log to its MemBudget up front; overflow drops further events
 * and raises a sticky flag instead of reallocating mid-run.
 */

#ifndef ASSOC_SVC_HISTORY_H
#define ASSOC_SVC_HISTORY_H

#include <cstdint>
#include <vector>

#include "svc/concurrent_cache.h"

namespace assoc {
namespace svc {

/** One logged operation, tagged with the session that issued it. */
struct HistoryEvent
{
    std::uint32_t tenant = 0; ///< issuing session's id
    OpResult op;
};

/** One session's bounded operation log. */
class HistoryLog
{
  public:
    /** @param capacity maximum events retained (0 disables
     *  recording entirely). */
    explicit HistoryLog(std::size_t capacity) : capacity_(capacity)
    {
        events_.reserve(capacity);
    }

    /**
     * Append one event.
     * @return false when the log is full (the event is dropped and
     *         overflowed() latches).
     */
    bool
    record(const HistoryEvent &e)
    {
        if (events_.size() >= capacity_) {
            if (capacity_ > 0) // capacity 0 = recording disabled
                overflowed_ = true;
            return false;
        }
        events_.push_back(e);
        return true;
    }

    const std::vector<HistoryEvent> &events() const { return events_; }

    std::size_t capacity() const { return capacity_; }

    /** True when at least one event was dropped. */
    bool overflowed() const { return overflowed_; }

    void
    clear()
    {
        events_.clear();
        overflowed_ = false;
    }

    /** Bytes reserved for the log (what a MemBudget is charged). */
    std::uint64_t
    footprintBytes() const
    {
        return static_cast<std::uint64_t>(capacity_) *
               sizeof(HistoryEvent);
    }

  private:
    std::size_t capacity_;
    bool overflowed_ = false;
    std::vector<HistoryEvent> events_;
};

} // namespace svc
} // namespace assoc

#endif // ASSOC_SVC_HISTORY_H
