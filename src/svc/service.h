/**
 * @file
 * The multi-tenant cache service: client sessions over the shared
 * concurrent engine.
 *
 * A CacheService owns one ConcurrentCache plus the bookkeeping that
 * makes it consumable by N client threads:
 *
 *  - openSession() hands out Session objects. Each session is a
 *    tenant: it carries a private TenantStats shard and (optionally)
 *    a private HistoryLog, both unsynchronized because exactly one
 *    client thread drives a session. The engine underneath is fully
 *    thread-safe, so any number of sessions operate concurrently.
 *  - Optional tenant isolation: with tenant_salt_bits > 0, each
 *    session's block addresses are XOR-salted with its tenant id in
 *    the top (full-tag) bits. Tenants then live in disjoint tag
 *    spaces — they share capacity and contend in the same sets, but
 *    never alias each other's blocks (a private-address cache
 *    service). Salting touches only tag bits, never the set index,
 *    so set partitioning arguments are unaffected.
 *  - Deterministic aggregation: totalStats() merges the session
 *    shards in session-open order, and every counter merge is
 *    exact, so a partitioned concurrent replay aggregates
 *    bit-for-bit equal to its single-thread reference (the
 *    stats-merge invariant checked in src/check).
 *
 * Footprint (engine planes + lock stripes + every session's shard
 * and history) is charged to the MemBudget passed at creation;
 * openSession() fails with Error::budget() instead of ballooning.
 *
 * Threading contract: session methods are safe to call from the
 * session's one owning thread while other sessions run; openSession
 * is internally locked and may be called at any time; totalStats /
 * collectHistory / engine().cache() want a quiesced service (no
 * in-flight client ops).
 */

#ifndef ASSOC_SVC_SERVICE_H
#define ASSOC_SVC_SERVICE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "svc/admission.h"
#include "svc/concurrent_cache.h"
#include "svc/history.h"
#include "svc/tenant_stats.h"
#include "util/cancel.h"
#include "util/error.h"

namespace assoc {
namespace svc {

class CacheService;

/** Service-level configuration. */
struct SvcConfig
{
    /** Engine shape (policy, stripe cap, optimistic retries). */
    ConcurrentCacheConfig engine;
    /** Record per-session operation histories for the
     *  serializability checker. */
    bool record_history = false;
    /** Per-session history capacity in events (when recording). */
    std::size_t history_capacity = 1u << 16;
    /** XOR the tenant id into this many top (tag) bits of every
     *  block address: disjoint per-tenant address spaces. 0 = all
     *  tenants share one address space. */
    unsigned tenant_salt_bits = 0;
    /** Overload safety: per-tenant quotas, global in-flight cap,
     *  shed policy (svc/admission.h). Off by default; only the
     *  Session::request() path consults it. */
    AdmissionConfig admission;
};

/**
 * One client's handle on the service. Obtained from
 * CacheService::openSession(); owned by the service (stable
 * pointer). Drive it from a single thread.
 */
class Session
{
  public:
    /** Tenant id (dense, in session-open order). */
    std::uint32_t tenant() const { return tenant_; }

    const std::string &name() const { return name_; }

    // --- block-address operations (the fuzz/replay interface) ----
    OpResult probe(mem::BlockAddr b);
    OpResult lookup(mem::BlockAddr b);
    OpResult fill(mem::BlockAddr b, bool dirty);
    OpResult invalidate(mem::BlockAddr b);
    OpResult access(mem::BlockAddr b, bool is_write);
    /** Dispatch @p kind (@p is_write doubles as Fill's dirty bit). */
    OpResult apply(OpKind kind, mem::BlockAddr b, bool is_write);

    // --- byte-address convenience (the client-facing interface) --
    OpResult probeAddr(trace::Addr a);
    OpResult accessAddr(trace::Addr a, bool is_write);

    // --- the overload-safe request path ---------------------------
    /**
     * Chain this session's requests to @p token: a tripped token
     * (explicit cancel, watchdog, SIGINT/SIGTERM, token deadline)
     * fails subsequent request() calls with the token's structured
     * error. Not owned; null detaches. Set from the session's own
     * thread.
     */
    void bindCancel(const CancelToken *token) { cancel_ = token; }

    const CancelToken *boundCancel() const { return cancel_; }

    /**
     * Issue one operation through the full service layer:
     * cancellation and @p deadline checks, per-tenant quota, the
     * global in-flight cap, and the configured shed policy — in
     * that order, all *outside* any striped-lock critical section
     * (a shed or cancelled request never holds a lock). Sheds
     * surface as Error::overloaded() (exit 5; clients retry with
     * util/backoff.h), expired deadlines as Error::timeout(), trips
     * of the bound token as that token's error. Every call lands in
     * exactly one AdmissionStats bucket (the conservation
     * invariant). Under DegradeReads an over-quota read completes
     * as a relaxed Probe of the same block — recorded as a Probe in
     * the stats shard, flagged in AdmissionStats::degraded.
     */
    Expected<OpResult> request(OpKind kind, mem::BlockAddr b,
                               bool is_write,
                               const Deadline &deadline
                               = Deadline::never());

    /** This tenant's quota bucket (whole tokens; for tests). */
    std::uint64_t quotaTokens() const;

    /** Chaos/testing hook: empty this tenant's bucket in place (the
     *  mid-stream budget-squeeze fault). Refill continues from
     *  zero. Call from the session's own thread — the squeeze is
     *  then a pure function of the stream position, so shed counts
     *  stay deterministic. */
    void drainQuota() { bucket_ = AdmissionController::Bucket(); }

    /** This tenant's statistics shard. */
    const TenantStats &stats() const { return stats_; }

    /** This tenant's history (empty unless the service records). */
    const HistoryLog &history() const { return history_; }

    /** The block address the engine actually sees for @p b once the
     *  tenant salt is applied (exposed for tests and checkers). */
    mem::BlockAddr saltedBlock(mem::BlockAddr b) const;

  private:
    friend class CacheService;

    Session(CacheService *svc, std::uint32_t tenant, std::string name,
            std::size_t history_capacity, MemCharge charge);

    OpResult finish(const OpResult &r);

    CacheService *svc_;
    std::uint32_t tenant_;
    std::string name_;
    TenantStats stats_;
    HistoryLog history_;
    MemCharge charge_;
    const CancelToken *cancel_ = nullptr; ///< not owned
    AdmissionController::Bucket bucket_;
};

/** The service. Create once, open a session per client thread. */
class CacheService
{
  public:
    /**
     * Build a service over @p geom. The engine footprint is charged
     * to @p budget immediately; each openSession() charges its
     * session's shard and history on top.
     */
    static Expected<std::unique_ptr<CacheService>>
    create(const mem::CacheGeometry &geom, const SvcConfig &cfg = {},
           MemBudget *budget = nullptr);

    /**
     * Open a new tenant session. Thread-safe; the returned pointer
     * stays valid for the service's lifetime.
     */
    Expected<Session *> openSession(std::string name = "");

    /** Sessions opened so far. */
    std::size_t sessionCount() const;

    /** Session @p tenant (in open order). */
    const Session &session(std::uint32_t tenant) const;

    /**
     * Merge every session's shard, in session-open order. Exact and
     * deterministic for the outcome counters. Quiesced only.
     */
    TenantStats totalStats() const;

    /**
     * Concatenate every session's history events, in session-open
     * order (the checker re-sorts per set by version). Quiesced
     * only.
     * @param overflowed set true when any session dropped events.
     */
    std::vector<HistoryEvent> collectHistory(bool *overflowed
                                             = nullptr) const;

    /** The shared engine (for direct use and inspection). */
    ConcurrentCache &engine() { return *engine_; }
    const ConcurrentCache &engine() const { return *engine_; }

    /** The admission gate Session::request() consults. */
    AdmissionController &admission() { return admission_; }
    const AdmissionController &admission() const { return admission_; }

    const mem::CacheGeometry &geom() const { return engine_->geom(); }
    const SvcConfig &config() const { return cfg_; }

    /** Engine + lock table + all session shards/histories. */
    std::uint64_t footprintBytes() const;

  private:
    CacheService(std::unique_ptr<ConcurrentCache> engine,
                 const SvcConfig &cfg, MemBudget *budget);

    SvcConfig cfg_;
    MemBudget *budget_; ///< not owned; may be null
    std::unique_ptr<ConcurrentCache> engine_;
    AdmissionController admission_;

    mutable std::mutex open_mutex_; ///< guards sessions_ growth
    std::vector<std::unique_ptr<Session>> sessions_;
};

} // namespace svc
} // namespace assoc

#endif // ASSOC_SVC_SERVICE_H
