/**
 * @file
 * The concurrent cache engine: the SoA cache model (WriteBackCache)
 * run as a shared object behind the striped per-set seqlocks.
 *
 * Every operation is one atomic step on its block's set:
 *
 *  - probe()      read-only lookup; served by the optimistic seqlock
 *                 path (no lock, relaxed-atomic scan, sequence
 *                 validation) with a locked fallback after repeated
 *                 interference;
 *  - lookup()     lookup that promotes the hit line to MRU (locked);
 *  - fill()       insert, evicting the set's victim when full; a
 *                 block another client filled meanwhile is treated
 *                 as a hit (touch + dirty merge);
 *  - invalidate() drop the block if present;
 *  - access()     the classic cache-service op: lookup, fill on
 *                 miss — one critical section.
 *
 * Writers hold their stripe's SpinLock, so operations on the same
 * set are totally ordered; the stripe's sequence word versions that
 * order, and every OpResult carries the version it observed or
 * produced. That versioned history is what the serializability
 * checker in src/check replays (see docs/SERVICE.md).
 *
 * Probe pricing follows the paper: each scan walks the set's MRU
 * order, so a hit at recency distance d costs d probes and a miss
 * costs a full Naive scan of a probes — the same currency the
 * ProbeMeter observers use, which is what lets per-tenant shards
 * merge into ProbeStats (see tenant_stats.h).
 */

#ifndef ASSOC_SVC_CONCURRENT_CACHE_H
#define ASSOC_SVC_CONCURRENT_CACHE_H

#include <cstdint>
#include <functional>
#include <memory>

#include "mem/cache.h"
#include "svc/striped_locks.h"
#include "util/cancel.h"
#include "util/error.h"

namespace assoc {
namespace svc {

/** Operation kinds a client session can issue. */
enum class OpKind : std::uint8_t {
    Probe,      ///< read-only lookup (seqlock fast path)
    Lookup,     ///< lookup + MRU promotion
    Fill,       ///< insert (or merge into a racing insert)
    Invalidate, ///< drop if present
    Access,     ///< lookup, fill on miss
};

/** Printable op name. */
const char *opKindName(OpKind kind);

/** What one operation did; everything a stats shard or history
 *  event needs. */
struct OpResult
{
    OpKind kind = OpKind::Probe;
    mem::BlockAddr block = 0;
    std::uint32_t set = 0;
    bool is_write = false; ///< dirty flag of Fill / Access

    bool hit = false;    ///< block was present when the op began
    int way = -1;        ///< hit way, or the filled way
    unsigned probes = 0; ///< MRU-scan cost (paper probe currency)

    bool filled = false; ///< a fill happened (Fill / Access miss)
    bool evicted = false;
    mem::BlockAddr victim_block = 0;
    bool victim_dirty = false; ///< evicted or invalidated line was dirty

    bool mutated = false;      ///< op advanced its stripe's version
    std::uint64_t version = 0; ///< stripe state version observed/produced

    bool optimistic = false; ///< served lock-free by the seqlock path
    unsigned retries = 0;    ///< optimistic attempts that were torn
};

/** Engine shape knobs. */
struct ConcurrentCacheConfig
{
    /** Victim selection. Random is rejected: its draws come from a
     *  shared RNG, which breaks per-set serialization. */
    mem::ReplPolicy policy = mem::ReplPolicy::Lru;
    /** Cap on lock stripes (power of two); 0 = one per set. */
    unsigned max_stripes = 0;
    /** Optimistic probe attempts before falling back to the lock. */
    unsigned optimistic_retries = 8;
    /**
     * Fault-injection hook: called once per locked operation *while
     * the stripe lock is held*, before the op touches the cache.
     * The chaos campaign's lock-holder-stall fault spins here to
     * model a preempted lock holder; production configs leave it
     * empty. Must not re-enter the engine (deadlock).
     */
    std::function<void(std::uint32_t set)> lock_hold_hook;
};

/** The shared concurrent cache object. */
class ConcurrentCache
{
  public:
    /**
     * Build an engine over @p geom, charging the cache planes and
     * the stripe table to @p budget (null = no accounting).
     */
    static Expected<std::unique_ptr<ConcurrentCache>>
    create(const mem::CacheGeometry &geom,
           const ConcurrentCacheConfig &cfg = {},
           MemBudget *budget = nullptr);

    OpResult probe(mem::BlockAddr b) const;
    OpResult lookup(mem::BlockAddr b);
    OpResult fill(mem::BlockAddr b, bool dirty);
    OpResult invalidate(mem::BlockAddr b);
    OpResult access(mem::BlockAddr b, bool is_write);

    /** Dispatch @p kind (replay and benchmark convenience;
     *  @p is_write doubles as Fill's dirty flag). */
    OpResult apply(OpKind kind, mem::BlockAddr b, bool is_write);

    /** The wrapped model. Only coherent when quiesced (no
     *  concurrent writers); for tests and end-of-run inspection. */
    const mem::WriteBackCache &cache() const { return cache_; }

    const mem::CacheGeometry &geom() const { return cache_.geom(); }

    /** Stripe count of the lock table (a power of two). */
    unsigned stripes() const { return locks_.stripes(); }

    /** Stripe index of @p set (for the history checker's
     *  version-uniqueness invariant). */
    unsigned stripeOf(std::uint32_t set) const
    {
        return locks_.stripeOf(set);
    }

    /** Bytes held by the cache planes plus the stripe table (what
     *  create() charges to the MemBudget). */
    std::uint64_t
    footprintBytes() const
    {
        return cache_.footprintBytes() + locks_.footprintBytes();
    }

  private:
    ConcurrentCache(const mem::CacheGeometry &geom,
                    const ConcurrentCacheConfig &cfg);

    /** Run the configured lock-hold fault hook (lock held). */
    void
    stallInLock(std::uint32_t set) const
    {
        if (hold_hook_)
            hold_hook_(set);
    }

    mem::WriteBackCache cache_;
    StripedLockTable locks_;
    unsigned retries_;
    std::function<void(std::uint32_t)> hold_hook_;
    MemCharge charge_;
};

} // namespace svc
} // namespace assoc

#endif // ASSOC_SVC_CONCURRENT_CACHE_H
