#include "svc/admission.h"

#include "util/rng.h"

namespace assoc {
namespace svc {

const char *
shedPolicyName(ShedPolicy policy)
{
    switch (policy) {
      case ShedPolicy::RejectNew:
        return "reject-new";
      case ShedPolicy::DropWritesFirst:
        return "drop-writes-first";
      case ShedPolicy::DegradeReads:
        return "degrade-reads";
    }
    return "unknown";
}

Expected<ShedPolicy>
shedPolicyFromString(const std::string &s)
{
    if (s == "reject-new" || s == "reject")
        return ShedPolicy::RejectNew;
    if (s == "drop-writes-first" || s == "drop-writes")
        return ShedPolicy::DropWritesFirst;
    if (s == "degrade-reads" || s == "degrade")
        return ShedPolicy::DegradeReads;
    return Error::usage(
        "unknown shed policy '" + s +
        "' (want reject-new|drop-writes-first|degrade-reads)");
}

AdmissionController::AdmissionController(const AdmissionConfig &cfg)
    : cfg_(cfg)
{
    // A zero denominator or burst would make every bucket
    // permanently empty by accident; normalize to the disabled
    // equivalents instead of dividing by zero later.
    if (cfg_.refill_den == 0)
        cfg_.refill_den = 1;
    if (cfg_.refill_num > cfg_.refill_den)
        cfg_.refill_num = cfg_.refill_den; // >1 token/tick = no quota
    if (cfg_.quota_burst == 0)
        cfg_.quota_burst = 1;
}

AdmissionController::Bucket
AdmissionController::makeBucket(std::uint32_t tenant) const
{
    Bucket b;
    if (!cfg_.enabled)
        return b;
    // Start between half-full and full, the point drawn per tenant:
    // same-shape tenants then cross "empty" at different request
    // counts instead of shedding in lockstep on the first burst.
    std::uint64_t full = cfg_.quota_burst * cfg_.refill_den;
    std::uint64_t half = full / 2;
    Pcg32 rng(cfg_.seed, 0xadb1u ^ tenant);
    b.tokens_fp_ = half + rng.next64() % (full - half + 1);
    return b;
}

AdmitDecision
AdmissionController::checkQuota(Bucket &bucket, OpKind kind,
                                bool is_write) const
{
    if (!cfg_.enabled)
        return AdmitDecision::Admit;
    std::uint64_t full = cfg_.quota_burst * cfg_.refill_den;
    bucket.tokens_fp_ += cfg_.refill_num;
    if (bucket.tokens_fp_ > full)
        bucket.tokens_fp_ = full;
    if (bucket.tokens_fp_ >= cfg_.refill_den) {
        bucket.tokens_fp_ -= cfg_.refill_den;
        return AdmitDecision::Admit;
    }
    switch (cfg_.policy) {
      case ShedPolicy::RejectNew:
        return AdmitDecision::ShedQuota;
      case ShedPolicy::DropWritesFirst:
        return opIsWrite(kind, is_write) ? AdmitDecision::ShedWrite
                                         : AdmitDecision::Admit;
      case ShedPolicy::DegradeReads:
        return opIsWrite(kind, is_write) ? AdmitDecision::ShedWrite
                                         : AdmitDecision::Degrade;
    }
    return AdmitDecision::ShedQuota;
}

Expected<AdmissionController::InflightGuard>
AdmissionController::tryEnter()
{
    std::uint32_t now =
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cfg_.enabled && cfg_.max_inflight != 0 &&
        now > cfg_.max_inflight) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        return Error::overloaded(
            "service at its in-flight cap (" +
            std::to_string(cfg_.max_inflight) +
            " concurrent requests)");
    }
    std::uint32_t hi = inflight_peak_.load(std::memory_order_relaxed);
    while (hi < now &&
           !inflight_peak_.compare_exchange_weak(
               hi, now, std::memory_order_relaxed)) {
    }
    return Expected<InflightGuard>(InflightGuard(this));
}

} // namespace svc
} // namespace assoc
