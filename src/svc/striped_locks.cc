#include "svc/striped_locks.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace svc {

namespace {

/** Largest power of two <= v (v >= 1). */
unsigned
floorPow2(unsigned v)
{
    unsigned p = 1;
    while (p <= v / 2)
        p *= 2;
    return p;
}

} // namespace

StripedLockTable::StripedLockTable(std::uint32_t sets,
                                   unsigned max_stripes)
{
    fatalIf(sets == 0 || (sets & (sets - 1)) != 0,
            "stripe table needs a power-of-two set count");
    unsigned want = max_stripes == 0 ? sets : floorPow2(max_stripes);
    count_ = want < sets ? want : sets;
    stripes_ = std::make_unique<SetStripe[]>(count_);
}

} // namespace svc
} // namespace assoc
