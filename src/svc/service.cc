#include "svc/service.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace svc {

// --- Session -----------------------------------------------------

Session::Session(CacheService *svc, std::uint32_t tenant,
                 std::string name, std::size_t history_capacity,
                 MemCharge charge)
    : svc_(svc), tenant_(tenant), name_(std::move(name)),
      history_(history_capacity), charge_(std::move(charge))
{}

mem::BlockAddr
Session::saltedBlock(mem::BlockAddr b) const
{
    unsigned bits = svc_->config().tenant_salt_bits;
    if (bits == 0)
        return b;
    std::uint32_t salt = tenant_ & maskBits(bits);
    return b ^ (salt << (32u - bits));
}

OpResult
Session::finish(const OpResult &r)
{
    stats_.recordOp(r);
    if (history_.capacity() > 0) {
        HistoryEvent e;
        e.tenant = tenant_;
        e.op = r;
        history_.record(e);
    }
    return r;
}

OpResult
Session::probe(mem::BlockAddr b)
{
    return finish(svc_->engine().probe(saltedBlock(b)));
}

OpResult
Session::lookup(mem::BlockAddr b)
{
    return finish(svc_->engine().lookup(saltedBlock(b)));
}

OpResult
Session::fill(mem::BlockAddr b, bool dirty)
{
    return finish(svc_->engine().fill(saltedBlock(b), dirty));
}

OpResult
Session::invalidate(mem::BlockAddr b)
{
    return finish(svc_->engine().invalidate(saltedBlock(b)));
}

OpResult
Session::access(mem::BlockAddr b, bool is_write)
{
    return finish(svc_->engine().access(saltedBlock(b), is_write));
}

OpResult
Session::apply(OpKind kind, mem::BlockAddr b, bool is_write)
{
    return finish(
        svc_->engine().apply(kind, saltedBlock(b), is_write));
}

Expected<OpResult>
Session::request(OpKind kind, mem::BlockAddr b, bool is_write,
                 const Deadline &deadline)
{
    AdmissionStats &a = stats_.admission;
    ++a.admitted;
    // Cancellation first: a shutdown in progress must not consume
    // quota or an in-flight slot. Checked here — between critical
    // sections — never under a stripe lock.
    if (cancel_) {
        Expected<void> alive = cancel_->checkpoint();
        if (!alive.ok()) {
            Error e = alive.takeError();
            if (e.code() == ErrorCode::Timeout)
                ++a.failed_timeout;
            else
                ++a.failed_cancelled;
            return e.withContext("svc request from " + name_);
        }
    }
    // Then the request's own deadline (propagated, per-request; the
    // bound token's deadline was already consulted above).
    if (deadline.expired()) {
        ++a.failed_timeout;
        return Error::timeout("request deadline exceeded before "
                              "admission (" + name_ + ")");
    }
    // Quota before the in-flight cap: the bucket must see every
    // request of its tenant's stream so its verdicts stay
    // schedule-independent (svc/admission.h).
    AdmitDecision d =
        svc_->admission().checkQuota(bucket_, kind, is_write);
    switch (d) {
      case AdmitDecision::ShedQuota:
        ++a.shed_quota;
        return Error::overloaded(
            "tenant " + name_ + " over quota (policy " +
            shedPolicyName(svc_->admission().config().policy) + ")");
      case AdmitDecision::ShedWrite:
        ++a.shed_writes;
        return Error::overloaded(
            "tenant " + name_ + " over quota: write shed (policy " +
            shedPolicyName(svc_->admission().config().policy) + ")");
      case AdmitDecision::Degrade:
        // Counted at verdict time, not completion: the verdict is a
        // pure function of the tenant's stream, so the counter stays
        // schedule-independent even when the in-flight gate later
        // bounces the op (which lands in shed_inflight instead).
        ++a.degraded;
        break;
      case AdmitDecision::Admit:
        break;
    }
    Expected<AdmissionController::InflightGuard> slot =
        svc_->admission().tryEnter();
    if (!slot.ok()) {
        ++a.shed_inflight;
        Error e = slot.error();
        return e.withContext("svc request from " + name_);
    }
    // Last look before the critical section: ops past this point
    // run to completion (cancelling mid-operation would tear the
    // engine's per-set serialization).
    if (cancel_) {
        Expected<void> alive = cancel_->checkpoint();
        if (!alive.ok()) {
            Error e = alive.takeError();
            if (e.code() == ErrorCode::Timeout)
                ++a.failed_timeout;
            else
                ++a.failed_cancelled;
            return e.withContext("svc request from " + name_);
        }
    }
    if (deadline.expired()) {
        ++a.failed_timeout;
        return Error::timeout("request deadline exceeded awaiting "
                              "admission (" + name_ + ")");
    }
    OpResult r = d == AdmitDecision::Degrade
                     ? finish(svc_->engine().probe(saltedBlock(b)))
                     : finish(svc_->engine().apply(
                           kind, saltedBlock(b), is_write));
    ++a.completed;
    return Expected<OpResult>(r);
}

std::uint64_t
Session::quotaTokens() const
{
    return bucket_.tokens(svc_->admission().config());
}

OpResult
Session::probeAddr(trace::Addr a)
{
    return probe(svc_->geom().blockAddrOf(a));
}

OpResult
Session::accessAddr(trace::Addr a, bool is_write)
{
    return access(svc_->geom().blockAddrOf(a), is_write);
}

// --- CacheService ------------------------------------------------

CacheService::CacheService(std::unique_ptr<ConcurrentCache> engine,
                           const SvcConfig &cfg, MemBudget *budget)
    : cfg_(cfg), budget_(budget), engine_(std::move(engine)),
      admission_(cfg.admission)
{}

Expected<std::unique_ptr<CacheService>>
CacheService::create(const mem::CacheGeometry &geom,
                     const SvcConfig &cfg, MemBudget *budget)
{
    if (cfg.tenant_salt_bits > geom.fullTagBits())
        return Error::usage(
            "tenant_salt_bits exceeds the geometry's tag width (" +
            std::to_string(geom.fullTagBits()) +
            " bits): the salt would corrupt set indexing");
    Expected<std::unique_ptr<ConcurrentCache>> engine =
        ConcurrentCache::create(geom, cfg.engine, budget);
    if (!engine.ok())
        return engine.error();
    return std::unique_ptr<CacheService>(
        new CacheService(engine.take(), cfg, budget));
}

Expected<Session *>
CacheService::openSession(std::string name)
{
    std::lock_guard<std::mutex> g(open_mutex_);
    std::uint32_t tenant =
        static_cast<std::uint32_t>(sessions_.size());
    if (name.empty())
        name = "tenant-" + std::to_string(tenant);
    std::size_t cap =
        cfg_.record_history ? cfg_.history_capacity : 0;
    std::uint64_t bytes =
        sizeof(Session) +
        static_cast<std::uint64_t>(cap) * sizeof(HistoryEvent);
    Expected<MemCharge> charge =
        MemCharge::charge(budget_, bytes, "svc session " + name);
    if (!charge.ok())
        return charge.error();
    sessions_.emplace_back(std::unique_ptr<Session>(
        new Session(this, tenant, std::move(name), cap,
                    charge.take())));
    sessions_.back()->bucket_ = admission_.makeBucket(tenant);
    return sessions_.back().get();
}

std::size_t
CacheService::sessionCount() const
{
    std::lock_guard<std::mutex> g(open_mutex_);
    return sessions_.size();
}

const Session &
CacheService::session(std::uint32_t tenant) const
{
    std::lock_guard<std::mutex> g(open_mutex_);
    panicIf(tenant >= sessions_.size(), "bad tenant id");
    return *sessions_[tenant];
}

TenantStats
CacheService::totalStats() const
{
    std::lock_guard<std::mutex> g(open_mutex_);
    TenantStats total;
    for (const auto &s : sessions_)
        total.merge(s->stats());
    return total;
}

std::vector<HistoryEvent>
CacheService::collectHistory(bool *overflowed) const
{
    std::lock_guard<std::mutex> g(open_mutex_);
    std::vector<HistoryEvent> all;
    bool dropped = false;
    for (const auto &s : sessions_) {
        const HistoryLog &log = s->history();
        all.insert(all.end(), log.events().begin(),
                   log.events().end());
        dropped = dropped || log.overflowed();
    }
    if (overflowed)
        *overflowed = dropped;
    return all;
}

std::uint64_t
CacheService::footprintBytes() const
{
    std::lock_guard<std::mutex> g(open_mutex_);
    std::uint64_t bytes = engine_->footprintBytes();
    for (const auto &s : sessions_)
        bytes += sizeof(Session) + s->history().footprintBytes();
    return bytes;
}

} // namespace svc
} // namespace assoc
