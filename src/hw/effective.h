/**
 * @file
 * Effective access time: the trade the paper's introduction poses.
 *
 * "For wider associativity to be preferred, the added delay for
 * these additional probes must be more than offset by the time
 * saved servicing fewer misses." This module composes the three
 * ingredients the rest of the library produces —
 *
 *   1. the tag-path timing of an implementation (Table 2 model),
 *   2. its measured probe counts (ProbeMeter),
 *   3. the hierarchy's miss ratios,
 *
 * — into an average time per level-two request and per processor
 * reference, so the direct-mapped-vs-cheap-associative crossover
 * can be located as the miss penalty grows (bench_crossover).
 */

#ifndef ASSOC_HW_EFFECTIVE_H
#define ASSOC_HW_EFFECTIVE_H

#include "hw/impl_model.h"

namespace assoc {
namespace hw {

/** System-level timing parameters around the level-two cache. */
struct SystemTimings
{
    /** Level-one hit time (processor-side), ns. */
    double l1_hit_ns = 40.0;
    /** Main-memory service time for a level-two miss, ns. This is
     *  the knob that decides the crossover: multiprocessor
     *  interconnects make it large. */
    double memory_ns = 600.0;
};

/** Measured inputs of one (implementation, configuration) pair. */
struct EffectiveInputs
{
    /** Mean *extra* serial probes on a level-two hit (x or y in
     *  Table 2; 0 for single-probe implementations). */
    double extra_hit_probes = 0.0;
    /** Mean extra serial probes on a level-two miss. */
    double extra_miss_probes = 0.0;
    /** Level-one miss ratio (fraction of processor refs). */
    double l1_miss_ratio = 0.0;
    /** Level-two local miss ratio over read-ins. */
    double l2_miss_ratio = 0.0;
};

/** Composed results. */
struct EffectiveResult
{
    double l2_hit_ns = 0.0;  ///< mean time to service an L2 hit
    double l2_miss_ns = 0.0; ///< ... an L2 miss (includes memory)
    double l2_request_ns = 0.0; ///< mean over the L2 request mix
    /** Mean time per processor reference. */
    double per_ref_ns = 0.0;
};

/**
 * Compose the effective access time of @p impl under @p in and
 * @p sys.
 */
EffectiveResult effectiveAccess(const ImplSpec &impl,
                                const EffectiveInputs &in,
                                const SystemTimings &sys);

} // namespace hw
} // namespace assoc

#endif // ASSOC_HW_EFFECTIVE_H
