/**
 * @file
 * Memory-chip catalog for the Table 2 trial implementations.
 *
 * The paper designs the tag memory and comparison logic for a cache
 * holding one million 24-bit tags out of late-1980s DRAM or SRAM
 * chips in hybrid packages; these are the chip parameters it quotes
 * (Table 2, "Memory Packages" section).
 */

#ifndef ASSOC_HW_RAM_SPEC_H
#define ASSOC_HW_RAM_SPEC_H

#include <string>

namespace assoc {
namespace hw {

/** RAM technology. */
enum class RamTech { Dram, Sram };

/** One memory package type. */
struct RamChip
{
    std::string organization; ///< e.g. "1Mx8", "256Kx(16,8)"
    RamTech tech = RamTech::Dram;

    double access_ns = 0.0;       ///< basic access time
    double cycle_ns = 0.0;        ///< basic cycle time
    double page_access_ns = 0.0;  ///< page-mode access (0 = n/a)
    double page_cycle_ns = 0.0;   ///< page-mode cycle (0 = n/a)

    bool hasPageMode() const { return page_access_ns > 0.0; }
};

/** Printable technology name. */
const char *ramTechName(RamTech tech);

} // namespace hw
} // namespace assoc

#endif // ASSOC_HW_RAM_SPEC_H
