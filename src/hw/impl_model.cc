#include "hw/impl_model.h"

#include <cstdio>

#include "util/logging.h"

namespace assoc {
namespace hw {

const char *
ramTechName(RamTech tech)
{
    return tech == RamTech::Dram ? "DRAM" : "SRAM";
}

const char *
implKindName(ImplKind kind)
{
    switch (kind) {
      case ImplKind::DirectMapped:
        return "Direct-Mapped";
      case ImplKind::Traditional:
        return "Traditional";
      case ImplKind::Mru:
        return "MRU";
      case ImplKind::Partial:
        return "Partial";
    }
    return "unknown";
}

double
ImplSpec::accessNs(double probes) const
{
    return access_base_ns + access_per_probe_ns * probes;
}

double
ImplSpec::cycleNs(double probes, double update_prob) const
{
    return cycle_base_ns + cycle_per_probe_ns * probes +
           cycle_per_update_ns * update_prob;
}

namespace {

std::string
affine(double base, double slope, const char *var)
{
    char buf[64];
    if (slope == 0.0) {
        std::snprintf(buf, sizeof(buf), "%g", base);
    } else {
        std::snprintf(buf, sizeof(buf), "%g+%g%s", base, slope, var);
    }
    return buf;
}

} // namespace

std::string
ImplSpec::accessExpr() const
{
    const char *var = kind == ImplKind::Mru ? "x" : "y";
    return affine(access_base_ns, access_per_probe_ns, var);
}

std::string
ImplSpec::cycleExpr() const
{
    if (kind == ImplKind::Mru && cycle_per_update_ns != 0.0) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%g+%g(x+u)", cycle_base_ns,
                      cycle_per_probe_ns);
        return buf;
    }
    const char *var = kind == ImplKind::Mru ? "x" : "y";
    return affine(cycle_base_ns, cycle_per_probe_ns, var);
}

Table2Catalog::Table2Catalog()
{
    // --- Dynamic RAM designs (Table 2, left half). ---
    RamChip dram_1mx8{"1Mx8", RamTech::Dram, 100, 190, 35, 35};
    RamChip dram_1mx8_nopage{"1Mx8", RamTech::Dram, 100, 190, 0, 0};
    RamChip dram_256kx8{"256Kx8", RamTech::Dram, 80, 160, 0, 0};

    ImplSpec dm_dram;
    dm_dram.kind = ImplKind::DirectMapped;
    dm_dram.chip = dram_1mx8_nopage;
    dm_dram.access_base_ns = 136;
    dm_dram.cycle_base_ns = 230;
    dm_dram.packages = 18;

    ImplSpec trad_dram;
    trad_dram.kind = ImplKind::Traditional;
    trad_dram.chip = dram_256kx8;
    trad_dram.access_base_ns = 132;
    trad_dram.cycle_base_ns = 190;
    trad_dram.packages = 42;

    // Serial implementations exploit page-mode DRAM: probes after
    // the first to the same set cost only the page-mode cycle.
    ImplSpec mru_dram;
    mru_dram.kind = ImplKind::Mru;
    mru_dram.chip = dram_1mx8;
    mru_dram.access_base_ns = 150;
    mru_dram.access_per_probe_ns = 50;
    mru_dram.cycle_base_ns = 250;
    mru_dram.cycle_per_probe_ns = 50;
    mru_dram.cycle_per_update_ns = 50;
    mru_dram.packages = 22;

    ImplSpec part_dram;
    part_dram.kind = ImplKind::Partial;
    part_dram.chip = dram_1mx8;
    part_dram.access_base_ns = 150;
    part_dram.access_per_probe_ns = 50;
    part_dram.cycle_base_ns = 250;
    part_dram.cycle_per_probe_ns = 50;
    part_dram.packages = 21;

    dram_ = {dm_dram, trad_dram, mru_dram, part_dram};

    // --- Static RAM designs (Table 2, right half). ---
    RamChip sram_1mx4{"1Mx4", RamTech::Sram, 40, 40, 0, 0};
    RamChip sram_256k{"256Kx(16,8)", RamTech::Sram, 40, 40, 0, 0};

    ImplSpec dm_sram;
    dm_sram.kind = ImplKind::DirectMapped;
    dm_sram.chip = sram_1mx4;
    dm_sram.access_base_ns = 61;
    dm_sram.cycle_base_ns = 85;
    dm_sram.packages = 20;

    ImplSpec trad_sram;
    trad_sram.kind = ImplKind::Traditional;
    trad_sram.chip = sram_256k;
    trad_sram.access_base_ns = 84;
    trad_sram.cycle_base_ns = 100;
    trad_sram.packages = 37;

    ImplSpec mru_sram;
    mru_sram.kind = ImplKind::Mru;
    mru_sram.chip = sram_1mx4;
    mru_sram.access_base_ns = 65;
    mru_sram.access_per_probe_ns = 55;
    mru_sram.cycle_base_ns = 75;
    mru_sram.cycle_per_probe_ns = 55;
    mru_sram.cycle_per_update_ns = 55;
    mru_sram.packages = 25;

    ImplSpec part_sram;
    part_sram.kind = ImplKind::Partial;
    part_sram.chip = sram_1mx4;
    part_sram.access_base_ns = 65;
    part_sram.access_per_probe_ns = 55;
    part_sram.cycle_base_ns = 75;
    part_sram.cycle_per_probe_ns = 55;
    part_sram.packages = 24;

    sram_ = {dm_sram, trad_sram, mru_sram, part_sram};
}

const ImplSpec &
Table2Catalog::get(ImplKind kind, RamTech tech) const
{
    for (const ImplSpec &spec : all(tech))
        if (spec.kind == kind)
            return spec;
    panic("design missing from the Table 2 catalog");
}

const std::vector<ImplSpec> &
Table2Catalog::all(RamTech tech) const
{
    return tech == RamTech::Dram ? dram_ : sram_;
}

double
effectiveAccessNs(const ImplSpec &spec, double mean_extra_probes)
{
    return spec.accessNs(mean_extra_probes);
}

} // namespace hw
} // namespace assoc
