#include "hw/effective.h"

#include "util/logging.h"

namespace assoc {
namespace hw {

EffectiveResult
effectiveAccess(const ImplSpec &impl, const EffectiveInputs &in,
                const SystemTimings &sys)
{
    fatalIf(in.l1_miss_ratio < 0.0 || in.l1_miss_ratio > 1.0,
            "level-one miss ratio out of [0, 1]");
    fatalIf(in.l2_miss_ratio < 0.0 || in.l2_miss_ratio > 1.0,
            "level-two miss ratio out of [0, 1]");

    EffectiveResult res;
    res.l2_hit_ns = impl.accessNs(in.extra_hit_probes);
    res.l2_miss_ns =
        impl.accessNs(in.extra_miss_probes) + sys.memory_ns;
    res.l2_request_ns =
        res.l2_hit_ns * (1.0 - in.l2_miss_ratio) +
        res.l2_miss_ns * in.l2_miss_ratio;
    res.per_ref_ns =
        sys.l1_hit_ns + in.l1_miss_ratio * res.l2_request_ns;
    return res;
}

} // namespace hw
} // namespace assoc
