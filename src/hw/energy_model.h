/**
 * @file
 * Per-probe energy model: the cost axis the 1989 paper could not
 * measure, added by the way-memoization line of work (Ishihara &
 * Fallah, PAPERS.md). Where impl_model.h prices a scheme's probes
 * in nanoseconds, this module prices the *events* underneath them
 * (core::ProbeEvents) in nanojoules:
 *
 *   - a full t-bit tag-array read vs a k-bit partial-field read,
 *   - a full-width tag compare,
 *   - an MRU-list read,
 *   - a memo/prediction-table access,
 *   - a data-array way read,
 *   - a miss fill from the next level.
 *
 * The data array is modeled as phased (tag resolution first, then
 * exactly one data-way read per hit; write-backs write one way),
 * the standard level-two organization — so the energy differences
 * between schemes come entirely from their tag-path events.
 *
 * energyDelay() composes the resulting energy per level-two request
 * with effective.h's delay into the energy·delay product per
 * request, the figure of merit bench_energy tabulates across the
 * scheme zoo (docs/ENERGY.md).
 */

#ifndef ASSOC_HW_ENERGY_MODEL_H
#define ASSOC_HW_ENERGY_MODEL_H

#include <cstdint>

#include "hw/effective.h"

namespace assoc {
namespace hw {

/** Per-event energies, nJ. */
struct EnergySpec
{
    double tag_read_nj = 0.0;    ///< one full t-bit tag-array read
    double field_read_nj = 0.0;  ///< one k-bit partial-field read
    double tag_compare_nj = 0.0; ///< one full-width tag compare
    double list_read_nj = 0.0;   ///< one MRU-list read
    double memo_access_nj = 0.0; ///< one memo-table read or write
    double data_read_nj = 0.0;   ///< one data-array way read/write
    double miss_nj = 0.0;        ///< one fill from the next level

    /** Representative on-chip SRAM numbers (relative magnitudes are
     *  what matter: a data way costs several tag reads, a memo
     *  access a fraction of one, a miss dwarfs everything). */
    static EnergySpec defaultSram();
};

/**
 * One run's event totals for one scheme, mirroring
 * core::ProbeStats: events from the meter's EventTotals, the
 * access/hit counts from its accumulators. Kept as plain integers
 * so hw stays independent of the core layer.
 */
struct EnergyEvents
{
    std::uint64_t tag_reads = 0;
    std::uint64_t field_reads = 0;
    std::uint64_t tag_compares = 0;
    std::uint64_t list_reads = 0;
    std::uint64_t memo_reads = 0;
    std::uint64_t memo_writes = 0;

    std::uint64_t accesses = 0; ///< metered level-two accesses
    std::uint64_t hits = 0;     ///< data-way reads (phased array)
    std::uint64_t misses = 0;   ///< fills from the next level
};

/** Where the energy went, plus the per-access mean. */
struct EnergyBreakdown
{
    double tag_nj = 0.0;     ///< tag-array reads
    double field_nj = 0.0;   ///< partial-field reads
    double compare_nj = 0.0; ///< tag compares
    double list_nj = 0.0;    ///< MRU-list reads
    double memo_nj = 0.0;    ///< memo-table traffic
    double data_nj = 0.0;    ///< data-array reads
    double miss_nj = 0.0;    ///< miss fills

    double total_nj = 0.0;      ///< sum of the above
    double per_access_nj = 0.0; ///< total / accesses (0 when idle)
};

/** Price @p ev under @p spec. */
EnergyBreakdown energyOf(const EnergySpec &spec,
                         const EnergyEvents &ev);

/** Energy·delay per level-two request. */
struct EnergyDelay
{
    double energy_nj = 0.0; ///< mean energy per request
    double delay_ns = 0.0;  ///< mean delay per request
    double edp_nj_ns = 0.0; ///< their product
};

/**
 * Compose @p e's per-access energy with @p t's per-request delay
 * (effectiveAccess) into the energy·delay product.
 */
EnergyDelay energyDelay(const EnergyBreakdown &e,
                        const EffectiveResult &t);

} // namespace hw
} // namespace assoc

#endif // ASSOC_HW_ENERGY_MODEL_H
