/**
 * @file
 * Table 2's implementation cost model.
 *
 * For each of the four tag-path implementations (direct-mapped,
 * traditional a-way, MRU and partial compare) in each technology
 * (DRAM / SRAM), the model records the chip used, the package count
 * and affine timing expressions:
 *
 *      access(n) = access_base + access_per_probe * n
 *      cycle(n)  = cycle_base  + cycle_per_probe  * n
 *
 * where n is the implementation's probe variable: "x" for MRU (the
 * expected probes after reading the MRU list), "y" for partial
 * (step-2 probes), and 0 for the single-probe implementations.
 * The MRU cycle expression additionally pays per MRU-list update
 * ("u", the probability the ordering information changed).
 *
 * Combining these expressions with probe counts measured by the
 * simulator yields effective tag-path access times: the missing
 * piece that lets the cost/performance trade of Section 2 be
 * evaluated end-to-end.
 */

#ifndef ASSOC_HW_IMPL_MODEL_H
#define ASSOC_HW_IMPL_MODEL_H

#include <string>
#include <vector>

#include "hw/ram_spec.h"

namespace assoc {
namespace hw {

/** The four tag-path implementations of Table 2. */
enum class ImplKind {
    DirectMapped,
    Traditional,
    Mru,
    Partial,
};

/** Printable implementation name. */
const char *implKindName(ImplKind kind);

/** One column of Table 2. */
struct ImplSpec
{
    ImplKind kind = ImplKind::DirectMapped;
    RamChip chip;

    double access_base_ns = 0.0;
    double access_per_probe_ns = 0.0;
    double cycle_base_ns = 0.0;
    double cycle_per_probe_ns = 0.0;
    /** Extra cycle cost per MRU-list update (MRU only). */
    double cycle_per_update_ns = 0.0;

    int packages = 0;

    /**
     * Access time for @p probes extra serial probes (x or y; 0 for
     * the single-probe implementations).
     */
    double accessNs(double probes = 0.0) const;

    /**
     * Cycle time for @p probes extra serial probes and an MRU-list
     * update probability @p update_prob.
     */
    double cycleNs(double probes = 0.0, double update_prob = 0.0) const;

    /** The paper's symbolic rendering, e.g. "150+50x". */
    std::string accessExpr() const;
    std::string cycleExpr() const;
};

/**
 * The catalog: the eight designs of Table 2 (4 implementations x
 * 2 technologies) for a 4-way set-associative cache holding one
 * million 24-bit tags.
 */
class Table2Catalog
{
  public:
    Table2Catalog();

    /** Fetch one design. */
    const ImplSpec &get(ImplKind kind, RamTech tech) const;

    /** All designs in Table 2 column order per technology. */
    const std::vector<ImplSpec> &all(RamTech tech) const;

  private:
    std::vector<ImplSpec> dram_;
    std::vector<ImplSpec> sram_;
};

/**
 * Derived metric: mean tag-path access time given measured probe
 * statistics. @p mean_extra_probes is the measured mean of the
 * implementation's probe variable (x or y).
 */
double effectiveAccessNs(const ImplSpec &spec, double mean_extra_probes);

} // namespace hw
} // namespace assoc

#endif // ASSOC_HW_IMPL_MODEL_H
