#include "hw/energy_model.h"

namespace assoc {
namespace hw {

EnergySpec
EnergySpec::defaultSram()
{
    // Relative magnitudes follow the way-memoization literature's
    // SRAM breakdowns: a data-way read costs a few tag reads, a
    // k-bit field read a fraction of a full tag read, a memo-table
    // access less than either, and a miss fill dominates all
    // on-chip events by more than an order of magnitude.
    EnergySpec s;
    s.tag_read_nj = 0.050;
    s.field_read_nj = 0.015;
    s.tag_compare_nj = 0.010;
    s.list_read_nj = 0.020;
    s.memo_access_nj = 0.012;
    s.data_read_nj = 0.200;
    s.miss_nj = 5.0;
    return s;
}

EnergyBreakdown
energyOf(const EnergySpec &spec, const EnergyEvents &ev)
{
    EnergyBreakdown b;
    b.tag_nj = spec.tag_read_nj * static_cast<double>(ev.tag_reads);
    b.field_nj =
        spec.field_read_nj * static_cast<double>(ev.field_reads);
    b.compare_nj =
        spec.tag_compare_nj * static_cast<double>(ev.tag_compares);
    b.list_nj =
        spec.list_read_nj * static_cast<double>(ev.list_reads);
    b.memo_nj = spec.memo_access_nj *
                static_cast<double>(ev.memo_reads + ev.memo_writes);
    b.data_nj = spec.data_read_nj * static_cast<double>(ev.hits);
    b.miss_nj = spec.miss_nj * static_cast<double>(ev.misses);
    b.total_nj = b.tag_nj + b.field_nj + b.compare_nj + b.list_nj +
                 b.memo_nj + b.data_nj + b.miss_nj;
    b.per_access_nj =
        ev.accesses ? b.total_nj / static_cast<double>(ev.accesses)
                    : 0.0;
    return b;
}

EnergyDelay
energyDelay(const EnergyBreakdown &e, const EffectiveResult &t)
{
    EnergyDelay d;
    d.energy_nj = e.per_access_nj;
    d.delay_ns = t.l2_request_ns;
    d.edp_nj_ns = d.energy_nj * d.delay_ns;
    return d;
}

} // namespace hw
} // namespace assoc
