#include "check/svc_check.h"

#include <algorithm>
#include <exception>
#include <ostream>
#include <sstream>
#include <thread>

#include "check/fuzz.h"
#include "util/rng.h"

namespace assoc {
namespace check {

namespace {

/** Format "geom policy stripes threads ..." for failure reports. */
std::string
caseLabel(const SvcFuzzCase &c)
{
    std::ostringstream os;
    os << "svc " << c.geom.name() << " policy="
       << mem::replPolicyName(c.cfg.engine.policy)
       << " stripes=" << c.cfg.engine.max_stripes
       << " retries=" << c.cfg.engine.optimistic_retries
       << " salt=" << c.cfg.tenant_salt_bits
       << " threads=" << c.threads << " ops=" << c.ops_per_thread
       << "x" << c.threads << " blocks=" << c.block_space;
    return os.str();
}

/**
 * Replay one history event against the reference cache, mirroring
 * ConcurrentCache's op semantics exactly, and compare every
 * recorded field. Returns a non-empty message on mismatch.
 */
std::string
replayEvent(mem::WriteBackCache &ref, const svc::HistoryEvent &e)
{
    const svc::OpResult &op = e.op;
    std::ostringstream bad;
    unsigned probes = 0;
    int way = ref.probeRelaxed(op.block, &probes);
    bool hit = way >= 0;

    auto expect = [&](bool cond, const char *what) {
        if (!cond)
            bad << " " << what;
    };

    switch (op.kind) {
      case svc::OpKind::Probe:
        expect(op.hit == hit, "hit");
        expect(op.way == way, "way");
        expect(op.probes == probes, "probes");
        expect(!op.mutated, "mutated");
        break;
      case svc::OpKind::Lookup:
        expect(op.hit == hit, "hit");
        expect(op.way == way, "way");
        expect(op.probes == probes, "probes");
        expect(op.mutated == hit, "mutated");
        if (hit)
            ref.touch(op.set, way);
        break;
      case svc::OpKind::Fill:
        expect(op.probes == probes, "probes");
        expect(op.mutated, "mutated");
        if (hit) {
            expect(op.hit, "hit");
            expect(op.way == way, "way");
            expect(!op.filled, "filled");
            ref.touch(op.set, way);
            if (op.is_write)
                ref.setDirty(op.set, way);
        } else {
            expect(!op.hit, "hit");
            expect(op.filled, "filled");
            mem::FillResult f = ref.fill(op.block, op.is_write);
            expect(op.way == f.way, "way");
            expect(op.evicted == f.evicted, "evicted");
            expect(op.victim_block == f.victim_block, "victim");
            expect(op.victim_dirty == f.victim_dirty,
                   "victim_dirty");
        }
        break;
      case svc::OpKind::Invalidate:
        expect(op.hit == hit, "hit");
        expect(op.way == way, "way");
        expect(op.probes == probes, "probes");
        expect(op.mutated == hit, "mutated");
        if (hit) {
            bool vd = ref.invalidate(op.block);
            expect(op.victim_dirty == vd, "victim_dirty");
        }
        break;
      case svc::OpKind::Access:
        expect(op.hit == hit, "hit");
        expect(op.probes == probes, "probes");
        expect(op.mutated, "mutated");
        if (hit) {
            expect(op.way == way, "way");
            ref.touch(op.set, way);
            if (op.is_write)
                ref.setDirty(op.set, way);
        } else {
            expect(op.filled, "filled");
            mem::FillResult f = ref.fill(op.block, op.is_write);
            expect(op.way == f.way, "way");
            expect(op.evicted == f.evicted, "evicted");
            expect(op.victim_block == f.victim_block, "victim");
            expect(op.victim_dirty == f.victim_dirty,
                   "victim_dirty");
        }
        break;
    }

    std::string fields = bad.str();
    if (fields.empty())
        return "";
    std::ostringstream os;
    os << "replay mismatch (" << svc::opKindName(op.kind)
       << " tenant=" << e.tenant << " block=0x" << std::hex
       << op.block << std::dec << " set=" << op.set
       << " version=" << op.version << "): wrong" << fields;
    return os.str();
}

} // namespace

std::string
SvcFuzzCase::describe() const
{
    return caseLabel(*this);
}

SvcFuzzCase
sampleSvcCase(std::uint64_t seed, std::uint64_t index,
              unsigned threads_override)
{
    SvcFuzzCase c;
    Pcg32 rng(seed, 0x57c0 + index);
    c.case_seed = rng.next64();

    // Small, contended geometries: few sets, modest associativity.
    static const std::uint32_t kSets[] = {4, 8, 16, 32};
    static const std::uint32_t kAssoc[] = {1, 2, 4, 8, 16};
    std::uint32_t sets = kSets[rng.below(4)];
    std::uint32_t assoc = kAssoc[rng.below(5)];
    std::uint32_t block = rng.chance(0.5) ? 16 : 32;
    c.geom = mem::CacheGeometry(sets * assoc * block, block, assoc);

    static const mem::ReplPolicy kPolicies[] = {
        mem::ReplPolicy::Lru, mem::ReplPolicy::Fifo,
        mem::ReplPolicy::TreePlru};
    c.cfg.engine.policy = kPolicies[rng.below(3)];
    static const unsigned kStripes[] = {0, 0, 1, 2, 8};
    c.cfg.engine.max_stripes = kStripes[rng.below(5)];
    static const unsigned kRetries[] = {0, 2, 8};
    c.cfg.engine.optimistic_retries = kRetries[rng.below(3)];
    c.cfg.tenant_salt_bits = rng.chance(0.25) ? 2 : 0;

    c.threads =
        threads_override != 0 ? threads_override : 2 + rng.below(3);
    c.ops_per_thread = 500 + rng.below(1500);
    std::uint32_t capacity = sets * assoc;
    static const std::uint32_t kOver[] = {1, 2, 4};
    c.block_space = capacity * kOver[rng.below(3)];
    if (c.block_space < 2)
        c.block_space = 2;

    c.cfg.record_history = true;
    c.cfg.history_capacity =
        static_cast<std::size_t>(c.ops_per_thread);
    return c;
}

std::vector<SvcOpSpec>
svcOpStream(const SvcFuzzCase &c, unsigned thread)
{
    Pcg32 rng(c.case_seed, 0x0b5 + thread);
    std::vector<SvcOpSpec> ops;
    ops.reserve(c.ops_per_thread);
    for (std::uint64_t i = 0; i < c.ops_per_thread; ++i) {
        SvcOpSpec op;
        std::uint32_t k = rng.below(100);
        if (k < 30)
            op.kind = svc::OpKind::Probe;
        else if (k < 50)
            op.kind = svc::OpKind::Lookup;
        else if (k < 65)
            op.kind = svc::OpKind::Fill;
        else if (k < 75)
            op.kind = svc::OpKind::Invalidate;
        else
            op.kind = svc::OpKind::Access;
        op.block = rng.below(c.block_space);
        op.is_write = rng.chance(0.3);
        ops.push_back(op);
    }
    return ops;
}

void
checkSvcHistory(const mem::CacheGeometry &geom,
                mem::ReplPolicy policy, unsigned stripes,
                const std::vector<svc::HistoryEvent> &events,
                const mem::WriteBackCache *final_state,
                ViolationLog &log)
{
    // Bucket per stripe, then order each bucket by version with
    // mutations before the reads that observed their result.
    std::vector<std::vector<const svc::HistoryEvent *>> buckets(
        stripes);
    for (const svc::HistoryEvent &e : events) {
        unsigned s = e.op.set & (stripes - 1);
        buckets[s].push_back(&e);
    }

    mem::WriteBackCache ref(geom, policy);
    for (unsigned s = 0; s < stripes; ++s) {
        auto &bucket = buckets[s];
        std::stable_sort(
            bucket.begin(), bucket.end(),
            [](const svc::HistoryEvent *a,
               const svc::HistoryEvent *b) {
                if (a->op.version != b->op.version)
                    return a->op.version < b->op.version;
                return a->op.mutated && !b->op.mutated;
            });

        // Mutation versions must run 1, 2, ..., K: a duplicate
        // means two writers shared a critical section, a gap means
        // a mutation escaped its stripe's seqlock.
        std::uint64_t expected_next = 1;
        bool version_ok = true;
        for (const svc::HistoryEvent *e : bucket) {
            if (!e->op.mutated)
                continue;
            if (version_ok && e->op.version != expected_next) {
                std::ostringstream os;
                os << "stripe " << s << ": mutation version "
                   << e->op.version << " where " << expected_next
                   << " was expected ("
                   << (e->op.version < expected_next ? "duplicate"
                                                     : "gap")
                   << ")";
                log.add(os.str());
                version_ok = false;
            }
            expected_next = e->op.version + 1;
        }

        for (const svc::HistoryEvent *e : bucket) {
            std::string msg = replayEvent(ref, *e);
            if (!msg.empty())
                log.add(msg);
        }
    }

    if (!final_state)
        return;
    // The replayed reference must end bit-identical to the engine.
    for (std::uint32_t set = 0; set < geom.sets(); ++set) {
        for (unsigned w = 0; w < geom.assoc(); ++w) {
            mem::Line a = ref.line(set, static_cast<int>(w));
            mem::Line b =
                final_state->line(set, static_cast<int>(w));
            if (a.valid != b.valid ||
                (a.valid && (a.block != b.block ||
                             a.dirty != b.dirty))) {
                std::ostringstream os;
                os << "final state diverges at set " << set
                   << " way " << w << ": replay ("
                   << (a.valid ? "valid" : "invalid") << " 0x"
                   << std::hex << a.block << std::dec
                   << (a.dirty ? " dirty" : "") << ") vs engine ("
                   << (b.valid ? "valid" : "invalid") << " 0x"
                   << std::hex << b.block << std::dec
                   << (b.dirty ? " dirty" : "") << ")";
                log.add(os.str());
            }
        }
        if (ref.mruOrder(set) != final_state->mruOrder(set)) {
            std::ostringstream os;
            os << "final MRU order diverges at set " << set;
            log.add(os.str());
        }
    }
}

void
checkStatsMerge(const svc::TenantStats &merged,
                const svc::TenantStats &reference, ViolationLog &log)
{
    if (merged.identicalOutcomes(reference))
        return;
    std::ostringstream os;
    os << "stats merge diverges from the serial run: "
       << "ops " << merged.ops << " vs " << reference.ops
       << ", hits " << merged.hits() << " vs " << reference.hits()
       << ", evictions " << merged.evictions << " vs "
       << reference.evictions << ", hit-probe sum "
       << merged.hit_probes.sum() << " vs "
       << reference.hit_probes.sum() << ", miss-probe sum "
       << merged.miss_probes.sum() << " vs "
       << reference.miss_probes.sum();
    log.add(os.str());
}

void
checkAdmissionConservation(const svc::AdmissionStats &a,
                           const std::string &who, ViolationLog &log)
{
    if (a.conservationHolds())
        return;
    std::ostringstream os;
    os << "admission conservation broken for " << who << ": admitted "
       << a.admitted << " != completed " << a.completed << " + shed "
       << a.shed() << " (quota " << a.shed_quota << ", writes "
       << a.shed_writes << ", inflight " << a.shed_inflight
       << ") + failed " << a.failed() << " (timeout "
       << a.failed_timeout << ", cancelled " << a.failed_cancelled
       << ")";
    log.add(os.str());
}

SvcCaseResult
runSvcCase(const SvcFuzzCase &c)
{
    SvcCaseResult out;
    out.digest = kDigestInit;
    digestMix(out.digest, c.case_seed);

    try {
        // --- Phase A: contended run + serializability replay ----
        Expected<std::unique_ptr<svc::CacheService>> svcE =
            svc::CacheService::create(c.geom, c.cfg, nullptr);
        if (!svcE.ok())
            throwError(svcE.error());
        std::unique_ptr<svc::CacheService> service = svcE.take();

        std::vector<svc::Session *> sessions;
        for (unsigned t = 0; t < c.threads; ++t) {
            Expected<svc::Session *> s = service->openSession();
            if (!s.ok())
                throwError(s.error());
            sessions.push_back(s.take());
        }

        std::vector<std::string> thread_errors(c.threads);
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < c.threads; ++t) {
            workers.emplace_back([&, t]() {
                try {
                    for (const SvcOpSpec &op : svcOpStream(c, t))
                        sessions[t]->apply(op.kind, op.block,
                                           op.is_write);
                } catch (const std::exception &ex) {
                    thread_errors[t] = ex.what();
                }
            });
        }
        for (std::thread &w : workers)
            w.join();
        for (unsigned t = 0; t < c.threads; ++t)
            if (!thread_errors[t].empty())
                out.log.add("worker " + std::to_string(t) +
                            " threw: " + thread_errors[t]);
        out.ops += c.threads * c.ops_per_thread;

        bool overflowed = false;
        std::vector<svc::HistoryEvent> events =
            service->collectHistory(&overflowed);
        if (overflowed)
            out.log.add("history overflowed despite exact "
                        "per-session capacity");
        checkSvcHistory(c.geom, c.cfg.engine.policy,
                        service->engine().stripes(), events,
                        &service->engine().cache(), out.log);

        // --- Phase B: partitioned replay vs serial reference ----
        // One combined stream; the tenant salt is disabled so every
        // session addresses the same blocks.
        std::vector<SvcOpSpec> all;
        for (unsigned t = 0; t < c.threads; ++t) {
            std::vector<SvcOpSpec> s = svcOpStream(c, t);
            all.insert(all.end(), s.begin(), s.end());
        }

        svc::SvcConfig dcfg = c.cfg;
        dcfg.record_history = false;
        dcfg.tenant_salt_bits = 0;

        Expected<std::unique_ptr<svc::CacheService>> serialE =
            svc::CacheService::create(c.geom, dcfg, nullptr);
        if (!serialE.ok())
            throwError(serialE.error());
        std::unique_ptr<svc::CacheService> serial = serialE.take();
        Expected<svc::Session *> ses = serial->openSession();
        if (!ses.ok())
            throwError(ses.error());
        svc::Session *serial_session = ses.take();
        for (const SvcOpSpec &op : all)
            serial_session->apply(op.kind, op.block, op.is_write);

        Expected<std::unique_ptr<svc::CacheService>> partE =
            svc::CacheService::create(c.geom, dcfg, nullptr);
        if (!partE.ok())
            throwError(partE.error());
        std::unique_ptr<svc::CacheService> part = partE.take();
        std::vector<svc::Session *> psessions;
        for (unsigned t = 0; t < c.threads; ++t) {
            Expected<svc::Session *> s = part->openSession();
            if (!s.ok())
                throwError(s.error());
            psessions.push_back(s.take());
        }
        std::vector<std::string> perrors(c.threads);
        std::vector<std::thread> pworkers;
        for (unsigned t = 0; t < c.threads; ++t) {
            pworkers.emplace_back([&, t]() {
                try {
                    // Disjoint-by-set partition: thread t owns the
                    // sets congruent to t mod threads, in stream
                    // order — per-set op order matches the serial
                    // run exactly.
                    for (const SvcOpSpec &op : all) {
                        std::uint32_t set = c.geom.setOf(op.block);
                        if (set % c.threads == t)
                            psessions[t]->apply(op.kind, op.block,
                                                op.is_write);
                    }
                } catch (const std::exception &ex) {
                    perrors[t] = ex.what();
                }
            });
        }
        for (std::thread &w : pworkers)
            w.join();
        for (unsigned t = 0; t < c.threads; ++t)
            if (!perrors[t].empty())
                out.log.add("partition worker " + std::to_string(t) +
                            " threw: " + perrors[t]);
        out.ops += 2 * all.size();

        svc::TenantStats serial_total = serial->totalStats();
        checkStatsMerge(part->totalStats(), serial_total, out.log);

        // Digest only the serial outcomes: the contended phase's
        // hit/miss pattern is schedule-dependent by design.
        digestMix(out.digest, serial_total.ops);
        digestMix(out.digest, serial_total.hits());
        digestMix(out.digest, serial_total.evictions);
        digestMix(out.digest, serial_total.dirty_evictions);
        digestMix(out.digest, static_cast<std::uint64_t>(
                                  serial_total.hit_probes.sum()));
        digestMix(out.digest, static_cast<std::uint64_t>(
                                  serial_total.miss_probes.sum()));
    } catch (const std::exception &ex) {
        out.log.add(std::string("case threw: ") + ex.what());
    }
    return out;
}

std::string
svcReproCommand(std::uint64_t seed, std::uint64_t index,
                unsigned threads)
{
    return "fuzz_diff --threads=" + std::to_string(threads) +
           " --seed=" + std::to_string(seed) +
           " --config=" + std::to_string(index);
}

SvcFuzzSummary
runSvcFuzz(const SvcFuzzOptions &opt)
{
    SvcFuzzSummary out;
    std::uint64_t h = kDigestInit;
    const std::uint64_t begin =
        opt.have_only_case ? opt.only_case : 0;
    const std::uint64_t end =
        opt.have_only_case ? opt.only_case + 1 : opt.iterations;

    for (std::uint64_t i = begin; i < end; ++i) {
        const SvcFuzzCase c =
            sampleSvcCase(opt.seed, i, opt.threads);
        const SvcCaseResult r = runSvcCase(c);
        ++out.cases_run;
        out.ops += r.ops;
        digestMix(h, r.digest);

        if (opt.log && !opt.have_only_case && (i + 1) % 500 == 0)
            *opt.log << "svc fuzz: " << (i + 1) << "/"
                     << opt.iterations << " cases, " << out.ops
                     << " ops applied\n";

        if (r.log.ok())
            continue;

        SvcFuzzFailure f;
        f.index = i;
        f.case_seed = c.case_seed;
        f.description = c.describe();
        f.messages = r.log.messages();
        if (opt.log) {
            std::ostream &os = *opt.log;
            os << "FAIL svc case " << i << ": " << f.description
               << "\n";
            for (const std::string &m : f.messages)
                os << "  violation: " << m << "\n";
            if (r.log.count() >
                static_cast<std::uint64_t>(f.messages.size()))
                os << "  ... " << r.log.count()
                   << " violations total\n";
            os << "  repro: "
               << svcReproCommand(opt.seed, i, c.threads) << "\n";
        }
        out.failures.push_back(std::move(f));
        if (out.failures.size() >= opt.max_failures)
            break;
    }
    out.digest = h;
    return out;
}

} // namespace check
} // namespace assoc
