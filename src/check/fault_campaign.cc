#include "check/fault_campaign.h"

#include <cstdio>
#include <filesystem>
#include <ostream>
#include <unistd.h>

#include "exec/fault.h"
#include "exec/journal.h"
#include "exec/sweep.h"
#include "trace/atum_like.h"
#include "trace/bin_io.h"
#include "trace/din_io.h"
#include "trace/ftr_reader.h"
#include "trace/ftr_writer.h"
#include "trace/trace_file.h"
#include "util/error.h"
#include "util/io_fault.h"
#include "util/rng.h"

namespace assoc {
namespace check {

namespace {

namespace fs = std::filesystem;

/** The sixteen fault families, selected by case index % 16. */
enum class FaultKind {
    DinCorruptFailFast,
    DinCorruptSkip,
    DinCorruptStrict,
    BinTruncate,
    BinCorrupt,
    LookupThrow,
    TransientRetry,
    CancelResume,
    Hang,
    Slow,
    Oom,
    FtrCorrupt,
    FtrTruncate,
    FtrTornFooter,
    IoShortRead,
    IoError,
};

constexpr std::uint64_t kFaultKinds = 16;

const char *
kindName(FaultKind k)
{
    switch (k) {
      case FaultKind::DinCorruptFailFast:
        return "din-corrupt-failfast";
      case FaultKind::DinCorruptSkip:
        return "din-corrupt-skip";
      case FaultKind::DinCorruptStrict:
        return "din-corrupt-strict";
      case FaultKind::BinTruncate:
        return "bin-truncate";
      case FaultKind::BinCorrupt:
        return "bin-corrupt";
      case FaultKind::LookupThrow:
        return "lookup-throw";
      case FaultKind::TransientRetry:
        return "transient-retry";
      case FaultKind::CancelResume:
        return "cancel-resume";
      case FaultKind::Hang:
        return "hang";
      case FaultKind::Slow:
        return "slow";
      case FaultKind::Oom:
        return "oom";
      case FaultKind::FtrCorrupt:
        return "ftr-corrupt";
      case FaultKind::FtrTruncate:
        return "ftr-truncate";
      case FaultKind::FtrTornFooter:
        return "ftr-torn-footer";
      case FaultKind::IoShortRead:
        return "io-short-read";
      case FaultKind::IoError:
        return "io-error";
    }
    return "?";
}

/** True when @p e (or its context chain) mentions the spec hash. */
bool
mentionsSpecHash(const Error &e)
{
    return e.text().find("job spec hash") != std::string::npos;
}

/** Per-case scratch-file set, removed on scope exit. */
class Scratch
{
  public:
    explicit Scratch(const std::string &dir) : dir_(dir) {}

    ~Scratch()
    {
        std::error_code ec;
        for (const std::string &p : files_)
            fs::remove(p, ec);
    }

    std::string
    file(const std::string &name)
    {
        std::string p = (fs::path(dir_) / name).string();
        files_.push_back(p);
        return p;
    }

  private:
    std::string dir_;
    std::vector<std::string> files_;
};

/** Everything one case asserts; collects violations as strings. */
struct CaseCheck
{
    std::vector<std::string> violations;

    void
    require(bool ok, const std::string &what)
    {
        if (!ok)
            violations.push_back(what);
    }
};

/** A tiny deterministic source trace for the corruption cases. */
trace::AtumLikeConfig
smallTrace(std::uint64_t case_seed, std::uint64_t refs)
{
    trace::AtumLikeConfig cfg;
    cfg.seed = case_seed;
    cfg.segments = 1;
    cfg.refs_per_segment = refs;
    cfg.processes = 2;
    cfg.switch_mean = 50;
    return cfg;
}

/**
 * Drain @p src, bounded so a reader bug that loops forever shows up
 * as a violation instead of a hang. Returns references streamed.
 */
std::uint64_t
drainBounded(trace::TraceSource &src, std::uint64_t bound,
             CaseCheck &chk)
{
    trace::MemRef r;
    std::uint64_t n = 0;
    while (n <= bound && src.next(r))
        ++n;
    chk.require(n <= bound,
                "reader streamed past the record bound (runaway)");
    return n;
}

/** Post-stream contract every reader must satisfy. */
void
checkReaderContract(const trace::TraceSource &src, ErrorMode mode,
                    std::uint64_t max_skips, CaseCheck &chk)
{
    if (src.failed()) {
        ErrorCode c = src.error().code();
        chk.require(c == ErrorCode::Data || c == ErrorCode::Io,
                    std::string("reader error is ") +
                        errorCodeName(c) + ", want data or io");
        chk.require(!src.error().text().empty(),
                    "reader error has empty text");
    } else if (mode == ErrorMode::Skip) {
        chk.require(src.skippedRecords() <= max_skips,
                    "skip count exceeds the policy cap without an "
                    "error");
    }
    if (mode == ErrorMode::FailFast)
        chk.require(src.skippedRecords() == 0,
                    "fail-fast reader skipped records");
}

/** Flip bytes of a din file and stream it back under @p mode. */
void
caseDinCorrupt(Scratch &scratch, std::uint64_t case_seed,
               ErrorMode mode, CaseCheck &chk)
{
    Pcg32 rng(case_seed, /*stream=*/0x64696eULL);
    std::uint64_t refs = 100 + rng.below(400);
    trace::AtumLikeConfig cfg = smallTrace(case_seed, refs);
    trace::AtumLikeGenerator gen(cfg);

    std::string path = scratch.file("fault.din");
    std::uint64_t written = gen.totalRefs();
    trace::writeDin(gen, path);

    unsigned flips = 1 + rng.below(8);
    exec::FaultInjector::corruptBytes(path, case_seed ^ 0xd1d1ULL,
                                      flips);

    ErrorPolicy policy;
    policy.mode = mode;
    trace::DinTraceSource src(path, policy);
    // A flip can at most split one line in two, so the stream can
    // never grow by more than one record per flip.
    std::uint64_t streamed =
        drainBounded(src, written + flips, chk);
    checkReaderContract(src, mode, policy.max_skips, chk);
    if (src.failed())
        chk.require(streamed <= written + flips,
                    "failed reader over-delivered records");

    // reset() must replay the identical outcome.
    src.reset();
    std::uint64_t again =
        drainBounded(src, written + flips, chk);
    chk.require(again == streamed,
                "reset() changed the streamed record count (" +
                    std::to_string(streamed) + " then " +
                    std::to_string(again) + ")");
}

/** Truncate a bin file and stream it back under a sampled policy. */
void
caseBinTruncate(Scratch &scratch, std::uint64_t case_seed,
                CaseCheck &chk)
{
    Pcg32 rng(case_seed, /*stream=*/0x62696eULL);
    std::uint64_t refs = 100 + rng.below(400);
    trace::AtumLikeConfig cfg = smallTrace(case_seed, refs);
    trace::AtumLikeGenerator gen(cfg);

    std::string path = scratch.file("fault.bin");
    std::uint64_t written = trace::writeBin(gen, path);
    std::uint64_t full = 16 + written * 6;
    std::uint64_t keep = rng.below(static_cast<std::uint32_t>(full));
    exec::FaultInjector::truncateFile(path, keep);

    const ErrorMode modes[] = {ErrorMode::FailFast, ErrorMode::Skip,
                               ErrorMode::Strict};
    ErrorPolicy policy;
    policy.mode = modes[rng.below(3)];
    trace::BinTraceSource src(path, policy);

    std::uint64_t streamed = drainBounded(src, written, chk);
    checkReaderContract(src, policy.mode, policy.max_skips, chk);

    std::uint64_t whole = keep >= 16 ? (keep - 16) / 6 : 0;
    if (policy.mode != ErrorMode::Skip) {
        // Truncation is always detectable against the header count.
        chk.require(src.failed(),
                    "truncated bin file was not rejected (keep=" +
                        std::to_string(keep) + "/" +
                        std::to_string(full) + ")");
    } else if (keep >= 16 && written - whole <= policy.max_skips) {
        chk.require(!src.failed(),
                    "skip-mode reader rejected a clampable "
                    "truncation: " + src.error().text());
        chk.require(streamed == whole,
                    "skip-mode reader streamed " +
                        std::to_string(streamed) + " of " +
                        std::to_string(whole) + " whole records");
        chk.require(src.skippedRecords() == written - whole,
                    "skip-mode reader miscounted lost records");
    }
}

/** Flip body bytes of a bin file (header protected). */
void
caseBinCorrupt(Scratch &scratch, std::uint64_t case_seed,
               CaseCheck &chk)
{
    Pcg32 rng(case_seed, /*stream=*/0x626332ULL);
    std::uint64_t refs = 100 + rng.below(400);
    trace::AtumLikeConfig cfg = smallTrace(case_seed, refs);
    trace::AtumLikeGenerator gen(cfg);

    std::string path = scratch.file("fault2.bin");
    std::uint64_t written = trace::writeBin(gen, path);

    unsigned flips = 1 + rng.below(4);
    exec::FaultInjector::corruptBytes(path, case_seed ^ 0xb1bULL,
                                      flips, /*skip=*/16);

    const ErrorMode modes[] = {ErrorMode::FailFast, ErrorMode::Skip,
                               ErrorMode::Strict};
    ErrorPolicy policy;
    policy.mode = modes[rng.below(3)];
    trace::BinTraceSource src(path, policy);

    // Body flips never touch the header, so the claimed count holds
    // and the stream can only shrink (bad records dropped).
    std::uint64_t streamed = drainBounded(src, written, chk);
    checkReaderContract(src, policy.mode, policy.max_skips, chk);
    chk.require(streamed + src.skippedRecords() <= written,
                "corrupt bin reader invented records");
    if (!src.failed())
        chk.require(streamed + src.skippedRecords() == written,
                    "reader lost records without reporting a skip "
                    "or an error");
}

/**
 * Post-stream contract for the ftr reader. Unlike din/bin, the
 * policy's skip cap bounds damaged *regions* (damage events); one
 * region may lose many records, all reported via skippedRecords().
 */
void
checkFtrContract(const trace::FtrTraceSource &src, ErrorMode mode,
                 std::uint64_t max_skips, CaseCheck &chk)
{
    if (src.failed()) {
        ErrorCode c = src.error().code();
        chk.require(c == ErrorCode::Data || c == ErrorCode::Io,
                    std::string("ftr reader error is ") +
                        errorCodeName(c) + ", want data or io");
        chk.require(!src.error().text().empty(),
                    "ftr reader error has empty text");
    } else if (mode == ErrorMode::Skip) {
        chk.require(src.damageEvents() <= max_skips,
                    "damage-event count exceeds the policy cap "
                    "without an error");
    }
    if (mode == ErrorMode::FailFast) {
        chk.require(src.skippedRecords() == 0,
                    "fail-fast ftr reader skipped records");
        chk.require(src.damageEvents() == 0,
                    "fail-fast ftr reader tolerated damage");
    }
}

/** Write a small trace as ftr with seeded frame sizing; returns the
 *  record count (and flags a violation on a writer failure). */
std::uint64_t
writeSmallFtr(const trace::AtumLikeConfig &cfg,
              const std::string &path, std::uint32_t frame_records,
              CaseCheck &chk)
{
    trace::AtumLikeGenerator gen(cfg);
    trace::FtrWriter::Options wopt;
    wopt.frame_records = frame_records;
    Expected<std::uint64_t> wrote = trace::writeFtr(gen, path, wopt);
    if (!wrote.ok()) {
        chk.require(false,
                    "writeFtr failed: " + wrote.error().text());
        return 0;
    }
    return wrote.take();
}

/** Flip bytes of an ftr file (header protected): every body byte is
 *  CRC-covered, so non-skip modes must reject, and skip mode must
 *  resync with exact per-record damage accounting. */
void
caseFtrCorrupt(Scratch &scratch, std::uint64_t case_seed,
               CaseCheck &chk)
{
    Pcg32 rng(case_seed, /*stream=*/0x667472ULL);
    std::uint64_t refs = 100 + rng.below(400);
    trace::AtumLikeConfig cfg = smallTrace(case_seed, refs);

    std::string path = scratch.file("fault.ftr");
    std::uint64_t written =
        writeSmallFtr(cfg, path, 1 + rng.below(64), chk);
    if (written == 0)
        return;

    unsigned flips = 1 + rng.below(8);
    exec::FaultInjector::corruptBytes(path, case_seed ^ 0xf7fULL,
                                      flips,
                                      /*skip=*/trace::ftr::kHeaderBytes);

    const ErrorMode modes[] = {ErrorMode::FailFast, ErrorMode::Skip,
                               ErrorMode::Strict};
    ErrorPolicy policy;
    policy.mode = modes[rng.below(3)];
    trace::FtrOptions fopt;
    fopt.prefetch = rng.below(2) == 0;
    trace::FtrTraceSource src(path, policy, fopt);

    std::uint64_t streamed = drainBounded(src, written, chk);
    checkFtrContract(src, policy.mode, policy.max_skips, chk);
    chk.require(streamed + src.skippedRecords() <= written,
                "corrupt ftr reader invented records");
    if (policy.mode != ErrorMode::Skip)
        chk.require(src.failed(),
                    "a bit-flipped ftr body passed CRC validation");
    else
        chk.require(streamed + src.skippedRecords() == written,
                    "skip-mode ftr reader lost records without "
                    "accounting for them (" +
                        std::to_string(streamed) + " streamed + " +
                        std::to_string(src.skippedRecords()) +
                        " skipped of " + std::to_string(written) +
                        ")");

    // reset() must replay the identical outcome (prefetch restarts).
    src.reset();
    std::uint64_t again = drainBounded(src, written, chk);
    chk.require(again == streamed,
                "reset() changed the streamed record count (" +
                    std::to_string(streamed) + " then " +
                    std::to_string(again) + ")");
}

/** Truncate an ftr file at a random byte: non-skip modes must
 *  reject (the footer is always damaged), skip mode must rebuild
 *  the index and account for every lost record. */
void
caseFtrTruncate(Scratch &scratch, std::uint64_t case_seed,
                CaseCheck &chk)
{
    Pcg32 rng(case_seed, /*stream=*/0x667431ULL);
    std::uint64_t refs = 100 + rng.below(400);
    trace::AtumLikeConfig cfg = smallTrace(case_seed, refs);

    std::string path = scratch.file("trunc.ftr");
    std::uint64_t written =
        writeSmallFtr(cfg, path, 1 + rng.below(64), chk);
    if (written == 0)
        return;
    std::uint64_t full = fs::file_size(path);
    std::uint64_t keep = rng.below(static_cast<std::uint32_t>(full));
    exec::FaultInjector::truncateFile(path, keep);

    const ErrorMode modes[] = {ErrorMode::FailFast, ErrorMode::Skip,
                               ErrorMode::Strict};
    ErrorPolicy policy;
    policy.mode = modes[rng.below(3)];
    trace::FtrOptions fopt;
    fopt.prefetch = rng.below(2) == 0;
    trace::FtrTraceSource src(path, policy, fopt);

    std::uint64_t streamed = drainBounded(src, written, chk);
    checkFtrContract(src, policy.mode, policy.max_skips, chk);
    if (policy.mode != ErrorMode::Skip) {
        chk.require(src.failed(),
                    "truncated ftr file was not rejected (keep=" +
                        std::to_string(keep) + "/" +
                        std::to_string(full) + ")");
    } else if (keep < trace::ftr::kHeaderBytes) {
        chk.require(src.failed(),
                    "an ftr file cut inside its header was "
                    "accepted");
    } else {
        chk.require(!src.failed(),
                    "skip-mode reader rejected a recoverable "
                    "truncation: " + src.error().text());
        chk.require(streamed + src.skippedRecords() == written,
                    "skip-mode ftr reader miscounted a torn tail (" +
                        std::to_string(streamed) + " streamed + " +
                        std::to_string(src.skippedRecords()) +
                        " skipped of " + std::to_string(written) +
                        ")");
    }
}

/** Tear the footer off — half the cases also zero the header's
 *  record total, the exact shape a writer killed before finish()
 *  leaves behind. Fail-fast must reject at open, skip mode must
 *  rebuild the index by scanning (deriving the total from the
 *  frames when the header's is unpatched) and then replay the
 *  stream bit-identically, zero records skipped. */
void
caseFtrTornFooter(Scratch &scratch, std::uint64_t case_seed,
                  CaseCheck &chk)
{
    Pcg32 rng(case_seed, /*stream=*/0x667432ULL);
    std::uint64_t refs = 100 + rng.below(400);
    trace::AtumLikeConfig cfg = smallTrace(case_seed, refs);

    std::string path = scratch.file("torn.ftr");
    std::uint64_t written =
        writeSmallFtr(cfg, path, 1 + rng.below(64), chk);
    if (written == 0)
        return;
    std::uint64_t torn = exec::FaultInjector::tearFooter(path);
    chk.require(torn != 0, "tearFooter found no footer to remove");
    if (rng.below(2) == 0)
        chk.require(exec::FaultInjector::unpatchHeader(path),
                    "unpatchHeader found no valid ftr header");

    ErrorPolicy ff;
    ff.mode = ErrorMode::FailFast;
    trace::FtrTraceSource strict_src(path, ff);
    chk.require(strict_src.failed() &&
                    strict_src.error().code() == ErrorCode::Data,
                "fail-fast reader accepted a torn-off footer");

    ErrorPolicy sk;
    sk.mode = ErrorMode::Skip;
    trace::FtrOptions fopt;
    fopt.prefetch = rng.below(2) == 0;
    trace::FtrTraceSource src(path, sk, fopt);
    chk.require(src.indexRebuilt(),
                "skip-mode reader did not rebuild the torn footer");

    trace::AtumLikeGenerator ref(cfg);
    ref.reset();
    trace::MemRef a, b;
    std::uint64_t n = 0;
    bool same = true;
    while (same && src.next(a)) {
        same = ref.next(b) && a.addr == b.addr && a.type == b.type &&
               a.pid == b.pid;
        ++n;
    }
    chk.require(same && n == written,
                "rebuilt index did not replay the stream "
                "bit-identically (" + std::to_string(n) + " of " +
                    std::to_string(written) + " records)");
    chk.require(!src.failed(),
                "torn-footer replay failed: " + src.error().text());
    chk.require(src.skippedRecords() == 0 && src.damageEvents() == 0,
                "intact frames after a torn footer were counted as "
                "damage");
    chk.require(src.totalRecords() == written,
                "rebuilt index reports " +
                    std::to_string(src.totalRecords()) + " records, "
                    "the writer flushed " + std::to_string(written));
}

/** A device that returns EOF early (file shrank / short read): the
 *  reader must report it against the header's claimed count, never
 *  silently deliver a prefix as a complete stream. */
void
caseIoShortRead(Scratch &scratch, std::uint64_t case_seed,
                CaseCheck &chk, std::uint64_t &faults)
{
    Pcg32 rng(case_seed, /*stream=*/0x736872ULL);
    std::uint64_t refs = 100 + rng.below(400);
    trace::AtumLikeConfig cfg = smallTrace(case_seed, refs);
    trace::AtumLikeGenerator gen(cfg);

    std::string path = scratch.file("short.bin");
    std::uint64_t written = trace::writeBin(gen, path);
    std::uint64_t full = 16 + written * 6;

    IoFaultPlan plan;
    plan.short_read_at = rng.below(static_cast<std::uint32_t>(full));
    const ErrorMode modes[] = {ErrorMode::FailFast, ErrorMode::Skip,
                               ErrorMode::Strict};
    ErrorPolicy policy;
    policy.mode = modes[rng.below(3)];
    std::unique_ptr<trace::TraceSource> src =
        trace::openTraceFileWithFaults(path, policy, plan);
    faults += 1;

    std::uint64_t streamed = drainBounded(*src, written, chk);
    chk.require(src->failed(),
                "a short read below the claimed record count went "
                "unreported (short_read_at=" +
                    std::to_string(plan.short_read_at) + "/" +
                    std::to_string(full) + ")");
    ErrorCode c = src->error().code();
    chk.require(c == ErrorCode::Data || c == ErrorCode::Io,
                std::string("short-read error is ") +
                    errorCodeName(c) + ", want data or io");
    chk.require(src->skippedRecords() == 0,
                "a device fault was skipped; short reads are not "
                "skippable");
    if (plan.short_read_at >= 16)
        chk.require(streamed == (plan.short_read_at - 16) / 6,
                    "reader delivered " + std::to_string(streamed) +
                        " records before a short read at byte " +
                        std::to_string(plan.short_read_at));
}

/** A hard device error (EIO) mid-file: every reader and policy must
 *  surface a structured failure — badbit never masquerades as EOF,
 *  and skip mode never skips past it. */
void
caseIoError(Scratch &scratch, std::uint64_t case_seed,
            CaseCheck &chk, std::uint64_t &faults)
{
    Pcg32 rng(case_seed, /*stream=*/0x65696fULL);
    std::uint64_t refs = 100 + rng.below(400);
    trace::AtumLikeConfig cfg = smallTrace(case_seed, refs);

    unsigned fmt = rng.below(3);
    std::string path;
    std::uint64_t written = 0;
    if (fmt == 0) {
        trace::AtumLikeGenerator gen(cfg);
        path = scratch.file("eio.din");
        written = gen.totalRefs();
        trace::writeDin(gen, path);
    } else if (fmt == 1) {
        trace::AtumLikeGenerator gen(cfg);
        path = scratch.file("eio.bin");
        written = trace::writeBin(gen, path);
    } else {
        path = scratch.file("eio.ftr");
        written = writeSmallFtr(cfg, path, 1 + rng.below(64), chk);
        if (written == 0)
            return;
    }
    std::uint64_t full = fs::file_size(path);

    IoFaultPlan plan;
    plan.io_error_at = rng.below(static_cast<std::uint32_t>(full));
    const ErrorMode modes[] = {ErrorMode::FailFast, ErrorMode::Skip,
                               ErrorMode::Strict};
    ErrorPolicy policy;
    policy.mode = modes[rng.below(3)];
    std::unique_ptr<trace::TraceSource> src =
        trace::openTraceFileWithFaults(path, policy, plan);
    faults += 1;

    std::uint64_t streamed = drainBounded(*src, written, chk);
    chk.require(streamed <= written,
                "a failing device produced extra records");
    chk.require(src->failed(),
                "an injected device error (EIO at byte " +
                    std::to_string(plan.io_error_at) + " of " +
                    std::to_string(full) +
                    ") was swallowed; the stream ended as if clean");
    ErrorCode c = src->error().code();
    chk.require(c == ErrorCode::Data || c == ErrorCode::Io,
                std::string("device-error code is ") +
                    errorCodeName(c) + ", want data or io");
    chk.require(!src->error().text().empty(),
                "device-error text is empty");
}

/** The three-job mini sweep all sweep-fault cases run. */
std::vector<sim::RunSpec>
sweepSpecs()
{
    std::vector<sim::RunSpec> specs;
    for (unsigned a : {2u, 4u, 8u}) {
        sim::RunSpec spec;
        spec.hier = {mem::CacheGeometry(4096, 16, 1),
                     mem::CacheGeometry(65536, 32, a), true};
        core::SchemeSpec s;
        s.kind = core::SchemeKind::Naive;
        spec.schemes.push_back(s);
        s.kind = core::SchemeKind::Mru;
        spec.schemes.push_back(s);
        spec.schemes.push_back(core::SchemeSpec::paperPartial(a));
        specs.push_back(spec);
    }
    return specs;
}

/** Serial no-fault reference outputs, encoded for bit-comparison. */
std::vector<std::string>
baselineOutputs(const std::vector<sim::RunSpec> &specs,
                const trace::AtumLikeConfig &tcfg)
{
    exec::SweepOptions opt;
    opt.jobs = 1;
    std::vector<sim::RunOutput> outs =
        exec::runSweep(specs, exec::atumTraceFactory(tcfg), opt);
    std::vector<std::string> enc;
    for (const sim::RunOutput &o : outs)
        enc.push_back(exec::encodeRunOutput(o));
    return enc;
}

/** Throw from inside a metered lookup of one job; the others must
 *  survive bit-identically. */
void
caseLookupThrow(std::uint64_t case_seed, CaseCheck &chk,
                std::uint64_t &faults)
{
    Pcg32 rng(case_seed, /*stream=*/0x617564ULL);
    trace::AtumLikeConfig tcfg = smallTrace(case_seed, 2000);

    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::vector<std::string> want = baselineOutputs(specs, tcfg);

    std::size_t bad = rng.below(3);
    exec::ThrowingAuditor auditor(1 + rng.below(500));
    specs[bad].auditor = &auditor;

    exec::SweepOptions opt;
    opt.jobs = 2;
    exec::SweepResult run = exec::runSweepChecked(
        specs, exec::atumTraceFactory(tcfg), opt);
    faults += 1;

    chk.require(run.jobs.size() == specs.size(),
                "sweep dropped job slots");
    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        const exec::JobResult &job = run.jobs[i];
        if (i == bad) {
            chk.require(job.status == exec::JobStatus::Failed,
                        "job with a throwing lookup did not fail");
            chk.require(job.error.code() == ErrorCode::Internal,
                        "lookup throw surfaced as " +
                            std::string(errorCodeName(
                                job.error.code())) +
                            ", want internal");
            chk.require(job.attempts == 1,
                        "non-transient failure was retried");
            continue;
        }
        chk.require(job.ok(), "sibling job " + std::to_string(i) +
                                  " was poisoned: " +
                                  job.error.text());
        if (job.ok())
            chk.require(exec::encodeRunOutput(job.output) == want[i],
                        "surviving job " + std::to_string(i) +
                            " is not bit-identical to the serial "
                            "run");
    }
    chk.require(!run.interrupted, "failure misreported as interrupt");
}

/** A transient (Io) first-attempt failure must be retried away. */
void
caseTransientRetry(std::uint64_t case_seed, CaseCheck &chk,
                   std::uint64_t &faults)
{
    Pcg32 rng(case_seed, /*stream=*/0x726574ULL);
    trace::AtumLikeConfig tcfg = smallTrace(case_seed, 2000);

    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::vector<std::string> want = baselineOutputs(specs, tcfg);

    exec::FaultPlan plan;
    plan.seed = case_seed;
    plan.fail_job = static_cast<std::int64_t>(rng.below(3));
    plan.fail_attempts = 1;
    plan.transient = true;
    exec::FaultInjector inject(plan);

    exec::SweepOptions opt;
    opt.jobs = 1 + rng.below(2);
    opt.max_retries = 1;
    opt.inject = &inject;
    exec::SweepResult run = exec::runSweepChecked(
        specs, exec::atumTraceFactory(tcfg), opt);
    faults += inject.injected();

    chk.require(inject.injected() == 1,
                "injector delivered " +
                    std::to_string(inject.injected()) +
                    " faults, want 1");
    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        const exec::JobResult &job = run.jobs[i];
        chk.require(job.ok(), "job " + std::to_string(i) +
                                  " failed after retry: " +
                                  job.error.text());
        if (!job.ok())
            continue;
        unsigned want_attempts =
            i == static_cast<std::size_t>(plan.fail_job) ? 2 : 1;
        chk.require(job.attempts == want_attempts,
                    "job " + std::to_string(i) + " took " +
                        std::to_string(job.attempts) +
                        " attempts, want " +
                        std::to_string(want_attempts));
        chk.require(exec::encodeRunOutput(job.output) == want[i],
                    "retried sweep output " + std::to_string(i) +
                        " is not bit-identical to the serial run");
    }
}

/** Cancel a journaled sweep mid-run, then resume: the merged result
 *  must be bit-identical to the uninterrupted run. */
void
caseCancelResume(Scratch &scratch, std::uint64_t case_seed,
                 CaseCheck &chk, std::uint64_t &faults)
{
    Pcg32 rng(case_seed, /*stream=*/0x726573ULL);
    trace::AtumLikeConfig tcfg = smallTrace(case_seed, 2000);

    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::vector<std::string> want = baselineOutputs(specs, tcfg);
    std::string journal = scratch.file("fault.journal");
    std::uint64_t hash = exec::hashSpecs(specs, tcfg.seed);

    // Phase 1: serial (deterministic cancel point), journaled.
    exec::CancelToken token;
    exec::FaultPlan plan;
    plan.seed = case_seed;
    plan.cancel_after = static_cast<std::int64_t>(1 + rng.below(2));
    exec::FaultInjector inject(plan, &token);

    exec::SweepOptions opt1;
    opt1.jobs = 1;
    opt1.inject = &inject;
    opt1.cancel = &token;
    opt1.journal_path = journal;
    opt1.spec_hash = hash;
    exec::SweepResult first = exec::runSweepChecked(
        specs, exec::atumTraceFactory(tcfg), opt1);
    faults += 1;

    std::uint64_t done = static_cast<std::uint64_t>(
        first.jobs.size() - first.cancelled());
    chk.require(first.interrupted, "cancelled sweep not interrupted");
    chk.require(done ==
                    static_cast<std::uint64_t>(plan.cancel_after),
                "serial sweep completed " + std::to_string(done) +
                    " jobs before honoring a cancel after " +
                    std::to_string(plan.cancel_after));

    // Phase 2: resume; only the missing jobs may run.
    exec::SweepOptions opt2;
    opt2.jobs = 1 + rng.below(2);
    opt2.resume_path = journal;
    opt2.spec_hash = hash;
    exec::SweepResult second = exec::runSweepChecked(
        specs, exec::atumTraceFactory(tcfg), opt2);

    chk.require(second.resumed == done,
                "resume restored " + std::to_string(second.resumed) +
                    " jobs, journal held " + std::to_string(done));
    chk.require(!second.interrupted && second.failures() == 0,
                "resumed sweep did not complete cleanly");
    for (std::size_t i = 0; i < second.jobs.size(); ++i) {
        const exec::JobResult &job = second.jobs[i];
        chk.require(job.ok(),
                    "resumed job " + std::to_string(i) + " failed");
        if (job.ok())
            chk.require(exec::encodeRunOutput(job.output) == want[i],
                        "resumed output " + std::to_string(i) +
                            " is not bit-identical to the "
                            "uninterrupted run");
    }
}

/**
 * Wedge one job mid-stream (it ignores checkpoints and only a
 * delivered cancel releases it). The watchdog must cut it loose:
 * exactly that job TimedOut with the spec hash in its error, a stall
 * report filed, siblings bit-identical — and a journal resume then
 * completes the missing slot byte-identically to the clean run.
 */
void
caseHang(Scratch &scratch, std::uint64_t case_seed,
         std::uint64_t job_timeout_ns, CaseCheck &chk,
         std::uint64_t &faults)
{
    Pcg32 rng(case_seed, /*stream=*/0x68616e67ULL);
    trace::AtumLikeConfig tcfg = smallTrace(case_seed, 2000);

    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::vector<std::string> want = baselineOutputs(specs, tcfg);
    std::string journal = scratch.file("hang.journal");
    std::uint64_t hash = exec::hashSpecs(specs, tcfg.seed);

    std::size_t bad = rng.below(3);
    exec::FaultPlan plan;
    plan.seed = case_seed;
    plan.runaway = exec::RunawayKind::Hang;
    plan.runaway_job = static_cast<std::int64_t>(bad);
    plan.runaway_at = 100 + rng.below(1000);
    exec::FaultInjector inject(plan);

    exec::SweepOptions opt;
    opt.jobs = 2;
    opt.max_retries = 0; // a retried hang just hangs again
    opt.inject = &inject;
    opt.job_timeout_ns =
        job_timeout_ns != 0 ? job_timeout_ns : 50ull * 1000 * 1000;
    opt.watchdog.sample_ns = 1000 * 1000;
    opt.watchdog.log = false;
    opt.journal_path = journal;
    opt.spec_hash = hash;
    exec::SweepResult run = exec::runSweepChecked(
        specs, exec::atumTraceFactory(tcfg), opt);
    faults += 1;

    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        const exec::JobResult &job = run.jobs[i];
        if (i == bad) {
            chk.require(job.status == exec::JobStatus::TimedOut,
                        std::string("hung job is ") +
                            exec::jobStatusName(job.status) +
                            ", want timed-out");
            chk.require(job.error.code() == ErrorCode::Timeout,
                        std::string("hung job error is ") +
                            errorCodeName(job.error.code()) +
                            ", want timeout");
            chk.require(mentionsSpecHash(job.error),
                        "timed-out job error lacks the spec hash: " +
                            job.error.text());
            chk.require(job.attempts == 1,
                        "hung job was retried with max_retries=0");
            continue;
        }
        chk.require(job.ok(), "sibling job " + std::to_string(i) +
                                  " was poisoned by the hang: " +
                                  job.error.text());
        if (job.ok())
            chk.require(exec::encodeRunOutput(job.output) == want[i],
                        "sibling of a hung job is not bit-identical "
                        "to the serial run");
    }
    bool saw_stall = false;
    for (const exec::StallReport &s : run.stalls)
        saw_stall = saw_stall || s.job == bad;
    chk.require(saw_stall,
                "watchdog filed no stall report for the hung job");
    chk.require(!run.interrupted,
                "timeout misreported as an interrupt");

    // Resume without the injector: only the killed slot re-runs, and
    // the merged result matches the clean run byte for byte.
    exec::SweepOptions opt2;
    opt2.jobs = 1;
    opt2.resume_path = journal;
    opt2.spec_hash = hash;
    exec::SweepResult second = exec::runSweepChecked(
        specs, exec::atumTraceFactory(tcfg), opt2);
    chk.require(second.resumed == specs.size() - 1,
                "resume restored " + std::to_string(second.resumed) +
                    " jobs, journal should hold " +
                    std::to_string(specs.size() - 1));
    for (std::size_t i = 0; i < second.jobs.size(); ++i) {
        const exec::JobResult &job = second.jobs[i];
        chk.require(job.ok(), "resumed job " + std::to_string(i) +
                                  " failed: " + job.error.text());
        if (job.ok())
            chk.require(exec::encodeRunOutput(job.output) == want[i],
                        "resumed output " + std::to_string(i) +
                            " is not bit-identical to the clean run");
    }
}

/** A slow but progressing job must NOT be killed: the watchdog is
 *  armed, yet every slot completes on the first attempt with output
 *  bit-identical to the serial run. */
void
caseSlow(std::uint64_t case_seed, CaseCheck &chk,
         std::uint64_t &faults)
{
    Pcg32 rng(case_seed, /*stream=*/0x736c6f77ULL);
    trace::AtumLikeConfig tcfg = smallTrace(case_seed, 2000);

    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::vector<std::string> want = baselineOutputs(specs, tcfg);

    std::size_t bad = rng.below(3);
    exec::FaultPlan plan;
    plan.seed = case_seed;
    plan.runaway = exec::RunawayKind::Slow;
    plan.runaway_job = static_cast<std::int64_t>(bad);
    plan.runaway_at = rng.below(500);
    plan.slow_every = 64;
    plan.slow_ns = 20000;
    exec::FaultInjector inject(plan);

    exec::SweepOptions opt;
    opt.jobs = 1 + rng.below(2);
    opt.inject = &inject;
    opt.job_timeout_ns = 10ull * 1000 * 1000 * 1000; // generous 10s
    opt.watchdog.log = false;
    exec::SweepResult run = exec::runSweepChecked(
        specs, exec::atumTraceFactory(tcfg), opt);
    faults += 1;

    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        const exec::JobResult &job = run.jobs[i];
        chk.require(job.ok() && job.attempts == 1,
                    "slow job " + std::to_string(i) +
                        " did not complete first try: " +
                        job.error.text());
        if (job.ok())
            chk.require(exec::encodeRunOutput(job.output) == want[i],
                        "slowed sweep output " + std::to_string(i) +
                            " is not bit-identical to the serial "
                            "run");
    }
    chk.require(run.stalls.empty(),
                "watchdog reported a stall for a progressing job");
}

/** A job ballooning past its memory budget must fail OverBudget on
 *  the first attempt (budgets are deterministic — never retried),
 *  with siblings bit-identical. */
void
caseOom(std::uint64_t case_seed, CaseCheck &chk,
        std::uint64_t &faults)
{
    Pcg32 rng(case_seed, /*stream=*/0x6f6f6dULL);
    trace::AtumLikeConfig tcfg = smallTrace(case_seed, 2000);

    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::vector<std::string> want = baselineOutputs(specs, tcfg);

    std::size_t bad = rng.below(3);
    exec::FaultPlan plan;
    plan.seed = case_seed;
    plan.runaway = exec::RunawayKind::Oom;
    plan.runaway_job = static_cast<std::int64_t>(bad);
    plan.runaway_at = 100 + rng.below(1000);
    plan.oom_bytes = 64ull << 20;
    exec::FaultInjector inject(plan);

    exec::SweepOptions opt;
    opt.jobs = 1 + rng.below(2);
    opt.max_retries = 1; // must NOT be spent on a budget failure
    opt.inject = &inject;
    opt.job_mem_budget = 4ull << 20;
    exec::SweepResult run = exec::runSweepChecked(
        specs, exec::atumTraceFactory(tcfg), opt);
    faults += 1;

    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        const exec::JobResult &job = run.jobs[i];
        if (i == bad) {
            chk.require(job.status == exec::JobStatus::OverBudget,
                        std::string("ballooning job is ") +
                            exec::jobStatusName(job.status) +
                            ", want over-budget");
            chk.require(job.error.code() == ErrorCode::Budget,
                        std::string("ballooning job error is ") +
                            errorCodeName(job.error.code()) +
                            ", want budget");
            chk.require(job.attempts == 1,
                        "deterministic budget failure was retried");
            chk.require(mentionsSpecHash(job.error),
                        "over-budget job error lacks the spec hash: " +
                            job.error.text());
            continue;
        }
        chk.require(job.ok(), "sibling job " + std::to_string(i) +
                                  " was poisoned by the balloon: " +
                                  job.error.text());
        if (job.ok())
            chk.require(exec::encodeRunOutput(job.output) == want[i],
                        "sibling of a ballooning job is not "
                        "bit-identical to the serial run");
    }
    chk.require(!run.interrupted,
                "budget failure misreported as an interrupt");
}

} // namespace

FaultCampaignSummary
runFaultCampaign(const FaultCampaignOptions &opt)
{
    FaultCampaignSummary sum;

    std::string dir = opt.scratch_dir;
    if (dir.empty()) {
        dir = (fs::temp_directory_path() /
               ("assoc_fault_" + std::to_string(::getpid())))
                  .string();
    }
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        sum.failures.push_back(
            {0, "setup",
             "cannot create scratch directory " + dir + ": " +
                 ec.message()});
        return sum;
    }

    std::uint64_t begin = opt.have_only_case ? opt.only_case : 0;
    std::uint64_t end =
        opt.have_only_case ? opt.only_case + 1 : opt.iterations;
    for (std::uint64_t i = begin; i < end; ++i) {
        std::uint64_t case_seed =
            SplitMix64(opt.seed ^ (i * 0x9E3779B97F4A7C15ULL))
                .next();
        FaultKind kind = static_cast<FaultKind>(i % kFaultKinds);
        Scratch scratch(dir);
        CaseCheck chk;

        switch (kind) {
          case FaultKind::DinCorruptFailFast:
            caseDinCorrupt(scratch, case_seed, ErrorMode::FailFast,
                           chk);
            break;
          case FaultKind::DinCorruptSkip:
            caseDinCorrupt(scratch, case_seed, ErrorMode::Skip, chk);
            break;
          case FaultKind::DinCorruptStrict:
            caseDinCorrupt(scratch, case_seed, ErrorMode::Strict,
                           chk);
            break;
          case FaultKind::BinTruncate:
            caseBinTruncate(scratch, case_seed, chk);
            break;
          case FaultKind::BinCorrupt:
            caseBinCorrupt(scratch, case_seed, chk);
            break;
          case FaultKind::LookupThrow:
            caseLookupThrow(case_seed, chk, sum.faults_injected);
            break;
          case FaultKind::TransientRetry:
            caseTransientRetry(case_seed, chk, sum.faults_injected);
            break;
          case FaultKind::CancelResume:
            caseCancelResume(scratch, case_seed, chk,
                             sum.faults_injected);
            break;
          case FaultKind::Hang:
            caseHang(scratch, case_seed, opt.job_timeout_ns, chk,
                     sum.faults_injected);
            break;
          case FaultKind::Slow:
            caseSlow(case_seed, chk, sum.faults_injected);
            break;
          case FaultKind::Oom:
            caseOom(case_seed, chk, sum.faults_injected);
            break;
          case FaultKind::FtrCorrupt:
            caseFtrCorrupt(scratch, case_seed, chk);
            break;
          case FaultKind::FtrTruncate:
            caseFtrTruncate(scratch, case_seed, chk);
            break;
          case FaultKind::FtrTornFooter:
            caseFtrTornFooter(scratch, case_seed, chk);
            break;
          case FaultKind::IoShortRead:
            caseIoShortRead(scratch, case_seed, chk,
                            sum.faults_injected);
            break;
          case FaultKind::IoError:
            caseIoError(scratch, case_seed, chk,
                        sum.faults_injected);
            break;
        }
        ++sum.cases_run;

        if (!chk.violations.empty()) {
            FaultFailure f;
            f.index = i;
            f.kind = kindName(kind);
            f.message = chk.violations.front();
            sum.failures.push_back(f);
            if (opt.log) {
                *opt.log << "fault case " << i << " (" << f.kind
                         << "): " << chk.violations.size()
                         << " contract violation(s)\n";
                for (const std::string &v : chk.violations)
                    *opt.log << "  " << v << "\n";
                *opt.log << "  repro: fuzz_diff --inject-faults"
                         << " --seed=" << opt.seed
                         << " --config=" << i;
                if (opt.job_timeout_ns != 0)
                    *opt.log << " --job-timeout="
                             << opt.job_timeout_ns << "ns";
                *opt.log << "\n";
            }
            if (sum.failures.size() >= opt.max_failures)
                break;
        }
    }

    fs::remove_all(dir, ec); // best-effort scratch cleanup
    return sum;
}

} // namespace check
} // namespace assoc
