/**
 * @file
 * Deterministic differential fuzzing of the lookup schemes.
 *
 * Each fuzz case PCG-samples one cache hierarchy (geometry,
 * replacement policy, inclusion/write-policy knobs), one scheme
 * parameterization (tag width, MRU list length, partial k/s and
 * transform) and one synthetic reference trace, then runs a single
 * ground-truth simulation with every scheme's meter attached. The
 * InvariantAuditor validates each lookup in flight (probe bounds,
 * reference re-execution, oracle agreement, step-1 superset,
 * LRU-stack integrity) and a post-run pass cross-checks measured
 * probe statistics against the exact Section 2 identities (a Naive
 * miss always costs a probes, an MRU miss a + 1, a Traditional
 * access 1, ...).
 *
 * Everything is a pure function of (master seed, case index): every
 * failure prints a one-line `fuzz_diff --seed=... --config=...`
 * repro command plus a minimized counterexample trace.
 */

#ifndef ASSOC_CHECK_FUZZ_H
#define ASSOC_CHECK_FUZZ_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "core/scheme.h"
#include "mem/hierarchy.h"
#include "trace/memref.h"

namespace assoc {
namespace check {

/**
 * Deliberately broken lookup variants for harness self-tests: the
 * fuzzer must *fail* when one of these replaces the real scheme.
 */
enum class BugInjection {
    None,
    /** Naive scan that never examines way 0. */
    NaiveSkip,
    /** MRU scan that under-reports its probe count by one. */
    MruUndercount,
    /** Partial compare whose step-1 filter drops a candidate. */
    PartialFilter,
    /** Way memo that trusts stale entries: a memo hit names the
     *  wrong way. */
    MemoStale,
};

/** Parse "none" / "naive-skip" / "mru-undercount" /
 *  "partial-filter" / "memo-stale". */
BugInjection bugInjectionFromString(const std::string &s);

/** FNV-1a 64-bit offset basis: start value for digest chains. */
constexpr std::uint64_t kDigestInit = 0xcbf29ce484222325ULL;

/** Fold @p v (8 bytes, little-endian) into FNV-1a digest @p h.
 *  Platform-independent: all determinism tests compare these. */
void digestMix(std::uint64_t &h, std::uint64_t v);

/** One sampled fuzz case: a pure function of its case seed. */
struct FuzzCase
{
    std::uint64_t case_seed = 0;
    mem::HierarchyConfig hier{mem::CacheGeometry(1024, 16, 2),
                              mem::CacheGeometry(4096, 32, 4), true};
    bool wb_optimization = true;
    unsigned tag_bits = 16;
    std::vector<core::SchemeSpec> schemes;
    std::vector<trace::MemRef> refs;

    /** One-line description for failure reports. */
    std::string describe() const;
};

/** Sample the case implied by (master seed, case index). */
FuzzCase sampleCase(std::uint64_t seed, std::uint64_t index);

/** What running one case produced. */
struct CaseResult
{
    ViolationLog log;
    std::uint64_t accesses = 0; ///< audited lookups
    std::uint64_t digest = 0;   ///< FNV-1a over all meter stats
};

/**
 * Run one case: stream its trace through its hierarchy with every
 * scheme metered and audited, then apply the post-run statistic
 * cross-checks. Exceptions (panic/fatal) are caught and logged as
 * violations. @p refs overrides the case's trace when non-null
 * (used by the minimizer).
 */
CaseResult runCase(const FuzzCase &c,
                   BugInjection inject = BugInjection::None,
                   const std::vector<trace::MemRef> *refs = nullptr);

/**
 * Shrink @p c's trace to a (1-minimal-ish) subsequence that still
 * fails, by chunked delta debugging.
 */
std::vector<trace::MemRef> minimizeTrace(const FuzzCase &c,
                                         BugInjection inject);

/** The one-line repro command for (seed, case index). */
std::string reproCommand(std::uint64_t seed, std::uint64_t index);

/** Render one reference ("R 0x12345678 pid=1"). */
std::string formatRef(const trace::MemRef &r);

/** One failing case, ready to report. */
struct FuzzFailure
{
    std::uint64_t index = 0;
    std::uint64_t case_seed = 0;
    std::string description;
    std::vector<std::string> messages;
    std::vector<trace::MemRef> minimized;
};

/** Fuzzing campaign parameters. */
struct FuzzOptions
{
    std::uint64_t seed = 1;
    std::uint64_t iterations = 1000;
    /** Run only this case index (repro mode). */
    bool have_only_case = false;
    std::uint64_t only_case = 0;
    BugInjection inject = BugInjection::None;
    /** Stop after this many failing cases. */
    unsigned max_failures = 1;
    /** Skip trace minimization on failures. */
    bool minimize = true;
    /** Progress/status stream (nullptr = silent). */
    std::ostream *log = nullptr;
};

/** Campaign outcome. */
struct FuzzSummary
{
    std::uint64_t cases_run = 0;
    std::uint64_t accesses = 0;  ///< audited lookups, all cases
    std::uint64_t digest = 0;    ///< order-sensitive digest of all
                                 ///< case digests (determinism tests)
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
};

/** Run the campaign described by @p opt. */
FuzzSummary runFuzz(const FuzzOptions &opt);

} // namespace check
} // namespace assoc

#endif // ASSOC_CHECK_FUZZ_H
