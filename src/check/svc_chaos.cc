#include "check/svc_chaos.h"

#include <exception>
#include <ostream>
#include <sstream>
#include <thread>

#include "check/fuzz.h"
#include "util/rng.h"

namespace assoc {
namespace check {

namespace {

/** The victim tenant's stream is longer under tenant-flood. */
std::uint64_t
streamLength(const SvcChaosCase &c, unsigned thread)
{
    if (c.fault.svc_fault == exec::SvcFaultKind::TenantFlood &&
        c.fault.svc_victim >= 0 &&
        thread == static_cast<unsigned>(c.fault.svc_victim))
        return c.ops_per_thread * c.fault.svc_flood_factor;
    return c.ops_per_thread;
}

/** Thread @p thread's deterministic request stream for case @p c. */
std::vector<SvcOpSpec>
chaosOpStream(const SvcChaosCase &c, unsigned thread)
{
    Pcg32 rng(c.case_seed, 0xc1a05 + thread);
    std::uint64_t n = streamLength(c, thread);
    std::vector<SvcOpSpec> ops;
    ops.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        SvcOpSpec op;
        std::uint32_t k = rng.below(100);
        if (k < 30)
            op.kind = svc::OpKind::Probe;
        else if (k < 50)
            op.kind = svc::OpKind::Lookup;
        else if (k < 65)
            op.kind = svc::OpKind::Fill;
        else if (k < 75)
            op.kind = svc::OpKind::Invalidate;
        else
            op.kind = svc::OpKind::Access;
        op.block = rng.below(c.block_space);
        op.is_write = rng.chance(0.3);
        ops.push_back(op);
    }
    return ops;
}

/** Digest the schedule-independent counters of one shard. */
void
digestAdmission(std::uint64_t &h, const svc::AdmissionStats &a,
                bool storm_deterministic)
{
    digestMix(h, a.admitted);
    digestMix(h, a.shed_quota);
    digestMix(h, a.shed_writes);
    digestMix(h, a.degraded);
    // Deadline-storm deadlines are pre-expired: the timeout verdict
    // never consults a clock, so it is deterministic there (only).
    if (storm_deterministic)
        digestMix(h, a.failed_timeout);
}

} // namespace

std::string
SvcChaosCase::describe() const
{
    std::ostringstream os;
    os << "chaos " << geom.name() << " policy="
       << mem::replPolicyName(cfg.engine.policy)
       << " stripes=" << cfg.engine.max_stripes
       << " threads=" << threads << " ops=" << ops_per_thread
       << " blocks=" << block_space << " fault="
       << exec::svcFaultKindName(fault.svc_fault) << " victim="
       << fault.svc_victim << " at=" << fault.svc_at << " shed="
       << svc::shedPolicyName(cfg.admission.policy) << " burst="
       << cfg.admission.quota_burst << " refill="
       << cfg.admission.refill_num << "/" << cfg.admission.refill_den
       << " inflight=" << cfg.admission.max_inflight;
    return os.str();
}

SvcChaosCase
sampleSvcChaosCase(std::uint64_t seed, std::uint64_t index,
                   unsigned threads_override)
{
    SvcChaosCase c;
    Pcg32 rng(seed, 0xc4a05 + index);
    c.case_seed = rng.next64();

    // Small contended geometries, as in the svc fuzzer.
    static const std::uint32_t kSets[] = {4, 8, 16};
    static const std::uint32_t kAssoc[] = {2, 4, 8};
    std::uint32_t sets = kSets[rng.below(3)];
    std::uint32_t assoc = kAssoc[rng.below(3)];
    c.geom = mem::CacheGeometry(sets * assoc * 16, 16, assoc);

    static const mem::ReplPolicy kPolicies[] = {
        mem::ReplPolicy::Lru, mem::ReplPolicy::Fifo,
        mem::ReplPolicy::TreePlru};
    c.cfg.engine.policy = kPolicies[rng.below(3)];
    static const unsigned kStripes[] = {0, 1, 2};
    c.cfg.engine.max_stripes = kStripes[rng.below(3)];
    c.cfg.engine.optimistic_retries = rng.chance(0.5) ? 8 : 2;

    c.threads =
        threads_override != 0 ? threads_override : 2 + rng.below(3);
    c.ops_per_thread = 200 + rng.below(400);
    c.block_space = sets * assoc * (1 + rng.below(3));

    // Admission shape: tight enough that sheds actually happen.
    c.cfg.admission.enabled = true;
    c.cfg.admission.quota_burst = 4 + rng.below(29);
    static const std::uint64_t kRefill[][2] = {
        {1, 2}, {1, 3}, {2, 3}, {3, 4}, {1, 4}};
    const std::uint64_t *refill = kRefill[rng.below(5)];
    c.cfg.admission.refill_num = refill[0];
    c.cfg.admission.refill_den = refill[1];
    c.cfg.admission.max_inflight =
        rng.chance(0.5) ? 0 : 1 + rng.below(c.threads);
    static const svc::ShedPolicy kShed[] = {
        svc::ShedPolicy::RejectNew, svc::ShedPolicy::DropWritesFirst,
        svc::ShedPolicy::DegradeReads};
    c.cfg.admission.policy = kShed[rng.below(3)];
    c.cfg.admission.seed = rng.next64();

    // One service fault per case, uniformly.
    static const exec::SvcFaultKind kFaults[] = {
        exec::SvcFaultKind::LockHolderStall,
        exec::SvcFaultKind::TenantFlood,
        exec::SvcFaultKind::BudgetSqueeze,
        exec::SvcFaultKind::DeadlineStorm};
    c.fault.seed = c.case_seed;
    c.fault.svc_fault = kFaults[rng.below(4)];
    c.fault.svc_victim = rng.below(c.threads);
    c.fault.svc_at = rng.below(static_cast<std::uint32_t>(
        c.ops_per_thread / 2 + 1));
    c.fault.svc_stall_every = 16 + rng.below(49);
    c.fault.svc_stall_spins = 1000 + rng.below(4000);
    c.fault.svc_flood_factor = 2 + rng.below(5);
    c.fault.svc_storm_span = 16 + rng.below(113);

    c.cfg.record_history = true;
    c.cfg.history_capacity = static_cast<std::size_t>(
        c.ops_per_thread * c.fault.svc_flood_factor);
    return c;
}

SvcChaosRun
runSvcChaosCase(const SvcChaosCase &c)
{
    SvcChaosRun out;
    out.determinism_digest = kDigestInit;
    digestMix(out.determinism_digest, c.case_seed);
    const bool storm =
        c.fault.svc_fault == exec::SvcFaultKind::DeadlineStorm;
    const bool squeeze =
        c.fault.svc_fault == exec::SvcFaultKind::BudgetSqueeze;

    try {
        // The injector must outlive the engine its hook arms.
        exec::FaultInjector injector(c.fault);
        svc::SvcConfig cfg = c.cfg;
        cfg.engine.lock_hold_hook = injector.lockStallHook();

        Expected<std::unique_ptr<svc::CacheService>> svcE =
            svc::CacheService::create(c.geom, cfg, nullptr);
        if (!svcE.ok())
            throwError(svcE.error());
        std::unique_ptr<svc::CacheService> service = svcE.take();

        CancelToken root; // never trips; exercises the bound path
        std::vector<svc::Session *> sessions;
        for (unsigned t = 0; t < c.threads; ++t) {
            Expected<svc::Session *> s = service->openSession();
            if (!s.ok())
                throwError(s.error());
            s.value()->bindCancel(&root);
            sessions.push_back(s.take());
        }

        std::vector<std::string> thread_errors(c.threads);
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < c.threads; ++t) {
            workers.emplace_back([&, t]() {
                try {
                    const bool victim =
                        c.fault.svc_victim >= 0 &&
                        t == static_cast<unsigned>(
                                 c.fault.svc_victim);
                    std::vector<SvcOpSpec> ops = chaosOpStream(c, t);
                    for (std::size_t i = 0; i < ops.size(); ++i) {
                        if (squeeze && victim &&
                            i == c.fault.svc_at)
                            sessions[t]->drainQuota();
                        Deadline dl = Deadline::never();
                        if (storm && victim &&
                            i >= c.fault.svc_at &&
                            i < c.fault.svc_at +
                                    c.fault.svc_storm_span)
                            dl = Deadline::after(0);
                        Expected<svc::OpResult> r =
                            sessions[t]->request(ops[i].kind,
                                                 ops[i].block,
                                                 ops[i].is_write, dl);
                        if (r.ok())
                            continue;
                        ErrorCode code = r.error().code();
                        if (code != ErrorCode::Overloaded &&
                            code != ErrorCode::Timeout &&
                            code != ErrorCode::Cancelled &&
                            thread_errors[t].empty())
                            thread_errors[t] =
                                "unexpected error shape: " +
                                r.error().text();
                    }
                } catch (const std::exception &ex) {
                    thread_errors[t] = ex.what();
                }
            });
        }
        for (std::thread &w : workers)
            w.join();
        for (unsigned t = 0; t < c.threads; ++t) {
            out.ops += streamLength(c, t);
            if (!thread_errors[t].empty())
                out.log.add("worker " + std::to_string(t) +
                            ": " + thread_errors[t]);
        }

        // 1. Conservation, per shard and merged.
        for (unsigned t = 0; t < c.threads; ++t)
            checkAdmissionConservation(
                sessions[t]->stats().admission,
                "tenant " + std::to_string(t), out.log);
        out.totals = service->totalStats().admission;
        checkAdmissionConservation(out.totals, "merged totals",
                                   out.log);
        if (out.totals.admitted != out.ops)
            out.log.add("admitted " +
                        std::to_string(out.totals.admitted) +
                        " != requests issued " +
                        std::to_string(out.ops));

        // 2. Serializability of what executed, under shedding.
        bool overflowed = false;
        std::vector<svc::HistoryEvent> events =
            service->collectHistory(&overflowed);
        if (overflowed)
            out.log.add("history overflowed despite sized "
                        "per-session capacity");
        checkSvcHistory(c.geom, cfg.engine.policy,
                        service->engine().stripes(), events,
                        &service->engine().cache(), out.log);

        // 3. The determinism digest (compared across reruns by the
        // campaign driver).
        for (unsigned t = 0; t < c.threads; ++t)
            digestAdmission(out.determinism_digest,
                            sessions[t]->stats().admission, storm);
    } catch (const std::exception &ex) {
        out.log.add(std::string("case threw: ") + ex.what());
    }
    return out;
}

std::string
svcChaosReproCommand(std::uint64_t seed, std::uint64_t index)
{
    return "fuzz_diff --svc-chaos --seed=" + std::to_string(seed) +
           " --config=" + std::to_string(index);
}

SvcChaosSummary
runSvcChaos(const SvcChaosOptions &opt)
{
    SvcChaosSummary out;
    std::uint64_t h = kDigestInit;
    const std::uint64_t begin =
        opt.have_only_case ? opt.only_case : 0;
    const std::uint64_t end =
        opt.have_only_case ? opt.only_case + 1 : opt.iterations;

    for (std::uint64_t i = begin; i < end; ++i) {
        const SvcChaosCase c =
            sampleSvcChaosCase(opt.seed, i, opt.threads);
        SvcChaosRun first = runSvcChaosCase(c);
        SvcChaosRun second = runSvcChaosCase(c);
        ++out.cases_run;
        out.ops += first.ops + second.ops;
        out.totals.merge(first.totals);
        digestMix(h, first.determinism_digest);

        ViolationLog &log = first.log;
        for (const std::string &m : second.log.messages())
            log.add("rerun: " + m);
        if (first.determinism_digest != second.determinism_digest) {
            std::ostringstream os;
            os << "determinism digest diverged across reruns: "
               << std::hex << first.determinism_digest << " vs "
               << second.determinism_digest
               << " (a shed counter depended on thread schedule)";
            log.add(os.str());
        }

        if (opt.log && !opt.have_only_case && (i + 1) % 200 == 0)
            *opt.log << "svc chaos: " << (i + 1) << "/"
                     << opt.iterations << " cases, " << out.ops
                     << " requests, " << out.totals.shed()
                     << " shed\n";

        if (log.ok())
            continue;

        SvcFuzzFailure f;
        f.index = i;
        f.case_seed = c.case_seed;
        f.description = c.describe();
        f.messages = log.messages();
        if (opt.log) {
            std::ostream &os = *opt.log;
            os << "FAIL chaos case " << i << ": " << f.description
               << "\n";
            for (const std::string &m : f.messages)
                os << "  violation: " << m << "\n";
            os << "  repro: " << svcChaosReproCommand(opt.seed, i)
               << "\n";
        }
        out.failures.push_back(std::move(f));
        if (out.failures.size() >= opt.max_failures)
            break;
    }
    out.digest = h;
    return out;
}

} // namespace check
} // namespace assoc
