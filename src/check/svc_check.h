/**
 * @file
 * Correctness checks for the concurrent cache service (src/svc).
 *
 * Two machine-checked claims:
 *
 *  1. Per-set serializability. Every svc operation carries the
 *     stripe version it observed (read-only ops) or produced
 *     (mutating ops advance their stripe's seqlock by one). Sorting
 *     the merged per-session histories by (version, mutation-first)
 *     within each stripe therefore reconstructs the concurrent
 *     execution's per-set total order; replaying that order against
 *     a fresh single-threaded WriteBackCache must reproduce every
 *     recorded hit/way/probe-count/eviction exactly, mutation
 *     versions must be duplicate-free and gap-free (a duplicate
 *     means two writers were inside one critical section), and the
 *     replayed cache must end bit-identical to the shared engine.
 *
 *  2. Deterministic stats merging. Replaying one op stream
 *     partitioned disjoint-by-set over N threads must merge to
 *     TenantStats outcome totals bit-for-bit equal to a
 *     single-thread run of the same stream — per-set state never
 *     crosses a partition boundary, and every shard merge is an
 *     exact integer/small-double sum.
 *
 * The fuzzer samples (geometry, policy, stripe cap, op mix, thread
 * count) cases as pure functions of (seed, index) and runs both
 * phases per case; failures print one-line
 * `fuzz_diff --threads=T --seed=S --config=I` repro commands.
 */

#ifndef ASSOC_CHECK_SVC_CHECK_H
#define ASSOC_CHECK_SVC_CHECK_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "svc/service.h"

namespace assoc {
namespace check {

/** One scripted service operation (pre-generated op streams). */
struct SvcOpSpec
{
    svc::OpKind kind = svc::OpKind::Access;
    mem::BlockAddr block = 0;
    bool is_write = false;
};

/** One sampled svc fuzz case: a pure function of its case seed. */
struct SvcFuzzCase
{
    std::uint64_t case_seed = 0;
    mem::CacheGeometry geom{1024, 16, 2};
    svc::SvcConfig cfg;
    unsigned threads = 2;
    std::uint64_t ops_per_thread = 1000;
    /** Distinct block addresses the streams draw from (small =
     *  contended). */
    std::uint32_t block_space = 64;

    /** One-line description for failure reports. */
    std::string describe() const;
};

/**
 * Sample the case implied by (master seed, case index).
 * @param threads_override force the thread count (0 = sample it);
 *        the `--threads` flag threads through here.
 */
SvcFuzzCase sampleSvcCase(std::uint64_t seed, std::uint64_t index,
                          unsigned threads_override = 0);

/** Thread @p thread's deterministic op stream for case @p c. */
std::vector<SvcOpSpec> svcOpStream(const SvcFuzzCase &c,
                                   unsigned thread);

/**
 * Serializability check: order @p events per stripe by version and
 * replay them against a fresh reference cache (claim 1 above).
 * @param stripes   stripe count of the engine that ran (sets map to
 *                  stripes by low bits).
 * @param final_state when non-null, the engine's quiesced cache to
 *                  compare against the replayed reference state.
 */
void checkSvcHistory(const mem::CacheGeometry &geom,
                     mem::ReplPolicy policy, unsigned stripes,
                     const std::vector<svc::HistoryEvent> &events,
                     const mem::WriteBackCache *final_state,
                     ViolationLog &log);

/** Stats-merge invariant: @p merged (an N-thread partitioned run's
 *  merged shards) must equal @p reference (the single-thread run)
 *  bit-for-bit on every outcome counter. */
void checkStatsMerge(const svc::TenantStats &merged,
                     const svc::TenantStats &reference,
                     ViolationLog &log);

/**
 * Admission conservation invariant: every request that entered the
 * service layer ended in exactly one disposition, so
 * admitted == completed + shed + failed — on each tenant's shard
 * and on any merge of shards. @p who labels the shard in
 * violations.
 */
void checkAdmissionConservation(const svc::AdmissionStats &a,
                                const std::string &who,
                                ViolationLog &log);

/** What running one case produced. */
struct SvcCaseResult
{
    ViolationLog log;
    std::uint64_t ops = 0;    ///< operations applied, both phases
    std::uint64_t digest = 0; ///< FNV-1a over the serial outcomes
};

/** Run one case: the contended history phase, then the partitioned
 *  determinism phase. Exceptions are caught and logged. */
SvcCaseResult runSvcCase(const SvcFuzzCase &c);

/** The one-line repro command for (seed, index) at @p threads. */
std::string svcReproCommand(std::uint64_t seed, std::uint64_t index,
                            unsigned threads);

/** One failing case, ready to report. */
struct SvcFuzzFailure
{
    std::uint64_t index = 0;
    std::uint64_t case_seed = 0;
    std::string description;
    std::vector<std::string> messages;
};

/** Campaign parameters. */
struct SvcFuzzOptions
{
    std::uint64_t seed = 1;
    std::uint64_t iterations = 200;
    /** Thread count for every case (0 = sample per case). */
    unsigned threads = 0;
    /** Run only this case index (repro mode). */
    bool have_only_case = false;
    std::uint64_t only_case = 0;
    /** Stop after this many failing cases. */
    unsigned max_failures = 1;
    /** Progress/status stream (nullptr = silent). */
    std::ostream *log = nullptr;
};

/** Campaign outcome. */
struct SvcFuzzSummary
{
    std::uint64_t cases_run = 0;
    std::uint64_t ops = 0;    ///< operations applied, all cases
    std::uint64_t digest = 0; ///< order-sensitive digest of all
                              ///< case digests
    std::vector<SvcFuzzFailure> failures;

    bool ok() const { return failures.empty(); }
};

/** Run the campaign described by @p opt. */
SvcFuzzSummary runSvcFuzz(const SvcFuzzOptions &opt);

} // namespace check
} // namespace assoc

#endif // ASSOC_CHECK_SVC_CHECK_H
