/**
 * @file
 * Deterministic fault-injection campaign for the robustness layer.
 *
 * Where src/check/fuzz.* fuzzes the lookup schemes themselves, this
 * campaign fuzzes the *failure paths* around them: corrupted and
 * truncated trace files under every ErrorPolicy (including framed
 * ftr traces — bit flips, mid-file truncation, torn-off footers),
 * device faults injected at the stream layer (short reads, EIO),
 * faults thrown from inside a metered lookup, transient job
 * failures that must be retried, cancellation mid-sweep followed by
 * a journal resume, and
 * the runaway-work kinds — a wedged job the watchdog must cut loose
 * (hang), a slow-but-progressing job that must NOT be killed (slow),
 * and a job ballooning past its memory budget (oom). Each case
 * asserts the documented recovery contract — readers never crash and
 * report structured Data/Io errors, skip caps hold, failed /
 * timed-out / over-budget jobs are isolated with every surviving
 * slot bit-identical to the serial run, and a resumed sweep
 * reproduces the uninterrupted result exactly.
 *
 * Everything is a pure function of (master seed, case index); every
 * failing case prints a one-line
 * `fuzz_diff --inject-faults --seed=... --config=...` repro.
 */

#ifndef ASSOC_CHECK_FAULT_CAMPAIGN_H
#define ASSOC_CHECK_FAULT_CAMPAIGN_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace assoc {
namespace check {

/** Campaign parameters. */
struct FaultCampaignOptions
{
    std::uint64_t seed = 1;
    std::uint64_t iterations = 200;
    /** Run only this case index (repro mode). */
    bool have_only_case = false;
    std::uint64_t only_case = 0;
    /** Stop after this many failing cases. */
    unsigned max_failures = 1;
    /** Directory for scratch trace/journal files ("" = the system
     *  temp directory). Files are removed per case. */
    std::string scratch_dir;
    /** Progress/status stream (nullptr = silent). */
    std::ostream *log = nullptr;
    /** Per-job watchdog deadline for the hang cases, nanoseconds
     *  (0 = a built-in 50ms). Repro lines carry it when set, so a
     *  watchdog kill replays with the same timeout. */
    std::uint64_t job_timeout_ns = 0;
};

/** One failed fault case. */
struct FaultFailure
{
    std::uint64_t index = 0;
    std::string kind;    ///< which fault family (see campaign source)
    std::string message; ///< what contract was violated
};

/** Campaign outcome. */
struct FaultCampaignSummary
{
    std::uint64_t cases_run = 0;
    std::uint64_t faults_injected = 0; ///< faults actually delivered
    std::vector<FaultFailure> failures;

    bool ok() const { return failures.empty(); }
};

/** Run the fault-injection campaign described by @p opt. */
FaultCampaignSummary runFaultCampaign(const FaultCampaignOptions &opt);

} // namespace check
} // namespace assoc

#endif // ASSOC_CHECK_FAULT_CAMPAIGN_H
