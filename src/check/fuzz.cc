#include "check/fuzz.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "core/mru_lookup.h"
#include "core/partial_lookup.h"
#include "core/way_memo.h"
#include "util/bitops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace assoc {
namespace check {

void
digestMix(std::uint64_t &h, std::uint64_t v)
{
    constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

namespace {

/** Probe sums are integral by construction; digest them exactly. */
void
fnvMixMean(std::uint64_t &h, const MeanAccum &m)
{
    digestMix(h, m.count());
    digestMix(h, static_cast<std::uint64_t>(m.sum()));
}

// ---------------------------------------------------------------
// Deliberately broken strategies (harness self-tests).
//
// Each subclasses the real strategy so the checkers' type-based
// dispatch (probeBoundsFor, referenceLookup) still recognizes the
// scheme — exactly the situation of a genuine implementation bug.
// ---------------------------------------------------------------

/** Naive scan that never examines way 0. */
class BrokenNaive final : public core::NaiveLookup
{
  public:
    core::LookupResult
    lookup(const core::LookupInput &in) const override
    {
        core::LookupResult res;
        for (unsigned w = 1; w < in.assoc; ++w) {
            ++res.probes;
            if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
                res.hit = true;
                res.way = static_cast<int>(w);
                return res;
            }
        }
        return res;
    }
};

/** MRU scan that under-reports its probe count by one. */
class BrokenMru final : public core::MruLookup
{
  public:
    using core::MruLookup::MruLookup;

    core::LookupResult
    lookup(const core::LookupInput &in) const override
    {
        core::LookupResult res = core::MruLookup::lookup(in);
        if (res.probes > 1)
            --res.probes;
        return res;
    }
};

/** Partial compare whose step-1 filter drops way 0's candidacy. */
class BrokenPartial final : public core::PartialLookup
{
  public:
    using core::PartialLookup::PartialLookup;

    core::LookupResult
    lookup(const core::LookupInput &in) const override
    {
        core::LookupResult res = core::PartialLookup::lookup(in);
        if (res.hit && res.way == 0) {
            res.hit = false;
            res.way = -1;
        }
        return res;
    }
};

/**
 * Way memo that trusts stale entries: on a memo hit it reports the
 * next way over, as if the table entry survived an eviction it
 * should have been invalidated by.
 */
class BrokenWayMemo final : public core::WayMemoLookup
{
  public:
    using core::WayMemoLookup::WayMemoLookup;

    core::LookupResult
    lookup(const core::LookupInput &in) const override
    {
        core::LookupResult res = core::WayMemoLookup::lookup(in);
        if (res.memo_hit)
            res.way = (res.way + 1) % static_cast<int>(in.assoc);
        return res;
    }
};

std::unique_ptr<core::LookupStrategy>
makeStrategy(const core::SchemeSpec &spec, BugInjection inject)
{
    switch (inject) {
      case BugInjection::None:
        break;
      case BugInjection::NaiveSkip:
        if (spec.kind == core::SchemeKind::Naive)
            return std::make_unique<BrokenNaive>();
        break;
      case BugInjection::MruUndercount:
        if (spec.kind == core::SchemeKind::Mru)
            return std::make_unique<BrokenMru>(spec.mru_list_len);
        break;
      case BugInjection::PartialFilter:
        if (spec.kind == core::SchemeKind::Partial) {
            core::PartialConfig cfg;
            cfg.tag_bits = spec.tag_bits;
            cfg.field_bits = spec.partial_k;
            cfg.subsets = spec.partial_subsets;
            cfg.transform = spec.transform;
            return std::make_unique<BrokenPartial>(cfg);
        }
        break;
      case BugInjection::MemoStale:
        if (spec.kind == core::SchemeKind::WayMemo) {
            core::SchemeSpec inner = spec;
            inner.kind = spec.memo_underlying;
            core::WayMemoConfig cfg;
            cfg.entries = spec.memo_entries;
            cfg.region_bits = spec.memo_region_bits;
            cfg.tagged = spec.memo_tagged;
            return std::make_unique<BrokenWayMemo>(
                inner.makeStrategy(), cfg);
        }
        break;
    }
    return spec.makeStrategy();
}

std::string
schemeName(const core::SchemeSpec &s)
{
    std::ostringstream os;
    os << core::schemeKindName(s.kind);
    if (s.kind == core::SchemeKind::Mru && s.mru_list_len != 0)
        os << "/" << s.mru_list_len;
    if (s.kind == core::SchemeKind::Partial)
        os << "(k=" << s.partial_k << ",s=" << s.partial_subsets
           << "," << core::transformKindName(s.transform) << ")";
    if (s.kind == core::SchemeKind::WayMemo)
        os << "(e=" << s.memo_entries << ",r=" << s.memo_region_bits
           << (s.memo_tagged ? ",tagged" : ",untagged") << ")+"
           << core::schemeKindName(s.memo_underlying);
    return os.str();
}

// ---------------------------------------------------------------
// Post-run probe-statistic cross-checks (Section 2 identities).
// ---------------------------------------------------------------

void
expectCount(ViolationLog &log, const std::string &who,
            const std::string &what, std::uint64_t got,
            std::uint64_t want)
{
    if (got != want)
        log.add(who + ": " + what + " count " + std::to_string(got) +
                " != simulator's " + std::to_string(want));
}

void
expectSum(ViolationLog &log, const std::string &who,
          const std::string &what, const MeanAccum &m,
          std::uint64_t per_event)
{
    // Probe counts are small integers, so the accumulated sum is an
    // exact integral double and == is meaningful.
    double want = static_cast<double>(m.count() * per_event);
    if (m.sum() != want)
        log.add(who + ": " + what + " probe sum " +
                std::to_string(m.sum()) + " != " +
                std::to_string(m.count()) + " events * " +
                std::to_string(per_event));
}

void
checkMeterStats(const FuzzCase &c, const mem::HierarchyStats &hs,
                const core::ProbeMeter &meter,
                const core::SchemeSpec &spec, ViolationLog &log)
{
    const core::ProbeStats &ps = meter.stats();
    const unsigned a = c.hier.l2.assoc();
    const std::string who = schemeName(spec);

    // Bucketing follows the simulator's full-tag ground truth, so
    // event counts must agree with HierarchyStats for every scheme.
    expectCount(log, who, "read-in hit",
                ps.read_in_hits.count(), hs.read_in_hits);
    expectCount(log, who, "read-in miss",
                ps.read_in_misses.count(), hs.read_in_misses);
    expectCount(log, who, "write-back",
                ps.write_backs.count(), hs.write_backs);

    const bool strict =
        spec.tag_bits >= c.hier.l2.fullTagBits();
    if (strict && (ps.alias_hits != 0 || ps.alias_wrong_way != 0))
        log.add(who + ": alias counters nonzero (" +
                std::to_string(ps.alias_hits) + "/" +
                std::to_string(ps.alias_wrong_way) +
                ") with full-width tags");

    if (c.wb_optimization)
        expectSum(log, who, "write-back", ps.write_backs, 0);

    // Exact per-event costs (Section 2). An alias hit lands in the
    // miss bucket with a hit's probe count, so the miss identities
    // only hold when no alias occurred.
    switch (spec.kind) {
      case core::SchemeKind::Traditional:
        expectSum(log, who, "read-in hit", ps.read_in_hits, 1);
        expectSum(log, who, "read-in miss", ps.read_in_misses, 1);
        if (!c.wb_optimization)
            expectSum(log, who, "write-back", ps.write_backs, 1);
        break;
      case core::SchemeKind::Naive:
        if (ps.alias_hits == 0)
            expectSum(log, who, "read-in miss", ps.read_in_misses, a);
        break;
      case core::SchemeKind::Mru:
        // A miss reads the list then scans all a ways, whatever the
        // list length.
        if (ps.alias_hits == 0)
            expectSum(log, who, "read-in miss", ps.read_in_misses,
                      a + 1);
        break;
      case core::SchemeKind::Partial:
        break; // per-lookup bounds already cover it
      case core::SchemeKind::WayMemo:
        // A memo hit needs the underlying scheme to hit, so every
        // miss costs exactly the underlying scheme's miss probes.
        if (ps.alias_hits == 0) {
            switch (spec.memo_underlying) {
              case core::SchemeKind::Traditional:
                expectSum(log, who, "read-in miss",
                          ps.read_in_misses, 1);
                break;
              case core::SchemeKind::Naive:
                expectSum(log, who, "read-in miss",
                          ps.read_in_misses, a);
                break;
              case core::SchemeKind::Mru:
                expectSum(log, who, "read-in miss",
                          ps.read_in_misses, a + 1);
                break;
              default:
                break;
            }
        }
        break;
      case core::SchemeKind::WayPredict:
        // A miss probes the predicted way then every other way at
        // once: always two probes (one at a = 1).
        if (ps.alias_hits == 0)
            expectSum(log, who, "read-in miss", ps.read_in_misses,
                      a > 1 ? 2 : 1);
        break;
    }
}

/**
 * Memoization must not change outcomes: a memo scheme's meter must
 * report exactly the alias counters of its underlying scheme's
 * meter (the only scheme-declared verdict state the meter keeps).
 */
void
checkMemoOutcomeIdentity(
    const FuzzCase &c,
    const std::vector<std::unique_ptr<core::ProbeMeter>> &meters,
    ViolationLog &log)
{
    for (std::size_t i = 0; i < c.schemes.size(); ++i) {
        const core::SchemeSpec &s = c.schemes[i];
        if (s.kind != core::SchemeKind::WayMemo)
            continue;
        for (std::size_t j = 0; j < c.schemes.size(); ++j) {
            const core::SchemeSpec &u = c.schemes[j];
            if (u.kind != s.memo_underlying ||
                u.tag_bits != s.tag_bits)
                continue;
            if (u.kind == core::SchemeKind::Mru &&
                u.mru_list_len != s.mru_list_len)
                continue;
            const core::ProbeStats &mm = meters[i]->stats();
            const core::ProbeStats &um = meters[j]->stats();
            if (mm.alias_hits != um.alias_hits ||
                mm.alias_wrong_way != um.alias_wrong_way)
                log.add(schemeName(s) +
                        ": outcome counters diverge from " +
                        schemeName(u) + " (alias " +
                        std::to_string(mm.alias_hits) + "/" +
                        std::to_string(mm.alias_wrong_way) +
                        " vs " + std::to_string(um.alias_hits) + "/" +
                        std::to_string(um.alias_wrong_way) + ")");
            break;
        }
    }
}

bool
inclusionGuaranteed(const mem::HierarchyConfig &cfg)
{
    return cfg.enforce_inclusion && cfg.allocate_on_wb_miss &&
           cfg.write_policy == mem::L1WritePolicy::WriteBack;
}

} // namespace

BugInjection
bugInjectionFromString(const std::string &s)
{
    if (s == "none")
        return BugInjection::None;
    if (s == "naive-skip")
        return BugInjection::NaiveSkip;
    if (s == "mru-undercount")
        return BugInjection::MruUndercount;
    if (s == "partial-filter")
        return BugInjection::PartialFilter;
    if (s == "memo-stale")
        return BugInjection::MemoStale;
    fatal("unknown injection '" + s +
          "' (expected none|naive-skip|mru-undercount|partial-filter|"
          "memo-stale)");
}

std::string
FuzzCase::describe() const
{
    std::ostringstream os;
    os << "L1 " << hier.l1.name() << " L2 " << hier.l2.name()
       << " repl=" << mem::replPolicyName(hier.l2_replacement)
       << " t=" << tag_bits
       << (wb_optimization ? " wb-opt" : " no-wb-opt");
    if (hier.enforce_inclusion)
        os << " inclusion";
    if (hier.write_policy == mem::L1WritePolicy::WriteThrough)
        os << " write-through";
    os << " schemes=[";
    for (std::size_t i = 0; i < schemes.size(); ++i)
        os << (i ? " " : "") << schemeName(schemes[i]);
    os << "] refs=" << refs.size();
    return os.str();
}

FuzzCase
sampleCase(std::uint64_t seed, std::uint64_t index)
{
    FuzzCase c;
    c.case_seed =
        SplitMix64(seed ^ (index * 0x9E3779B97F4A7C15ULL)).next();
    Pcg32 rng(c.case_seed, /*stream=*/0x66757a7aULL);

    // --- hierarchy ---
    static const std::uint32_t kBlocks[] = {16, 32, 64};
    const std::uint32_t l2_block = kBlocks[rng.below(3)];
    static const std::uint32_t kAssoc[] = {2, 4, 8, 16};
    const std::uint32_t a = kAssoc[rng.below(4)];
    const std::uint32_t l2_sets = 1u << rng.below(6); // 1..32
    c.hier.l2 = mem::CacheGeometry(l2_block * a * l2_sets, l2_block, a);

    // L1 blocks must not exceed L2 blocks for inclusion to make
    // sense; keep them >= 8 bytes.
    const unsigned l2_block_log = c.hier.l2.offsetBits();
    const std::uint32_t l1_block =
        1u << (3 + rng.below(l2_block_log - 2)); // 8..l2_block
    const std::uint32_t l1_assoc = rng.chance(0.2) ? 2 : 1;
    const std::uint32_t l1_sets = 1u << rng.below(5); // 1..16
    c.hier.l1 =
        mem::CacheGeometry(l1_block * l1_assoc * l1_sets, l1_block,
                           l1_assoc);

    c.hier.enforce_inclusion = rng.chance(0.3);
    if (c.hier.enforce_inclusion) {
        c.hier.allocate_on_wb_miss = true;
        c.hier.write_policy = mem::L1WritePolicy::WriteBack;
    } else {
        c.hier.allocate_on_wb_miss = rng.chance(0.8);
        c.hier.write_policy = rng.chance(0.15)
                                  ? mem::L1WritePolicy::WriteThrough
                                  : mem::L1WritePolicy::WriteBack;
    }
    static const mem::ReplPolicy kRepl[] = {
        mem::ReplPolicy::Lru,    mem::ReplPolicy::Lru,
        mem::ReplPolicy::Lru,    mem::ReplPolicy::Fifo,
        mem::ReplPolicy::Random, mem::ReplPolicy::TreePlru,
    };
    c.hier.l2_replacement = kRepl[rng.below(6)];
    c.wb_optimization = rng.chance(0.8);

    // --- tag width: full-width (strict oracle agreement) or
    //     truncated (alias accounting paths) ---
    const unsigned full = c.hier.l2.fullTagBits();
    const double r = rng.uniform();
    if (r < 0.3)
        c.tag_bits = 32;
    else if (r < 0.6)
        c.tag_bits = full;
    else
        c.tag_bits = full > 5 ? 4 + rng.below(full - 4) : full;

    // --- schemes ---
    auto add = [&c](core::SchemeSpec s) {
        s.tag_bits = c.tag_bits;
        c.schemes.push_back(s);
    };
    core::SchemeSpec spec;
    spec.kind = core::SchemeKind::Traditional;
    add(spec);
    spec.kind = core::SchemeKind::Naive;
    add(spec);
    spec.kind = core::SchemeKind::Mru;
    spec.mru_list_len = 0;
    add(spec);
    spec.mru_list_len = 1 + rng.below(a); // reduced (or full) list
    add(spec);

    const unsigned s_log = rng.below(log2Ceil(a) + 1);
    const unsigned subsets = 1u << s_log;
    const unsigned group = a / subsets;
    if (c.tag_bits / group >= 1) {
        core::SchemeSpec p;
        p.kind = core::SchemeKind::Partial;
        p.partial_subsets = subsets;
        const unsigned kmax = std::min(c.tag_bits / group, 8u);
        p.partial_k = 1 + rng.below(kmax);
        static const core::TransformKind kXf[] = {
            core::TransformKind::None,
            core::TransformKind::XorLow,
            core::TransformKind::Improved,
            core::TransformKind::Swap,
        };
        p.transform = kXf[rng.below(4)];
        add(p);
    }

    core::SchemeSpec wp;
    wp.kind = core::SchemeKind::WayPredict;
    add(wp);

    core::SchemeSpec wm;
    wm.kind = core::SchemeKind::WayMemo;
    wm.memo_entries = 1u << (2 + rng.below(5)); // 4..64 entries
    wm.memo_region_bits = rng.below(3);         // 1..4 blocks/region
    wm.memo_tagged = rng.chance(0.7);
    static const core::SchemeKind kUnder[] = {
        core::SchemeKind::Traditional,
        core::SchemeKind::Naive,
        core::SchemeKind::Mru,
    };
    wm.memo_underlying = kUnder[rng.below(3)];
    add(wm);

    // --- synthetic trace: a hot subset inside a wider region, a
    //     trickle of far addresses, flushes, and (with truncated
    //     tags) deliberate alias partners that share the set index
    //     and the low t tag bits but differ above ---
    const unsigned nrefs = 100 + rng.below(701);
    const std::uint32_t region_blocks = 16 + rng.below(241);
    const std::uint32_t gran = l1_block;
    const std::uint32_t base = rng.next() & ~(gran - 1);
    const std::uint32_t hot_blocks = 4 + rng.below(29);
    const double p_hot = 0.5 + 0.4 * rng.uniform();
    const double p_write = 0.1 + 0.3 * rng.uniform();
    const unsigned alias_shift =
        c.hier.l2.offsetBits() + c.hier.l2.indexBits() + c.tag_bits;

    c.refs.reserve(nrefs);
    for (unsigned i = 0; i < nrefs; ++i) {
        if (rng.chance(0.004)) {
            c.refs.push_back(trace::MemRef::flush());
            continue;
        }
        trace::MemRef ref;
        if (rng.chance(0.01)) {
            ref.addr = rng.next();
        } else {
            const std::uint32_t blk = rng.chance(p_hot)
                                          ? rng.below(hot_blocks)
                                          : rng.below(region_blocks);
            ref.addr = base + blk * gran + rng.below(gran);
            if (alias_shift < 32 && rng.chance(0.05))
                ref.addr ^= 1u << (alias_shift +
                                   rng.below(32 - alias_shift));
        }
        const double t = rng.uniform();
        ref.type = t < p_write ? trace::RefType::Write
                   : t < p_write + 0.2 ? trace::RefType::Ifetch
                                       : trace::RefType::Read;
        ref.pid = static_cast<std::uint8_t>(rng.below(4));
        c.refs.push_back(ref);
    }
    return c;
}

CaseResult
runCase(const FuzzCase &c, BugInjection inject,
        const std::vector<trace::MemRef> *refs)
{
    CaseResult out;
    const std::vector<trace::MemRef> &stream = refs ? *refs : c.refs;
    try {
        mem::TwoLevelHierarchy hier(c.hier);
        InvariantAuditor auditor(&out.log);
        std::vector<std::unique_ptr<core::ProbeMeter>> meters;
        meters.reserve(c.schemes.size());
        for (const core::SchemeSpec &spec : c.schemes) {
            core::MeterConfig mcfg;
            mcfg.tag_bits = spec.tag_bits;
            mcfg.wb_optimization = c.wb_optimization;
            meters.push_back(std::make_unique<core::ProbeMeter>(
                makeStrategy(spec, inject), mcfg));
            meters.back()->setAuditor(&auditor);
            hier.addObserver(meters.back().get());
        }
        // Self-checking observer: panics if a hit way is ever
        // missing from the recency order.
        core::MruDistanceMeter dist(c.hier.l2.assoc());
        hier.addObserver(&dist);

        bool aborted = false;
        std::uint64_t n = 0;
        try {
            for (const trace::MemRef &ref : stream) {
                hier.access(ref);
                if ((++n & 127u) == 0 && inclusionGuaranteed(c.hier))
                    checkInclusion(hier, out.log);
            }
        } catch (const PanicError &e) {
            out.log.add(std::string("panic during run: ") + e.what());
            aborted = true;
        } catch (const FatalError &e) {
            out.log.add(std::string("fatal during run: ") + e.what());
            aborted = true;
        }
        out.accesses = auditor.audited();

        if (!aborted) {
            checkAllRecencyOrders(hier.l1(), out.log);
            checkAllRecencyOrders(hier.l2(), out.log);
            if (inclusionGuaranteed(c.hier))
                checkInclusion(hier, out.log);
            for (std::size_t i = 0; i < meters.size(); ++i)
                checkMeterStats(c, hier.stats(), *meters[i],
                                c.schemes[i], out.log);
            checkMemoOutcomeIdentity(c, meters, out.log);
        }

        std::uint64_t h = kDigestInit;
        const mem::HierarchyStats &hs = hier.stats();
        digestMix(h, hs.proc_refs);
        digestMix(h, hs.l1_hits);
        digestMix(h, hs.read_ins);
        digestMix(h, hs.read_in_hits);
        digestMix(h, hs.write_backs);
        digestMix(h, hs.write_back_hits);
        digestMix(h, hs.hint_correct);
        digestMix(h, hs.flushes);
        digestMix(h, hs.inclusion_invalidations);
        for (const auto &m : meters) {
            const core::ProbeStats &ps = m->stats();
            fnvMixMean(h, ps.read_in_hits);
            fnvMixMean(h, ps.read_in_misses);
            fnvMixMean(h, ps.write_backs);
            digestMix(h, ps.alias_hits);
            digestMix(h, ps.alias_wrong_way);
            digestMix(h, ps.memo_hits);
            digestMix(h, ps.events.tag_reads);
            digestMix(h, ps.events.field_reads);
            digestMix(h, ps.events.tag_compares);
            digestMix(h, ps.events.list_reads);
            digestMix(h, ps.events.memo_reads);
            digestMix(h, ps.events.memo_writes);
        }
        out.digest = h;
    } catch (const PanicError &e) {
        out.log.add(std::string("panic during setup: ") + e.what());
    } catch (const FatalError &e) {
        out.log.add(std::string("fatal during setup: ") + e.what());
    }
    return out;
}

std::vector<trace::MemRef>
minimizeTrace(const FuzzCase &c, BugInjection inject)
{
    auto fails = [&c, inject](const std::vector<trace::MemRef> &t) {
        return !runCase(c, inject, &t).log.ok();
    };

    std::vector<trace::MemRef> cur = c.refs;
    if (!fails(cur))
        return cur; // setup-level failure; the trace is irrelevant

    // Delta debugging (ddmin): repeatedly try dropping one of n
    // chunks; refine the granularity when nothing can be dropped.
    std::size_t n = 2;
    int budget = 256; // re-simulations, keeps worst cases bounded
    while (cur.size() >= 2 && budget > 0) {
        const std::size_t chunk =
            std::max<std::size_t>(1, cur.size() / n);
        bool reduced = false;
        for (std::size_t start = 0; start < cur.size() && budget > 0;
             start += chunk) {
            const std::size_t end =
                std::min(cur.size(), start + chunk);
            std::vector<trace::MemRef> cand;
            cand.reserve(cur.size() - (end - start));
            cand.insert(cand.end(), cur.begin(),
                        cur.begin() +
                            static_cast<std::ptrdiff_t>(start));
            cand.insert(cand.end(),
                        cur.begin() + static_cast<std::ptrdiff_t>(end),
                        cur.end());
            --budget;
            if (!cand.empty() && fails(cand)) {
                cur = std::move(cand);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (chunk == 1)
                break;
            n = std::min(cur.size(), n * 2);
        }
    }
    return cur;
}

std::string
reproCommand(std::uint64_t seed, std::uint64_t index)
{
    return "fuzz_diff --seed=" + std::to_string(seed) +
           " --config=" + std::to_string(index);
}

std::string
formatRef(const trace::MemRef &r)
{
    if (r.isFlush())
        return "FLUSH";
    char type = 'R';
    if (r.isWrite())
        type = 'W';
    else if (r.isInstruction())
        type = 'I';
    std::ostringstream os;
    os << type << " 0x" << std::hex << r.addr << std::dec
       << " pid=" << static_cast<unsigned>(r.pid);
    return os.str();
}

FuzzSummary
runFuzz(const FuzzOptions &opt)
{
    FuzzSummary out;
    std::uint64_t h = kDigestInit;
    const std::uint64_t begin =
        opt.have_only_case ? opt.only_case : 0;
    const std::uint64_t end =
        opt.have_only_case ? opt.only_case + 1 : opt.iterations;

    for (std::uint64_t i = begin; i < end; ++i) {
        const FuzzCase c = sampleCase(opt.seed, i);
        const CaseResult r = runCase(c, opt.inject);
        ++out.cases_run;
        out.accesses += r.accesses;
        digestMix(h, r.digest);

        if (opt.log && !opt.have_only_case &&
            (i + 1) % 2000 == 0)
            *opt.log << "fuzz: " << (i + 1) << "/" << opt.iterations
                     << " cases, " << out.accesses
                     << " lookups audited\n";

        if (r.log.ok())
            continue;

        FuzzFailure f;
        f.index = i;
        f.case_seed = c.case_seed;
        f.description = c.describe();
        f.messages = r.log.messages();
        f.minimized = opt.minimize ? minimizeTrace(c, opt.inject)
                                   : c.refs;
        if (opt.log) {
            std::ostream &os = *opt.log;
            os << "FAIL case " << i << ": " << f.description << "\n";
            for (const std::string &m : f.messages)
                os << "  violation: " << m << "\n";
            if (r.log.count() >
                static_cast<std::uint64_t>(f.messages.size()))
                os << "  ... " << r.log.count() << " violations total\n";
            os << "  minimized trace (" << f.minimized.size()
               << " refs):\n";
            for (const trace::MemRef &ref : f.minimized)
                os << "    " << formatRef(ref) << "\n";
            os << "  repro: " << reproCommand(opt.seed, i) << "\n";
        }
        out.failures.push_back(std::move(f));
        if (out.failures.size() >= opt.max_failures)
            break;
    }
    out.digest = h;
    return out;
}

} // namespace check
} // namespace assoc
