/**
 * @file
 * Machine-checked invariants for every lookup scheme: the paper's
 * central claim is that Naive, MRU and partial-compare lookups are
 * probe-cheaper but *outcome-identical* to the traditional a-way
 * lookup. The checkers here turn that claim (plus the supporting
 * structural invariants) into assertions callable from any
 * simulation:
 *
 *  - per-lookup probe bounds (1 <= probes <= a for Naive, a + 1 for
 *    MRU, s..s+a for Partial) from the Section 2 cost model;
 *  - exact reference re-execution: an independent re-implementation
 *    of each scheme's scan is compared probe-for-probe against the
 *    production strategy (differential redundancy);
 *  - the Partial step-1 superset property: the partially-matching
 *    candidate set must contain every way whose sliced tag equals
 *    the incoming one (in particular, the true hit way);
 *  - LRU-stack integrity: the per-set recency order is a
 *    permutation of the ways with invalid frames at the tail;
 *  - GF(2) transform invertibility, linearity and tag-width masking;
 *  - multi-level inclusion for hierarchies that enforce it.
 *
 * The InvariantAuditor packages the per-access checks behind the
 * core::LookupAuditor hook, so attaching it to a ProbeMeter (or via
 * sim::RunSpec::auditor) validates a whole run as it streams.
 */

#ifndef ASSOC_CHECK_INVARIANTS_H
#define ASSOC_CHECK_INVARIANTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/lookup.h"
#include "core/partial_lookup.h"
#include "core/probe_meter.h"
#include "core/transform.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "util/rng.h"

namespace assoc {
namespace check {

/**
 * Collected invariant violations. Messages are capped (the count is
 * not) so a systematically broken scheme cannot exhaust memory.
 */
class ViolationLog
{
  public:
    explicit ViolationLog(std::size_t max_messages = 16)
        : max_messages_(max_messages)
    {}

    /** Record one violation. */
    void add(const std::string &message);

    /** Total violations recorded (including dropped messages). */
    std::uint64_t count() const { return count_; }

    /** True when no violation was recorded. */
    bool ok() const { return count_ == 0; }

    /** The first max_messages violation messages. */
    const std::vector<std::string> &messages() const
    {
        return messages_;
    }

    void clear();

  private:
    std::size_t max_messages_;
    std::uint64_t count_ = 0;
    std::vector<std::string> messages_;
};

/** Inclusive per-lookup probe bounds of one scheme (Section 2). */
struct ProbeBounds
{
    unsigned hit_min = 1;
    unsigned hit_max = 0;
    unsigned miss_min = 1;
    unsigned miss_max = 0;
};

/**
 * Bounds for @p strategy at associativity @p a, derived from the
 * scheme's Section 2 cost model (recognized by type: Traditional,
 * Naive, MRU, Partial). Unrecognized strategies get the loose
 * universal envelope [1, 1 + 2a] (list read + step-1 probes + full
 * compares can never exceed it).
 */
ProbeBounds probeBoundsFor(const core::LookupStrategy &strategy,
                           unsigned a);

/**
 * Independent reference re-execution of @p strategy on @p in for
 * the recognized scheme types: a from-the-paper re-implementation
 * of the scan whose verdict, way and probe count the production
 * strategy must reproduce exactly.
 * @return false when the strategy type is not recognized (@p out is
 *         untouched); true with @p out filled otherwise.
 */
bool referenceLookup(const core::LookupStrategy &strategy,
                     const core::LookupInput &in,
                     core::LookupResult &out);

/**
 * The Partial step-1 candidate set of @p in under @p cfg as a way
 * bitmask: way w is a candidate when its assigned k-bit collection
 * field matches the incoming tag's.
 */
std::uint64_t partialCandidateMask(const core::PartialConfig &cfg,
                                   const core::LookupInput &in);

/**
 * Check that set @p set of @p cache has a sound recency order: a
 * permutation of [0, assoc) with every invalid frame in a suffix.
 * @return true when sound; violations are logged otherwise.
 */
bool checkMruOrderIntegrity(const mem::WriteBackCache &cache,
                            std::uint32_t set, ViolationLog &log);

/**
 * Same soundness check for the fill-age (FIFO) order of @p set:
 * a permutation of [0, assoc) whose invalid frames form a suffix.
 * Invalidation demotes the freed frame in *both* orders, so the
 * suffix invariant must hold for each (victimWay() under the Fifo
 * policy reads the fill-age tail directly).
 */
bool checkFifoOrderIntegrity(const mem::WriteBackCache &cache,
                             std::uint32_t set, ViolationLog &log);

/** Both per-set order checks (recency and fill-age) for @p set. */
bool checkRecencyOrders(const mem::WriteBackCache &cache,
                        std::uint32_t set, ViolationLog &log);

/** checkMruOrderIntegrity over every set of @p cache. */
bool checkAllMruOrders(const mem::WriteBackCache &cache,
                       ViolationLog &log);

/** checkRecencyOrders (MRU + fill-age) over every set. */
bool checkAllRecencyOrders(const mem::WriteBackCache &cache,
                           ViolationLog &log);

/**
 * Check GF(2) soundness of @p xf on @p samples random t-bit tags
 * per slot: invert(apply(x)) == x, apply stays within the tag
 * mask, apply(0) == 0 and apply(x ^ y) == apply(x) ^ apply(y)
 * (linearity over GF(2), which makes invertibility a matrix
 * property as the paper argues).
 */
bool checkTransformInvertible(const core::TagTransform &xf,
                              Pcg32 &rng, unsigned samples,
                              ViolationLog &log);

/**
 * Check multi-level inclusion: every valid level-one line's block
 * is present in the level two. Only meaningful for hierarchies
 * configured with enforce_inclusion, a write-back level one and
 * allocate_on_wb_miss (otherwise inclusion legitimately lapses).
 */
bool checkInclusion(const mem::TwoLevelHierarchy &hier,
                    ViolationLog &log);

/**
 * Per-access invariant checker behind the core::LookupAuditor
 * hook. Attach one instance to any number of ProbeMeters; every
 * metered lookup is validated against:
 *
 *  1. the scheme's probe bounds (probeBoundsFor);
 *  2. the reference re-execution (referenceLookup), exact match of
 *     hit/way/probes for recognized scheme types;
 *  3. the simulator's ground truth: with full-width tags the
 *     verdict and way must match exactly; with truncated tags a
 *     divergent hit must be justified by sliced-tag equality (a
 *     genuine alias) and a true hit may never be missed;
 *  4. the Partial step-1 superset property;
 *  5. memo consistency: a WayMemo memo hit skips every probe and
 *     names exactly the way the underlying scheme's reference scan
 *     finds, and a memo miss reproduces that reference verbatim —
 *     memoization changes costs, never outcomes;
 *  6. LRU-stack integrity of the accessed set.
 */
class InvariantAuditor : public core::LookupAuditor
{
  public:
    /** @param log sink for violations (not owned). */
    explicit InvariantAuditor(ViolationLog *log);

    void audit(const core::ProbeMeter &meter,
               const mem::L2AccessView &view,
               const core::LookupInput &in,
               const core::LookupResult &res) override;

    /** Lookups audited so far. */
    std::uint64_t audited() const { return audited_; }

  private:
    ViolationLog *log_;
    std::uint64_t audited_ = 0;
};

} // namespace check
} // namespace assoc

#endif // ASSOC_CHECK_INVARIANTS_H
