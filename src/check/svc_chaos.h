/**
 * @file
 * The svc chaos campaign: overload, shedding and service faults,
 * machine-checked.
 *
 * Each chaos case builds a CacheService with admission control
 * enabled, arms one service-layer fault from the seeded FaultPlan
 * (exec/fault.h) —
 *
 *   lock-holder-stall  a stripe-lock holder is "preempted"
 *                      (busy-spins inside the critical section),
 *   tenant-flood       one tenant's request stream is multiplied,
 *   budget-squeeze     the victim's quota bucket is drained to
 *                      zero mid-stream,
 *   deadline-storm     the victim issues a burst of pre-expired
 *                      request deadlines,
 *
 * — then drives concurrent per-tenant request() streams through
 * the full overload path and asserts, per case:
 *
 *  1. Conservation: admitted == completed + shed + failed, on
 *     every tenant's shard and on the merged totals.
 *  2. Serializability under shedding: the ops that *did* execute
 *     replay exactly against the PR-6 per-set checker
 *     (checkSvcHistory) — a shed or stalled request never tears a
 *     critical section.
 *  3. Determinism: the case runs twice, and the
 *     schedule-independent counters (admitted, shed_quota,
 *     shed_writes, degraded — plus failed_timeout under
 *     deadline-storm, whose deadlines are pre-expired and hence
 *     clock-free) must digest bit-for-bit identical.
 *  4. No unexpected errors: request() may fail only with the
 *     structured Overloaded / Timeout / Cancelled shapes.
 *
 * Cases are pure functions of (seed, index); failures print
 * one-line `fuzz_diff --svc-chaos --seed=S --config=I` repros.
 */

#ifndef ASSOC_CHECK_SVC_CHAOS_H
#define ASSOC_CHECK_SVC_CHAOS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/svc_check.h"
#include "exec/fault.h"

namespace assoc {
namespace check {

/** One sampled chaos case: a pure function of (seed, index). */
struct SvcChaosCase
{
    std::uint64_t case_seed = 0;
    mem::CacheGeometry geom{1024, 16, 2};
    svc::SvcConfig cfg; ///< admission enabled, history recorded
    unsigned threads = 2;
    std::uint64_t ops_per_thread = 400;
    std::uint32_t block_space = 64;
    exec::FaultPlan fault; ///< svc_* fields armed

    /** One-line description for failure reports. */
    std::string describe() const;
};

/** Sample the case implied by (master seed, case index).
 *  @param threads_override force the thread count (0 = sample). */
SvcChaosCase sampleSvcChaosCase(std::uint64_t seed,
                                std::uint64_t index,
                                unsigned threads_override = 0);

/** What one chaos execution produced. */
struct SvcChaosRun
{
    ViolationLog log;
    std::uint64_t ops = 0; ///< requests issued
    /** FNV digest of the schedule-independent admission counters,
     *  per tenant in open order. */
    std::uint64_t determinism_digest = 0;
    svc::AdmissionStats totals; ///< merged over tenants
};

/** Execute case @p c once, checking conservation, serializability
 *  and error shapes. Exceptions are caught and logged. */
SvcChaosRun runSvcChaosCase(const SvcChaosCase &c);

/** The one-line repro command for (seed, index). */
std::string svcChaosReproCommand(std::uint64_t seed,
                                 std::uint64_t index);

/** Campaign parameters. */
struct SvcChaosOptions
{
    std::uint64_t seed = 1;
    std::uint64_t iterations = 200;
    /** Thread count for every case (0 = sample per case). */
    unsigned threads = 0;
    /** Run only this case index (repro mode). */
    bool have_only_case = false;
    std::uint64_t only_case = 0;
    /** Stop after this many failing cases. */
    unsigned max_failures = 1;
    /** Progress/status stream (nullptr = silent). */
    std::ostream *log = nullptr;
};

/** Campaign outcome. */
struct SvcChaosSummary
{
    std::uint64_t cases_run = 0;
    std::uint64_t ops = 0; ///< requests issued, all cases and runs
    std::uint64_t digest = 0; ///< order-sensitive over case digests
    svc::AdmissionStats totals; ///< merged over all first runs
    std::vector<SvcFuzzFailure> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Run the campaign: every case executes twice (fresh service each
 * time) and the two runs' determinism digests must match exactly,
 * on top of each run's own invariants.
 */
SvcChaosSummary runSvcChaos(const SvcChaosOptions &opt);

} // namespace check
} // namespace assoc

#endif // ASSOC_CHECK_SVC_CHAOS_H
