#include "check/invariants.h"

#include <algorithm>

#include "core/mru_lookup.h"
#include "core/partial_lookup.h"
#include "core/tagbits.h"
#include "core/way_memo.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace check {

void
ViolationLog::add(const std::string &message)
{
    ++count_;
    if (messages_.size() < max_messages_)
        messages_.push_back(message);
}

void
ViolationLog::clear()
{
    count_ = 0;
    messages_.clear();
}

ProbeBounds
probeBoundsFor(const core::LookupStrategy &strategy, unsigned a)
{
    ProbeBounds b;
    if (dynamic_cast<const core::TraditionalLookup *>(&strategy)) {
        b = {1, 1, 1, 1};
    } else if (dynamic_cast<const core::NaiveLookup *>(&strategy)) {
        // Hit after 1..a scanned tags; a miss always scans all a.
        b = {1, a, a, a};
    } else if (dynamic_cast<const core::MruLookup *>(&strategy)) {
        // One probe reads the recency list, then 1..a tag probes;
        // a miss costs the list read plus all a tags.
        b = {2, a + 1, a + 1, a + 1};
    } else if (auto *p = dynamic_cast<const core::PartialLookup *>(
                   &strategy)) {
        // s step-1 probes at most, plus one full compare per
        // partial match; a hit needs at least one of each.
        unsigned s = p->config().subsets;
        b = {2, s + a, s, s + a};
    } else if (auto *wm = dynamic_cast<const core::WayMemoLookup *>(
                   &strategy)) {
        // A memo miss costs exactly what the underlying scheme
        // costs; a memo hit skips every probe.
        b = probeBoundsFor(wm->underlying(), a);
        b.hit_min = 0;
    } else if (dynamic_cast<const core::WayPredictLookup *>(
                   &strategy)) {
        // One probe on a correct prediction; otherwise one more
        // wide probe covers the remaining ways — so 2 on any
        // misprediction or miss (1 when there is only one way).
        unsigned second = a > 1 ? 2 : 1;
        b = {1, second, second, second};
    } else {
        // Universal envelope: a list read, a step-1 probe per way
        // and a full compare per way can never be exceeded.
        b = {1, 1 + 2 * a, 1, 1 + 2 * a};
    }
    return b;
}

namespace {

core::LookupResult
refTraditional(const core::LookupInput &in)
{
    core::LookupResult res;
    res.probes = 1;
    for (unsigned w = 0; w < in.assoc; ++w) {
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            break;
        }
    }
    return res;
}

core::LookupResult
refNaive(const core::LookupInput &in)
{
    core::LookupResult res;
    for (unsigned w = 0; w < in.assoc; ++w) {
        ++res.probes;
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            return res;
        }
    }
    return res;
}

core::LookupResult
refMru(const core::LookupInput &in, unsigned list_len)
{
    core::LookupResult res;
    res.probes = 1; // the recency-list read
    unsigned ll = list_len == 0 ? in.assoc
                                : std::min(list_len, in.assoc);
    std::uint64_t searched = 0;
    for (unsigned i = 0; i < ll; ++i) {
        unsigned w = in.mru_order[i];
        ++res.probes;
        searched |= std::uint64_t{1} << w;
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            return res;
        }
    }
    for (unsigned w = 0; w < in.assoc; ++w) {
        if (searched & (std::uint64_t{1} << w))
            continue;
        ++res.probes;
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            return res;
        }
    }
    return res;
}

core::LookupResult
refPartial(const core::PartialConfig &cfg,
           const core::LookupInput &in)
{
    // Re-derive the two-step scan from the paper with an
    // independently constructed transform instance.
    auto xf = core::TagTransform::make(cfg.transform, cfg.tag_bits,
                                       cfg.field_bits);
    const unsigned s = cfg.subsets;
    const unsigned g = in.assoc / s;
    core::LookupResult res;
    for (unsigned sub = 0; sub < s; ++sub) {
        ++res.probes; // step 1
        for (unsigned l = 0; l < g; ++l) {
            unsigned w = sub * g + l;
            if (!in.valid[w])
                continue;
            std::uint32_t stored = xf->apply(in.stored_tags[w], l);
            std::uint32_t incoming = xf->apply(in.incoming_tag, l);
            if (xf->field(stored, l) != xf->field(incoming, l))
                continue;
            ++res.probes; // step 2
            if (stored == incoming) {
                res.hit = true;
                res.way = static_cast<int>(w);
                return res;
            }
        }
    }
    return res;
}

core::LookupResult
refWayPredict(const core::LookupInput &in)
{
    core::LookupResult res;
    res.probes = 1; // the predicted way
    const unsigned pred = in.mru_order[0];
    if (in.valid[pred] && in.stored_tags[pred] == in.incoming_tag) {
        res.hit = true;
        res.way = static_cast<int>(pred);
        return res;
    }
    if (in.assoc == 1)
        return res;
    ++res.probes; // the wide probe over the remaining ways
    for (unsigned w = 0; w < in.assoc; ++w) {
        if (w == pred)
            continue;
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            return res;
        }
    }
    return res;
}

} // namespace

bool
referenceLookup(const core::LookupStrategy &strategy,
                const core::LookupInput &in, core::LookupResult &out)
{
    if (dynamic_cast<const core::TraditionalLookup *>(&strategy)) {
        out = refTraditional(in);
        return true;
    }
    if (dynamic_cast<const core::NaiveLookup *>(&strategy)) {
        out = refNaive(in);
        return true;
    }
    if (auto *m = dynamic_cast<const core::MruLookup *>(&strategy)) {
        out = refMru(in, m->listLen());
        return true;
    }
    if (auto *p =
            dynamic_cast<const core::PartialLookup *>(&strategy)) {
        out = refPartial(p->config(), in);
        return true;
    }
    if (dynamic_cast<const core::WayPredictLookup *>(&strategy)) {
        out = refWayPredict(in);
        return true;
    }
    // WayMemoLookup is stateful (the memo table) so no stateless
    // re-execution exists; the auditor's memo-consistency check
    // validates it against the underlying scheme's reference.
    return false;
}

std::uint64_t
partialCandidateMask(const core::PartialConfig &cfg,
                     const core::LookupInput &in)
{
    auto xf = core::TagTransform::make(cfg.transform, cfg.tag_bits,
                                       cfg.field_bits);
    const unsigned s = cfg.subsets;
    const unsigned g = in.assoc / s;
    std::uint64_t mask = 0;
    for (unsigned sub = 0; sub < s; ++sub) {
        for (unsigned l = 0; l < g; ++l) {
            unsigned w = sub * g + l;
            if (!in.valid[w])
                continue;
            std::uint32_t stored = xf->apply(in.stored_tags[w], l);
            std::uint32_t incoming = xf->apply(in.incoming_tag, l);
            if (xf->field(stored, l) == xf->field(incoming, l))
                mask |= std::uint64_t{1} << w;
        }
    }
    return mask;
}

namespace {

/** Shared soundness scan for one way order of one set. */
bool
checkOneOrder(const mem::WriteBackCache &cache, std::uint32_t set,
              const std::vector<std::uint8_t> &order,
              const char *label, ViolationLog &log)
{
    const unsigned a = cache.geom().assoc();
    std::uint64_t before = log.count();

    if (order.size() != a) {
        log.add("set " + std::to_string(set) + ": " + label +
                " order has " + std::to_string(order.size()) +
                " entries, want " + std::to_string(a));
        return false;
    }
    std::uint64_t seen = 0;
    bool tail = false; // inside the invalid suffix
    for (unsigned i = 0; i < a; ++i) {
        unsigned w = order[i];
        if (w >= a || (seen & (std::uint64_t{1} << w))) {
            log.add("set " + std::to_string(set) + ": " + label +
                    " order is not a permutation (entry " +
                    std::to_string(i) + " = " + std::to_string(w) +
                    ")");
            return false;
        }
        seen |= std::uint64_t{1} << w;
        bool valid = cache.line(set, static_cast<int>(w)).valid;
        if (!valid)
            tail = true;
        else if (tail)
            log.add("set " + std::to_string(set) + ": valid way " +
                    std::to_string(w) +
                    " sits behind an invalid frame in the " + label +
                    " order");
    }
    return log.count() == before;
}

} // namespace

bool
checkMruOrderIntegrity(const mem::WriteBackCache &cache,
                       std::uint32_t set, ViolationLog &log)
{
    return checkOneOrder(cache, set, cache.mruOrder(set), "recency",
                         log);
}

bool
checkFifoOrderIntegrity(const mem::WriteBackCache &cache,
                        std::uint32_t set, ViolationLog &log)
{
    return checkOneOrder(cache, set, cache.fifoOrder(set), "fill-age",
                         log);
}

bool
checkRecencyOrders(const mem::WriteBackCache &cache, std::uint32_t set,
                   ViolationLog &log)
{
    bool mru = checkMruOrderIntegrity(cache, set, log);
    bool fifo = checkFifoOrderIntegrity(cache, set, log);
    return mru && fifo;
}

bool
checkAllMruOrders(const mem::WriteBackCache &cache, ViolationLog &log)
{
    bool ok = true;
    for (std::uint32_t set = 0; set < cache.geom().sets(); ++set)
        ok = checkMruOrderIntegrity(cache, set, log) && ok;
    return ok;
}

bool
checkAllRecencyOrders(const mem::WriteBackCache &cache,
                      ViolationLog &log)
{
    bool ok = true;
    for (std::uint32_t set = 0; set < cache.geom().sets(); ++set)
        ok = checkRecencyOrders(cache, set, log) && ok;
    return ok;
}

bool
checkTransformInvertible(const core::TagTransform &xf, Pcg32 &rng,
                         unsigned samples, ViolationLog &log)
{
    std::uint64_t before = log.count();
    const std::uint32_t mask =
        static_cast<std::uint32_t>(maskBits(xf.tagBits()));
    const std::string what = xf.name() + "(t=" +
                             std::to_string(xf.tagBits()) +
                             ",k=" + std::to_string(xf.fieldBits()) +
                             ")";
    unsigned slots = std::max(1u, xf.fields());
    for (unsigned slot = 0; slot < slots; ++slot) {
        if (xf.apply(0, slot) != 0)
            log.add(what + ": apply(0) != 0 at slot " +
                    std::to_string(slot));
        for (unsigned i = 0; i < samples; ++i) {
            std::uint32_t x = rng.next() & mask;
            std::uint32_t y = rng.next() & mask;
            std::uint32_t ax = xf.apply(x, slot);
            if ((ax & ~mask) != 0)
                log.add(what + ": apply leaks outside the tag mask");
            if (xf.invert(ax, slot) != x)
                log.add(what + ": invert(apply(x)) != x");
            if (xf.apply(xf.invert(x, slot), slot) != x)
                log.add(what + ": apply(invert(x)) != x");
            if (xf.apply(x ^ y, slot) != (ax ^ xf.apply(y, slot)))
                log.add(what + ": not GF(2)-linear");
            if (log.count() != before)
                return false; // one bad transform floods otherwise
        }
    }
    return log.count() == before;
}

bool
checkInclusion(const mem::TwoLevelHierarchy &hier, ViolationLog &log)
{
    std::uint64_t before = log.count();
    const mem::CacheGeometry &g1 = hier.l1().geom();
    const mem::CacheGeometry &g2 = hier.l2().geom();
    for (std::uint32_t set = 0; set < g1.sets(); ++set) {
        for (std::uint32_t w = 0; w < g1.assoc(); ++w) {
            const mem::Line &l = hier.l1().line(set,
                                                static_cast<int>(w));
            if (!l.valid)
                continue;
            trace::Addr byte = g1.byteAddrOf(l.block);
            if (hier.l2().findWay(g2.blockAddrOf(byte)) < 0)
                log.add("inclusion violated: level-one block 0x" +
                        std::to_string(l.block) +
                        " (set " + std::to_string(set) + ", way " +
                        std::to_string(w) +
                        ") is absent from the level two");
        }
    }
    return log.count() == before;
}

InvariantAuditor::InvariantAuditor(ViolationLog *log) : log_(log)
{
    panicIf(log == nullptr, "InvariantAuditor: null log");
}

void
InvariantAuditor::audit(const core::ProbeMeter &meter,
                        const mem::L2AccessView &view,
                        const core::LookupInput &in,
                        const core::LookupResult &res)
{
    ++audited_;
    const unsigned a = in.assoc;
    const core::LookupStrategy &strat = meter.strategy();
    const std::string who = strat.name();

    // 1. Probe bounds from the Section 2 cost model.
    ProbeBounds b = probeBoundsFor(strat, a);
    unsigned lo = res.hit ? b.hit_min : b.miss_min;
    unsigned hi = res.hit ? b.hit_max : b.miss_max;
    if (res.probes < lo || res.probes > hi)
        log_->add(who + ": " + (res.hit ? "hit" : "miss") +
                  " cost " + std::to_string(res.probes) +
                  " probes, outside [" + std::to_string(lo) + ", " +
                  std::to_string(hi) + "] at a=" + std::to_string(a));

    // 2. Exact reference re-execution for recognized schemes.
    core::LookupResult ref;
    if (referenceLookup(strat, in, ref)) {
        if (ref.hit != res.hit || ref.way != res.way ||
            ref.probes != res.probes)
            log_->add(who + ": diverges from the reference scan "
                      "(got hit=" + std::to_string(res.hit) +
                      " way=" + std::to_string(res.way) + " probes=" +
                      std::to_string(res.probes) + ", want hit=" +
                      std::to_string(ref.hit) + " way=" +
                      std::to_string(ref.way) + " probes=" +
                      std::to_string(ref.probes) + ")");
    }

    // 3. Ground-truth agreement. With tags at least as wide as the
    // address arithmetic produces, slicing is the identity and the
    // verdict must match the simulator exactly; truncated tags may
    // alias, but only in ways sliced-tag equality justifies.
    const bool true_hit = view.hit_way >= 0;
    const bool strict = meter.config().tag_bits >=
                        view.cache->geom().fullTagBits();
    if (true_hit && !res.hit) {
        log_->add(who + ": missed a block the simulator holds (way " +
                  std::to_string(view.hit_way) + ")");
    } else if (strict) {
        if (res.hit != true_hit)
            log_->add(who + ": full-width verdict disagrees with the "
                      "oracle (scheme says hit=" +
                      std::to_string(res.hit) + ")");
        else if (res.hit && res.way != view.hit_way)
            log_->add(who + ": full-width hit way " +
                      std::to_string(res.way) + " != oracle way " +
                      std::to_string(view.hit_way));
    } else if (res.hit) {
        if (res.way < 0 || static_cast<unsigned>(res.way) >= a ||
            !in.valid[res.way] ||
            in.stored_tags[res.way] != in.incoming_tag)
            log_->add(who + ": truncated-tag hit at way " +
                      std::to_string(res.way) +
                      " is not justified by sliced-tag equality");
    }

    // The oracle itself must be consistent with the cache state.
    if (true_hit) {
        const mem::Line &l =
            view.cache->line(view.set, view.hit_way);
        if (!l.valid || l.block != view.block)
            log_->add("oracle hit way " +
                      std::to_string(view.hit_way) +
                      " does not hold block 0x" +
                      std::to_string(view.block));
    }

    // 4. Partial step-1 superset: every sliced-equal way must
    // survive the partial filter (in particular the hit way).
    if (auto *p = dynamic_cast<const core::PartialLookup *>(&strat)) {
        std::uint64_t cand = partialCandidateMask(p->config(), in);
        for (unsigned w = 0; w < a; ++w) {
            if (in.valid[w] && in.stored_tags[w] == in.incoming_tag &&
                !(cand & (std::uint64_t{1} << w)))
                log_->add(who + ": step-1 candidates {" +
                          std::to_string(cand) +
                          "} exclude matching way " +
                          std::to_string(w));
        }
    }

    // 5. Memo consistency: memoization may change costs, never
    // outcomes. A memo hit must skip every probe and name exactly
    // the way the underlying scheme's reference scan finds; a memo
    // miss must reproduce the underlying reference verbatim.
    if (auto *wm = dynamic_cast<const core::WayMemoLookup *>(&strat)) {
        core::LookupResult uref;
        const bool have = referenceLookup(wm->underlying(), in, uref);
        if (res.memo_hit) {
            if (res.probes != 0)
                log_->add(who + ": memo hit cost " +
                          std::to_string(res.probes) +
                          " probes (must skip all tag probes)");
            if (!res.hit)
                log_->add(who + ": memo_hit flagged on a miss");
            if (have && (!uref.hit || uref.way != res.way))
                log_->add(who + ": memo hit names way " +
                          std::to_string(res.way) +
                          " but the underlying reference finds " +
                          (uref.hit ? "way " + std::to_string(uref.way)
                                    : std::string("a miss")));
        } else if (have && (res.hit != uref.hit ||
                            res.way != uref.way ||
                            res.probes != uref.probes)) {
            log_->add(who + ": memo miss diverges from the underlying "
                      "reference (got hit=" + std::to_string(res.hit) +
                      " way=" + std::to_string(res.way) + " probes=" +
                      std::to_string(res.probes) + ", want hit=" +
                      std::to_string(uref.hit) + " way=" +
                      std::to_string(uref.way) + " probes=" +
                      std::to_string(uref.probes) + ")");
        }
    }

    // 6. LRU-stack integrity of the accessed set, for both the
    // recency and the fill-age order.
    checkRecencyOrders(*view.cache, view.set, *log_);
}

} // namespace check
} // namespace assoc
