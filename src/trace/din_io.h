/**
 * @file
 * Dinero ("din") ASCII trace format reader/writer.
 *
 * The classic format is one reference per line: "<label> <hex-addr>"
 * with label 0 = data read, 1 = data write, 2 = instruction fetch.
 * We additionally use label 4 for a cache-flush marker (Dinero III
 * reserved 3 for its own purposes) and allow an optional third
 * column carrying the process id. Lines starting with '#' are
 * comments.
 */

#ifndef ASSOC_TRACE_DIN_IO_H
#define ASSOC_TRACE_DIN_IO_H

#include <fstream>
#include <string>

#include "trace/trace_source.h"

namespace assoc {
namespace trace {

/** Write all references of @p src to @p path in din format. */
void writeDin(TraceSource &src, const std::string &path);

/** Streaming reader for din trace files. */
class DinTraceSource : public TraceSource
{
  public:
    /** Open @p path; calls fatal() when unreadable. */
    explicit DinTraceSource(const std::string &path);

    bool next(MemRef &ref) override;
    void reset() override;

  private:
    std::string path_;
    std::ifstream in_;
    std::uint64_t line_ = 0;
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_DIN_IO_H
