/**
 * @file
 * Dinero ("din") ASCII trace format reader/writer.
 *
 * The classic format is one reference per line: "<label> <hex-addr>"
 * with label 0 = data read, 1 = data write, 2 = instruction fetch.
 * We additionally use label 4 for a cache-flush marker (Dinero III
 * reserved 3 for its own purposes) and allow an optional third
 * column carrying the process id. Lines starting with '#' are
 * comments.
 *
 * Malformed lines are reported as recoverable Errors with file:line
 * and the offending text, governed by an ErrorPolicy: FailFast stops
 * at the first bad line, Skip tolerates up to max_skips of them,
 * Strict additionally rejects trailing columns, non-numeric pids,
 * and out-of-range addresses/pids that FailFast silently truncates.
 */

#ifndef ASSOC_TRACE_DIN_IO_H
#define ASSOC_TRACE_DIN_IO_H

#include <istream>
#include <memory>
#include <string>

#include "trace/trace_source.h"
#include "util/error.h"

namespace assoc {
namespace trace {

/** Write all references of @p src to @p path in din format. */
void writeDin(TraceSource &src, const std::string &path);

/** Streaming reader for din trace files. */
class DinTraceSource : public TraceSource
{
  public:
    /**
     * Open @p path. An unreadable file is recorded as an Io error —
     * check error() (or let sim::runTrace surface it) rather than
     * expecting a throw.
     */
    explicit DinTraceSource(const std::string &path,
                            ErrorPolicy policy = ErrorPolicy());

    /** Read from a caller-supplied stream (fault-injection tests);
     *  @p name labels error messages. */
    DinTraceSource(std::unique_ptr<std::istream> in, std::string name,
                   ErrorPolicy policy = ErrorPolicy());

    bool next(MemRef &ref) override;
    void reset() override;

    const Error &error() const override { return error_; }
    std::uint64_t skippedRecords() const override { return skipped_; }

    /** Polled every kCancelStride lines; a tripped token stops the
     *  stream with its structured error. */
    void setCancelToken(const CancelToken *t) override { cancel_ = t; }

    /** Charged for the line buffer as it grows, so a pathological
     *  no-newline file fails with a budget error, not an OOM. */
    void setMemBudget(MemBudget *b) override { budget_ = b; }

  private:
    /** Lines between cancel-token polls while streaming. */
    static constexpr std::uint64_t kCancelStride = 256;

    /**
     * Handle one malformed line per the policy.
     * @return true when the line may be skipped and reading resumes.
     */
    bool tolerate(const std::string &what, const std::string &text);

    std::string path_;
    ErrorPolicy policy_;
    std::unique_ptr<std::istream> in_;
    std::uint64_t line_ = 0;
    std::uint64_t skipped_ = 0;
    const CancelToken *cancel_ = nullptr;
    MemBudget *budget_ = nullptr;
    MemCharge line_charge_;
    Error error_;
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_DIN_IO_H
