#include "trace/ftr_writer.h"

#include <algorithm>
#include <array>

#include "util/crc32c.h"
#include "util/logging.h"

namespace assoc {
namespace trace {

FtrWriter::FtrWriter(const std::string &path)
    : FtrWriter(path, Options())
{}

FtrWriter::FtrWriter(const std::string &path, Options opt)
    : path_(path), opt_(opt)
{
    opt_.frame_records = std::max(
        1u, std::min(opt_.frame_records, ftr::kMaxFrameRecords));
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (!out_) {
        error_ = Error::io("cannot open '" + path_ + "' for writing");
        return;
    }
    frame_.reserve(opt_.frame_records);
    // Header with a zero total; patched in finish().
    std::array<std::uint8_t, ftr::kHeaderBytes> header{};
    ftr::FileHeader h;
    h.total_records = 0;
    h.frame_records = opt_.frame_records;
    ftr::encodeFileHeader(header.data(), h);
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    offset_ = ftr::kHeaderBytes;
}

void
FtrWriter::flushFrame()
{
    if (frame_.empty() || error_.failed())
        return;
    payload_.clear();
    ftr::encodeFramePayload(frame_.data(), frame_.size(), payload_);

    ftr::FrameHeader fh;
    fh.start_index = total_ - frame_.size();
    fh.record_count = static_cast<std::uint32_t>(frame_.size());
    fh.payload_len = static_cast<std::uint32_t>(payload_.size());
    std::array<std::uint8_t, ftr::kFrameHeaderBytes> header{};
    ftr::encodeFrameHeader(header.data(), fh);

    std::array<std::uint8_t, 4> crc{};
    ftr::putU32(crc.data(), crc32c(payload_.data(), payload_.size()));

    index_.push_back({offset_, fh.start_index});
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    out_.write(reinterpret_cast<const char *>(payload_.data()),
               static_cast<std::streamsize>(payload_.size()));
    out_.write(reinterpret_cast<const char *>(crc.data()),
               static_cast<std::streamsize>(crc.size()));
    if (!out_.good()) {
        error_ = Error::io("error writing frame " +
                           std::to_string(index_.size() - 1) +
                           " to '" + path_ + "'");
        return;
    }
    offset_ += header.size() + payload_.size() + crc.size();
    frame_.clear();
}

void
FtrWriter::add(const MemRef &r)
{
    if (error_.failed() || finished_)
        return;
    frame_.push_back(r);
    ++total_;
    if (frame_.size() >= opt_.frame_records)
        flushFrame();
}

Expected<void>
FtrWriter::finish()
{
    if (error_.failed())
        return Error(error_);
    if (finished_)
        return {};
    flushFrame();
    if (error_.failed())
        return Error(error_);

    if (index_.size() > ftr::kMaxFooterFrames) {
        warn("'" + path_ + "': " + std::to_string(index_.size()) +
             " frames exceed the footer's 32-bit index; keeping "
             "the first " + std::to_string(ftr::kMaxFooterFrames) +
             " seek points (streaming reads are unaffected; seeks "
             "past the last one scan forward from it)");
        index_.resize(
            static_cast<std::size_t>(ftr::kMaxFooterFrames));
    }
    std::vector<std::uint8_t> footer;
    ftr::encodeFooter(index_, total_, footer);
    out_.write(reinterpret_cast<const char *>(footer.data()),
               static_cast<std::streamsize>(footer.size()));

    std::array<std::uint8_t, ftr::kHeaderBytes> header{};
    ftr::FileHeader h;
    h.total_records = total_;
    h.frame_records = opt_.frame_records;
    ftr::encodeFileHeader(header.data(), h);
    out_.seekp(0);
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    out_.flush();
    if (!out_.good()) {
        error_ = Error::io("error finishing ftr file '" + path_ + "'");
        return Error(error_);
    }
    finished_ = true;
    return {};
}

Expected<std::uint64_t>
writeFtr(TraceSource &src, const std::string &path,
         FtrWriter::Options opt)
{
    FtrWriter w(path, opt);
    if (w.error().failed())
        return Error(w.error());
    src.reset();
    MemRef r;
    while (src.next(r))
        w.add(r);
    if (src.failed())
        return Error(src.error())
            .withContext("reading the source trace for '" + path +
                         "'");
    Expected<void> done = w.finish();
    if (!done.ok())
        return done.takeError();
    return w.written();
}

} // namespace trace
} // namespace assoc
