/**
 * @file
 * Synthetic ATUM-like multiprogrammed trace generator.
 *
 * The paper's evaluation drives a two-level cache hierarchy with one
 * very large trace built by concatenating 23 ATUM traces (~350,000
 * references each) of a multiprogrammed VAX operating-system
 * workload, flushing both cache levels between the pieces (Table 3).
 * ATUM traces are not redistributable, so this generator produces a
 * statistically similar stream: the same segmented structure and
 * flush markers, a multiprogrammed mix of user processes plus OS
 * activity with context switches, per-process virtual address
 * spaces (skewed high tag bits), and locality calibrated so the
 * three level-one caches of the paper land near the miss ratios
 * reported in Table 3 (0.1181 / 0.0657 / 0.0513).
 */

#ifndef ASSOC_TRACE_ATUM_LIKE_H
#define ASSOC_TRACE_ATUM_LIKE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/process_model.h"
#include "trace/trace_source.h"
#include "util/rng.h"

namespace assoc {
namespace trace {

/** Configuration of the synthetic multiprogrammed trace. */
struct AtumLikeConfig
{
    /** Master seed: the whole trace is a pure function of it. */
    std::uint64_t seed = 0x1989'0605;

    /** Number of concatenated sub-traces ("segments"). */
    unsigned segments = 23;
    /** References per segment (paper: ~350,000). */
    std::uint64_t refs_per_segment = 350000;
    /** Emit a flush marker between segments (cold caches). */
    bool flush_between_segments = true;

    /** User processes per segment (the OS is extra, pid 0). */
    unsigned processes = 4;
    /** Mean references between context switches. */
    std::uint64_t switch_mean = 6000;
    /** Probability that a scheduling burst runs the OS process. */
    double os_burst_prob = 0.12;
    /** OS bursts are shorter: mean references per OS burst. */
    std::uint64_t os_burst_mean = 1500;

    /** Behaviour knobs applied to every user process. */
    ProcessParams user;
    /** Behaviour knobs of the OS pseudo-process. */
    ProcessParams os;

    AtumLikeConfig()
    {
        // The OS touches more code and a wider data footprint with
        // poorer locality than user processes (interrupt handlers,
        // buffer management): a large driver of the paper's fairly
        // high L1 miss ratios.
        os.ifetch_fraction = 0.60;
        os.functions = 96;
        os.jump_prob = 0.16;
        os.new_block_prob = 0.05;
        os.short_reuse_prob = 0.65;
        os.geom_p = 0.10;
        os.zipf_theta = 0.75;
    }
};

/**
 * Check a configuration without constructing a generator. Returns a
 * Usage error describing the first invalid field, or ok.
 */
Error validateConfig(const AtumLikeConfig &cfg);

/**
 * The generator. A resettable TraceSource: reset() replays the
 * identical stream (it is a pure function of the config seed).
 * The constructor throws ErrorException (a FatalError) when
 * validateConfig() rejects @p cfg.
 */
class AtumLikeGenerator : public TraceSource
{
  public:
    explicit AtumLikeGenerator(const AtumLikeConfig &cfg = {});

    bool next(MemRef &ref) override;
    void reset() override;

    /** Total references this source will emit (including flush
     *  markers). */
    std::uint64_t totalRefs() const;

    /** The configuration in use. */
    const AtumLikeConfig &config() const { return cfg_; }

  private:
    void startSegment(unsigned seg);
    void scheduleBurst();

    AtumLikeConfig cfg_;

    unsigned segment_ = 0;
    std::uint64_t emitted_in_segment_ = 0;
    bool flush_pending_ = false;
    bool done_ = false;

    Pcg32 sched_rng_;
    std::vector<std::unique_ptr<ProcessModel>> procs_; ///< [0]=OS
    std::size_t current_proc_ = 0;
    std::uint64_t burst_left_ = 0;
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_ATUM_LIKE_H
