#include "trace/process_model.h"

#include <algorithm>

#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace trace {

namespace {

// Fixed offsets of the three regions inside a process address space.
// Each process gets a 64 MB space; code, stack and heap live in
// separate 16 MB quadrants so their tag bits differ.
constexpr Addr kCodeOffset = 0x0000000;
constexpr Addr kStackOffset = 0x1000000;
constexpr Addr kHeapOffset = 0x2000000;
constexpr Addr kQuadrantBytes = 0x1000000;

} // namespace

ProcessModel::ProcessModel(std::uint8_t pid, Addr base,
                           const ProcessParams &params, std::uint64_t seed)
    : pid_(pid), base_(base), params_(params),
      rng_(seed, 0x5bd1e995u ^ pid),
      zipf_(params.zipf_theta)
{
    fatalIf(params_.functions == 0, "ProcessModel: need >= 1 function");
    fatalIf(!isPow2(params_.heap_block_bytes),
            "ProcessModel: heap_block_bytes must be a power of two");
    fatalIf(params_.chunk_blocks == 0,
            "ProcessModel: chunk_blocks must be positive");

    // Scatter function start addresses through the code quadrant
    // (linked objects and shared libraries are not contiguous).
    // Keeps each function's body contiguous, spreads the upper
    // address bits.
    func_addr_.resize(params_.functions);
    for (unsigned f = 0; f < params_.functions; ++f) {
        Addr slot = rng_.below(kQuadrantBytes / params_.function_bytes);
        func_addr_[f] = base_ + kCodeOffset +
                        slot * params_.function_bytes;
    }

    pc_ = func_addr_[0];
    func_start_ = pc_;
    hot_funcs_.push_back(0);
}

MemRef
ProcessModel::nextRef()
{
    if (rng_.chance(params_.ifetch_fraction))
        return instructionRef();
    return dataRef();
}

void
ProcessModel::jump()
{
    double u = rng_.uniform();
    if (u < 0.60) {
        // Loop back within the current function: short backward
        // branch whose span is geometric (tight loops dominate).
        Addr span = 4 * (1 + rng_.geometric(0.10, 256));
        Addr target = pc_ >= func_start_ + span ? pc_ - span : func_start_;
        pc_ = target;
    } else if (u < 0.85) {
        // Call: prefer recently used (hot) functions via an MTF
        // list, occasionally branching to a cold one.
        std::uint32_t fid;
        if (!hot_funcs_.empty() && rng_.chance(0.8)) {
            std::uint32_t pos = static_cast<std::uint32_t>(std::min<std::size_t>(
                rng_.geometric(0.5, 255), hot_funcs_.size() - 1));
            fid = hot_funcs_[pos];
            hot_funcs_.erase(hot_funcs_.begin() + pos);
        } else {
            fid = rng_.below(params_.functions);
            auto it = std::find(hot_funcs_.begin(), hot_funcs_.end(), fid);
            if (it != hot_funcs_.end())
                hot_funcs_.erase(it);
        }
        hot_funcs_.insert(hot_funcs_.begin(), fid);
        if (hot_funcs_.size() > 16)
            hot_funcs_.pop_back();

        if (ret_stack_.size() < 64) {
            ret_stack_.push_back(pc_);
            ++call_depth_;
        }
        func_start_ = func_addr_[fid];
        pc_ = func_start_;
    } else {
        // Return.
        if (!ret_stack_.empty()) {
            pc_ = ret_stack_.back();
            ret_stack_.pop_back();
            if (call_depth_ > 1)
                --call_depth_;
            // Recover the enclosing function start (aligned down).
            Addr rel = pc_ - (base_ + kCodeOffset);
            func_start_ = base_ + kCodeOffset +
                          (rel / params_.function_bytes) *
                              params_.function_bytes;
        } else {
            pc_ = func_start_;
        }
    }
}

MemRef
ProcessModel::instructionRef()
{
    MemRef r{pc_, RefType::Ifetch, pid_};
    pc_ += 4;
    // Keep the PC inside the current function; fall off the end ==
    // implicit loop back to the function start.
    if (pc_ >= func_start_ + params_.function_bytes)
        pc_ = func_start_;
    if (rng_.chance(params_.jump_prob))
        jump();
    return r;
}

Addr
ProcessModel::stackAddr()
{
    // References cluster around the current frame: frame base plus a
    // small geometric offset downward (toward older frames).
    Addr frame = base_ + kStackOffset + call_depth_ * 96;
    Addr back = 4 * rng_.geometric(0.15, 128);
    Addr addr = frame >= back ? frame - back : base_ + kStackOffset;
    return addr;
}

Addr
ProcessModel::heapAddr()
{
    const unsigned blk = params_.heap_block_bytes;
    Addr block_addr;
    if (heap_blocks_.empty() || rng_.chance(params_.new_block_prob)) {
        // Footprint growth: bump allocation within the current
        // arena chunk; chunks are scattered through the heap
        // quadrant like mmap regions and malloc arenas, so tag bits
        // above the growth region carry entropy.
        if (chunk_used_ == 0 || chunk_used_ >= params_.chunk_blocks) {
            Addr chunk_bytes = params_.chunk_blocks * blk;
            Addr slots = kQuadrantBytes / chunk_bytes;
            chunk_base_ = base_ + kHeapOffset +
                          rng_.below(slots) * chunk_bytes;
            chunk_used_ = 0;
        }
        block_addr = chunk_base_ + chunk_used_ * blk;
        ++chunk_used_;
        heap_blocks_.insert(heap_blocks_.begin(), block_addr);
    } else {
        std::uint32_t n = static_cast<std::uint32_t>(heap_blocks_.size());
        std::uint32_t dist;
        if (rng_.chance(params_.short_reuse_prob)) {
            dist = rng_.geometric(params_.geom_p, n - 1);
        } else {
            dist = zipf_.draw(rng_, n);
        }
        if (dist >= n)
            dist = n - 1;
        block_addr = heap_blocks_[dist];
        // Move to front to maintain recency order.
        heap_blocks_.erase(heap_blocks_.begin() + dist);
        heap_blocks_.insert(heap_blocks_.begin(), block_addr);
    }
    // Offsets within a block are biased low (geometric): repeated
    // touches of a data structure mostly hit the same words, which
    // is what gives real traces their fine-grained (level-one
    // block) temporal locality.
    Addr off = 4 * rng_.geometric(0.45, blk / 4 - 1);
    return block_addr + off;
}

MemRef
ProcessModel::dataRef()
{
    Addr addr = rng_.chance(params_.stack_fraction) ? stackAddr()
                                                    : heapAddr();
    RefType type = rng_.chance(params_.write_fraction) ? RefType::Write
                                                       : RefType::Read;
    return MemRef{addr, type, pid_};
}

} // namespace trace
} // namespace assoc
