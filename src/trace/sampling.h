/**
 * @file
 * Trace sampling: standard techniques for making long traces cheap
 * to simulate while approximately preserving cache statistics.
 *
 *  - WindowSampledSource (time sampling): pass through alternating
 *    on/off windows of the underlying trace. Within-window locality
 *    is preserved; the effective trace shrinks by roughly
 *    on / (on + off). Flush markers always pass through so segment
 *    boundaries stay intact.
 *
 *  - SetSampledSource (set sampling [Puzak85 style]): keep only the
 *    references whose block maps into a chosen fraction of the
 *    cache sets (a contiguous range of set indices under the given
 *    geometry). Per-set behaviour is exact for the surviving sets,
 *    so miss *ratios* are nearly unbiased while the simulation
 *    touches 1/k of the cache.
 */

#ifndef ASSOC_TRACE_SAMPLING_H
#define ASSOC_TRACE_SAMPLING_H

#include <cstdint>

#include "trace/trace_source.h"

namespace assoc {
namespace trace {

/** Alternating on/off window pass-through. */
class WindowSampledSource : public TraceSource
{
  public:
    /**
     * @param inner the full trace (not owned).
     * @param on_refs references passed per window.
     * @param off_refs references dropped between windows.
     */
    WindowSampledSource(TraceSource &inner, std::uint64_t on_refs,
                        std::uint64_t off_refs);

    bool next(MemRef &ref) override;
    void reset() override;

  private:
    TraceSource &inner_;
    std::uint64_t on_refs_;
    std::uint64_t off_refs_;
    std::uint64_t pos_ = 0; ///< position within the on+off period
};

/** Keep references mapping to set indices [first, first+count). */
class SetSampledSource : public TraceSource
{
  public:
    /**
     * The set function is described by raw geometry parameters so
     * the trace layer stays independent of the cache model; pass a
     * CacheGeometry's blockBytes()/sets() when one is at hand.
     *
     * @param inner the full trace (not owned).
     * @param block_bytes cache block size (power of two).
     * @param sets number of sets (power of two).
     * @param first_set first sampled set index.
     * @param set_count number of sampled sets.
     */
    SetSampledSource(TraceSource &inner, std::uint32_t block_bytes,
                     std::uint32_t sets, std::uint32_t first_set,
                     std::uint32_t set_count);

    bool next(MemRef &ref) override;
    void reset() override;

    /** References read from the underlying trace so far. */
    std::uint64_t consumed() const { return consumed_; }

  private:
    TraceSource &inner_;
    unsigned offset_bits_;
    std::uint32_t set_mask_;
    std::uint32_t first_set_;
    std::uint32_t set_count_;
    std::uint64_t consumed_ = 0;
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_SAMPLING_H
