/**
 * @file
 * Trace sampling: standard techniques for making long traces cheap
 * to simulate while approximately preserving cache statistics.
 *
 *  - WindowSampledSource (time sampling): pass through alternating
 *    on/off windows of the underlying trace. Within-window locality
 *    is preserved; the effective trace shrinks by roughly
 *    on / (on + off). Flush markers always pass through so segment
 *    boundaries stay intact.
 *
 *  - SetSampledSource (set sampling [Puzak85 style]): keep only the
 *    references whose block maps into a chosen fraction of the
 *    cache sets (a contiguous range of set indices under the given
 *    geometry). Per-set behaviour is exact for the surviving sets,
 *    so miss *ratios* are nearly unbiased while the simulation
 *    touches 1/k of the cache.
 *
 * Both are *transparent wrappers* (docs/TRACES.md): error(),
 * skippedRecords(), setCancelToken() and setMemBudget() all forward
 * to the inner source, so a wrapped file-backed source that stops on
 * a real read failure still fails the wrapper (throwIfFailed sees
 * the inner structured error, never a silent end-of-trace) and
 * cancel tokens / memory budgets attached to the wrapper reach the
 * reader that actually polls them.
 *
 * Bad sampling geometry is a structured Usage error, not a process
 * abort: prefer the make() factories (Expected, matching the trace
 * readers); the constructors throw the same Error as an
 * ErrorException for call sites that want exceptions.
 */

#ifndef ASSOC_TRACE_SAMPLING_H
#define ASSOC_TRACE_SAMPLING_H

#include <cstdint>

#include "trace/trace_source.h"

namespace assoc {
namespace trace {

/** Alternating on/off window pass-through. */
class WindowSampledSource : public TraceSource
{
  public:
    /**
     * @param inner the full trace (not owned).
     * @param on_refs references passed per window.
     * @param off_refs references dropped between windows.
     *
     * Throws ErrorException (Usage) on a bad geometry; make() is
     * the non-throwing equivalent.
     */
    WindowSampledSource(TraceSource &inner, std::uint64_t on_refs,
                        std::uint64_t off_refs);

    /** Validate the window geometry without constructing. */
    static Error validate(std::uint64_t on_refs,
                          std::uint64_t off_refs);

    /** Non-throwing constructor: a source, or a structured Usage
     *  error a sweep job can report as a failed JobResult. */
    static Expected<WindowSampledSource>
    make(TraceSource &inner, std::uint64_t on_refs,
         std::uint64_t off_refs);

    bool next(MemRef &ref) override;
    void reset() override;

    // Transparent-wrapper forwarding (see file header).
    const Error &error() const override { return inner_.error(); }
    std::uint64_t skippedRecords() const override
    {
        return inner_.skippedRecords();
    }
    void setCancelToken(const CancelToken *t) override
    {
        inner_.setCancelToken(t);
    }
    void setMemBudget(MemBudget *b) override
    {
        inner_.setMemBudget(b);
    }

  private:
    TraceSource &inner_;
    std::uint64_t on_refs_;
    std::uint64_t off_refs_;
    std::uint64_t pos_ = 0; ///< position within the on+off period
};

/** Keep references mapping to set indices [first, first+count). */
class SetSampledSource : public TraceSource
{
  public:
    /**
     * The set function is described by raw geometry parameters so
     * the trace layer stays independent of the cache model; pass a
     * CacheGeometry's blockBytes()/sets() when one is at hand.
     *
     * @param inner the full trace (not owned).
     * @param block_bytes cache block size (power of two).
     * @param sets number of sets (power of two).
     * @param first_set first sampled set index.
     * @param set_count number of sampled sets.
     *
     * Throws ErrorException (Usage) on a bad geometry; make() is
     * the non-throwing equivalent.
     */
    SetSampledSource(TraceSource &inner, std::uint32_t block_bytes,
                     std::uint32_t sets, std::uint32_t first_set,
                     std::uint32_t set_count);

    /** Validate the sampling geometry without constructing. */
    static Error validate(std::uint32_t block_bytes,
                          std::uint32_t sets, std::uint32_t first_set,
                          std::uint32_t set_count);

    /** Non-throwing constructor: a source, or a structured Usage
     *  error a sweep job can report as a failed JobResult. */
    static Expected<SetSampledSource>
    make(TraceSource &inner, std::uint32_t block_bytes,
         std::uint32_t sets, std::uint32_t first_set,
         std::uint32_t set_count);

    bool next(MemRef &ref) override;
    void reset() override;

    /** References read from the underlying trace so far. */
    std::uint64_t consumed() const { return consumed_; }

    // Transparent-wrapper forwarding (see file header).
    const Error &error() const override { return inner_.error(); }
    std::uint64_t skippedRecords() const override
    {
        return inner_.skippedRecords();
    }
    void setCancelToken(const CancelToken *t) override
    {
        inner_.setCancelToken(t);
    }
    void setMemBudget(MemBudget *b) override
    {
        inner_.setMemBudget(b);
    }

  private:
    TraceSource &inner_;
    unsigned offset_bits_;
    std::uint32_t set_mask_;
    std::uint32_t first_set_;
    std::uint32_t set_count_;
    std::uint64_t consumed_ = 0;
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_SAMPLING_H
