#include "trace/sampling.h"

#include "util/bitops.h"

namespace assoc {
namespace trace {

Error
WindowSampledSource::validate(std::uint64_t on_refs,
                              std::uint64_t /*off_refs*/)
{
    if (on_refs == 0)
        return Error::usage("window sampling needs a non-empty "
                            "on-window");
    return Error();
}

Expected<WindowSampledSource>
WindowSampledSource::make(TraceSource &inner, std::uint64_t on_refs,
                          std::uint64_t off_refs)
{
    Error err = validate(on_refs, off_refs);
    if (err.failed())
        return err;
    return WindowSampledSource(inner, on_refs, off_refs);
}

WindowSampledSource::WindowSampledSource(TraceSource &inner,
                                         std::uint64_t on_refs,
                                         std::uint64_t off_refs)
    : inner_(inner), on_refs_(on_refs), off_refs_(off_refs)
{
    Error err = validate(on_refs_, off_refs_);
    if (err.failed())
        throwError(std::move(err));
}

bool
WindowSampledSource::next(MemRef &ref)
{
    const std::uint64_t period = on_refs_ + off_refs_;
    while (inner_.next(ref)) {
        // Flush markers do not advance the window position and
        // always pass: cold-start boundaries must survive sampling.
        if (ref.isFlush())
            return true;
        bool in_window = pos_ % period < on_refs_;
        ++pos_;
        if (in_window)
            return true;
    }
    return false;
}

void
WindowSampledSource::reset()
{
    inner_.reset();
    pos_ = 0;
}

Error
SetSampledSource::validate(std::uint32_t block_bytes,
                           std::uint32_t sets,
                           std::uint32_t first_set,
                           std::uint32_t set_count)
{
    if (!isPow2(block_bytes))
        return Error::usage("block size must be a power of two");
    if (!isPow2(sets))
        return Error::usage("set count must be a power of two");
    if (set_count == 0)
        return Error::usage("set sampling needs at least one set");
    if (first_set >= sets || set_count > sets - first_set)
        return Error::usage("sampled set range exceeds the geometry");
    return Error();
}

Expected<SetSampledSource>
SetSampledSource::make(TraceSource &inner, std::uint32_t block_bytes,
                       std::uint32_t sets, std::uint32_t first_set,
                       std::uint32_t set_count)
{
    Error err = validate(block_bytes, sets, first_set, set_count);
    if (err.failed())
        return err;
    return SetSampledSource(inner, block_bytes, sets, first_set,
                            set_count);
}

SetSampledSource::SetSampledSource(TraceSource &inner,
                                   std::uint32_t block_bytes,
                                   std::uint32_t sets,
                                   std::uint32_t first_set,
                                   std::uint32_t set_count)
    : inner_(inner), first_set_(first_set), set_count_(set_count)
{
    Error err = validate(block_bytes, sets, first_set_, set_count_);
    if (err.failed())
        throwError(std::move(err));
    offset_bits_ = log2i(block_bytes);
    set_mask_ = sets - 1;
}

bool
SetSampledSource::next(MemRef &ref)
{
    while (inner_.next(ref)) {
        ++consumed_;
        if (ref.isFlush())
            return true;
        std::uint32_t set = (ref.addr >> offset_bits_) & set_mask_;
        if (set >= first_set_ && set < first_set_ + set_count_)
            return true;
    }
    return false;
}

void
SetSampledSource::reset()
{
    inner_.reset();
    consumed_ = 0;
}

} // namespace trace
} // namespace assoc
