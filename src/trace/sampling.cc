#include "trace/sampling.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace trace {

WindowSampledSource::WindowSampledSource(TraceSource &inner,
                                         std::uint64_t on_refs,
                                         std::uint64_t off_refs)
    : inner_(inner), on_refs_(on_refs), off_refs_(off_refs)
{
    fatalIf(on_refs_ == 0, "window sampling needs a non-empty "
                           "on-window");
}

bool
WindowSampledSource::next(MemRef &ref)
{
    const std::uint64_t period = on_refs_ + off_refs_;
    while (inner_.next(ref)) {
        // Flush markers do not advance the window position and
        // always pass: cold-start boundaries must survive sampling.
        if (ref.isFlush())
            return true;
        bool in_window = pos_ % period < on_refs_;
        ++pos_;
        if (in_window)
            return true;
    }
    return false;
}

void
WindowSampledSource::reset()
{
    inner_.reset();
    pos_ = 0;
}

SetSampledSource::SetSampledSource(TraceSource &inner,
                                   std::uint32_t block_bytes,
                                   std::uint32_t sets,
                                   std::uint32_t first_set,
                                   std::uint32_t set_count)
    : inner_(inner), first_set_(first_set), set_count_(set_count)
{
    fatalIf(!isPow2(block_bytes), "block size must be a power of two");
    fatalIf(!isPow2(sets), "set count must be a power of two");
    offset_bits_ = log2i(block_bytes);
    set_mask_ = sets - 1;
    fatalIf(set_count_ == 0, "set sampling needs at least one set");
    fatalIf(first_set_ >= sets || set_count_ > sets - first_set_,
            "sampled set range exceeds the geometry");
}

bool
SetSampledSource::next(MemRef &ref)
{
    while (inner_.next(ref)) {
        ++consumed_;
        if (ref.isFlush())
            return true;
        std::uint32_t set = (ref.addr >> offset_bits_) & set_mask_;
        if (set >= first_set_ && set < first_set_ + set_count_)
            return true;
    }
    return false;
}

void
SetSampledSource::reset()
{
    inner_.reset();
    consumed_ = 0;
}

} // namespace trace
} // namespace assoc
