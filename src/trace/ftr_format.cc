#include "trace/ftr_format.h"

#include <algorithm>

#include "util/crc32c.h"
#include "util/varint.h"

namespace assoc {
namespace trace {
namespace ftr {

// File header: magic(4) version(4) total(8) frame_records(4)
// reserved(8) crc(4, over bytes [0,28)).

void
encodeFileHeader(std::uint8_t *out, const FileHeader &h)
{
    putU32(out, kFileMagic);
    putU32(out + 4, kVersion);
    putU64(out + 8, h.total_records);
    putU32(out + 16, h.frame_records);
    putU64(out + 20, 0); // reserved
    putU32(out + 28, crc32c(out, 28));
}

Expected<FileHeader>
decodeFileHeader(const std::uint8_t *p, std::size_t len)
{
    if (len < kHeaderBytes)
        return Error::data("file too short for an ftr header (" +
                           std::to_string(len) + " bytes, need " +
                           std::to_string(kHeaderBytes) + ")");
    if (getU32(p) != kFileMagic)
        return Error::data("bad ftr magic number");
    std::uint32_t version = getU32(p + 4);
    if (version != kVersion)
        return Error::data("ftr version " + std::to_string(version) +
                           "; this reader understands version " +
                           std::to_string(kVersion));
    if (getU32(p + 28) != crc32c(p, 28))
        return Error::data("ftr header checksum mismatch "
                           "(damaged header)");
    FileHeader h;
    h.total_records = getU64(p + 8);
    h.frame_records = getU32(p + 16);
    return h;
}

// Frame header: magic(4) start(8) count(4) payload_len(4)
// crc(4, over bytes [0,20)).

void
encodeFrameHeader(std::uint8_t *out, const FrameHeader &h)
{
    putU32(out, kFrameMagic);
    putU64(out + 4, h.start_index);
    putU32(out + 12, h.record_count);
    putU32(out + 16, h.payload_len);
    putU32(out + 20, crc32c(out, 20));
}

bool
decodeFrameHeader(const std::uint8_t *p, FrameHeader &out)
{
    if (getU32(p) != kFrameMagic)
        return false;
    if (getU32(p + 20) != crc32c(p, 20))
        return false;
    out.start_index = getU64(p + 4);
    out.record_count = getU32(p + 12);
    out.payload_len = getU32(p + 16);
    // The CRC matched, but stay defensive: a deliberately crafted
    // (or miraculously collided) header must not drive allocations.
    if (out.record_count > kMaxFrameRecords ||
        out.payload_len > kMaxFramePayload)
        return false;
    // Every record costs at least the meta byte; a count the payload
    // cannot possibly hold is structural damage.
    if (out.record_count > out.payload_len)
        return false;
    return true;
}

// Payload: per record one meta byte (type in bits 0-1, bit 2 set
// when a pid byte follows, bits 3-7 reserved zero), then the zigzag
// varint of the address delta from the previous record. The coder
// state resets per frame so any frame decodes standalone.

void
encodeFramePayload(const MemRef *recs, std::size_t n,
                   std::vector<std::uint8_t> &out)
{
    std::uint32_t prev_addr = 0;
    std::uint8_t prev_pid = 0;
    std::uint8_t varint[kMaxVarint32Bytes];
    for (std::size_t i = 0; i < n; ++i) {
        const MemRef &r = recs[i];
        std::uint8_t meta = static_cast<std::uint8_t>(r.type) & 0x3;
        if (r.pid != prev_pid)
            meta |= 0x4;
        out.push_back(meta);
        std::int32_t delta =
            static_cast<std::int32_t>(r.addr - prev_addr);
        std::size_t vn = putVarint32(varint, zigzagEncode32(delta));
        out.insert(out.end(), varint, varint + vn);
        if (r.pid != prev_pid) {
            out.push_back(r.pid);
            prev_pid = r.pid;
        }
        prev_addr = r.addr;
    }
}

bool
decodeFramePayload(const std::uint8_t *p, std::size_t len,
                   std::uint32_t expect_records,
                   std::vector<MemRef> &out)
{
    out.clear();
    out.reserve(expect_records);
    std::uint32_t prev_addr = 0;
    std::uint8_t prev_pid = 0;
    std::size_t pos = 0;
    for (std::uint32_t i = 0; i < expect_records; ++i) {
        if (pos >= len)
            return false; // payload exhausted mid-record
        std::uint8_t meta = p[pos++];
        if ((meta & ~0x7u) != 0)
            return false; // reserved meta bits set
        std::uint32_t zz = 0;
        std::size_t vn = getVarint32(p + pos, len - pos, zz);
        if (vn == 0)
            return false; // truncated or over-long varint
        pos += vn;
        prev_addr += static_cast<std::uint32_t>(zigzagDecode32(zz));
        if (meta & 0x4) {
            if (pos >= len)
                return false;
            prev_pid = p[pos++];
        }
        MemRef r;
        r.addr = prev_addr;
        r.type = static_cast<RefType>(meta & 0x3);
        r.pid = prev_pid;
        out.push_back(r);
    }
    return pos == len; // slack bytes mean a miscounted frame
}

// Footer block: magic(4) nframes(8) total(8) entries(16 each)
// crc(4, over everything before it); then the trailer:
// block_len(4) trailer magic(4). A reader finds the footer by
// reading the last 8 bytes, so the index survives as long as both
// the trailer and the block it points at are intact — otherwise the
// reader rebuilds the index by scanning frame headers.

// The trailer's block length is 32-bit; the entry cap must keep the
// block representable or the trailer would point at garbage.
static_assert(kFooterFixedBytes +
                      kMaxFooterFrames * kIndexEntryBytes <=
                  0xFFFFFFFFull,
              "footer block for kMaxFooterFrames entries must fit "
              "the trailer's 32-bit block length");

void
encodeFooter(const std::vector<IndexEntry> &index,
             std::uint64_t total_records,
             std::vector<std::uint8_t> &out)
{
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(index.size(), kMaxFooterFrames));
    std::size_t start = out.size();
    std::size_t block = kFooterFixedBytes -
                        4 + // crc appended after the entries
                        n * kIndexEntryBytes;
    out.resize(start + block + 4 + kTrailerBytes);
    std::uint8_t *p = out.data() + start;
    putU32(p, kFooterMagic);
    putU64(p + 4, n);
    putU64(p + 12, total_records);
    std::uint8_t *e = p + 20;
    for (std::size_t i = 0; i < n; ++i) {
        putU64(e, index[i].offset);
        putU64(e + 8, index[i].start_index);
        e += kIndexEntryBytes;
    }
    putU32(e, crc32c(p, static_cast<std::size_t>(e - p)));
    e += 4;
    std::size_t block_len = static_cast<std::size_t>(e - p);
    putU32(e, static_cast<std::uint32_t>(block_len));
    putU32(e + 4, kTrailerMagic);
}

bool
decodeFooter(const std::uint8_t *p, std::size_t len,
             std::vector<IndexEntry> &index,
             std::uint64_t &total_records)
{
    if (len < kFooterFixedBytes)
        return false;
    if (getU32(p) != kFooterMagic)
        return false;
    if (getU32(p + len - 4) != crc32c(p, len - 4))
        return false;
    std::uint64_t nframes = getU64(p + 4);
    if (nframes > kMaxFooterFrames)
        return false;
    if (len != kFooterFixedBytes + nframes * kIndexEntryBytes)
        return false;
    total_records = getU64(p + 12);
    index.clear();
    index.reserve(static_cast<std::size_t>(nframes));
    const std::uint8_t *e = p + 20;
    for (std::uint64_t i = 0; i < nframes; ++i) {
        IndexEntry ent;
        ent.offset = getU64(e);
        ent.start_index = getU64(e + 8);
        index.push_back(ent);
        e += kIndexEntryBytes;
    }
    return true;
}

} // namespace ftr
} // namespace trace
} // namespace assoc
