#include "trace/trace_file.h"

#include <fstream>

#include "trace/bin_io.h"
#include "trace/din_io.h"
#include "trace/ftr_format.h"
#include "trace/ftr_reader.h"

namespace assoc {
namespace trace {

namespace {

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

} // namespace

const char *
traceFormatName(TraceFormat f)
{
    switch (f) {
      case TraceFormat::Din: return "din";
      case TraceFormat::Bin: return "bin";
      case TraceFormat::Ftr: return "ftr";
    }
    return "?";
}

TraceFormat
detectTraceFormat(const std::string &path)
{
    if (hasSuffix(path, ".din"))
        return TraceFormat::Din;
    if (hasSuffix(path, ".bin"))
        return TraceFormat::Bin;
    if (hasSuffix(path, ".ftr"))
        return TraceFormat::Ftr;
    std::ifstream in(path, std::ios::binary);
    char magic[4] = {0, 0, 0, 0};
    in.read(magic, sizeof(magic));
    if (in.gcount() == 4) {
        if (magic[0] == 'A' && magic[1] == 'S' && magic[2] == 'T' &&
            magic[3] == 'R')
            return TraceFormat::Bin;
        if (magic[0] == 'A' && magic[1] == 'S' && magic[2] == 'F' &&
            magic[3] == '1')
            return TraceFormat::Ftr;
    }
    return TraceFormat::Din;
}

std::unique_ptr<TraceSource>
openTraceFile(const std::string &path, ErrorPolicy policy)
{
    switch (detectTraceFormat(path)) {
      case TraceFormat::Bin:
        return std::make_unique<BinTraceSource>(path, policy);
      case TraceFormat::Ftr:
        return std::make_unique<FtrTraceSource>(path, policy);
      case TraceFormat::Din:
        break;
    }
    return std::make_unique<DinTraceSource>(path, policy);
}

std::unique_ptr<TraceSource>
openTraceFileWithFaults(const std::string &path, ErrorPolicy policy,
                        const IoFaultPlan &plan)
{
    if (!plan.armed())
        return openTraceFile(path, policy);
    switch (detectTraceFormat(path)) {
      case TraceFormat::Bin:
        return std::make_unique<BinTraceSource>(
            openFaultyFile(path, plan), path, policy);
      case TraceFormat::Ftr:
        return std::make_unique<FtrTraceSource>(
            openFaultyFile(path, plan), path, policy);
      case TraceFormat::Din:
        break;
    }
    return std::make_unique<DinTraceSource>(
        openFaultyFile(path, plan), path, policy);
}

} // namespace trace
} // namespace assoc
