#include "trace/din_io.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace assoc {
namespace trace {

namespace {

int
labelOf(RefType t)
{
    switch (t) {
      case RefType::Read:
        return 0;
      case RefType::Write:
        return 1;
      case RefType::Ifetch:
        return 2;
      case RefType::Flush:
        return 4;
    }
    return 0;
}

RefType
typeOf(int label, const std::string &path, std::uint64_t line)
{
    switch (label) {
      case 0:
        return RefType::Read;
      case 1:
        return RefType::Write;
      case 2:
        return RefType::Ifetch;
      case 4:
        return RefType::Flush;
      default:
        fatal(path + ":" + std::to_string(line) +
              ": unknown din label " + std::to_string(label));
    }
}

} // namespace

void
writeDin(TraceSource &src, const std::string &path)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open '" + path + "' for writing");
    out << "# din trace (label addr-hex pid)\n";
    MemRef r;
    src.reset();
    while (src.next(r)) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%d %x %u\n", labelOf(r.type),
                      r.addr, static_cast<unsigned>(r.pid));
        out << buf;
    }
    fatalIf(!out.good(), "error writing '" + path + "'");
}

DinTraceSource::DinTraceSource(const std::string &path) : path_(path)
{
    in_.open(path_);
    fatalIf(!in_, "cannot open din trace '" + path_ + "'");
}

bool
DinTraceSource::next(MemRef &ref)
{
    std::string line;
    while (std::getline(in_, line)) {
        ++line_;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream iss(line);
        int label = -1;
        std::string addr_hex;
        unsigned pid = 0;
        iss >> label >> addr_hex;
        fatalIf(iss.fail(), path_ + ":" + std::to_string(line_) +
                ": malformed din line '" + line + "'");
        iss >> pid; // optional third column
        std::uint64_t addr = 0;
        try {
            std::size_t pos = 0;
            addr = std::stoull(addr_hex, &pos, 16);
            fatalIf(pos != addr_hex.size(), path_ + ":" +
                    std::to_string(line_) + ": bad address '" +
                    addr_hex + "'");
        } catch (const std::logic_error &) {
            fatal(path_ + ":" + std::to_string(line_) +
                  ": bad address '" + addr_hex + "'");
        }
        ref.addr = static_cast<Addr>(addr);
        ref.type = typeOf(label, path_, line_);
        ref.pid = static_cast<std::uint8_t>(pid);
        return true;
    }
    return false;
}

void
DinTraceSource::reset()
{
    in_.clear();
    in_.seekg(0);
    line_ = 0;
    fatalIf(!in_.good(), "cannot rewind din trace '" + path_ + "'");
}

} // namespace trace
} // namespace assoc
