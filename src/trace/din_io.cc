#include "trace/din_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace assoc {
namespace trace {

namespace {

int
labelOf(RefType t)
{
    switch (t) {
      case RefType::Read:
        return 0;
      case RefType::Write:
        return 1;
      case RefType::Ifetch:
        return 2;
      case RefType::Flush:
        return 4;
    }
    return 0;
}

/** Parse a decimal token fully; false on junk. */
bool
parseUint(const std::string &tok, std::uint64_t &out)
{
    try {
        std::size_t pos = 0;
        out = std::stoull(tok, &pos, 10);
        return pos == tok.size();
    } catch (const std::logic_error &) {
        return false;
    }
}

} // namespace

void
writeDin(TraceSource &src, const std::string &path)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open '" + path + "' for writing");
    out << "# din trace (label addr-hex pid)\n";
    MemRef r;
    src.reset();
    while (src.next(r)) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%d %x %u\n", labelOf(r.type),
                      r.addr, static_cast<unsigned>(r.pid));
        out << buf;
    }
    fatalIf(!out.good(), "error writing '" + path + "'");
}

DinTraceSource::DinTraceSource(const std::string &path, ErrorPolicy policy)
    : path_(path), policy_(policy),
      in_(std::make_unique<std::ifstream>(path))
{
    if (!*in_)
        error_ = Error::io("cannot open din trace '" + path_ + "'");
}

DinTraceSource::DinTraceSource(std::unique_ptr<std::istream> in,
                               std::string name, ErrorPolicy policy)
    : path_(std::move(name)), policy_(policy), in_(std::move(in))
{
    if (!in_ || in_->fail())
        error_ = Error::io("cannot open din trace '" + path_ + "'");
}

bool
DinTraceSource::tolerate(const std::string &what, const std::string &text)
{
    Error e = Error::data(path_ + ":" + std::to_string(line_) + ": " +
                          what);
    e.withContext("reading line '" + text + "'");
    if (policy_.mode == ErrorMode::Skip) {
        ++skipped_;
        if (skipped_ <= policy_.max_skips) {
            if (skipped_ == 1)
                warn(e.text() + " (skipping; further skips silent)");
            return true;
        }
        error_ = Error::data(path_ + ": gave up after skipping " +
                             std::to_string(policy_.max_skips) +
                             " malformed lines")
                     .withContext("last: " + e.text());
        return false;
    }
    error_ = std::move(e);
    return false;
}

bool
DinTraceSource::next(MemRef &ref)
{
    if (error_.failed())
        return false;
    std::string line;
    while (std::getline(*in_, line)) {
        ++line_;
        if (cancel_ && line_ % kCancelStride == 0) {
            Expected<void> go = cancel_->checkpoint();
            if (!go.ok()) {
                error_ = Error(go.error())
                             .withContext(path_ + ": line " +
                                          std::to_string(line_));
                return false;
            }
        }
        if (budget_ && line.capacity() > line_charge_.bytes()) {
            // Re-charge for the largest line seen so far: getline's
            // buffer growth is this reader's only unbounded
            // allocation (think a gigabyte with no newline).
            std::uint64_t want = line.capacity();
            line_charge_.release();
            Expected<MemCharge> c = MemCharge::charge(
                budget_, want, "din trace '" + path_ +
                                   "' line buffer");
            if (!c.ok()) {
                error_ = Error(c.error())
                             .withContext(path_ + ": line " +
                                          std::to_string(line_));
                return false;
            }
            line_charge_ = c.take();
        }
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream iss(line);
        std::string label_tok, addr_tok, pid_tok, extra_tok;
        iss >> label_tok >> addr_tok;
        if (addr_tok.empty()) {
            if (tolerate("malformed din line", line))
                continue;
            return false;
        }
        iss >> pid_tok; // optional third column
        bool have_extra = static_cast<bool>(iss >> extra_tok);

        std::uint64_t label = 0;
        if (!parseUint(label_tok, label)) {
            if (tolerate("malformed din line", line))
                continue;
            return false;
        }
        RefType type;
        switch (label) {
          case 0: type = RefType::Read; break;
          case 1: type = RefType::Write; break;
          case 2: type = RefType::Ifetch; break;
          case 4: type = RefType::Flush; break;
          default:
            if (tolerate("unknown din label " + std::to_string(label),
                         line))
                continue;
            return false;
        }

        std::uint64_t addr = 0;
        bool addr_ok = false;
        try {
            std::size_t pos = 0;
            addr = std::stoull(addr_tok, &pos, 16);
            addr_ok = pos == addr_tok.size();
        } catch (const std::logic_error &) {
            addr_ok = false;
        }
        if (!addr_ok) {
            if (tolerate("bad address '" + addr_tok + "'", line))
                continue;
            return false;
        }

        std::uint64_t pid = 0;
        if (!pid_tok.empty() && !parseUint(pid_tok, pid)) {
            // Historically a junk third column left pid at 0; only
            // Strict rejects it.
            if (policy_.mode == ErrorMode::Strict) {
                if (tolerate("bad pid '" + pid_tok + "'", line))
                    continue;
                return false;
            }
            pid = 0;
        }

        if (policy_.mode == ErrorMode::Strict) {
            if (have_extra) {
                if (tolerate("trailing junk '" + extra_tok + "'", line))
                    continue;
                return false;
            }
            if (addr > 0xffffffffull) {
                if (tolerate("address '" + addr_tok +
                             "' exceeds 32 bits", line))
                    continue;
                return false;
            }
            if (pid > 0xff) {
                if (tolerate("pid " + std::to_string(pid) +
                             " exceeds 8 bits", line))
                    continue;
                return false;
            }
        }

        ref.addr = static_cast<Addr>(addr);
        ref.type = type;
        ref.pid = static_cast<std::uint8_t>(pid);
        return true;
    }
    // getline stops on both end-of-file and a hard read error; the
    // latter must not masquerade as a clean EOF, or a dying disk
    // would silently truncate the trace we compute statistics over.
    if (in_->bad())
        error_ = Error::io(path_ + ": read error after line " +
                           std::to_string(line_));
    return false;
}

void
DinTraceSource::reset()
{
    if (!in_) {
        error_ = Error::io("cannot rewind din trace '" + path_ + "'");
        return;
    }
    in_->clear();
    in_->seekg(0);
    line_ = 0;
    skipped_ = 0;
    error_ = Error();
    if (!in_->good())
        error_ = Error::io("cannot rewind din trace '" + path_ + "'");
}

} // namespace trace
} // namespace assoc
