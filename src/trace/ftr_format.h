/**
 * @file
 * On-disk layout of the framed trace (ftr) format: pure, allocation-
 * light encode/decode helpers shared by the writer (ftr_writer.h),
 * the recoverable reader (ftr_reader.h), and the trace_pack tool.
 *
 * An ftr file is engineered to survive damage. It is a 32-byte file
 * header followed by self-contained *frames* — each one a 24-byte
 * frame header (sync magic, absolute start record index, record
 * count, payload byte length, header CRC32C), a delta+varint-encoded
 * payload, and a payload CRC32C — and ends with a seekable frame
 * index (footer) that carries its own checksum plus an 8-byte
 * trailer locating it from the end of the file. Every field a reader
 * trusts is covered by a CRC, every frame restates its absolute
 * position in the stream, and the delta coder resets per frame, so a
 * reader that lands on any intact frame header can decode from there
 * without upstream context. That is what makes resync-after-
 * corruption and torn-footer index rebuilds possible (see
 * docs/TRACES.md for the byte-level specification).
 *
 * Decoders here never trust a length or count from the wire without
 * bounds-checking it first, and return false (or a structured Error)
 * on anything malformed — corruption is an expected input, not an
 * exceptional one.
 */

#ifndef ASSOC_TRACE_FTR_FORMAT_H
#define ASSOC_TRACE_FTR_FORMAT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/memref.h"
#include "util/error.h"

namespace assoc {
namespace trace {
namespace ftr {

/** "ASF1" — file header magic (all constants little-endian). */
constexpr std::uint32_t kFileMagic =
    0x41u | (0x53u << 8) | (0x46u << 16) | (0x31u << 24);
/** "ASFr" — frame sync magic, scanned for during resync. */
constexpr std::uint32_t kFrameMagic =
    0x41u | (0x53u << 8) | (0x46u << 16) | (0x72u << 24);
/** "ASFi" — footer (frame index) block magic. */
constexpr std::uint32_t kFooterMagic =
    0x41u | (0x53u << 8) | (0x46u << 16) | (0x69u << 24);
/** "ASFe" — end-of-file trailer magic. */
constexpr std::uint32_t kTrailerMagic =
    0x41u | (0x53u << 8) | (0x46u << 16) | (0x65u << 24);

constexpr std::uint32_t kVersion = 1;

constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kFrameHeaderBytes = 24;
constexpr std::size_t kFrameCrcBytes = 4;  ///< payload CRC after payload
constexpr std::size_t kIndexEntryBytes = 16;
constexpr std::size_t kFooterFixedBytes = 24; ///< magic+counts+crc
constexpr std::size_t kTrailerBytes = 8;

/** Frame size used when the caller does not choose one. */
constexpr std::uint32_t kDefaultFrameRecords = 1u << 16;

/**
 * Defensive caps a decoder enforces before believing a frame header:
 * a corrupted count/length field must never drive a huge allocation
 * or a gigabyte read. Generous against real frames (the writer caps
 * frames at kMaxFrameRecords too).
 */
constexpr std::uint32_t kMaxFrameRecords = 1u << 22;
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/**
 * Most frames one footer can index: the trailer stores the block
 * length in 32 bits, so kFooterFixedBytes + n*kIndexEntryBytes must
 * fit a uint32_t or the trailer would point at garbage. The encoder
 * drops seek points past this count (sequential reads never need the
 * index; seeks past the last entry scan forward from it), decoders
 * reject anything claiming more, and the cap also bounds footer
 * memory on open.
 */
constexpr std::uint64_t kMaxFooterFrames =
    (0xFFFFFFFFull - kFooterFixedBytes) / kIndexEntryBytes;

// Little-endian field helpers (explicit bytes: endian-agnostic).

inline void
putU32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void
putU64(std::uint8_t *p, std::uint64_t v)
{
    putU32(p, static_cast<std::uint32_t>(v));
    putU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint32_t
getU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t
getU64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(getU32(p)) |
           (static_cast<std::uint64_t>(getU32(p + 4)) << 32);
}

/** Decoded file header (the CRC-checked, trusted fields). */
struct FileHeader
{
    std::uint64_t total_records = 0;
    /** Writer's frame size; a sizing hint only, frames self-describe. */
    std::uint32_t frame_records = kDefaultFrameRecords;
};

/** Serialize @p h into @p out (exactly kHeaderBytes). */
void encodeFileHeader(std::uint8_t *out, const FileHeader &h);

/**
 * Validate and decode a file header from @p len bytes at @p p.
 * Structured Data error on short input, bad magic, unsupported
 * version, or CRC mismatch.
 */
Expected<FileHeader> decodeFileHeader(const std::uint8_t *p,
                                      std::size_t len);

/** Decoded frame header (trusted only after its CRC checks out). */
struct FrameHeader
{
    std::uint64_t start_index = 0; ///< absolute index of first record
    std::uint32_t record_count = 0;
    std::uint32_t payload_len = 0; ///< bytes, excluding payload CRC
};

/** Serialize @p h into @p out (exactly kFrameHeaderBytes). */
void encodeFrameHeader(std::uint8_t *out, const FrameHeader &h);

/**
 * Validate and decode a frame header from exactly kFrameHeaderBytes
 * at @p p: magic, CRC, and the defensive caps must all hold. Returns
 * false on anything off — corruption, not an error condition.
 */
bool decodeFrameHeader(const std::uint8_t *p, FrameHeader &out);

/**
 * Append the payload encoding of @p n records to @p out. The delta
 * coder starts from (addr 0, pid 0) — frames are self-contained.
 */
void encodeFramePayload(const MemRef *recs, std::size_t n,
                        std::vector<std::uint8_t> &out);

/**
 * Decode a frame payload of exactly @p len bytes into @p out
 * (cleared first). False unless exactly @p expect_records decode and
 * the input is consumed exactly — any slack or overrun means the
 * frame is corrupt despite a matching CRC-sized read.
 */
bool decodeFramePayload(const std::uint8_t *p, std::size_t len,
                        std::uint32_t expect_records,
                        std::vector<MemRef> &out);

/** One frame's seek point. */
struct IndexEntry
{
    std::uint64_t offset = 0;      ///< frame header's file offset
    std::uint64_t start_index = 0; ///< its first record's index
};

/**
 * Append the footer block *and* the 8-byte trailer for @p index to
 * @p out. Written at the end of the file, after the last frame.
 * Only the first kMaxFooterFrames entries are indexed — any more
 * would overflow the trailer's 32-bit block length (the writer warns
 * when it drops seek points; the file stays fully streamable).
 */
void encodeFooter(const std::vector<IndexEntry> &index,
                  std::uint64_t total_records,
                  std::vector<std::uint8_t> &out);

/**
 * Validate and decode a footer block (without its trailer) from
 * exactly @p len bytes at @p p. False on bad magic, CRC mismatch, or
 * an entry count inconsistent with @p len.
 */
bool decodeFooter(const std::uint8_t *p, std::size_t len,
                  std::vector<IndexEntry> &index,
                  std::uint64_t &total_records);

} // namespace ftr
} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_FTR_FORMAT_H
