/**
 * @file
 * Trace characterization: reference mix, footprint, per-process
 * breakdown. Used by the trace_tools example and by tests that
 * validate the synthetic workload against its calibration targets.
 */

#ifndef ASSOC_TRACE_TRACE_STATS_H
#define ASSOC_TRACE_TRACE_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "trace/trace_source.h"

namespace assoc {
namespace trace {

/** Aggregate statistics over a trace. */
struct TraceStats
{
    std::uint64_t refs = 0;      ///< total non-flush references
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t ifetches = 0;
    std::uint64_t flushes = 0;

    /** Distinct blocks touched, at @c block_bytes granularity. */
    std::uint64_t footprint_blocks = 0;
    unsigned block_bytes = 32;

    /** References per process id. */
    std::map<unsigned, std::uint64_t> per_pid;

    double readFraction() const;
    double writeFraction() const;
    double ifetchFraction() const;

    /** Footprint in bytes. */
    std::uint64_t footprintBytes() const;

    /** Pretty-print a summary. */
    void print(std::ostream &os) const;
};

/**
 * Collect statistics over all of @p src (consumes it from the start;
 * resets it first).
 * @param block_bytes footprint granularity (power of two).
 */
TraceStats collectStats(TraceSource &src, unsigned block_bytes = 32);

/**
 * Collect statistics per flush-delimited segment: one TraceStats
 * for each of the sub-traces a flush marker separates (the 23
 * concatenated ATUM pieces of the paper's Table 3). Flush markers
 * are counted in the *preceding* segment's flushes field.
 */
std::vector<TraceStats> collectSegmentStats(TraceSource &src,
                                            unsigned block_bytes = 32);

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_TRACE_STATS_H
