/**
 * @file
 * Recoverable, prefetching reader for the framed trace (ftr) format.
 *
 * Every frame is verified (header CRC, payload CRC, exact decode)
 * *before* any of its records reach the simulator. What happens on a
 * bad frame is the ErrorPolicy's call:
 *
 *  - FailFast/Strict: stop with a structured Data error naming the
 *    file, byte offset, and record position.
 *  - Skip: resync — scan forward for the next frame whose sync
 *    magic, header CRC, and payload CRC all check out, count the
 *    records the damage swallowed (frames carry absolute record
 *    indices, so the gap is exact), and keep streaming. Each damaged
 *    region counts as ONE damage event against ErrorPolicy::
 *    max_skips; skippedRecords() still reports lost *records*, so a
 *    single 64Ki-record frame lost to a disk error does not exhaust
 *    a 100-event budget.
 *
 * Hard IO errors (badbit — the device failed, not the data) are
 * never skippable; they surface as Error::io regardless of policy.
 *
 * The footer's frame index makes the file seekable; when it is torn
 * off or damaged, Skip mode rebuilds the index by scanning frame
 * headers (FailFast reports it). A writer killed before
 * FtrWriter::finish() additionally leaves the header's record total
 * unpatched at zero; the same scan then derives the total from the
 * recovered frames, so every flushed frame is still delivered
 * (records that never left the writer's buffer are unknowable). Reading is double-buffered: a
 * producer thread verifies and decodes the next frames while the
 * simulator drains the current one, with every decoded-frame buffer
 * charged to the attached MemBudget and cancellation polled at frame
 * granularity on the producer and every ~1k records on the consumer.
 */

#ifndef ASSOC_TRACE_FTR_READER_H
#define ASSOC_TRACE_FTR_READER_H

#include <condition_variable>
#include <deque>
#include <istream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/ftr_format.h"
#include "trace/trace_source.h"

namespace assoc {
namespace trace {

/** Reader knobs beyond the ErrorPolicy. */
struct FtrOptions
{
    /** Decode ahead on a producer thread (double-buffered). The
     *  stream is bit-identical with prefetch on or off. */
    bool prefetch = true;
};

/** Streaming TraceSource over an ftr file. */
class FtrTraceSource : public TraceSource
{
  public:
    /** Open @p path; problems land in error(), nothing throws. */
    explicit FtrTraceSource(const std::string &path,
                            ErrorPolicy policy = ErrorPolicy(),
                            FtrOptions opt = FtrOptions());

    /** Read from a caller-supplied stream (fault-injection tests);
     *  @p name labels error messages. */
    FtrTraceSource(std::unique_ptr<std::istream> in, std::string name,
                   ErrorPolicy policy = ErrorPolicy(),
                   FtrOptions opt = FtrOptions());

    ~FtrTraceSource() override;

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *out, std::size_t max) override;
    void reset() override;

    const Error &error() const override { return error_; }

    /** Records lost to damaged/missing frames (Skip mode). */
    std::uint64_t skippedRecords() const override { return skipped_; }

    /** Damaged regions tolerated so far (what max_skips bounds). */
    std::uint64_t damageEvents() const { return damage_; }

    /** Record count claimed by the (CRC-verified) file header — or,
     *  when a crash before FtrWriter::finish() left the header total
     *  unpatched (zero) with frames on disk, the total derived from
     *  the recovered frames during the index rebuild. */
    std::uint64_t totalRecords() const { return total_; }

    /** Writer's frame size hint from the header. */
    std::uint32_t frameRecords() const { return header_.frame_records; }

    /** True when the footer was unusable and the frame index was
     *  rebuilt by scanning (Skip mode only). */
    bool indexRebuilt() const { return index_rebuilt_; }

    /** Frame seek points (from the footer, or rebuilt by scan). */
    const std::vector<ftr::IndexEntry> &frameIndex() const
    {
        return index_;
    }

    /**
     * Position the stream so the next record delivered is record
     * @p index (indices are absolute, 0-based; damaged records are
     * unreachable and silently stepped over, as in streaming). Seeks
     * land on the containing frame via the index and discard within
     * it. Skip/damage counters keep accumulating across seeks;
     * reset() is the full rewind.
     */
    Expected<void> seekToRecord(std::uint64_t index);

    /** Attach before streaming begins (or after reset()). */
    void setCancelToken(const CancelToken *t) override { cancel_ = t; }
    void setMemBudget(MemBudget *b) override { budget_ = b; }

  private:
    /** Producer queue depth: one frame draining, two in flight. */
    static constexpr std::size_t kPrefetchDepth = 2;
    /** Consumer records between cancel-token polls. */
    static constexpr std::uint64_t kCancelStride = 1024;
    /** Bytes per chunk while scanning for a sync magic. */
    static constexpr std::size_t kScanChunk = 64 * 1024;

    /** One verified, decoded frame (or an end/error marker). */
    struct Slot
    {
        std::vector<MemRef> recs;
        MemCharge charge;
        std::uint64_t first_index = 0; ///< absolute index of recs[0]
        std::uint64_t skipped_total = 0;
        std::uint64_t damage_total = 0;
        Error err;
        bool end = false;
    };

    /** Outcome of validating one frame at a byte offset. */
    enum class FrameCheck {
        Good,    ///< fully verified and decoded
        Corrupt, ///< damage (bad CRC/decode/short data) — resyncable
        Hard,    ///< unskippable failure (IO error, budget)
    };

    void openAndValidate();
    void loadIndex();
    void rebuildIndexByScan();
    std::size_t readAt(std::uint64_t off, std::uint8_t *dst,
                       std::size_t n, Error &hard);
    FrameCheck tryFrameAt(std::uint64_t off, ftr::FrameHeader &fh,
                          Slot &s, Error &hard);
    bool resync(std::uint64_t from, ftr::FrameHeader &fh, Slot &s,
                Error &hard, bool &found);
    Slot fillSlot();
    void endOfData();
    void ensureStarted();
    void stopProducer();
    void producerLoop();
    bool pullBuffer();
    void resetCore();

    std::string name_;
    ErrorPolicy policy_;
    FtrOptions opt_;
    std::unique_ptr<std::istream> in_;

    // Set once at open.
    ftr::FileHeader header_;
    /** Effective record total every bound/accounting check uses: the
     *  header's, unless total_unknown_ made the scan derive it. */
    std::uint64_t total_ = 0;
    /** The header total is unpatched (zero, writer crashed before
     *  finish()) and frames must speak for themselves. */
    bool total_unknown_ = false;
    std::vector<ftr::IndexEntry> index_;
    bool index_rebuilt_ = false;
    std::uint64_t file_size_ = 0;
    std::uint64_t data_end_ = 0; ///< byte offset where frames stop
    Error header_error_;         ///< permanent open/validation failure

    // Producer-side streaming state (the consumer touches it only
    // while no producer thread is running).
    std::uint64_t read_offset_ = 0;
    std::uint64_t expected_ = 0; ///< next record index due
    std::uint64_t core_skipped_ = 0;
    std::uint64_t core_damage_ = 0;
    bool core_end_ = false;
    Error core_err_;
    std::vector<std::uint8_t> buf_; ///< frame payload scratch
    MemCharge buf_charge_;

    // Consumer-side state.
    std::vector<MemRef> cur_;
    MemCharge cur_charge_;
    std::size_t cur_pos_ = 0;
    std::uint64_t cur_first_ = 0;
    std::uint64_t discard_to_ = 0; ///< seek target (absolute index)
    std::uint64_t polled_ = 0;
    std::uint64_t skipped_ = 0;
    std::uint64_t damage_ = 0;
    bool done_ = false;
    Error error_;
    const CancelToken *cancel_ = nullptr;
    MemBudget *budget_ = nullptr;

    // Prefetch plumbing.
    std::thread producer_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Slot> queue_;
    bool stop_ = false;
    bool started_ = false;
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_FTR_READER_H
