#include "trace/trace_stats.h"

#include "util/bitops.h"
#include "util/logging.h"
#include "util/table.h"

namespace assoc {
namespace trace {

double
TraceStats::readFraction() const
{
    return refs == 0 ? 0.0 : static_cast<double>(reads) / refs;
}

double
TraceStats::writeFraction() const
{
    return refs == 0 ? 0.0 : static_cast<double>(writes) / refs;
}

double
TraceStats::ifetchFraction() const
{
    return refs == 0 ? 0.0 : static_cast<double>(ifetches) / refs;
}

std::uint64_t
TraceStats::footprintBytes() const
{
    return footprint_blocks * block_bytes;
}

void
TraceStats::print(std::ostream &os) const
{
    TextTable t;
    t.setHeader({"metric", "value"});
    t.addRow({"references", TextTable::num(refs)});
    t.addRow({"reads", TextTable::num(reads) + "  (" +
              TextTable::num(100.0 * readFraction(), 1) + "%)"});
    t.addRow({"writes", TextTable::num(writes) + "  (" +
              TextTable::num(100.0 * writeFraction(), 1) + "%)"});
    t.addRow({"ifetches", TextTable::num(ifetches) + "  (" +
              TextTable::num(100.0 * ifetchFraction(), 1) + "%)"});
    t.addRow({"flush markers", TextTable::num(flushes)});
    t.addRow({"footprint", TextTable::num(footprintBytes() / 1024) +
              " KB (" + TextTable::num(footprint_blocks) + " x " +
              TextTable::num(std::uint64_t{block_bytes}) + "B blocks)"});
    for (const auto &[pid, n] : per_pid) {
        t.addRow({"pid " + std::to_string(pid) + " refs",
                  TextTable::num(n)});
    }
    t.print(os);
}

namespace {

/** Fold one reference into @p s and @p blocks. */
void
accumulate(TraceStats &s, std::unordered_set<std::uint64_t> &blocks,
           const MemRef &r, unsigned shift)
{
    ++s.refs;
    ++s.per_pid[r.pid];
    switch (r.type) {
      case RefType::Read:
        ++s.reads;
        break;
      case RefType::Write:
        ++s.writes;
        break;
      case RefType::Ifetch:
        ++s.ifetches;
        break;
      case RefType::Flush:
        break;
    }
    blocks.insert(static_cast<std::uint64_t>(r.addr) >> shift);
}

} // namespace

TraceStats
collectStats(TraceSource &src, unsigned block_bytes)
{
    fatalIf(!isPow2(block_bytes), "collectStats: block size not pow2");
    TraceStats s;
    s.block_bytes = block_bytes;
    const unsigned shift = log2i(block_bytes);

    std::unordered_set<std::uint64_t> blocks;
    MemRef r;
    src.reset();
    while (src.next(r)) {
        if (r.isFlush()) {
            ++s.flushes;
            continue;
        }
        accumulate(s, blocks, r, shift);
    }
    s.footprint_blocks = blocks.size();
    return s;
}

std::vector<TraceStats>
collectSegmentStats(TraceSource &src, unsigned block_bytes)
{
    fatalIf(!isPow2(block_bytes),
            "collectSegmentStats: block size not pow2");
    const unsigned shift = log2i(block_bytes);

    std::vector<TraceStats> segments;
    TraceStats cur;
    cur.block_bytes = block_bytes;
    std::unordered_set<std::uint64_t> blocks;

    auto finish = [&]() {
        cur.footprint_blocks = blocks.size();
        segments.push_back(cur);
        cur = TraceStats{};
        cur.block_bytes = block_bytes;
        blocks.clear();
    };

    MemRef r;
    src.reset();
    while (src.next(r)) {
        if (r.isFlush()) {
            ++cur.flushes;
            finish();
            continue;
        }
        accumulate(cur, blocks, r, shift);
    }
    if (cur.refs != 0 || segments.empty())
        finish();
    return segments;
}

} // namespace trace
} // namespace assoc
