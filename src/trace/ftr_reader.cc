#include "trace/ftr_reader.h"

#include <algorithm>
#include <array>
#include <fstream>

#include "util/crc32c.h"
#include "util/logging.h"

namespace assoc {
namespace trace {

using ftr::getU32;

FtrTraceSource::FtrTraceSource(const std::string &path,
                               ErrorPolicy policy, FtrOptions opt)
    : name_(path), policy_(policy), opt_(opt)
{
    auto f = std::make_unique<std::ifstream>(path, std::ios::binary);
    if (!*f) {
        header_error_ = Error::io("cannot open ftr trace '" + name_ +
                                  "'");
        error_ = header_error_;
        done_ = true;
        return;
    }
    in_ = std::move(f);
    openAndValidate();
}

FtrTraceSource::FtrTraceSource(std::unique_ptr<std::istream> in,
                               std::string name, ErrorPolicy policy,
                               FtrOptions opt)
    : name_(std::move(name)), policy_(policy), opt_(opt),
      in_(std::move(in))
{
    if (!in_ || in_->fail()) {
        header_error_ = Error::io("cannot open ftr trace '" + name_ +
                                  "'");
        error_ = header_error_;
        done_ = true;
        return;
    }
    openAndValidate();
}

FtrTraceSource::~FtrTraceSource()
{
    stopProducer();
}

std::size_t
FtrTraceSource::readAt(std::uint64_t off, std::uint8_t *dst,
                       std::size_t n, Error &hard)
{
    in_->clear();
    in_->seekg(static_cast<std::streamoff>(off));
    if (in_->bad() || in_->fail()) {
        hard = Error::io("cannot seek to byte offset " +
                         std::to_string(off) + " in '" + name_ + "'");
        return 0;
    }
    in_->read(reinterpret_cast<char *>(dst),
              static_cast<std::streamsize>(n));
    std::size_t got = static_cast<std::size_t>(in_->gcount());
    if (in_->bad()) {
        // The device failed, not the data: never skippable.
        hard = Error::io("read error in '" + name_ +
                         "' near byte offset " +
                         std::to_string(off + got));
    }
    return got;
}

void
FtrTraceSource::openAndValidate()
{
    in_->clear();
    in_->seekg(0, std::ios::end);
    if (!in_->good()) {
        header_error_ =
            Error::io("cannot determine the size of '" + name_ + "'");
    } else {
        file_size_ = static_cast<std::uint64_t>(in_->tellg());
        std::array<std::uint8_t, ftr::kHeaderBytes> hdr{};
        Error hard;
        std::size_t got = readAt(0, hdr.data(), hdr.size(), hard);
        if (hard.failed()) {
            header_error_ = hard;
        } else {
            Expected<ftr::FileHeader> h =
                ftr::decodeFileHeader(hdr.data(), got);
            if (!h.ok())
                header_error_ =
                    Error(h.error()).withContext("'" + name_ + "'");
            else {
                header_ = h.take();
                total_ = header_.total_records;
            }
        }
    }
    if (header_error_.ok())
        loadIndex();
    error_ = header_error_;
    done_ = header_error_.failed();
    resetCore();
}

void
FtrTraceSource::loadIndex()
{
    data_end_ = ftr::kHeaderBytes;
    bool ok = false;
    do {
        if (file_size_ < ftr::kHeaderBytes + ftr::kFooterFixedBytes +
                             ftr::kTrailerBytes)
            break;
        std::array<std::uint8_t, ftr::kTrailerBytes> tr{};
        Error hard;
        if (readAt(file_size_ - ftr::kTrailerBytes, tr.data(),
                   tr.size(), hard) != tr.size() ||
            hard.failed()) {
            if (hard.failed()) {
                header_error_ = hard;
                return;
            }
            break;
        }
        if (getU32(tr.data() + 4) != ftr::kTrailerMagic)
            break;
        std::uint64_t blen = getU32(tr.data());
        if (blen < ftr::kFooterFixedBytes ||
            ftr::kHeaderBytes + blen + ftr::kTrailerBytes > file_size_)
            break;
        std::vector<std::uint8_t> block(
            static_cast<std::size_t>(blen));
        std::uint64_t boff = file_size_ - ftr::kTrailerBytes - blen;
        if (readAt(boff, block.data(), block.size(), hard) !=
                block.size() ||
            hard.failed()) {
            if (hard.failed()) {
                header_error_ = hard;
                return;
            }
            break;
        }
        std::uint64_t ftotal = 0;
        if (!ftr::decodeFooter(block.data(), block.size(), index_,
                               ftotal))
            break;
        if (ftotal != header_.total_records) {
            index_.clear();
            break;
        }
        data_end_ = boff;
        ok = true;
    } while (false);

    if (ok)
        return;
    if (policy_.mode == ErrorMode::Skip) {
        // A zero header total with no usable footer is the crash-
        // before-finish() shape: the writer never patched the total,
        // so only the frames themselves can say how many records
        // exist. Bounding the scan by the (unpatched) header total
        // would reject every frame and silently read an empty trace.
        total_unknown_ = header_.total_records == 0;
        if (total_unknown_)
            warn("'" + name_ + "': no frame index and an unpatched "
                 "(zero) header record total — the writer crashed "
                 "before finish(); deriving the total from the "
                 "frames it flushed");
        else
            warn("'" + name_ + "': frame index (footer) is missing "
                 "or damaged; rebuilding it by scanning frame "
                 "headers");
        index_rebuilt_ = true;
        rebuildIndexByScan();
    } else {
        header_error_ = Error::data(
            "'" + name_ + "': frame index (footer) is missing or "
            "damaged (skip mode rebuilds it by scanning)");
    }
}

void
FtrTraceSource::rebuildIndexByScan()
{
    index_.clear();
    data_end_ = ftr::kHeaderBytes;
    std::uint64_t pos = ftr::kHeaderBytes;
    std::array<std::uint8_t, ftr::kFrameHeaderBytes> hdr{};
    std::vector<std::uint8_t> win(kScanChunk);
    while (pos + ftr::kFrameHeaderBytes <= file_size_) {
        Error hard;
        std::size_t got = readAt(pos, hdr.data(), hdr.size(), hard);
        if (hard.failed()) {
            header_error_ = hard;
            return;
        }
        if (got < hdr.size())
            break;
        if (getU32(hdr.data()) == ftr::kFooterMagic)
            break; // walked into the (unusable) footer block
        ftr::FrameHeader fh;
        if (ftr::decodeFrameHeader(hdr.data(), fh) &&
            pos + ftr::kFrameHeaderBytes + fh.payload_len +
                    ftr::kFrameCrcBytes <=
                file_size_ &&
            (total_unknown_ ||
             fh.start_index + fh.record_count <= total_)) {
            index_.push_back({pos, fh.start_index});
            if (total_unknown_)
                total_ = std::max(total_, fh.start_index +
                                              fh.record_count);
            pos += ftr::kFrameHeaderBytes + fh.payload_len +
                   ftr::kFrameCrcBytes;
            data_end_ = pos;
            continue;
        }
        // Damaged header: hunt forward for the next plausible frame.
        std::uint64_t scan = pos + 1;
        bool found = false;
        while (!found &&
               scan + ftr::kFrameHeaderBytes <= file_size_) {
            std::size_t want = static_cast<std::size_t>(std::min<
                std::uint64_t>(kScanChunk, file_size_ - scan));
            got = readAt(scan, win.data(), want, hard);
            if (hard.failed()) {
                header_error_ = hard;
                return;
            }
            if (got < 4)
                break;
            for (std::size_t i = 0; i + 4 <= got; ++i) {
                if (getU32(win.data() + i) != ftr::kFrameMagic)
                    continue;
                std::uint64_t cand = scan + i;
                if (cand + ftr::kFrameHeaderBytes > file_size_)
                    continue;
                std::size_t hgot =
                    readAt(cand, hdr.data(), hdr.size(), hard);
                if (hard.failed()) {
                    header_error_ = hard;
                    return;
                }
                ftr::FrameHeader cfh;
                if (hgot == hdr.size() &&
                    ftr::decodeFrameHeader(hdr.data(), cfh)) {
                    pos = cand;
                    found = true;
                    break;
                }
            }
            if (found || got < want)
                break;
            scan += got - 3; // re-examine chunk-boundary bytes
        }
        if (!found)
            break;
    }
}

FtrTraceSource::FrameCheck
FtrTraceSource::tryFrameAt(std::uint64_t off, ftr::FrameHeader &fh,
                           Slot &s, Error &hard)
{
    s.recs.clear();
    s.charge.release();
    std::array<std::uint8_t, ftr::kFrameHeaderBytes> hdr{};
    std::size_t got = readAt(off, hdr.data(), hdr.size(), hard);
    if (hard.failed())
        return FrameCheck::Hard;
    if (got < hdr.size())
        return FrameCheck::Corrupt; // torn off mid-header
    if (!ftr::decodeFrameHeader(hdr.data(), fh))
        return FrameCheck::Corrupt;
    std::uint64_t body = static_cast<std::uint64_t>(fh.payload_len) +
                         ftr::kFrameCrcBytes;
    if (off + ftr::kFrameHeaderBytes + body > data_end_)
        return FrameCheck::Corrupt; // frame sticks past frame data

    if (body > buf_charge_.bytes()) {
        Expected<MemCharge> c = MemCharge::charge(
            budget_, body, "'" + name_ + "' frame payload buffer");
        if (!c.ok()) {
            hard = Error(c.error());
            return FrameCheck::Hard;
        }
        buf_charge_ = c.take();
    }
    buf_.resize(static_cast<std::size_t>(body));
    got = readAt(off + ftr::kFrameHeaderBytes, buf_.data(),
                 buf_.size(), hard);
    if (hard.failed())
        return FrameCheck::Hard;
    if (got < buf_.size())
        return FrameCheck::Corrupt; // torn off mid-payload
    if (getU32(buf_.data() + fh.payload_len) !=
        crc32c(buf_.data(), fh.payload_len))
        return FrameCheck::Corrupt;

    Expected<MemCharge> rc = MemCharge::charge(
        budget_,
        static_cast<std::uint64_t>(fh.record_count) * sizeof(MemRef),
        "'" + name_ + "' decoded frame");
    if (!rc.ok()) {
        hard = Error(rc.error());
        return FrameCheck::Hard;
    }
    s.charge = rc.take();
    if (!ftr::decodeFramePayload(buf_.data(), fh.payload_len,
                                 fh.record_count, s.recs)) {
        s.recs.clear();
        s.charge.release();
        return FrameCheck::Corrupt;
    }
    return FrameCheck::Good;
}

bool
FtrTraceSource::resync(std::uint64_t from, ftr::FrameHeader &fh,
                       Slot &s, Error &hard, bool &found)
{
    found = false;
    std::vector<std::uint8_t> win(kScanChunk);
    std::uint64_t pos = from;
    while (pos + ftr::kFrameHeaderBytes <= data_end_) {
        if (cancel_) {
            Expected<void> go = cancel_->checkpoint();
            if (!go.ok()) {
                hard = Error(go.error())
                           .withContext("'" + name_ +
                                        "': resyncing after damage");
                return false;
            }
        }
        std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(kScanChunk, data_end_ - pos));
        std::size_t got = readAt(pos, win.data(), want, hard);
        if (hard.failed())
            return false;
        if (got < 4)
            break;
        for (std::size_t i = 0; i + 4 <= got; ++i) {
            if (getU32(win.data() + i) != ftr::kFrameMagic)
                continue;
            std::uint64_t cand = pos + i;
            FrameCheck c = tryFrameAt(cand, fh, s, hard);
            if (c == FrameCheck::Hard)
                return false;
            if (c == FrameCheck::Good &&
                fh.start_index >= expected_ &&
                fh.start_index + fh.record_count <= total_) {
                read_offset_ = cand;
                found = true;
                return true;
            }
        }
        if (got < want)
            break; // the file shrank under us; treat as torn
        pos += got - 3; // re-examine chunk-boundary bytes
    }
    return true;
}

void
FtrTraceSource::endOfData()
{
    if (expected_ < total_) {
        std::uint64_t lost = total_ - expected_;
        if (policy_.mode != ErrorMode::Skip) {
            core_err_ = Error::data(
                "'" + name_ + "' ends at record " +
                std::to_string(expected_) + " of " +
                std::to_string(total_) +
                " (frame data is truncated)");
            return;
        }
        ++core_damage_;
        if (core_damage_ > policy_.max_skips) {
            core_err_ = Error::data(
                "'" + name_ + "': gave up after tolerating " +
                std::to_string(policy_.max_skips) +
                " damaged regions (torn tail loses " +
                std::to_string(lost) + " records)");
            return;
        }
        if (core_damage_ == 1)
            warn("'" + name_ + "' ends at record " +
                 std::to_string(expected_) + " of " +
                 std::to_string(total_) +
                 " (skipping the torn tail)");
        core_skipped_ += lost;
        expected_ = total_;
    }
    core_end_ = true;
}

FtrTraceSource::Slot
FtrTraceSource::fillSlot()
{
    Slot s;
    for (;;) {
        if (core_err_.failed()) {
            s.err = core_err_;
            break;
        }
        if (core_end_) {
            s.end = true;
            break;
        }
        if (cancel_) {
            Expected<void> go = cancel_->checkpoint();
            if (!go.ok()) {
                core_err_ = Error(go.error())
                                .withContext(
                                    "'" + name_ + "': record " +
                                    std::to_string(expected_));
                continue;
            }
        }
        if (read_offset_ >= data_end_) {
            endOfData();
            continue;
        }

        ftr::FrameHeader fh;
        Error hard;
        FrameCheck c = tryFrameAt(read_offset_, fh, s, hard);
        if (c == FrameCheck::Hard) {
            core_err_ = std::move(hard);
            continue;
        }
        // A verified frame that contradicts the stream is damage
        // too: stale duplicates (start below the stream position)
        // and frames claiming records past the header's total.
        if (c == FrameCheck::Good &&
            (fh.start_index < expected_ ||
             fh.start_index + fh.record_count > total_))
            c = FrameCheck::Corrupt;

        bool resynced = false;
        if (c == FrameCheck::Corrupt) {
            std::uint64_t at = read_offset_;
            if (policy_.mode != ErrorMode::Skip) {
                core_err_ = Error::data(
                    "'" + name_ + "': corrupt frame at byte offset " +
                    std::to_string(at) + " (next record " +
                    std::to_string(expected_) + " of " +
                    std::to_string(total_) + ")");
                continue;
            }
            ++core_damage_;
            if (core_damage_ > policy_.max_skips) {
                core_err_ =
                    Error::data("'" + name_ +
                                "': gave up after tolerating " +
                                std::to_string(policy_.max_skips) +
                                " damaged regions")
                        .withContext("last damage at byte offset " +
                                     std::to_string(at));
                continue;
            }
            if (core_damage_ == 1)
                warn("'" + name_ +
                     "': corrupt frame at byte offset " +
                     std::to_string(at) +
                     " (resyncing; further damage counted "
                     "silently)");
            bool found = false;
            if (!resync(at + 1, fh, s, hard, found)) {
                core_err_ = std::move(hard);
                continue;
            }
            if (!found) {
                endOfData();
                continue;
            }
            resynced = true; // read_offset_ now at the found frame
        }

        if (fh.start_index > expected_) {
            // Records in between are unreachable. After a resync the
            // damage event is already counted; a silent gap between
            // back-to-back valid frames is its own event.
            if (policy_.mode != ErrorMode::Skip) {
                core_err_ = Error::data(
                    "'" + name_ + "': records " +
                    std::to_string(expected_) + ".." +
                    std::to_string(fh.start_index - 1) +
                    " are missing (gap before the frame at byte "
                    "offset " +
                    std::to_string(read_offset_) + ")");
                continue;
            }
            if (!resynced) {
                ++core_damage_;
                if (core_damage_ > policy_.max_skips) {
                    core_err_ = Error::data(
                        "'" + name_ +
                        "': gave up after tolerating " +
                        std::to_string(policy_.max_skips) +
                        " damaged regions");
                    continue;
                }
            }
            core_skipped_ += fh.start_index - expected_;
            expected_ = fh.start_index;
        }

        s.first_index = fh.start_index;
        expected_ = fh.start_index + fh.record_count;
        read_offset_ += ftr::kFrameHeaderBytes + fh.payload_len +
                        ftr::kFrameCrcBytes;
        if (s.recs.empty())
            continue; // zero-record frame; nothing to deliver
        break;
    }
    s.skipped_total = core_skipped_;
    s.damage_total = core_damage_;
    return s;
}

void
FtrTraceSource::producerLoop()
{
    for (;;) {
        Slot s = fillSlot();
        bool last = s.end || s.err.failed();
        {
            std::unique_lock<std::mutex> l(mu_);
            cv_.wait(l, [&] {
                return stop_ || queue_.size() < kPrefetchDepth;
            });
            if (stop_)
                return;
            queue_.push_back(std::move(s));
        }
        cv_.notify_all();
        if (last)
            return;
    }
}

void
FtrTraceSource::ensureStarted()
{
    if (started_ || !opt_.prefetch)
        return;
    stop_ = false;
    started_ = true;
    producer_ = std::thread(&FtrTraceSource::producerLoop, this);
}

void
FtrTraceSource::stopProducer()
{
    if (started_) {
        {
            std::lock_guard<std::mutex> l(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        if (producer_.joinable())
            producer_.join();
        started_ = false;
        stop_ = false;
    }
    queue_.clear();
}

bool
FtrTraceSource::pullBuffer()
{
    for (;;) {
        cur_charge_.release();
        cur_.clear();
        cur_pos_ = 0;
        Slot s;
        if (opt_.prefetch) {
            ensureStarted();
            {
                std::unique_lock<std::mutex> l(mu_);
                cv_.wait(l, [&] { return !queue_.empty(); });
                s = std::move(queue_.front());
                queue_.pop_front();
            }
            cv_.notify_all();
        } else {
            s = fillSlot();
        }
        skipped_ = s.skipped_total;
        damage_ = s.damage_total;
        if (s.err.failed()) {
            error_ = s.err;
            done_ = true;
            return false;
        }
        if (s.end) {
            done_ = true;
            return false;
        }
        cur_ = std::move(s.recs);
        cur_charge_ = std::move(s.charge);
        cur_first_ = s.first_index;
        cur_pos_ = 0;
        if (discard_to_ > cur_first_)
            cur_pos_ = static_cast<std::size_t>(std::min<
                std::uint64_t>(discard_to_ - cur_first_,
                               cur_.size()));
        if (cur_pos_ < cur_.size())
            return true;
        // Frame entirely before a seek target; pull the next one.
    }
}

bool
FtrTraceSource::next(MemRef &ref)
{
    if (done_)
        return false;
    if (cancel_ && ++polled_ >= kCancelStride) {
        polled_ = 0;
        Expected<void> go = cancel_->checkpoint();
        if (!go.ok()) {
            error_ = Error(go.error())
                         .withContext("'" + name_ + "': record " +
                                      std::to_string(cur_first_ +
                                                     cur_pos_));
            done_ = true;
            return false;
        }
    }
    if (cur_pos_ >= cur_.size() && !pullBuffer())
        return false;
    ref = cur_[cur_pos_++];
    return true;
}

std::size_t
FtrTraceSource::nextBatch(MemRef *out, std::size_t max)
{
    std::size_t n = 0;
    while (n < max && !done_) {
        if (cur_pos_ >= cur_.size() && !pullBuffer())
            break;
        std::size_t take =
            std::min(max - n, cur_.size() - cur_pos_);
        std::copy_n(cur_.begin() +
                        static_cast<std::ptrdiff_t>(cur_pos_),
                    take, out + n);
        cur_pos_ += take;
        n += take;
        polled_ += take;
        if (cancel_ && polled_ >= kCancelStride) {
            polled_ = 0;
            Expected<void> go = cancel_->checkpoint();
            if (!go.ok()) {
                error_ = Error(go.error())
                             .withContext(
                                 "'" + name_ + "': record " +
                                 std::to_string(cur_first_ +
                                                cur_pos_));
                done_ = true;
                break;
            }
        }
    }
    return n;
}

void
FtrTraceSource::resetCore()
{
    read_offset_ = ftr::kHeaderBytes;
    expected_ = 0;
    core_skipped_ = 0;
    core_damage_ = 0;
    core_end_ = false;
    core_err_ = Error();
}

void
FtrTraceSource::reset()
{
    stopProducer();
    cur_charge_.release();
    cur_.clear();
    cur_pos_ = 0;
    cur_first_ = 0;
    discard_to_ = 0;
    polled_ = 0;
    skipped_ = 0;
    damage_ = 0;
    error_ = header_error_;
    done_ = header_error_.failed();
    resetCore();
}

Expected<void>
FtrTraceSource::seekToRecord(std::uint64_t index)
{
    if (header_error_.failed())
        return Error(header_error_);
    stopProducer();
    cur_charge_.release();
    cur_.clear();
    cur_pos_ = 0;
    if (core_err_.failed())
        return Error(core_err_)
            .withContext("cannot seek a failed stream (reset() "
                         "rewinds it)");
    core_end_ = false;
    done_ = false;
    error_ = Error();
    if (index >= total_) {
        read_offset_ = data_end_;
        expected_ = total_;
        discard_to_ = 0;
        return {};
    }
    if (index_.empty()) {
        read_offset_ = ftr::kHeaderBytes;
        expected_ = 0;
    } else {
        auto it = std::upper_bound(
            index_.begin(), index_.end(), index,
            [](std::uint64_t v, const ftr::IndexEntry &e) {
                return v < e.start_index;
            });
        if (it != index_.begin())
            --it;
        read_offset_ = it->offset;
        expected_ = it->start_index;
    }
    discard_to_ = index;
    return {};
}

} // namespace trace
} // namespace assoc
