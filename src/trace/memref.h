/**
 * @file
 * The memory-reference record that flows from a trace source into
 * the cache hierarchy.
 */

#ifndef ASSOC_TRACE_MEMREF_H
#define ASSOC_TRACE_MEMREF_H

#include <cstdint>
#include <string>

namespace assoc {
namespace trace {

/** 32-bit virtual byte address (the paper's traces are VAX). */
using Addr = std::uint32_t;

/** Kind of processor reference. */
enum class RefType : std::uint8_t {
    Read = 0,     ///< data read
    Write = 1,    ///< data write
    Ifetch = 2,   ///< instruction fetch
    /**
     * Flush marker: invalidate all cache levels. The ATUM-like
     * trace inserts one between its 23 concatenated sub-traces so
     * each starts from a cold cache, as in the paper (Table 3).
     */
    Flush = 3,
};

/** One traced reference. */
struct MemRef
{
    Addr addr = 0;          ///< virtual byte address
    RefType type = RefType::Read;
    std::uint8_t pid = 0;   ///< process id (0 = OS/kernel)

    bool isFlush() const { return type == RefType::Flush; }
    bool isWrite() const { return type == RefType::Write; }
    bool
    isInstruction() const
    {
        return type == RefType::Ifetch;
    }

    /** A flush marker record. */
    static MemRef
    flush()
    {
        return MemRef{0, RefType::Flush, 0};
    }

    bool
    operator==(const MemRef &o) const
    {
        return addr == o.addr && type == o.type && pid == o.pid;
    }
};

/** Human-readable name of a reference type. */
const char *refTypeName(RefType t);

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_MEMREF_H
