/**
 * @file
 * Packed binary trace format: compact (6 bytes/reference) and fast.
 *
 * Layout: 16-byte header (magic "ASTR", u32 version, u64 count),
 * then count records of {u32 addr (little endian), u8 type, u8 pid}.
 *
 * The reader validates magic, version, and the header's record count
 * against the actual file size up front, so truncation is a
 * structured Error at open rather than a surprise mid-stream. Under
 * ErrorMode::Skip a truncated tail is clamped off (counted in
 * skippedRecords()); ErrorMode::Strict additionally rejects trailing
 * bytes beyond the last claimed record.
 */

#ifndef ASSOC_TRACE_BIN_IO_H
#define ASSOC_TRACE_BIN_IO_H

#include <istream>
#include <memory>
#include <string>

#include "trace/trace_source.h"
#include "util/error.h"

namespace assoc {
namespace trace {

/** Write all references of @p src to @p path in binary format.
 *  @return number of references written. */
std::uint64_t writeBin(TraceSource &src, const std::string &path);

/** Streaming reader for binary trace files. */
class BinTraceSource : public TraceSource
{
  public:
    /**
     * Open @p path and validate the header. Problems (missing file,
     * bad magic/version, size mismatch) are recorded in error()
     * rather than thrown.
     */
    explicit BinTraceSource(const std::string &path,
                            ErrorPolicy policy = ErrorPolicy());

    /** Read from a caller-supplied stream (fault-injection tests);
     *  @p name labels error messages. */
    BinTraceSource(std::unique_ptr<std::istream> in, std::string name,
                   ErrorPolicy policy = ErrorPolicy());

    bool next(MemRef &ref) override;
    void reset() override;

    const Error &error() const override { return error_; }
    std::uint64_t skippedRecords() const override { return skipped_; }

    /** References this source will stream (clamped under Skip). */
    std::uint64_t count() const { return count_; }

    /** Record count claimed by the file header. */
    std::uint64_t claimedCount() const { return claimed_; }

    /** Polled every kCancelStride records; a tripped token stops the
     *  stream with its structured error. */
    void setCancelToken(const CancelToken *t) override { cancel_ = t; }

  private:
    /** Records between cancel-token polls while streaming. */
    static constexpr std::uint64_t kCancelStride = 1024;

    void readHeader();
    bool tolerate(const std::string &what);

    std::string path_;
    ErrorPolicy policy_;
    std::unique_ptr<std::istream> in_;
    std::uint64_t claimed_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;
    const CancelToken *cancel_ = nullptr;
    std::uint64_t clamp_skips_ = 0; ///< records lost to truncation
    std::uint64_t skipped_ = 0;
    Error header_error_; ///< permanent open/validation failure
    Error error_;
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_BIN_IO_H
