/**
 * @file
 * Packed binary trace format: compact (6 bytes/reference) and fast.
 *
 * Layout: 16-byte header (magic "ASTR", u32 version, u64 count),
 * then count records of {u32 addr (little endian), u8 type, u8 pid}.
 */

#ifndef ASSOC_TRACE_BIN_IO_H
#define ASSOC_TRACE_BIN_IO_H

#include <fstream>
#include <string>

#include "trace/trace_source.h"

namespace assoc {
namespace trace {

/** Write all references of @p src to @p path in binary format.
 *  @return number of references written. */
std::uint64_t writeBin(TraceSource &src, const std::string &path);

/** Streaming reader for binary trace files. */
class BinTraceSource : public TraceSource
{
  public:
    /** Open @p path; calls fatal() on bad magic/version. */
    explicit BinTraceSource(const std::string &path);

    bool next(MemRef &ref) override;
    void reset() override;

    /** Number of references in the file (from the header). */
    std::uint64_t count() const { return count_; }

  private:
    void readHeader();

    std::string path_;
    std::ifstream in_;
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_BIN_IO_H
