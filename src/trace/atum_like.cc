#include "trace/atum_like.h"

#include <algorithm>

#include "util/logging.h"

namespace assoc {
namespace trace {

Error
validateConfig(const AtumLikeConfig &cfg)
{
    if (cfg.segments == 0)
        return Error::usage("AtumLikeGenerator: zero segments");
    if (cfg.refs_per_segment == 0)
        return Error::usage("AtumLikeGenerator: zero refs per segment");
    if (cfg.processes == 0 || cfg.processes > 60)
        return Error::usage(
            "AtumLikeGenerator: processes must be in [1, 60]");
    return Error();
}

AtumLikeGenerator::AtumLikeGenerator(const AtumLikeConfig &cfg)
    : cfg_(cfg)
{
    Error e = validateConfig(cfg_);
    if (e.failed())
        throwError(std::move(e));
    reset();
}

std::uint64_t
AtumLikeGenerator::totalRefs() const
{
    std::uint64_t flushes =
        cfg_.flush_between_segments ? cfg_.segments - 1 : 0;
    return static_cast<std::uint64_t>(cfg_.segments) *
               cfg_.refs_per_segment + flushes;
}

void
AtumLikeGenerator::startSegment(unsigned seg)
{
    segment_ = seg;
    emitted_in_segment_ = 0;

    // Derive per-segment seeds from the master seed so the 23
    // segments behave like 23 different (but related) workloads.
    SplitMix64 seeder(cfg_.seed + 0x9e37u * (seg + 1));
    sched_rng_.reseed(seeder.next(), seeder.next());

    procs_.clear();
    // pid 0: operating system. Shares one address space across
    // segments (prefix 1).
    procs_.push_back(std::make_unique<ProcessModel>(
        0, Addr{1} << 26, cfg_.os, seeder.next()));
    for (unsigned p = 0; p < cfg_.processes; ++p) {
        // Vary per-process behaviour slightly so processes are not
        // clones: scale footprint growth and code size.
        ProcessParams params = cfg_.user;
        double scale = 0.6 + 0.2 * (seeder.next() % 5); // 0.6 .. 1.4
        params.new_block_prob *= scale;
        params.functions =
            std::max(8u, static_cast<unsigned>(params.functions * scale));
        procs_.push_back(std::make_unique<ProcessModel>(
            static_cast<std::uint8_t>(p + 1),
            Addr{static_cast<Addr>(p + 2)} << 26, params, seeder.next()));
    }
    current_proc_ = 1 % procs_.size();
    burst_left_ = 0;
}

void
AtumLikeGenerator::scheduleBurst()
{
    // Pick the next process to run: the OS with probability
    // os_burst_prob (shorter bursts), otherwise round-robin over the
    // user processes with geometric burst lengths.
    if (procs_.size() > 1 && sched_rng_.chance(cfg_.os_burst_prob)) {
        current_proc_ = 0;
        burst_left_ = 1 + sched_rng_.geometric(
            1.0 / static_cast<double>(cfg_.os_burst_mean));
    } else {
        std::size_t users = procs_.size() - 1;
        if (users == 0) {
            current_proc_ = 0;
        } else {
            std::size_t cur = current_proc_ == 0 ? 0 : current_proc_ - 1;
            current_proc_ = 1 + (cur + 1) % users;
        }
        burst_left_ = 1 + sched_rng_.geometric(
            1.0 / static_cast<double>(cfg_.switch_mean));
    }
}

bool
AtumLikeGenerator::next(MemRef &ref)
{
    if (done_)
        return false;

    if (flush_pending_) {
        flush_pending_ = false;
        startSegment(segment_ + 1);
        ref = MemRef::flush();
        return true;
    }

    if (emitted_in_segment_ >= cfg_.refs_per_segment) {
        // Segment finished.
        if (segment_ + 1 >= cfg_.segments) {
            done_ = true;
            return false;
        }
        if (cfg_.flush_between_segments) {
            flush_pending_ = true;
            return next(ref);
        }
        startSegment(segment_ + 1);
    }

    if (burst_left_ == 0)
        scheduleBurst();
    --burst_left_;

    ref = procs_[current_proc_]->nextRef();
    ++emitted_in_segment_;
    return true;
}

void
AtumLikeGenerator::reset()
{
    done_ = false;
    flush_pending_ = false;
    startSegment(0);
}

} // namespace trace
} // namespace assoc
