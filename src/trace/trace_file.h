/**
 * @file
 * One place that knows how to open a trace file of any on-disk
 * format (din text, packed bin, framed ftr) — by extension when it
 * is telling, by magic-number sniff when it is not — optionally with
 * IO faults injected underneath for robustness testing.
 */

#ifndef ASSOC_TRACE_TRACE_FILE_H
#define ASSOC_TRACE_TRACE_FILE_H

#include <memory>
#include <string>

#include "trace/trace_source.h"
#include "util/error.h"
#include "util/io_fault.h"

namespace assoc {
namespace trace {

/** The trace file formats this repo reads and writes. */
enum class TraceFormat { Din, Bin, Ftr };

/** Short lowercase name ("din", "bin", "ftr"). */
const char *traceFormatName(TraceFormat f);

/**
 * Decide @p path's format: a .din/.bin/.ftr extension wins; anything
 * else is sniffed by magic number (unreadable or unrecognized files
 * default to din, whose parser reports precise line errors).
 */
TraceFormat detectTraceFormat(const std::string &path);

/**
 * Open @p path as a TraceSource of the detected format. Never null;
 * open failures are carried in the source's error() as usual.
 */
std::unique_ptr<TraceSource>
openTraceFile(const std::string &path,
              ErrorPolicy policy = ErrorPolicy());

/**
 * Same, but the reader sees @p plan's injected IO faults (short
 * read / hard error at a byte offset) — the fault campaigns' view
 * of a dying disk.
 */
std::unique_ptr<TraceSource>
openTraceFileWithFaults(const std::string &path, ErrorPolicy policy,
                        const IoFaultPlan &plan);

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_TRACE_FILE_H
