/**
 * @file
 * Streaming trace-source interface and a simple in-memory source.
 *
 * Traces are streamed rather than materialized: an 8-million
 * reference trace replayed over dozens of cache configurations
 * would otherwise dominate memory. Sources are resettable so every
 * configuration replays the byte-identical stream.
 */

#ifndef ASSOC_TRACE_TRACE_SOURCE_H
#define ASSOC_TRACE_TRACE_SOURCE_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/memref.h"
#include "util/cancel.h"
#include "util/error.h"

namespace assoc {
namespace trace {

/** Abstract resettable stream of memory references. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     * @param ref output record, valid only when true is returned.
     * @return false at end of trace, or when the source failed —
     *         callers distinguish the two via error().
     */
    virtual bool next(MemRef &ref) = 0;

    /** Rewind to the beginning; the same stream replays. */
    virtual void reset() = 0;

    /**
     * Produce up to @p max references into @p out. Returns how many
     * were produced; fewer than @p max only at end of trace (or on
     * failure — check error(), exactly as with next()). The default
     * simply loops next(); sources with contiguous backing override
     * it to amortize the per-record virtual dispatch (the batched
     * replay path in mem::TwoLevelHierarchy::run). The stream is
     * identical to repeated next() calls by contract.
     */
    virtual std::size_t
    nextBatch(MemRef *out, std::size_t max)
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /**
     * Status of the stream. File-backed sources record malformed
     * input here (per their ErrorPolicy) instead of throwing;
     * in-memory sources are always ok.
     */
    virtual const Error &error() const { return okError(); }

    /** True when the stream stopped on an error rather than EOF. */
    bool failed() const { return error().failed(); }

    /** Malformed records tolerated so far (ErrorMode::Skip). */
    virtual std::uint64_t skippedRecords() const { return 0; }

    /**
     * Attach a cooperative cancel token (not owned; null detaches).
     * File-backed sources poll it every few hundred records and
     * stop with its structured error, so a cancelled job never
     * spends minutes finishing a doomed read. In-memory sources
     * ignore it — the simulation loop already checkpoints.
     */
    virtual void setCancelToken(const CancelToken *) {}

    /**
     * Attach a memory budget (not owned; null detaches). Sources
     * with input-proportional buffers charge them here; a malformed
     * input that balloons a buffer then fails with a structured
     * budget error instead of an OOM.
     */
    virtual void setMemBudget(MemBudget *) {}

  protected:
    /** Shared "no error" singleton for sources that cannot fail. */
    static const Error &
    okError()
    {
        static const Error ok;
        return ok;
    }
};

/** Throw the source's Error when streaming stopped on a failure. */
inline void
throwIfFailed(const TraceSource &src)
{
    if (src.failed())
        throwError(Error(src.error()));
}

/** Trace source over an in-memory vector (tests, small traces). */
class VectorTraceSource : public TraceSource
{
  public:
    VectorTraceSource() = default;
    explicit VectorTraceSource(std::vector<MemRef> refs)
        : refs_(std::move(refs))
    {}

    /** Append one reference (before streaming). */
    void push(const MemRef &r) { refs_.push_back(r); }

    bool
    next(MemRef &ref) override
    {
        if (pos_ >= refs_.size())
            return false;
        ref = refs_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    /** Bulk copy straight out of the backing vector. */
    std::size_t
    nextBatch(MemRef *out, std::size_t max) override
    {
        std::size_t n = refs_.size() - pos_;
        if (n > max)
            n = max;
        std::copy_n(refs_.begin() + static_cast<std::ptrdiff_t>(pos_),
                    n, out);
        pos_ += n;
        return n;
    }

    /** Total number of stored references. */
    std::size_t size() const { return refs_.size(); }

    /** Access to the underlying records. */
    const std::vector<MemRef> &refs() const { return refs_; }

  private:
    std::vector<MemRef> refs_;
    std::size_t pos_ = 0;
};

/**
 * Wrap a source, truncating it after @p limit references.
 * Useful for quick runs of the full ATUM-like trace.
 *
 * A transparent wrapper (docs/TRACES.md): status and attachments
 * forward to the inner source, so a wrapped reader that stops on a
 * real failure is never mistaken for a clean end-of-trace.
 */
class LimitedTraceSource : public TraceSource
{
  public:
    LimitedTraceSource(TraceSource &inner, std::uint64_t limit)
        : inner_(inner), limit_(limit)
    {}

    bool
    next(MemRef &ref) override
    {
        if (count_ >= limit_)
            return false;
        if (!inner_.next(ref))
            return false;
        ++count_;
        return true;
    }

    void
    reset() override
    {
        inner_.reset();
        count_ = 0;
    }

    const Error &error() const override { return inner_.error(); }

    std::uint64_t skippedRecords() const override
    {
        return inner_.skippedRecords();
    }

    void setCancelToken(const CancelToken *t) override
    {
        inner_.setCancelToken(t);
    }

    void setMemBudget(MemBudget *b) override
    {
        inner_.setMemBudget(b);
    }

  private:
    TraceSource &inner_;
    std::uint64_t limit_;
    std::uint64_t count_ = 0;
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_TRACE_SOURCE_H
