#include "trace/memref.h"

namespace assoc {
namespace trace {

const char *
refTypeName(RefType t)
{
    switch (t) {
      case RefType::Read:
        return "read";
      case RefType::Write:
        return "write";
      case RefType::Ifetch:
        return "ifetch";
      case RefType::Flush:
        return "flush";
    }
    return "unknown";
}

} // namespace trace
} // namespace assoc
