#include "trace/synthetic.h"

#include "util/logging.h"

namespace assoc {
namespace trace {

SequentialScan::SequentialScan(Addr base, std::uint32_t step,
                               std::uint64_t count, RefType type)
    : base_(base), step_(step), count_(count), type_(type)
{
    fatalIf(step_ == 0, "SequentialScan: zero step");
}

bool
SequentialScan::next(MemRef &ref)
{
    if (pos_ >= count_)
        return false;
    ref.addr = base_ + static_cast<Addr>(pos_ * step_);
    ref.type = type_;
    ref.pid = 0;
    ++pos_;
    return true;
}

void
SequentialScan::reset()
{
    pos_ = 0;
}

LoopTrace::LoopTrace(Addr base, std::uint32_t block_bytes,
                     std::uint32_t blocks, std::uint64_t count)
    : base_(base), block_bytes_(block_bytes), blocks_(blocks),
      count_(count)
{
    fatalIf(block_bytes_ == 0, "LoopTrace: zero block size");
    fatalIf(blocks_ == 0, "LoopTrace: empty working set");
}

bool
LoopTrace::next(MemRef &ref)
{
    if (pos_ >= count_)
        return false;
    std::uint32_t idx = static_cast<std::uint32_t>(pos_ % blocks_);
    ref.addr = base_ + idx * block_bytes_;
    ref.type = RefType::Read;
    ref.pid = 0;
    ++pos_;
    return true;
}

void
LoopTrace::reset()
{
    pos_ = 0;
}

UniformRandomTrace::UniformRandomTrace(Addr base,
                                       std::uint32_t block_bytes,
                                       std::uint32_t blocks,
                                       std::uint64_t count,
                                       std::uint64_t seed,
                                       double write_fraction)
    : base_(base), block_bytes_(block_bytes), blocks_(blocks),
      count_(count), seed_(seed), write_fraction_(write_fraction),
      rng_(seed)
{
    fatalIf(block_bytes_ == 0, "UniformRandomTrace: zero block size");
    fatalIf(blocks_ == 0, "UniformRandomTrace: empty region");
    fatalIf(write_fraction_ < 0.0 || write_fraction_ > 1.0,
            "UniformRandomTrace: write fraction out of [0, 1]");
}

bool
UniformRandomTrace::next(MemRef &ref)
{
    if (pos_ >= count_)
        return false;
    ref.addr = base_ + rng_.below(blocks_) * block_bytes_;
    ref.type = (write_fraction_ > 0.0 && rng_.chance(write_fraction_))
                   ? RefType::Write
                   : RefType::Read;
    ref.pid = 0;
    ++pos_;
    return true;
}

void
UniformRandomTrace::reset()
{
    rng_.reseed(seed_);
    pos_ = 0;
}

StrideTrace::StrideTrace(Addr base, std::uint32_t stride,
                         std::uint64_t refs_per_pass,
                         std::uint32_t passes)
    : base_(base), stride_(stride), refs_per_pass_(refs_per_pass),
      passes_(passes)
{
    fatalIf(stride_ == 0, "StrideTrace: zero stride");
    fatalIf(refs_per_pass_ == 0, "StrideTrace: empty pass");
}

bool
StrideTrace::next(MemRef &ref)
{
    if (pos_ >= refs_per_pass_ * passes_)
        return false;
    std::uint64_t in_pass = pos_ % refs_per_pass_;
    ref.addr = base_ + static_cast<Addr>(in_pass * stride_);
    ref.type = RefType::Read;
    ref.pid = 0;
    ++pos_;
    return true;
}

void
StrideTrace::reset()
{
    pos_ = 0;
}

} // namespace trace
} // namespace assoc
