#include "trace/bin_io.h"

#include <array>
#include <cstring>

#include "util/logging.h"

namespace assoc {
namespace trace {

namespace {

constexpr char kMagic[4] = {'A', 'S', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 6;

void
putU32(char *p, std::uint32_t v)
{
    p[0] = static_cast<char>(v & 0xff);
    p[1] = static_cast<char>((v >> 8) & 0xff);
    p[2] = static_cast<char>((v >> 16) & 0xff);
    p[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t
getU32(const char *p)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1]))
            << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2]))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]))
            << 24);
}

} // namespace

std::uint64_t
writeBin(TraceSource &src, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot open '" + path + "' for writing");

    // Header with a zero count placeholder; patched at the end.
    std::array<char, kHeaderBytes> header{};
    std::memcpy(header.data(), kMagic, 4);
    putU32(header.data() + 4, kVersion);
    out.write(header.data(), header.size());

    std::uint64_t n = 0;
    MemRef r;
    src.reset();
    std::array<char, kRecordBytes> rec{};
    while (src.next(r)) {
        putU32(rec.data(), r.addr);
        rec[4] = static_cast<char>(r.type);
        rec[5] = static_cast<char>(r.pid);
        out.write(rec.data(), rec.size());
        ++n;
    }

    putU32(header.data() + 8, static_cast<std::uint32_t>(n & 0xffffffffu));
    putU32(header.data() + 12, static_cast<std::uint32_t>(n >> 32));
    out.seekp(0);
    out.write(header.data(), header.size());
    fatalIf(!out.good(), "error writing '" + path + "'");
    return n;
}

BinTraceSource::BinTraceSource(const std::string &path) : path_(path)
{
    in_.open(path_, std::ios::binary);
    fatalIf(!in_, "cannot open binary trace '" + path_ + "'");
    readHeader();
}

void
BinTraceSource::readHeader()
{
    std::array<char, kHeaderBytes> header{};
    in_.read(header.data(), header.size());
    fatalIf(in_.gcount() != static_cast<std::streamsize>(kHeaderBytes),
            "'" + path_ + "' is too short to be a binary trace");
    fatalIf(std::memcmp(header.data(), kMagic, 4) != 0,
            "'" + path_ + "' has a bad magic number");
    std::uint32_t version = getU32(header.data() + 4);
    fatalIf(version != kVersion, "'" + path_ + "' has version " +
            std::to_string(version) + "; expected " +
            std::to_string(kVersion));
    count_ = static_cast<std::uint64_t>(getU32(header.data() + 8)) |
             (static_cast<std::uint64_t>(getU32(header.data() + 12))
              << 32);
    pos_ = 0;
}

bool
BinTraceSource::next(MemRef &ref)
{
    if (pos_ >= count_)
        return false;
    std::array<char, kRecordBytes> rec{};
    in_.read(rec.data(), rec.size());
    fatalIf(in_.gcount() != static_cast<std::streamsize>(kRecordBytes),
            "'" + path_ + "' is truncated (header claims " +
            std::to_string(count_) + " records)");
    ref.addr = getU32(rec.data());
    std::uint8_t t = static_cast<std::uint8_t>(rec[4]);
    fatalIf(t > static_cast<std::uint8_t>(RefType::Flush),
            "'" + path_ + "': bad record type " + std::to_string(t));
    ref.type = static_cast<RefType>(t);
    ref.pid = static_cast<std::uint8_t>(rec[5]);
    ++pos_;
    return true;
}

void
BinTraceSource::reset()
{
    in_.clear();
    in_.seekg(kHeaderBytes);
    pos_ = 0;
    fatalIf(!in_.good(), "cannot rewind binary trace '" + path_ + "'");
}

} // namespace trace
} // namespace assoc
