#include "trace/bin_io.h"

#include <array>
#include <cstring>
#include <fstream>

#include "util/logging.h"

namespace assoc {
namespace trace {

namespace {

constexpr char kMagic[4] = {'A', 'S', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 6;

void
putU32(char *p, std::uint32_t v)
{
    p[0] = static_cast<char>(v & 0xff);
    p[1] = static_cast<char>((v >> 8) & 0xff);
    p[2] = static_cast<char>((v >> 16) & 0xff);
    p[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t
getU32(const char *p)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1]))
            << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2]))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]))
            << 24);
}

} // namespace

std::uint64_t
writeBin(TraceSource &src, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot open '" + path + "' for writing");

    // Header with a zero count placeholder; patched at the end.
    std::array<char, kHeaderBytes> header{};
    std::memcpy(header.data(), kMagic, 4);
    putU32(header.data() + 4, kVersion);
    out.write(header.data(), header.size());

    std::uint64_t n = 0;
    MemRef r;
    src.reset();
    std::array<char, kRecordBytes> rec{};
    while (src.next(r)) {
        putU32(rec.data(), r.addr);
        rec[4] = static_cast<char>(r.type);
        rec[5] = static_cast<char>(r.pid);
        out.write(rec.data(), rec.size());
        ++n;
    }

    putU32(header.data() + 8, static_cast<std::uint32_t>(n & 0xffffffffu));
    putU32(header.data() + 12, static_cast<std::uint32_t>(n >> 32));
    out.seekp(0);
    out.write(header.data(), header.size());
    fatalIf(!out.good(), "error writing '" + path + "'");
    return n;
}

BinTraceSource::BinTraceSource(const std::string &path, ErrorPolicy policy)
    : path_(path), policy_(policy),
      in_(std::make_unique<std::ifstream>(path, std::ios::binary))
{
    if (!*in_) {
        header_error_ =
            Error::io("cannot open binary trace '" + path_ + "'");
        error_ = header_error_;
        return;
    }
    readHeader();
}

BinTraceSource::BinTraceSource(std::unique_ptr<std::istream> in,
                               std::string name, ErrorPolicy policy)
    : path_(std::move(name)), policy_(policy), in_(std::move(in))
{
    if (!in_ || in_->fail()) {
        header_error_ =
            Error::io("cannot open binary trace '" + path_ + "'");
        error_ = header_error_;
        return;
    }
    readHeader();
}

void
BinTraceSource::readHeader()
{
    std::array<char, kHeaderBytes> header{};
    in_->read(header.data(), header.size());
    if (in_->gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
        header_error_ =
            Error::data("'" + path_ + "' is too short to be a binary "
                        "trace (" + std::to_string(in_->gcount()) +
                        " bytes, header needs " +
                        std::to_string(kHeaderBytes) + ")");
        error_ = header_error_;
        return;
    }
    if (std::memcmp(header.data(), kMagic, 4) != 0) {
        header_error_ =
            Error::data("'" + path_ + "' has a bad magic number");
        error_ = header_error_;
        return;
    }
    std::uint32_t version = getU32(header.data() + 4);
    if (version != kVersion) {
        header_error_ =
            Error::data("'" + path_ + "' has version " +
                        std::to_string(version) + "; expected " +
                        std::to_string(kVersion));
        error_ = header_error_;
        return;
    }
    claimed_ = static_cast<std::uint64_t>(getU32(header.data() + 8)) |
               (static_cast<std::uint64_t>(getU32(header.data() + 12))
                << 32);

    // Validate the claimed count against the actual file size so
    // truncation is reported at open, with byte-exact context. All
    // comparisons go through the record count (division), never
    // claimed_ * kRecordBytes: the count is attacker-controlled
    // 64-bit input and the product can wrap around, which would let
    // an absurd header pass a naive expected-size check.
    in_->clear();
    in_->seekg(0, std::ios::end);
    std::uint64_t size = static_cast<std::uint64_t>(in_->tellg());
    in_->seekg(static_cast<std::streamoff>(kHeaderBytes));
    std::uint64_t body = size - kHeaderBytes;
    std::uint64_t whole = body / kRecordBytes;

    // An implausible count is rejected outright — even in Skip mode,
    // before anything downstream sizes a buffer or a progress bar by
    // it. 2^48 records is ~1.5 PiB of file, far past any real trace.
    constexpr std::uint64_t kMaxPlausibleRecords = 1ull << 48;
    if (claimed_ > kMaxPlausibleRecords) {
        header_error_ = Error::data(
            "'" + path_ + "' claims an implausible " +
            std::to_string(claimed_) + " records (file holds " +
            std::to_string(whole) + "); rejecting the header");
        error_ = header_error_;
        count_ = 0;
        return;
    }

    count_ = claimed_;
    clamp_skips_ = 0;
    if (claimed_ > whole) {
        Error e = Error::data(
            "'" + path_ + "' is truncated: header claims " +
            std::to_string(claimed_) + " records (" +
            std::to_string(kHeaderBytes + claimed_ * kRecordBytes) +
            " bytes) but the file holds " + std::to_string(size) +
            " bytes (" + std::to_string(whole) +
            " complete records)");
        if (policy_.mode == ErrorMode::Skip &&
            claimed_ - whole <= policy_.max_skips) {
            clamp_skips_ = claimed_ - whole;
            warn(e.text() + " (clamping to the complete records)");
            count_ = whole;
        } else {
            if (policy_.mode == ErrorMode::Skip)
                e.withContext("skip budget is " +
                              std::to_string(policy_.max_skips));
            header_error_ = std::move(e);
            error_ = header_error_;
            count_ = 0;
            return;
        }
    } else if (body - claimed_ * kRecordBytes > 0 &&
               policy_.mode == ErrorMode::Strict) {
        header_error_ =
            Error::data("'" + path_ + "' has " +
                        std::to_string(body -
                                       claimed_ * kRecordBytes) +
                        " trailing bytes beyond the last record");
        error_ = header_error_;
        count_ = 0;
        return;
    }
    skipped_ = clamp_skips_;
    pos_ = 0;
}

bool
BinTraceSource::tolerate(const std::string &what)
{
    Error e = Error::data("'" + path_ + "': " + what);
    e.withContext("record " + std::to_string(pos_) + " (offset " +
                  std::to_string(kHeaderBytes + pos_ * kRecordBytes) +
                  ")");
    if (policy_.mode == ErrorMode::Skip) {
        ++skipped_;
        if (skipped_ <= policy_.max_skips) {
            if (skipped_ == clamp_skips_ + 1)
                warn(e.text() + " (skipping; further skips silent)");
            return true;
        }
        error_ = Error::data("'" + path_ + "': gave up after skipping " +
                             std::to_string(policy_.max_skips) +
                             " bad records")
                     .withContext("last: " + e.text());
        return false;
    }
    error_ = std::move(e);
    return false;
}

bool
BinTraceSource::next(MemRef &ref)
{
    while (error_.ok() && pos_ < count_) {
        if (cancel_ && pos_ % kCancelStride == 0) {
            Expected<void> go = cancel_->checkpoint();
            if (!go.ok()) {
                error_ = Error(go.error())
                             .withContext("'" + path_ + "': record " +
                                          std::to_string(pos_));
                return false;
            }
        }
        std::array<char, kRecordBytes> rec{};
        in_->read(rec.data(), rec.size());
        if (in_->gcount() != static_cast<std::streamsize>(kRecordBytes)) {
            // badbit is a device failure (EIO); EOF here means the
            // file shrank after the open-time size check. Both are
            // environmental, but say which one happened.
            error_ = Error::io(
                "'" + path_ + "': " +
                (in_->bad() ? "read error" : "short read") +
                " at record " + std::to_string(pos_) +
                " (header claims " + std::to_string(claimed_) +
                " records)");
            return false;
        }
        std::uint8_t t = static_cast<std::uint8_t>(rec[4]);
        if (t > static_cast<std::uint8_t>(RefType::Flush)) {
            if (tolerate("bad record type " + std::to_string(t))) {
                ++pos_;
                continue;
            }
            return false;
        }
        ref.addr = getU32(rec.data());
        ref.type = static_cast<RefType>(t);
        ref.pid = static_cast<std::uint8_t>(rec[5]);
        ++pos_;
        return true;
    }
    return false;
}

void
BinTraceSource::reset()
{
    // Open/header failures are permanent; rewinding cannot cure them.
    error_ = header_error_;
    if (error_.failed())
        return;
    in_->clear();
    in_->seekg(kHeaderBytes);
    pos_ = 0;
    skipped_ = clamp_skips_;
    if (!in_->good())
        error_ = Error::io("cannot rewind binary trace '" + path_ + "'");
}

} // namespace trace
} // namespace assoc

