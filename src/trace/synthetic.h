/**
 * @file
 * Synthetic microworkload kernels: tiny, fully-predictable
 * reference streams for unit tests, calibration and controlled
 * experiments — the complement of the big ATUM-like workload.
 *
 *  - SequentialScan: one linear sweep (pure spatial locality,
 *    zero reuse): every new block is a cold miss.
 *  - LoopTrace: cyclic sweep over a fixed working set; with the
 *    working set inside a cache level, everything after the first
 *    lap hits; one block past the capacity of an LRU set turns
 *    every access into a miss (the classic LRU pathology).
 *  - UniformRandomTrace: independent uniform block references over
 *    a region; hit ratios and MRU distances follow closed forms,
 *    which the meters are tested against.
 *  - StrideTrace: constant-stride sweep (vector code), exercising
 *    set-conflict behaviour when the stride hits one set.
 */

#ifndef ASSOC_TRACE_SYNTHETIC_H
#define ASSOC_TRACE_SYNTHETIC_H

#include <cstdint>

#include "trace/trace_source.h"
#include "util/rng.h"

namespace assoc {
namespace trace {

/** One linear byte sweep: addr = base + i*step. */
class SequentialScan : public TraceSource
{
  public:
    /**
     * @param base first address, @param step bytes per reference,
     * @param count references to emit.
     */
    SequentialScan(Addr base, std::uint32_t step, std::uint64_t count,
                   RefType type = RefType::Read);

    bool next(MemRef &ref) override;
    void reset() override;

  private:
    Addr base_;
    std::uint32_t step_;
    std::uint64_t count_;
    RefType type_;
    std::uint64_t pos_ = 0;
};

/** Cyclic sweep over a working set of @p blocks cache blocks. */
class LoopTrace : public TraceSource
{
  public:
    /**
     * @param base region start, @param block_bytes spacing between
     * touched blocks, @param blocks working-set size in blocks,
     * @param count total references.
     */
    LoopTrace(Addr base, std::uint32_t block_bytes,
              std::uint32_t blocks, std::uint64_t count);

    bool next(MemRef &ref) override;
    void reset() override;

  private:
    Addr base_;
    std::uint32_t block_bytes_;
    std::uint32_t blocks_;
    std::uint64_t count_;
    std::uint64_t pos_ = 0;
};

/** Independent uniform references over @p blocks cache blocks. */
class UniformRandomTrace : public TraceSource
{
  public:
    UniformRandomTrace(Addr base, std::uint32_t block_bytes,
                       std::uint32_t blocks, std::uint64_t count,
                       std::uint64_t seed = 1,
                       double write_fraction = 0.0);

    bool next(MemRef &ref) override;
    void reset() override;

  private:
    Addr base_;
    std::uint32_t block_bytes_;
    std::uint32_t blocks_;
    std::uint64_t count_;
    std::uint64_t seed_;
    double write_fraction_;
    Pcg32 rng_;
    std::uint64_t pos_ = 0;
};

/** Constant-stride sweep repeated over a region (vector code). */
class StrideTrace : public TraceSource
{
  public:
    /**
     * @param base region start, @param stride bytes between
     * consecutive references, @param refs_per_pass references per
     * sweep, @param passes number of sweeps.
     */
    StrideTrace(Addr base, std::uint32_t stride,
                std::uint64_t refs_per_pass, std::uint32_t passes);

    bool next(MemRef &ref) override;
    void reset() override;

  private:
    Addr base_;
    std::uint32_t stride_;
    std::uint64_t refs_per_pass_;
    std::uint32_t passes_;
    std::uint64_t pos_ = 0;
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_SYNTHETIC_H
