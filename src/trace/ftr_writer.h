/**
 * @file
 * Streaming writer for the framed trace (ftr) format.
 *
 * Buffers records into frames of a configurable size, emits each
 * frame with its CRCs as soon as it fills (memory stays bounded by
 * one frame regardless of trace length), and on finish() writes the
 * frame-index footer and patches the file header's total. A crash
 * before finish() leaves intact flushed frames, no footer, and a
 * header whose record total is still the zero written at open; the
 * reader's index rebuild recovers every flushed frame from that
 * shape, deriving the total from the frames themselves (records
 * still buffered in the writer were never on disk and are lost).
 */

#ifndef ASSOC_TRACE_FTR_WRITER_H
#define ASSOC_TRACE_FTR_WRITER_H

#include <fstream>
#include <string>
#include <vector>

#include "trace/ftr_format.h"
#include "trace/trace_source.h"
#include "util/error.h"

namespace assoc {
namespace trace {

/** Incremental ftr file writer. */
class FtrWriter
{
  public:
    struct Options
    {
        /** Records per frame (clamped to [1, ftr::kMaxFrameRecords]).
         *  Smaller frames = finer seek/recovery granularity, more
         *  per-frame overhead (~28 bytes + one CRC each). */
        std::uint32_t frame_records = ftr::kDefaultFrameRecords;
    };

    /** Open @p path for writing; check error() before adding. */
    explicit FtrWriter(const std::string &path);
    FtrWriter(const std::string &path, Options opt);

    /** Append one record (no-op once the writer has failed). */
    void add(const MemRef &r);

    /**
     * Flush the final partial frame, write footer + trailer, patch
     * the header's record total. The file is valid only after this
     * succeeds. Idempotent.
     */
    Expected<void> finish();

    /** Records accepted so far. */
    std::uint64_t written() const { return total_; }

    /** Sticky first failure (IO errors while emitting frames). */
    const Error &error() const { return error_; }

  private:
    void flushFrame();

    std::string path_;
    Options opt_;
    std::ofstream out_;
    std::vector<MemRef> frame_;
    std::vector<std::uint8_t> payload_;
    std::vector<ftr::IndexEntry> index_;
    std::uint64_t total_ = 0;
    std::uint64_t offset_ = 0; ///< current write position
    bool finished_ = false;
    Error error_;
};

/**
 * Write all of @p src (after reset()) to @p path as ftr.
 * @return records written, or the writer's / source's error.
 */
Expected<std::uint64_t> writeFtr(TraceSource &src,
                                 const std::string &path,
                                 FtrWriter::Options opt =
                                     FtrWriter::Options());

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_FTR_WRITER_H
