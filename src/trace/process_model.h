/**
 * @file
 * Behavioural model of one traced process (or the operating
 * system): the building block of the synthetic ATUM-like trace.
 *
 * Each process emits a mix of instruction fetches (sequential runs
 * with loop-back / call / return control transfers over a small set
 * of functions), stack references (tight locality around the call
 * depth) and heap references (move-to-front reuse with a mixed
 * geometric + Zipf stack-distance distribution, plus footprint
 * growth). All randomness comes from externally supplied PCG32
 * streams, so traces are bit-reproducible.
 */

#ifndef ASSOC_TRACE_PROCESS_MODEL_H
#define ASSOC_TRACE_PROCESS_MODEL_H

#include <cstdint>
#include <vector>

#include "trace/memref.h"
#include "util/rng.h"

namespace assoc {
namespace trace {

/** Tunable parameters of a single process's reference behaviour. */
struct ProcessParams
{
    // Defaults are calibrated (see tests/integration/
    // test_calibration.cc) so the Table 3 level-one caches land
    // near the paper's miss ratios: 0.1181 (4K-16), 0.0657
    // (16K-16), 0.0513 (16K-32).

    /** Fraction of references that are instruction fetches. */
    double ifetch_fraction = 0.55;
    /** Fraction of data references that are writes. */
    double write_fraction = 0.22;
    /** Fraction of data references that go to the stack. */
    double stack_fraction = 0.28;

    /** Per-ifetch probability of a control transfer. */
    double jump_prob = 0.05;
    /** Number of distinct functions in the code region. */
    unsigned functions = 24;
    /** Bytes per function (sequential fetch region). */
    unsigned function_bytes = 512;

    /** Heap: probability a heap reference touches a new block. */
    double new_block_prob = 0.015;
    /** Heap reuse: probability of a short (geometric) distance. */
    double short_reuse_prob = 0.92;
    /** Geometric parameter for short reuse distances. */
    double geom_p = 0.35;
    /** Zipf exponent for long-tail reuse distances. */
    double zipf_theta = 1.10;
    /** Heap allocation granularity in bytes (power of two). */
    unsigned heap_block_bytes = 64;
    /** Contiguous heap blocks allocated per arena chunk before the
     *  allocator jumps to a fresh random chunk. Scattered chunks
     *  mimic the sparse virtual layouts of real processes and give
     *  the stored tags the bit entropy the partial-compare scheme's
     *  hashing relies on. */
    unsigned chunk_blocks = 32;
};

/**
 * One process. Owns only its own reference-generation state; the
 * caller owns scheduling (when this process runs) and the RNG.
 */
class ProcessModel
{
  public:
    /**
     * @param pid process id stamped into emitted references.
     * @param base virtual base address of this process's address
     *        space (distinct high bits per process reproduce the
     *        skewed tag-bit distributions of real virtual traces).
     * @param params behaviour knobs.
     * @param seed process-private RNG seed.
     */
    ProcessModel(std::uint8_t pid, Addr base, const ProcessParams &params,
                 std::uint64_t seed);

    /** Emit the next reference of this process. */
    MemRef nextRef();

    /** Number of distinct heap blocks touched so far. */
    std::size_t heapFootprintBlocks() const { return heap_blocks_.size(); }

    /** The process id. */
    std::uint8_t pid() const { return pid_; }

  private:
    MemRef instructionRef();
    MemRef dataRef();
    Addr heapAddr();
    Addr stackAddr();
    void jump();

    std::uint8_t pid_;
    Addr base_;
    ProcessParams params_;
    Pcg32 rng_;
    ZipfSampler zipf_;

    // --- instruction state ---
    Addr pc_;                       ///< current fetch address
    Addr func_start_;               ///< start of current function
    std::vector<Addr> ret_stack_;   ///< call/return stack (PCs)
    std::vector<std::uint32_t> hot_funcs_; ///< MTF list of function ids

    // --- data state ---
    unsigned call_depth_ = 4;       ///< drives stack address locality
    std::vector<Addr> heap_blocks_; ///< MTF list of touched heap blocks
    Addr chunk_base_ = 0;           ///< current allocation chunk
    unsigned chunk_used_ = 0;       ///< blocks used in the chunk
    std::vector<Addr> func_addr_;   ///< scattered function addresses
};

} // namespace trace
} // namespace assoc

#endif // ASSOC_TRACE_PROCESS_MODEL_H
