/**
 * @file
 * Named scheme descriptors: a convenience layer that turns a scheme
 * name + parameters into a LookupStrategy / ProbeMeter, shared by
 * the examples and benchmark harnesses.
 */

#ifndef ASSOC_CORE_SCHEME_H
#define ASSOC_CORE_SCHEME_H

#include <memory>
#include <string>

#include "core/lookup.h"
#include "core/probe_meter.h"
#include "core/transform.h"

namespace assoc {
namespace core {

/**
 * The four implementation approaches of the paper, plus the
 * way-memoization family (docs/ENERGY.md) layered on top of them.
 */
enum class SchemeKind {
    Traditional,
    Naive,
    Mru,
    Partial,
    WayMemo,
    WayPredict,
};

/** Parse "traditional" / "naive" / "mru" / "partial" / "waymemo" /
 *  "waypredict". */
SchemeKind schemeKindFromString(const std::string &s);

/** Printable name. */
const char *schemeKindName(SchemeKind kind);

/** Full description of one scheme instance. */
struct SchemeSpec
{
    SchemeKind kind = SchemeKind::Traditional;

    /** MRU: list length (0 = full list). */
    unsigned mru_list_len = 0;

    /** Partial: field width k, subset count s, tag transform. */
    unsigned partial_k = 4;
    unsigned partial_subsets = 1;
    TransformKind transform = TransformKind::XorLow;

    /** Stored tag width t. */
    unsigned tag_bits = 16;

    /** WayMemo: memo-table entries (power of two). */
    std::uint32_t memo_entries = 64;
    /** WayMemo: region granularity, region = block >> region_bits. */
    unsigned memo_region_bits = 0;
    /** WayMemo: tagged entries (exact-region match) vs untagged. */
    bool memo_tagged = true;
    /** WayMemo: the scheme a memo miss falls back to. The rest of
     *  this spec (mru_list_len, partial_*, tag_bits) parameterizes
     *  it; nesting memo schemes is rejected. */
    SchemeKind memo_underlying = SchemeKind::Traditional;

    /**
     * The paper's default partial configuration for associativity
     * @p a: the fewest subsets giving at least @p min_k-bit partial
     * compares, with k using the whole tag width (1, 2, 4 subsets
     * and k = 4 for 4, 8, 16-way with 16-bit tags; k = 8 for 4-way
     * with 32-bit tags).
     */
    static SchemeSpec paperPartial(unsigned a, unsigned tag_bits = 16,
                                   unsigned min_k = 4);

    /** Build the strategy this spec describes. */
    std::unique_ptr<LookupStrategy> makeStrategy() const;

    /** Build a meter around the strategy. */
    std::unique_ptr<ProbeMeter>
    makeMeter(bool wb_optimization = true) const;
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_SCHEME_H
