/**
 * @file
 * The *swapping* MRU implementation sketched in Section 2.1.
 *
 * Instead of storing an MRU list, the cache physically keeps the
 * most-recently-used block in frame 0, the second most-recent in
 * frame 1, and so on, swapping blocks (tags and data) after each
 * access. Lookup then scans frames in physical order — no list
 * read is needed, saving the MRU scheme's extra probe:
 *
 *   hit at MRU distance d  ->  d probes       (list MRU: 1 + d)
 *   miss                   ->  a probes       (list MRU: 1 + a)
 *
 * The catch the paper points out: tags and data must be swapped
 * between consecutive accesses, which is "not a viable
 * implementation option for most set-associative caches" beyond
 * 2-way. This class prices the lookups and *counts the swaps* so
 * the viability argument can be quantified (see bench_ablation).
 */

#ifndef ASSOC_CORE_SWAP_MRU_LOOKUP_H
#define ASSOC_CORE_SWAP_MRU_LOOKUP_H

#include "core/lookup.h"

namespace assoc {
namespace core {

class SwapMruLookup : public LookupStrategy
{
  public:
    SwapMruLookup() = default;

    LookupResult lookup(const LookupInput &in) const override;

    std::string name() const override { return "SwapMRU"; }

    /**
     * Block moves the swap scheme would have performed to restore
     * MRU order after the accesses priced so far. A hit at MRU
     * distance d (or a fill) rotates d blocks down by one frame:
     * d moves. Mutable running total (the strategy interface is
     * const).
     */
    std::uint64_t swaps() const { return swaps_; }

  private:
    mutable std::uint64_t swaps_ = 0;
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_SWAP_MRU_LOOKUP_H
