#include "core/kernels.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "core/kernels_inl.h"
#include "util/logging.h"
#include "util/rng.h"

namespace assoc {
namespace core {

const char *
kernelIsaName(KernelIsa isa)
{
    switch (isa) {
      case KernelIsa::Scalar:
        return "scalar";
      case KernelIsa::Swar:
        return "swar";
      case KernelIsa::Avx2:
        return "avx2";
      case KernelIsa::Neon:
        return "neon";
    }
    return "unknown";
}

namespace {

// ---------------------------------------------------------------
// Scalar reference bodies. These ARE the pre-kernel strategy loops
// (branches and all) and double as the self-check / equivalence
// oracle; keep them boring.
// ---------------------------------------------------------------

std::uint64_t
scalarEqMask(const std::uint32_t *tags, const std::uint8_t *valid,
             unsigned a, std::uint32_t needle)
{
    std::uint64_t m = 0;
    for (unsigned w = 0; w < a; ++w)
        if (valid[w] && tags[w] == needle)
            m |= std::uint64_t{1} << w;
    return m;
}

std::uint64_t
scalarEqMaskBits(const std::uint32_t *vals, std::uint64_t valid_bits,
                 unsigned a, std::uint32_t needle)
{
    std::uint64_t m = 0;
    for (unsigned w = 0; w < a; ++w)
        if (((valid_bits >> w) & 1) != 0 && vals[w] == needle)
            m |= std::uint64_t{1} << w;
    return m;
}

std::uint64_t
scalarEqMaskBitsRelaxed(const std::uint32_t *vals,
                        std::uint64_t valid_bits, unsigned a,
                        std::uint32_t needle)
{
    return kdetail::swarEqMaskBitsRelaxed(vals, valid_bits, a, needle);
}

std::uint64_t
scalarPartialMask(const std::uint32_t *tags, const std::uint8_t *valid,
                  unsigned g, const std::uint32_t *inc_fields,
                  unsigned k, TransformKind kind, const TagTransform &xf)
{
    // The original PartialLookup inner loop: per-way virtual
    // apply() + field() calls, no closed forms. (void)k/kind — the
    // transform object already knows both.
    (void)k;
    (void)kind;
    std::uint64_t m = 0;
    for (unsigned l = 0; l < g; ++l) {
        if (!valid[l])
            continue;
        std::uint32_t stored = xf.apply(tags[l], l);
        if (xf.field(stored, l) == inc_fields[l])
            m |= std::uint64_t{1} << l;
    }
    return m;
}

void
scalarExpandBits(std::uint64_t bits, unsigned n, std::uint8_t *out)
{
    for (unsigned i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>((bits >> i) & 1);
}

void
scalarExpandNibbles(std::uint64_t word, unsigned n, std::uint8_t *out)
{
    for (unsigned i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>((word >> (4 * i)) & 0xf);
}

void
scalarShiftTags(const std::uint32_t *in, unsigned n, unsigned shift,
                std::uint32_t *out)
{
    for (unsigned i = 0; i < n; ++i)
        out[i] = in[i] >> shift;
}

// --------------------- SWAR table bodies -----------------------

std::uint64_t
swarEqMaskFn(const std::uint32_t *tags, const std::uint8_t *valid,
             unsigned a, std::uint32_t needle)
{
    return kdetail::swarEqMask(tags, valid, a, needle);
}

std::uint64_t
swarEqMaskBitsFn(const std::uint32_t *vals, std::uint64_t valid_bits,
                 unsigned a, std::uint32_t needle)
{
    return kdetail::swarEqMaskBits(vals, valid_bits, a, needle);
}

std::uint64_t
swarEqMaskBitsRelaxedFn(const std::uint32_t *vals,
                        std::uint64_t valid_bits, unsigned a,
                        std::uint32_t needle)
{
    return kdetail::swarEqMaskBitsRelaxed(vals, valid_bits, a, needle);
}

std::uint64_t
swarPartialMaskFn(const std::uint32_t *tags, const std::uint8_t *valid,
                  unsigned g, const std::uint32_t *inc_fields,
                  unsigned k, TransformKind kind, const TagTransform &xf)
{
    (void)xf;
    return kdetail::swarPartialMask(tags, valid, g, inc_fields, k,
                                    kind);
}

void
swarExpandBitsFn(std::uint64_t bits, unsigned n, std::uint8_t *out)
{
    kdetail::swarExpandBits(bits, n, out);
}

void
swarExpandNibblesFn(std::uint64_t word, unsigned n, std::uint8_t *out)
{
    kdetail::swarExpandNibbles(word, n, out);
}

void
swarShiftTagsFn(const std::uint32_t *in, unsigned n, unsigned shift,
                std::uint32_t *out)
{
    kdetail::swarShiftTags(in, n, shift, out);
}

} // namespace

const LookupKernels &
scalarKernels()
{
    static const LookupKernels k = {
        KernelIsa::Scalar,
        "scalar",
        scalarEqMask,
        scalarEqMaskBits,
        scalarEqMaskBitsRelaxed,
        scalarPartialMask,
        scalarExpandBits,
        scalarExpandNibbles,
        scalarShiftTags,
    };
    return k;
}

const LookupKernels &
swarKernels()
{
    static const LookupKernels k = {
        KernelIsa::Swar,
        "swar",
        swarEqMaskFn,
        swarEqMaskBitsFn,
        swarEqMaskBitsRelaxedFn,
        swarPartialMaskFn,
        swarExpandBitsFn,
        swarExpandNibblesFn,
        swarShiftTagsFn,
    };
    return k;
}

/**
 * The AVX2 table, or null when compiled out (-DASSOC_KERNELS_AVX2=OFF,
 * non-x86) or when this CPU lacks AVX2. Defined in kernels_avx2.cc.
 */
const LookupKernels *avx2KernelsOrNull();

const LookupKernels *
neonKernelsOrNull()
{
#if defined(__aarch64__)
    // NEON stub: registered so AArch64 exercises the same dispatch
    // path, currently backed by the portable SWAR bodies until real
    // NEON bodies land (docs/KERNELS.md "Adding an ISA").
    static const LookupKernels k = {
        KernelIsa::Neon,
        "neon",
        swarEqMaskFn,
        swarEqMaskBitsFn,
        swarEqMaskBitsRelaxedFn,
        swarPartialMaskFn,
        swarExpandBitsFn,
        swarExpandNibblesFn,
        swarShiftTagsFn,
    };
    return &k;
#else
    return nullptr;
#endif
}

std::vector<const LookupKernels *>
registeredKernels()
{
    std::vector<const LookupKernels *> v;
    if (const LookupKernels *avx2 = avx2KernelsOrNull())
        v.push_back(avx2);
    if (const LookupKernels *neon = neonKernelsOrNull())
        v.push_back(neon);
    v.push_back(&swarKernels());
    v.push_back(&scalarKernels());
    return v;
}

namespace {

/** One mismatch reason, e.g. "eq_mask mismatch (assoc=13 off=1)". */
void
setWhy(std::string *why, const char *kernel, unsigned a, unsigned off)
{
    if (why == nullptr)
        return;
    *why = std::string(kernel) + " mismatch (assoc=" +
           std::to_string(a) + " off=" + std::to_string(off) + ")";
}

} // namespace

bool
kernelSelfCheck(const LookupKernels &k, std::string *why)
{
    const LookupKernels &ref = scalarKernels();
    if (&k == &ref)
        return true; // the oracle is trivially self-consistent

    SplitMix64 rng(0x5eedc0debadf00dULL);

    // Padded planes so misaligned offsets (vector-unfriendly, still
    // element-aligned) stay in bounds. Duplicated values and a
    // needle drawn from a tiny pool force both match and mismatch
    // lanes in every vector.
    constexpr unsigned kMaxA = 64, kMaxOff = 3;
    std::uint32_t tags[kMaxA + kMaxOff];
    std::uint8_t valid[kMaxA + kMaxOff];
    std::uint8_t bytes_ref[kMaxA], bytes_got[kMaxA];
    std::uint32_t shifted_ref[kMaxA + kMaxOff],
        shifted_got[kMaxA + kMaxOff];

    static const unsigned assocs[] = {1, 2, 5, 8, 13, 16, 31, 64};
    static const unsigned offsets[] = {0, 1, 3};

    for (unsigned off : offsets) {
        for (unsigned a : assocs) {
            std::uint32_t pool[4];
            for (std::uint32_t &p : pool)
                p = static_cast<std::uint32_t>(rng.next());
            std::uint32_t *t = tags + off;
            std::uint8_t *v = valid + off;
            std::uint64_t vbits = 0;
            for (unsigned w = 0; w < a; ++w) {
                t[w] = pool[rng.next() & 3];
                v[w] = static_cast<std::uint8_t>(rng.next() & 1);
                vbits |= static_cast<std::uint64_t>(v[w] != 0) << w;
            }
            // Second pass: an all-invalid set must yield mask 0.
            for (int pass = 0; pass < 2; ++pass) {
                if (pass == 1) {
                    std::memset(v, 0, a);
                    vbits = 0;
                }
                std::uint32_t needle = pool[rng.next() & 3];
                if (k.eq_mask(t, v, a, needle) !=
                    ref.eq_mask(t, v, a, needle)) {
                    setWhy(why, "eq_mask", a, off);
                    return false;
                }
                if (k.eq_mask_bits(t, vbits, a, needle) !=
                    ref.eq_mask_bits(t, vbits, a, needle)) {
                    setWhy(why, "eq_mask_bits", a, off);
                    return false;
                }
                if (k.eq_mask_bits_relaxed(t, vbits, a, needle) !=
                    ref.eq_mask_bits_relaxed(t, vbits, a, needle)) {
                    setWhy(why, "eq_mask_bits_relaxed", a, off);
                    return false;
                }
            }

            std::uint64_t word = rng.next();
            ref.expand_bits(word, a, bytes_ref);
            k.expand_bits(word, a, bytes_got);
            if (std::memcmp(bytes_ref, bytes_got, a) != 0) {
                setWhy(why, "expand_bits", a, off);
                return false;
            }
            unsigned n = a <= 16 ? a : 16;
            ref.expand_nibbles(word, n, bytes_ref);
            k.expand_nibbles(word, n, bytes_got);
            if (std::memcmp(bytes_ref, bytes_got, n) != 0) {
                setWhy(why, "expand_nibbles", a, off);
                return false;
            }
            for (unsigned shift : {0u, 5u, 19u}) {
                ref.shift_tags(t, a, shift, shifted_ref + off);
                k.shift_tags(t, a, shift, shifted_got + off);
                if (std::memcmp(shifted_ref + off, shifted_got + off,
                                a * sizeof(std::uint32_t)) != 0) {
                    setWhy(why, "shift_tags", a, off);
                    return false;
                }
            }
        }
    }

    // Partial-compare smoke vectors: every transform kind at field
    // geometries covering one-field, tail-only and multi-chunk
    // subsets. Tags truncated to t bits; duplicate truncated fields
    // are near-certain with a 4-value pool.
    struct Geo {
        unsigned t, k, g;
    };
    static const Geo geos[] = {{16, 4, 4}, {16, 1, 13}, {12, 3, 4},
                               {8, 8, 1},  {32, 2, 16}, {20, 2, 9}};
    static const TransformKind kinds[] = {
        TransformKind::None, TransformKind::XorLow,
        TransformKind::Improved, TransformKind::Swap};
    std::uint32_t inc_fields[kMaxA];
    for (const Geo &geo : geos) {
        for (TransformKind kind : kinds) {
            std::unique_ptr<TagTransform> xf =
                TagTransform::make(kind, geo.t, geo.k);
            for (unsigned off : offsets) {
                std::uint32_t pool[4];
                for (std::uint32_t &p : pool)
                    p = static_cast<std::uint32_t>(rng.next()) &
                        static_cast<std::uint32_t>(maskBits(geo.t));
                std::uint32_t *t = tags + off;
                std::uint8_t *v = valid + off;
                for (unsigned l = 0; l < geo.g; ++l) {
                    t[l] = pool[rng.next() & 3];
                    v[l] = static_cast<std::uint8_t>(rng.next() & 1);
                }
                std::uint32_t incoming = pool[rng.next() & 3];
                for (unsigned l = 0; l < geo.g; ++l)
                    inc_fields[l] =
                        xf->field(xf->apply(incoming, l), l);
                if (k.partial_mask(t, v, geo.g, inc_fields, geo.k,
                                   kind, *xf) !=
                    ref.partial_mask(t, v, geo.g, inc_fields, geo.k,
                                     kind, *xf)) {
                    if (why != nullptr)
                        *why = std::string("partial_mask mismatch (") +
                               transformKindName(kind) +
                               " t=" + std::to_string(geo.t) +
                               " k=" + std::to_string(geo.k) +
                               " g=" + std::to_string(geo.g) +
                               " off=" + std::to_string(off) + ")";
                    return false;
                }
            }
        }
    }
    return true;
}

const LookupKernels &
chooseKernels(const char *env,
              const std::vector<const LookupKernels *> &registered,
              std::string *reason)
{
    std::string note;

    if (env != nullptr && *env != '\0') {
        const LookupKernels *named = nullptr;
        for (const LookupKernels *k : registered)
            if (std::strcmp(k->name, env) == 0) {
                named = k;
                break;
            }
        if (named == nullptr) {
            note = "ASSOC_KERNELS='" + std::string(env) +
                   "' is not registered in this build; ";
        } else {
            std::string why;
            if (kernelSelfCheck(*named, &why)) {
                if (reason != nullptr)
                    *reason = std::string("ASSOC_KERNELS=") +
                              named->name;
                return *named;
            }
            note = std::string("ASSOC_KERNELS=") + named->name +
                   " failed its self-check (" + why + "); ";
        }
    }

    for (const LookupKernels *k : registered) {
        std::string why;
        if (kernelSelfCheck(*k, &why)) {
            if (reason != nullptr)
                *reason = note + std::string(k->name) +
                          (note.empty() ? " selected"
                                        : " selected as fallback");
            return *k;
        }
        note += std::string(k->name) + " failed its self-check (" +
                why + "); ";
    }

    // Unreachable in practice: the scalar oracle always passes.
    if (reason != nullptr)
        *reason = note + "scalar selected as last resort";
    return scalarKernels();
}

namespace {

std::atomic<const LookupKernels *> g_active{nullptr};
std::string g_reason; // written once under g_select_mutex
std::mutex g_select_mutex;

} // namespace

const LookupKernels &
activeKernels()
{
    const LookupKernels *k = g_active.load(std::memory_order_acquire);
    if (k != nullptr)
        return *k;
    std::lock_guard<std::mutex> lock(g_select_mutex);
    k = g_active.load(std::memory_order_relaxed);
    if (k != nullptr)
        return *k;
    std::string reason;
    const LookupKernels &sel = chooseKernels(
        std::getenv("ASSOC_KERNELS"), registeredKernels(), &reason);
    g_reason = reason;
    // A fallback means some candidate failed its smoke vectors —
    // correctness is preserved (the selected table passed), but the
    // build deserves a visible note.
    if (reason.find("failed") != std::string::npos ||
        reason.find("not registered") != std::string::npos)
        warn("kernel dispatch: " + reason);
    g_active.store(&sel, std::memory_order_release);
    return sel;
}

const std::string &
kernelDispatchReason()
{
    activeKernels();
    std::lock_guard<std::mutex> lock(g_select_mutex);
    return g_reason;
}

ScopedKernelOverride::ScopedKernelOverride(const LookupKernels &k)
{
    activeKernels(); // settle the default selection first
    saved_ = g_active.exchange(&k, std::memory_order_acq_rel);
}

ScopedKernelOverride::~ScopedKernelOverride()
{
    g_active.store(saved_, std::memory_order_release);
}

} // namespace core
} // namespace assoc
