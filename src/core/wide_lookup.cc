#include "core/wide_lookup.h"

#include <algorithm>

#include "util/logging.h"

namespace assoc {
namespace core {

WideNaiveLookup::WideNaiveLookup(unsigned width) : width_(width)
{
    fatalIf(width_ == 0, "tag-memory width must be positive");
}

std::string
WideNaiveLookup::name() const
{
    return "WideNaive-" + std::to_string(width_);
}

LookupResult
WideNaiveLookup::lookup(const LookupInput &in) const
{
    LookupResult res;
    for (unsigned base = 0; base < in.assoc; base += width_) {
        ++res.probes; // one probe compares this group of b tags
        unsigned end = std::min(base + width_, in.assoc);
        // The wide word reads and compares all b tags at once.
        res.events.tag_reads += end - base;
        res.events.tag_compares += end - base;
        for (unsigned w = base; w < end; ++w) {
            if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
                res.hit = true;
                res.way = static_cast<int>(w);
                return res;
            }
        }
    }
    return res;
}

WideMruLookup::WideMruLookup(unsigned width) : width_(width)
{
    fatalIf(width_ == 0, "tag-memory width must be positive");
}

std::string
WideMruLookup::name() const
{
    return "WideMRU-" + std::to_string(width_);
}

LookupResult
WideMruLookup::lookup(const LookupInput &in) const
{
    LookupResult res;
    res.probes = 1; // the MRU list read
    res.events.list_reads = 1;
    for (unsigned base = 0; base < in.assoc; base += width_) {
        ++res.probes;
        unsigned end = std::min(base + width_, in.assoc);
        res.events.tag_reads += end - base;
        res.events.tag_compares += end - base;
        for (unsigned i = base; i < end; ++i) {
            unsigned w = in.mru_order[i];
            if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
                res.hit = true;
                res.way = static_cast<int>(w);
                return res;
            }
        }
    }
    return res;
}

namespace analytic {

double
wideNaiveHit(unsigned a, unsigned b)
{
    fatalIf(a == 0 || b == 0, "bad wide-naive geometry");
    // Hit way uniform over a positions; group g covers positions
    // [g*b, (g+1)*b). E[probes] = E[g] + 1.
    unsigned groups = (a + b - 1) / b;
    double sum = 0.0;
    for (unsigned g = 0; g < groups; ++g) {
        unsigned in_group =
            std::min(b, a - g * b); // positions in this group
        sum += static_cast<double>(in_group) * (g + 1);
    }
    return sum / a;
}

double
wideNaiveMiss(unsigned a, unsigned b)
{
    fatalIf(a == 0 || b == 0, "bad wide-naive geometry");
    return static_cast<double>((a + b - 1) / b);
}

} // namespace analytic

} // namespace core
} // namespace assoc
