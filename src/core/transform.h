/**
 * @file
 * Tag transformations for the partial-compare scheme (Section 2.2
 * and Figure 6 of the paper).
 *
 * A k-bit partial compare only filters well when every k-bit field
 * of the stored tags is close to uniformly distributed. High-order
 * virtual-address bits are not, so tags are hashed before storage
 * with an invertible GF(2)-linear transformation:
 *
 *  - None: store tags unmodified (the paper's worst case).
 *  - XorLow ("XOR"): exclusive-or the low-order k bits into every
 *    higher k-bit field. Self-inverse.
 *  - Improved ("New"): pass field 0; field1 ^= field0; every higher
 *    field ^= field0 ^ field1. Lower-triangular with unit diagonal,
 *    hence invertible (its inverse costs the same gates but is not
 *    itself).
 *  - Swap: rotate the k-bit fields per way so the (random) low-order
 *    bits always land in the field the partial compare examines.
 *    Good filtering, but costlier wiring (the paper notes this).
 *
 * All transforms are bijections on t-bit tags (per way slot for
 * Swap), so full-tag equality is preserved: step-2 full compares of
 * transformed tags decide hits exactly.
 */

#ifndef ASSOC_CORE_TRANSFORM_H
#define ASSOC_CORE_TRANSFORM_H

#include <cstdint>
#include <memory>
#include <string>

namespace assoc {
namespace core {

/** Which transformation to use (CLI / config friendly). */
enum class TransformKind {
    None,
    XorLow,
    Improved,
    Swap,
};

/** Parse "none" / "xor" / "improved" / "swap". */
TransformKind transformKindFromString(const std::string &s);

/** Printable name. */
const char *transformKindName(TransformKind kind);

/**
 * An invertible transformation of t-bit tags, structured as
 * nfields = floor(t/k) fields of k bits (field 0 = low order);
 * the t - nfields*k leftover high bits pass through unchanged.
 */
class TagTransform
{
  public:
    /**
     * @param t stored tag width in bits (1..32).
     * @param k partial-compare field width in bits (1..t).
     */
    TagTransform(unsigned t, unsigned k);
    virtual ~TagTransform() = default;

    /**
     * Transform @p tag for storage.
     * @param slot the tag-memory collection this way's partial
     *        compare reads (only the Swap transform uses it).
     */
    virtual std::uint32_t apply(std::uint32_t tag,
                                unsigned slot = 0) const = 0;

    /** Recover the original tag (for writing back a block). */
    virtual std::uint32_t invert(std::uint32_t tag,
                                 unsigned slot = 0) const = 0;

    /** Short name for tables ("none", "xor", "improved", "swap"). */
    virtual std::string name() const = 0;

    unsigned tagBits() const { return t_; }
    unsigned fieldBits() const { return k_; }
    unsigned fields() const { return nfields_; }

    /** Extract field @p f of @p tag. */
    std::uint32_t field(std::uint32_t tag, unsigned f) const;

    /** Factory for a transform of the given kind. */
    static std::unique_ptr<TagTransform> make(TransformKind kind,
                                              unsigned t, unsigned k);

  protected:
    unsigned t_;
    unsigned k_;
    unsigned nfields_;
};

/** Identity transform. */
class NoTransform : public TagTransform
{
  public:
    using TagTransform::TagTransform;
    std::uint32_t apply(std::uint32_t tag,
                        unsigned slot = 0) const override;
    std::uint32_t invert(std::uint32_t tag,
                         unsigned slot = 0) const override;
    std::string name() const override { return "none"; }
};

/** The paper's simple self-inverse transform. */
class XorLowTransform : public TagTransform
{
  public:
    using TagTransform::TagTransform;
    std::uint32_t apply(std::uint32_t tag,
                        unsigned slot = 0) const override;
    std::uint32_t invert(std::uint32_t tag,
                         unsigned slot = 0) const override;
    std::string name() const override { return "xor"; }
};

/** The paper's improved lower-triangular transform. */
class ImprovedTransform : public TagTransform
{
  public:
    using TagTransform::TagTransform;
    std::uint32_t apply(std::uint32_t tag,
                        unsigned slot = 0) const override;
    std::uint32_t invert(std::uint32_t tag,
                         unsigned slot = 0) const override;
    std::string name() const override { return "improved"; }
};

/** Per-way field rotation ("bit swapping" in the paper). */
class SwapTransform : public TagTransform
{
  public:
    using TagTransform::TagTransform;
    std::uint32_t apply(std::uint32_t tag, unsigned slot) const override;
    std::uint32_t invert(std::uint32_t tag, unsigned slot) const override;
    std::string name() const override { return "swap"; }
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_TRANSFORM_H
