/**
 * @file
 * Hash-rehash shadow cache: the alternative footnote 2 of the paper
 * points at ("Agarwal's hash-rehash cache [Agar87] can be superior
 * to MRU in this 2-way case").
 *
 * A hash-rehash cache is a direct-mapped array probed twice: first
 * at the primary index, then — on a primary miss — at a *rehash*
 * index (here: the primary index with its top bit flipped). A
 * rehash hit swaps the two blocks so the winner sits at its primary
 * index next time; a miss fills the primary slot and demotes its
 * previous occupant to the rehash slot. Costs: 1 probe for a
 * primary hit, 2 for a rehash hit, 2 for a miss — plus the block
 * swaps, which this model counts.
 *
 * Unlike the LookupStrategy observers, hash-rehash is a different
 * *organization* with its own miss ratio, so it runs as a shadow
 * cache fed by the level-two request stream: attach it as an
 * L2Observer and it simulates the alternative level two on exactly
 * the same requests. Compare against a 2-way set-associative cache
 * of the same capacity under SwapMRU (bench_ablation).
 */

#ifndef ASSOC_CORE_HASH_REHASH_H
#define ASSOC_CORE_HASH_REHASH_H

#include <cstdint>
#include <vector>

#include "mem/hierarchy.h"
#include "util/stats.h"

namespace assoc {
namespace core {

/** Shadow hash-rehash cache driven by level-two requests. */
class HashRehashShadow : public mem::L2Observer
{
  public:
    /**
     * @param frames total block frames (power of two); use the
     *        level-two frame count for an equal-capacity
     *        comparison.
     */
    explicit HashRehashShadow(std::uint32_t frames);

    void observe(const mem::L2AccessView &view) override;
    void onFlush() override;

    // --- results ---
    /** Mean probes over read-ins that hit this shadow cache. */
    const MeanAccum &hitProbes() const { return hit_probes_; }
    /** Mean probes over read-ins that miss. */
    const MeanAccum &missProbes() const { return miss_probes_; }
    /** Shadow-cache hit ratio over read-ins. */
    const RatioAccum &hits() const { return hits_; }
    /** Rehash-hit fraction of all hits (each costs a swap). */
    double rehashFraction() const;
    /** Total block swaps performed (rehash promotions + miss
     *  demotions). */
    std::uint64_t swaps() const { return swaps_; }
    /** Mean probes over all read-ins. */
    double totalProbes() const;

  private:
    std::uint32_t primaryIndex(mem::BlockAddr block) const;
    std::uint32_t rehashIndex(std::uint32_t primary) const;

    struct Frame
    {
        mem::BlockAddr block = 0;
        bool valid = false;
    };

    std::uint32_t frames_;
    unsigned index_bits_;
    std::vector<Frame> array_;

    MeanAccum hit_probes_;
    MeanAccum miss_probes_;
    RatioAccum hits_;
    std::uint64_t rehash_hits_ = 0;
    std::uint64_t swaps_ = 0;
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_HASH_REHASH_H
