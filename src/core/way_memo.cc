#include "core/way_memo.h"

#include <bit>

#include "util/logging.h"

namespace assoc {
namespace core {

WayMemoLookup::WayMemoLookup(
    std::unique_ptr<LookupStrategy> underlying,
    const WayMemoConfig &cfg)
    : underlying_(std::move(underlying)), cfg_(cfg)
{
    panicIf(!underlying_, "WayMemoLookup: null underlying strategy");
    fatalIf(!std::has_single_bit(cfg_.entries),
            "memo entries must be a power of two");
    fatalIf(cfg_.region_bits >= 32,
            "memo region bits must leave a nonempty region id");
    table_.resize(cfg_.entries);
}

std::string
WayMemoLookup::name() const
{
    return "WayMemo(e=" + std::to_string(cfg_.entries) +
           ",r=" + std::to_string(cfg_.region_bits) +
           (cfg_.tagged ? ",tagged)" : ",untagged)") + "+" +
           underlying_->name();
}

void
WayMemoLookup::onFlush()
{
    table_.assign(table_.size(), Entry{});
    underlying_->onFlush();
}

LookupResult
WayMemoLookup::lookup(const LookupInput &in) const
{
    ++lookups_;
    const std::uint32_t region = in.block_addr >> cfg_.region_bits;
    const std::uint32_t idx = region & (cfg_.entries - 1);
    Entry &e = table_[idx];

    // The underlying scheme always decides hit/miss — memoization
    // must never change outcomes, only costs (see file header).
    LookupResult under = underlying_->lookup(in);

    const bool entry_matches =
        e.way >= 0 && (!cfg_.tagged || e.region == region);

    if (entry_matches && under.hit &&
        e.way == static_cast<std::int16_t>(under.way)) {
        // Memo hit: the table already names the right way; every
        // tag probe is skipped.
        ++memo_hits_;
        LookupResult res;
        res.hit = true;
        res.way = under.way;
        res.probes = 0;
        res.events.memo_reads = 1;
        res.memo_hit = true;
        return res;
    }

    // Memo miss (cold, aliased, or stale entry): the underlying
    // probes all happen, plus the memo read that failed and the
    // update that repairs the table.
    LookupResult res = under;
    res.events.memo_reads += 1;
    res.events.memo_writes += 1;
    if (under.hit) {
        e.region = region;
        e.way = static_cast<std::int16_t>(under.way);
    } else if (entry_matches) {
        // The region's block is provably absent: drop the entry,
        // as hardware invalidation would have.
        e.way = -1;
    }
    return res;
}

LookupResult
WayPredictLookup::lookup(const LookupInput &in) const
{
    LookupResult res;
    // The prediction register read happens alongside set decode:
    // an energy event, never a probe.
    res.events.memo_reads = 1;

    const unsigned pred = in.mru_order[0];
    ++predictions_;

    // First probe: the predicted way alone.
    res.probes = 1;
    res.events.tag_reads = 1;
    res.events.tag_compares = 1;
    if (in.valid[pred] && in.stored_tags[pred] == in.incoming_tag) {
        res.hit = true;
        res.way = static_cast<int>(pred);
        return res;
    }

    ++mispredictions_;
    if (in.assoc == 1)
        return res; // nothing left to probe

    // Second probe: all remaining a-1 ways in parallel, hit = the
    // lowest matching way index (the parallel comparator's priority
    // encoder).
    ++res.probes;
    res.events.tag_reads += in.assoc - 1;
    res.events.tag_compares += in.assoc - 1;
    res.events.memo_writes = 1; // repair the prediction register
    for (unsigned w = 0; w < in.assoc; ++w) {
        if (w == pred)
            continue;
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            return res;
        }
    }
    return res;
}

} // namespace core
} // namespace assoc
