/**
 * @file
 * AVX2 kernel table (x86-64).
 *
 * Compiled into every x86-64 build via function-level target
 * attributes — no -mavx2 flag needed, so a -march=x86-64 binary
 * still carries these bodies and selects them only when CPUID
 * reports AVX2 at runtime (avx2KernelsOrNull()). Configure with
 * -DASSOC_KERNELS_AVX2=OFF to compile them out entirely (the
 * no-AVX2 CI job, exotic toolchains).
 *
 * Layout per kernel: 8-lane AVX2 chunks, then a 4-lane SSE chunk,
 * then the shared scalar-tail bodies from kernels_inl.h — tails and
 * chunks must agree bit-for-bit, so the tail is never reimplemented
 * here. Tag-equality lanes become bitmasks via movemask on the
 * 32-bit compare results; validity bytes become bitmasks via a
 * zero-compare + movemask on the byte lanes.
 */

#include "core/kernels.h"

#if defined(__x86_64__) && !defined(ASSOC_NO_AVX2_KERNELS)

#include <immintrin.h>

#include <cstring>

#include "core/kernels_inl.h"

#if defined(__SANITIZE_THREAD__)
#define ASSOC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ASSOC_TSAN 1
#endif
#endif

namespace assoc {
namespace core {
namespace {

/** Bits w..w+7 of the eq/valid mask for 8 tag lanes at @p tags and
 *  8 validity bytes at @p valid. */
__attribute__((target("avx2"))) inline unsigned
eq8(const std::uint32_t *tags, const std::uint8_t *valid,
    __m256i vneedle)
{
    __m256i t = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(tags));
    unsigned eq = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(t, vneedle))));
    __m128i v = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(valid));
    unsigned inv = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_setzero_si128())));
    return eq & ~inv & 0xffu;
}

/** 4-lane SSE variant (associativity 4..7 tails, assoc-4 sets). */
inline unsigned
eq4(const std::uint32_t *tags, const std::uint8_t *valid,
    __m128i vneedle4)
{
    __m128i t = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(tags));
    unsigned eq = static_cast<unsigned>(_mm_movemask_ps(
        _mm_castsi128_ps(_mm_cmpeq_epi32(t, vneedle4))));
    std::uint32_t vword;
    std::memcpy(&vword, valid, 4);
    __m128i v = _mm_cvtsi32_si128(static_cast<int>(vword));
    unsigned inv = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_setzero_si128())));
    return eq & ~inv & 0xfu;
}

__attribute__((target("avx2"))) std::uint64_t
avx2EqMask(const std::uint32_t *tags, const std::uint8_t *valid,
           unsigned a, std::uint32_t needle)
{
    std::uint64_t m = 0;
    unsigned w = 0;
    if (a >= 8) {
        const __m256i vneedle =
            _mm256_set1_epi32(static_cast<int>(needle));
        for (; w + 8 <= a; w += 8)
            m |= static_cast<std::uint64_t>(
                     eq8(tags + w, valid + w, vneedle))
                 << w;
    }
    if (w + 4 <= a) {
        m |= static_cast<std::uint64_t>(
                 eq4(tags + w, valid + w,
                     _mm_set1_epi32(static_cast<int>(needle))))
             << w;
        w += 4;
    }
    for (; w < a; ++w)
        m |= static_cast<std::uint64_t>(
                 static_cast<unsigned>(valid[w] != 0) &
                 static_cast<unsigned>(tags[w] == needle))
             << w;
    return m;
}

/** Tag-equality bits for 8 lanes (no validity plane). */
__attribute__((target("avx2"))) inline unsigned
eqTags8(const std::uint32_t *vals, __m256i vneedle)
{
    __m256i t = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(vals));
    return static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(t, vneedle))));
}

inline unsigned
eqTags4(const std::uint32_t *vals, __m128i vneedle4)
{
    __m128i t = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(vals));
    return static_cast<unsigned>(_mm_movemask_ps(
        _mm_castsi128_ps(_mm_cmpeq_epi32(t, vneedle4))));
}

__attribute__((target("avx2"))) std::uint64_t
avx2EqMaskBits(const std::uint32_t *vals, std::uint64_t valid_bits,
               unsigned a, std::uint32_t needle)
{
    std::uint64_t m = 0;
    unsigned w = 0;
    if (a >= 8) {
        const __m256i vneedle =
            _mm256_set1_epi32(static_cast<int>(needle));
        for (; w + 8 <= a; w += 8)
            m |= static_cast<std::uint64_t>(eqTags8(vals + w, vneedle))
                 << w;
    }
    if (w + 4 <= a) {
        m |= static_cast<std::uint64_t>(
                 eqTags4(vals + w,
                         _mm_set1_epi32(static_cast<int>(needle))))
             << w;
        w += 4;
    }
    for (; w < a; ++w)
        m |= static_cast<std::uint64_t>(vals[w] == needle) << w;
    return m & valid_bits & maskBits(a);
}

__attribute__((target("avx2"))) std::uint64_t
avx2EqMaskBitsRelaxed(const std::uint32_t *vals,
                      std::uint64_t valid_bits, unsigned a,
                      std::uint32_t needle)
{
#if defined(ASSOC_TSAN)
    // Under ThreadSanitizer the racing element loads must be
    // visible to the checker as relaxed atomics; take the SWAR body
    // (bit-identical, just not vectorized).
    return kdetail::swarEqMaskBitsRelaxed(vals, valid_bits, a, needle);
#else
    // Plain vector loads: individual elements may tear against a
    // per-set-serialized writer, but any torn view is discarded by
    // the caller's seqlock validation (mem/cache.h concurrency
    // contract), and a 32-bit plane element never tears on x86.
    return avx2EqMaskBits(vals, valid_bits, a, needle);
#endif
}

__attribute__((target("avx2"))) std::uint64_t
avx2PartialMask(const std::uint32_t *tags, const std::uint8_t *valid,
                unsigned g, const std::uint32_t *inc_fields,
                unsigned k, TransformKind kind, const TagTransform &xf)
{
    (void)xf;
    std::uint64_t m = 0;
    unsigned l = 0;
    if (g >= 8) {
        const __m256i vmask = _mm256_set1_epi32(
            static_cast<int>(static_cast<std::uint32_t>(maskBits(k))));
        const __m256i vk = _mm256_set1_epi32(static_cast<int>(k));
        const __m256i lane_idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5,
                                                   6, 7);
        for (; l + 8 <= g; l += 8) {
            __m256i t = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(tags + l));
            __m256i idx = _mm256_add_epi32(
                _mm256_set1_epi32(static_cast<int>(l)), lane_idx);
            __m256i fieldv;
            if (kind == TransformKind::Swap) {
                // Collection l of way l is always raw field 0.
                fieldv = _mm256_and_si256(t, vmask);
            } else {
                __m256i shifted = _mm256_srlv_epi32(
                    t, _mm256_mullo_epi32(idx, vk));
                __m256i xsel = _mm256_setzero_si256();
                if (kind == TransformKind::XorLow) {
                    // xsel = tag for lanes with l >= 1, 0 for l == 0.
                    __m256i is0 = _mm256_cmpeq_epi32(
                        idx, _mm256_setzero_si256());
                    xsel = _mm256_andnot_si256(is0, t);
                } else if (kind == TransformKind::Improved) {
                    // l == 0 -> 0, l == 1 -> tag, l >= 2 ->
                    // tag ^ (tag >> k).
                    __m256i hi = _mm256_xor_si256(
                        t, _mm256_srlv_epi32(t, vk));
                    __m256i is1 = _mm256_cmpeq_epi32(
                        idx, _mm256_set1_epi32(1));
                    __m256i is0 = _mm256_cmpeq_epi32(
                        idx, _mm256_setzero_si256());
                    xsel = _mm256_blendv_epi8(hi, t, is1);
                    xsel = _mm256_andnot_si256(is0, xsel);
                }
                fieldv = _mm256_and_si256(
                    _mm256_xor_si256(shifted, xsel), vmask);
            }
            __m256i inc = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(inc_fields + l));
            unsigned eq = static_cast<unsigned>(_mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpeq_epi32(fieldv, inc))));
            __m128i v = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(valid + l));
            unsigned inv = static_cast<unsigned>(_mm_movemask_epi8(
                _mm_cmpeq_epi8(v, _mm_setzero_si128())));
            m |= static_cast<std::uint64_t>(eq & ~inv & 0xffu) << l;
        }
    }
    for (; l < g; ++l)
        m |= static_cast<std::uint64_t>(
                 static_cast<unsigned>(valid[l] != 0) &
                 static_cast<unsigned>(
                     kdetail::partialStoredField(tags[l], l, k, kind) ==
                     inc_fields[l]))
             << l;
    return m;
}

void
avx2ExpandBits(std::uint64_t bits, unsigned n, std::uint8_t *out)
{
    // n <= 64 bytes: the SWAR multiply spread is already one store
    // per 8 ways; a vector version would not pay for its setup.
    kdetail::swarExpandBits(bits, n, out);
}

void
avx2ExpandNibbles(std::uint64_t word, unsigned n, std::uint8_t *out)
{
    kdetail::swarExpandNibbles(word, n, out);
}

__attribute__((target("avx2"))) void
avx2ShiftTags(const std::uint32_t *in, unsigned n, unsigned shift,
              std::uint32_t *out)
{
    unsigned i = 0;
    const __m128i vcount =
        _mm_cvtsi32_si128(static_cast<int>(shift));
    for (; i + 8 <= n; i += 8) {
        __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_srl_epi32(t, vcount));
    }
    for (; i < n; ++i)
        out[i] = in[i] >> shift;
}

} // namespace

const LookupKernels *
avx2KernelsOrNull()
{
    if (!__builtin_cpu_supports("avx2"))
        return nullptr;
    static const LookupKernels k = {
        KernelIsa::Avx2,
        "avx2",
        avx2EqMask,
        avx2EqMaskBits,
        avx2EqMaskBitsRelaxed,
        avx2PartialMask,
        avx2ExpandBits,
        avx2ExpandNibbles,
        avx2ShiftTags,
    };
    return &k;
}

} // namespace core
} // namespace assoc

#else // !x86-64 or ASSOC_NO_AVX2_KERNELS

namespace assoc {
namespace core {

const LookupKernels *
avx2KernelsOrNull()
{
    return nullptr;
}

} // namespace core
} // namespace assoc

#endif
