/**
 * @file
 * Closed-form expected-probe model of Section 2 and Table 1.
 *
 * All hit formulas condition on the access hitting; miss formulas
 * condition on missing. The partial-compare expressions assume each
 * k-bit compared field is independent and uniform — the
 * "probabilistic lower bound" Figure 6 plots against measurement.
 */

#ifndef ASSOC_CORE_ANALYTIC_H
#define ASSOC_CORE_ANALYTIC_H

#include <cstdint>
#include <vector>

namespace assoc {
namespace core {
namespace analytic {

/** Traditional implementation: always one probe. */
double traditionalHit();
double traditionalMiss();

/** Naive serial scan: (a-1)/2 + 1 on a hit, a on a miss. */
double naiveHit(unsigned a);
double naiveMiss(unsigned a);

/**
 * MRU scan: 1 + sum i*f_i on a hit (f_i = probability the i-th
 * most-recently-used tag matches, given a hit), a + 1 on a miss.
 * @param f distribution, f[0] unused, f[1..a] the probabilities.
 */
double mruHit(const std::vector<double> &f);
double mruMiss(unsigned a);

/**
 * Reduced MRU list of @p list_len entries (Figure 5): hits within
 * the list cost 1 + i probes; hits beyond it are found by scanning
 * the remaining a - L ways in an order uncorrelated with recency,
 * at an expected extra (a - L + 1)/2 probes after the L list
 * probes. @p f as in mruHit; list_len 0 or >= a gives mruHit.
 */
double mruReducedHit(const std::vector<double> &f, unsigned list_len);

/**
 * Partial compares with @p s subsets of k-bit fields:
 * hit:  (s+1)/2 + ((s-1)/2) * (a/s)/2^k + ((a/s)-1)/2^(k+1) + 1
 * miss: s + a/2^k
 * (collapses to Table 1's single-subset forms at s = 1).
 */
double partialHit(unsigned a, unsigned k, unsigned s = 1);
double partialMiss(unsigned a, unsigned k, unsigned s = 1);

/**
 * Expected probes per access for a scheme given its hit and miss
 * expectations and the (local) miss ratio.
 */
double combined(double hit_probes, double miss_probes,
                double miss_ratio);

/** The hits-only optimum partial-compare width: log2(t) - 1/2. */
double kOpt(unsigned t);

/**
 * Partial-compare width implied by tag width @p t, associativity
 * @p a and @p s subsets: floor(t / (a/s)), capped at t.
 */
unsigned partialWidth(unsigned a, unsigned t, unsigned s);

/**
 * Choose the number of subsets (a power of two dividing @p a) that
 * minimizes expected probes for the given miss ratio, following
 * answer (1) of Section 2.2. @p miss_ratio 0 optimizes hits only.
 */
unsigned chooseSubsets(unsigned a, unsigned t, double miss_ratio = 0.0);

} // namespace analytic
} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_ANALYTIC_H
