/**
 * @file
 * Shared inline kernel bodies (internal).
 *
 * Included by kernels.cc, kernels_avx2.cc and partial_lookup.cc so
 * the portable-SWAR loops and the closed-form transform fields have
 * exactly one definition: the vector ISAs reuse these for their
 * scalar tails, which guarantees chunk-boundary and tail lanes
 * compute bit-identical values.
 */

#ifndef ASSOC_CORE_KERNELS_INL_H
#define ASSOC_CORE_KERNELS_INL_H

#include <atomic>
#include <cstdint>

#include "core/transform.h"
#include "util/bitops.h"

namespace assoc {
namespace core {
namespace kdetail {

/**
 * Field l of apply(tag, l) — the k-bit collection way l's partial
 * compare reads — as a closed form of the GF(2)-linear transforms
 * in transform.cc, with the virtual apply()/field() pair folded
 * away:
 *
 *  - None:     field l of the raw tag.
 *  - XorLow:   apply() XORs field 0 into every higher field, so
 *              field l (l >= 1) is field l of tag ^ tag.
 *  - Improved: field 1 absorbs field 0; fields >= 2 absorb
 *              field 0 ^ field 1, i.e. tag ^ (tag >> k).
 *  - Swap:     apply(tag, slot) rotates the fields by slot, so
 *              collection l of way l always lands on field 0 of
 *              the raw tag.
 *
 * Valid for l < g where g * k <= t (PartialLookup::validate), which
 * bounds every shift below 32 and keeps l inside the transform's
 * field count. Equivalence with the virtual path is enforced by
 * kernelSelfCheck() and the tests/kernels suite.
 */
inline std::uint32_t
partialStoredField(std::uint32_t tag, unsigned l, unsigned k,
                   TransformKind kind)
{
    const std::uint32_t m = static_cast<std::uint32_t>(maskBits(k));
    switch (kind) {
      case TransformKind::None:
        return (tag >> (l * k)) & m;
      case TransformKind::XorLow:
        return ((tag >> (l * k)) ^ (l != 0 ? tag : 0u)) & m;
      case TransformKind::Improved: {
        std::uint32_t x =
            l == 0 ? 0u : (l == 1 ? tag : tag ^ (tag >> k));
        return ((tag >> (l * k)) ^ x) & m;
      }
      case TransformKind::Swap:
        return tag & m;
    }
    return 0; // unreachable
}

/** Branch-free eq_mask body (the SWAR table's implementation). */
inline std::uint64_t
swarEqMask(const std::uint32_t *tags, const std::uint8_t *valid,
           unsigned a, std::uint32_t needle)
{
    std::uint64_t m = 0;
    for (unsigned w = 0; w < a; ++w)
        m |= static_cast<std::uint64_t>(
                 static_cast<unsigned>(valid[w] != 0) &
                 static_cast<unsigned>(tags[w] == needle))
             << w;
    return m;
}

/** Branch-free eq_mask_bits body. */
inline std::uint64_t
swarEqMaskBits(const std::uint32_t *vals, std::uint64_t valid_bits,
               unsigned a, std::uint32_t needle)
{
    std::uint64_t m = 0;
    for (unsigned w = 0; w < a; ++w)
        m |= static_cast<std::uint64_t>(vals[w] == needle) << w;
    return m & valid_bits & maskBits(a);
}

/** eq_mask_bits through relaxed atomic element loads (seqlock
 *  optimistic readers race per-set-serialized writers). */
inline std::uint64_t
swarEqMaskBitsRelaxed(const std::uint32_t *vals,
                      std::uint64_t valid_bits, unsigned a,
                      std::uint32_t needle)
{
    std::uint64_t m = 0;
    for (unsigned w = 0; w < a; ++w) {
        // atomic_ref over const is C++26; mirror mem/cache.cc's
        // planeLoad const_cast (the referent is never written here).
        std::uint32_t v =
            std::atomic_ref<std::uint32_t>(
                const_cast<std::uint32_t &>(vals[w]))
                .load(std::memory_order_relaxed);
        m |= static_cast<std::uint64_t>(v == needle) << w;
    }
    return m & valid_bits & maskBits(a);
}

/** Closed-form partial_mask body (SWAR table + vector tails). */
inline std::uint64_t
swarPartialMask(const std::uint32_t *tags, const std::uint8_t *valid,
                unsigned g, const std::uint32_t *inc_fields,
                unsigned k, TransformKind kind)
{
    std::uint64_t m = 0;
    for (unsigned l = 0; l < g; ++l)
        m |= static_cast<std::uint64_t>(
                 static_cast<unsigned>(valid[l] != 0) &
                 static_cast<unsigned>(
                     partialStoredField(tags[l], l, k, kind) ==
                     inc_fields[l]))
             << l;
    return m;
}

/** Bit -> byte spread, eight bits per step: replicate the byte,
 *  keep bit j in byte j, then normalize nonzero bytes to 1. */
inline void
swarExpandBits(std::uint64_t bits, unsigned n, std::uint8_t *out)
{
    unsigned i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t x = ((bits >> i) & 0xff) * 0x0101010101010101ULL;
        x &= 0x8040201008040201ULL;
        x = ((x + 0x7f7f7f7f7f7f7f7fULL) >> 7) & 0x0101010101010101ULL;
        for (unsigned j = 0; j < 8; ++j)
            out[i + j] = static_cast<std::uint8_t>((x >> (8 * j)) & 1);
    }
    for (; i < n; ++i)
        out[i] = static_cast<std::uint8_t>((bits >> i) & 1);
}

/** Nibble -> byte spread of one packed order word (n <= 16). */
inline void
swarExpandNibbles(std::uint64_t word, unsigned n, std::uint8_t *out)
{
    unsigned i = 0;
    for (; i + 8 <= n; i += 8) {
        // Spread the 8 nibbles of one 32-bit half across a 64-bit
        // word (a shift-interleave PDEP substitute), byte j =
        // nibble j.
        std::uint64_t x = (word >> (4 * i)) & 0xffffffffULL;
        x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
        x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
        x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
        for (unsigned j = 0; j < 8; ++j)
            out[i + j] =
                static_cast<std::uint8_t>((x >> (8 * j)) & 0xf);
    }
    for (; i < n; ++i)
        out[i] = static_cast<std::uint8_t>((word >> (4 * i)) & 0xf);
}

/** Uniform right-shift of a tag plane. */
inline void
swarShiftTags(const std::uint32_t *in, unsigned n, unsigned shift,
              std::uint32_t *out)
{
    for (unsigned i = 0; i < n; ++i)
        out[i] = in[i] >> shift;
}

} // namespace kdetail
} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_KERNELS_INL_H
