#include "core/transform.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace core {

TransformKind
transformKindFromString(const std::string &s)
{
    if (s == "none")
        return TransformKind::None;
    if (s == "xor")
        return TransformKind::XorLow;
    if (s == "improved" || s == "new")
        return TransformKind::Improved;
    if (s == "swap")
        return TransformKind::Swap;
    fatal("unknown transform '" + s +
          "' (expected none|xor|improved|swap)");
}

const char *
transformKindName(TransformKind kind)
{
    switch (kind) {
      case TransformKind::None:
        return "none";
      case TransformKind::XorLow:
        return "xor";
      case TransformKind::Improved:
        return "improved";
      case TransformKind::Swap:
        return "swap";
    }
    return "unknown";
}

TagTransform::TagTransform(unsigned t, unsigned k) : t_(t), k_(k)
{
    fatalIf(t == 0 || t > 32, "tag width must be in [1, 32]");
    fatalIf(k == 0 || k > t, "field width must be in [1, t]");
    nfields_ = t / k;
}

std::uint32_t
TagTransform::field(std::uint32_t tag, unsigned f) const
{
    panicIf(f >= nfields_, "field index out of range");
    return static_cast<std::uint32_t>((tag >> (f * k_)) & maskBits(k_));
}

std::unique_ptr<TagTransform>
TagTransform::make(TransformKind kind, unsigned t, unsigned k)
{
    switch (kind) {
      case TransformKind::None:
        return std::make_unique<NoTransform>(t, k);
      case TransformKind::XorLow:
        return std::make_unique<XorLowTransform>(t, k);
      case TransformKind::Improved:
        return std::make_unique<ImprovedTransform>(t, k);
      case TransformKind::Swap:
        return std::make_unique<SwapTransform>(t, k);
    }
    panic("bad TransformKind");
}

std::uint32_t
NoTransform::apply(std::uint32_t tag, unsigned) const
{
    return tag;
}

std::uint32_t
NoTransform::invert(std::uint32_t tag, unsigned) const
{
    return tag;
}

std::uint32_t
XorLowTransform::apply(std::uint32_t tag, unsigned) const
{
    std::uint32_t f0 = tag & static_cast<std::uint32_t>(maskBits(k_));
    std::uint32_t out = tag;
    for (unsigned f = 1; f < nfields_; ++f)
        out ^= f0 << (f * k_);
    return out;
}

std::uint32_t
XorLowTransform::invert(std::uint32_t tag, unsigned slot) const
{
    // Field 0 is stored unmodified, so applying the same XOR again
    // recovers the original: the transform is its own inverse.
    return apply(tag, slot);
}

std::uint32_t
ImprovedTransform::apply(std::uint32_t tag, unsigned) const
{
    if (nfields_ < 2)
        return tag;
    std::uint32_t f0 = field(tag, 0);
    std::uint32_t f1 = field(tag, 1);
    std::uint32_t out = tag;
    out ^= f0 << k_; // field 1 ^= field 0
    std::uint32_t mix = f0 ^ f1;
    for (unsigned f = 2; f < nfields_; ++f)
        out ^= mix << (f * k_);
    return out;
}

std::uint32_t
ImprovedTransform::invert(std::uint32_t tag, unsigned) const
{
    if (nfields_ < 2)
        return tag;
    std::uint32_t o0 = field(tag, 0);
    std::uint32_t o1 = field(tag, 1);
    std::uint32_t out = tag;
    out ^= o0 << k_; // recover original field 1 = o1 ^ o0
    // Original field0 ^ field1 = o0 ^ (o1 ^ o0) = o1.
    for (unsigned f = 2; f < nfields_; ++f)
        out ^= o1 << (f * k_);
    return out;
}

std::uint32_t
SwapTransform::apply(std::uint32_t tag, unsigned slot) const
{
    if (nfields_ < 2)
        return tag;
    unsigned rot = slot % nfields_;
    std::uint32_t out = tag & ~static_cast<std::uint32_t>(
        maskBits(nfields_ * k_));
    for (unsigned f = 0; f < nfields_; ++f) {
        unsigned src = (f + nfields_ - rot) % nfields_;
        out |= field(tag, src) << (f * k_);
    }
    return out;
}

std::uint32_t
SwapTransform::invert(std::uint32_t tag, unsigned slot) const
{
    if (nfields_ < 2)
        return tag;
    unsigned rot = slot % nfields_;
    std::uint32_t out = tag & ~static_cast<std::uint32_t>(
        maskBits(nfields_ * k_));
    for (unsigned f = 0; f < nfields_; ++f) {
        unsigned src = (f + rot) % nfields_;
        out |= field(tag, src) << (f * k_);
    }
    return out;
}

} // namespace core
} // namespace assoc
