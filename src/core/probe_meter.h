/**
 * @file
 * Probe meters: observers that price every level-two access under
 * one lookup strategy while a single simulation runs.
 *
 * Accounting follows the paper exactly:
 *  - With the write-back optimization (the default from Figure 3
 *    on), write-backs cost zero probes for every scheme, but they
 *    are still counted as (hit) references in the averages.
 *  - The "hits" aggregate therefore covers read-in hits plus
 *    write-backs; "total" additionally covers read-in misses
 *    (Table 4's columns).
 *  - Hit/miss *categories* come from the simulator's full-tag ground
 *    truth; tag-width truncation can, in principle, make a scheme
 *    declare a false hit (an alias) — counted separately.
 */

#ifndef ASSOC_CORE_PROBE_METER_H
#define ASSOC_CORE_PROBE_METER_H

#include <memory>
#include <string>
#include <vector>

#include "core/lookup.h"
#include "mem/hierarchy.h"
#include "util/histogram.h"
#include "util/stats.h"

namespace assoc {
namespace core {

/** Shared meter settings. */
struct MeterConfig
{
    /** Stored tag width t (probe costs are computed on t-bit tags). */
    unsigned tag_bits = 16;
    /** Model the write-back optimization (zero-probe write-backs). */
    bool wb_optimization = true;
};

/** Aggregated probe statistics for one strategy. */
struct ProbeStats
{
    MeanAccum read_in_hits;   ///< probes on read-ins that hit
    MeanAccum read_in_misses; ///< probes on read-ins that miss
    MeanAccum write_backs;    ///< probes on write-backs

    std::uint64_t alias_hits = 0; ///< scheme hit where simulator missed
    std::uint64_t alias_wrong_way = 0; ///< scheme hit a different way

    /** 64-bit event totals behind the probe counts (the energy
     *  model's input, src/hw/energy_model.h): per-access ProbeEvents
     *  are 32-bit, but a long run's totals need the headroom. */
    struct EventTotals
    {
        std::uint64_t tag_reads = 0;
        std::uint64_t field_reads = 0;
        std::uint64_t tag_compares = 0;
        std::uint64_t list_reads = 0;
        std::uint64_t memo_reads = 0;
        std::uint64_t memo_writes = 0;

        void
        add(const ProbeEvents &e)
        {
            tag_reads += e.tag_reads;
            field_reads += e.field_reads;
            tag_compares += e.tag_compares;
            list_reads += e.list_reads;
            memo_reads += e.memo_reads;
            memo_writes += e.memo_writes;
        }
    };
    EventTotals events;
    /** Accesses where a memo table skipped every tag probe. */
    std::uint64_t memo_hits = 0;
    /** Metered (non-free) accesses contributing to events. */
    std::uint64_t metered = 0;

    /** Mean probes over read-in hits + write-backs (Table 4 "Hits"). */
    double hitsMean() const;

    /** Mean probes over read-ins only (Figures 4-6 use the hit part). */
    double readInMean() const;

    /** Mean probes over everything (Table 4 "Total"). */
    double totalMean() const;

    void reset();
};

class ProbeMeter;

/**
 * Checker hook: sees every metered lookup with exactly the t-bit
 * sliced inputs the strategy saw and the result it produced, before
 * the meter's own ground-truth cross-check runs. Implemented by the
 * invariant checkers in src/check; attachable to any simulation via
 * ProbeMeter::setAuditor (or sim::RunSpec::auditor).
 */
class LookupAuditor
{
  public:
    virtual ~LookupAuditor() = default;

    /** Called once per metered (non-free) level-two access. */
    virtual void audit(const ProbeMeter &meter,
                       const mem::L2AccessView &view,
                       const LookupInput &in,
                       const LookupResult &res) = 0;
};

/**
 * One strategy attached to the hierarchy. Not owned by the
 * hierarchy; keep it alive for the duration of the run.
 */
class ProbeMeter : public mem::L2Observer
{
  public:
    ProbeMeter(std::unique_ptr<LookupStrategy> strategy,
               const MeterConfig &cfg);

    void observe(const mem::L2AccessView &view) override;

    /** Forward the flush to address-keyed strategy state (memo
     *  tables go stale across a cold-start boundary). */
    void onFlush() override;

    /** Attach an invariant auditor (not owned; nullptr detaches). */
    void setAuditor(LookupAuditor *auditor) { auditor_ = auditor; }

    const ProbeStats &stats() const { return stats_; }
    ProbeStats &stats() { return stats_; }
    const LookupStrategy &strategy() const { return *strategy_; }
    const MeterConfig &config() const { return cfg_; }
    std::string name() const { return strategy_->name(); }

  private:
    std::unique_ptr<LookupStrategy> strategy_;
    MeterConfig cfg_;
    ProbeStats stats_;
    LookupAuditor *auditor_ = nullptr;

    /** Scratch for t-bit sliced tags, reused across observations
     *  (unused when t covers the full tag width: the hierarchy's
     *  snapshot plane is then passed through untouched). */
    mutable std::vector<std::uint32_t> tags_;
};

/**
 * Records the MRU-distance distribution f_i of read-in hits
 * (Figure 5, right graph): distance 1 = the hit was to the
 * most-recently-used way of its set.
 */
class MruDistanceMeter : public mem::L2Observer
{
  public:
    explicit MruDistanceMeter(unsigned assoc);

    void observe(const mem::L2AccessView &view) override;

    /** Distribution over distances; bucket i holds distance i
     *  (bucket 0 unused). */
    const Histogram &distances() const { return hist_; }

    /** f_i: probability a read-in hit is at MRU distance @p i
     *  (1-based), conditioned on hitting. */
    double f(unsigned i) const;

  private:
    Histogram hist_;
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_PROBE_METER_H
