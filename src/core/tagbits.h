/**
 * @file
 * Tag-width slicing.
 *
 * The paper prices lookups assuming a fixed tag-memory width t
 * (16 bits in most of the study, 32 in Figure 6) independent of how
 * many tag bits the address arithmetic actually produces. We keep
 * the simulator's hit/miss ground truth on full tags and slice to
 * t bits only where probe costs are computed, exactly as the paper
 * does.
 */

#ifndef ASSOC_CORE_TAGBITS_H
#define ASSOC_CORE_TAGBITS_H

#include <cstdint>

#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace core {

/** Slice a full tag down to @p t bits (the stored tag width). */
inline std::uint32_t
sliceTag(std::uint32_t full_tag, unsigned t)
{
    panicIf(t == 0 || t > 32, "tag width must be in [1, 32]");
    return static_cast<std::uint32_t>(full_tag & maskBits(t));
}

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_TAGBITS_H
