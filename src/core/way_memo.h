/**
 * @file
 * Way memoization and way prediction: the energy-era descendants of
 * the paper's serial-probe schemes (Ishihara & Fallah, PAPERS.md).
 *
 * Both strategies spend a tiny side structure to avoid tag probes:
 *
 *  - WayMemoLookup keeps a memo table indexed by *region* (the block
 *    address right-shifted by region_bits). A valid entry names the
 *    way that region's block occupied the last time it hit; when the
 *    entry is still correct the access skips every tag probe
 *    (probes == 0, only a memo-table read). Otherwise the underlying
 *    scheme runs unchanged and the table is updated.
 *
 *  - WayPredictLookup probes the predicted (most-recently-used) way
 *    first; on a correct prediction the access costs one probe, on a
 *    misprediction one more wide probe covers the remaining a-1 ways
 *    in parallel (two probes total).
 *
 * Neither strategy ever changes what hits: hit/miss and the hit way
 * are bit-identical to the underlying scheme — memoization only
 * changes probes and energy. WayMemoLookup enforces this by
 * construction: it runs the underlying lookup internally and only
 * declares a memo hit when the table entry agrees with it. That
 * mirrors the hardware guarantee (real memo tables are invalidated
 * on eviction so a valid entry is always correct); our strategy
 * cannot observe evictions, so a stale entry is detected here and
 * priced as a memo miss — exactly what the cleared hardware entry
 * would have cost.
 */

#ifndef ASSOC_CORE_WAY_MEMO_H
#define ASSOC_CORE_WAY_MEMO_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/lookup.h"

namespace assoc {
namespace core {

/** Memo-table geometry. */
struct WayMemoConfig
{
    /** Number of memo entries (power of two). */
    std::uint32_t entries = 64;
    /** Region granularity: region = block_addr >> region_bits.
     *  0 memoizes per block; larger values share one entry across
     *  2^region_bits consecutive blocks. */
    unsigned region_bits = 0;
    /** Tagged entries store the region id and only match their own
     *  region; untagged entries save the tag bits but alias every
     *  region that maps to the same index. */
    bool tagged = true;
};

/**
 * Memo table of last hit ways over an underlying scheme. A memo hit
 * costs zero probes; a memo miss costs the underlying scheme's
 * probes plus the memo-table access.
 */
class WayMemoLookup : public LookupStrategy
{
  public:
    WayMemoLookup(std::unique_ptr<LookupStrategy> underlying,
                  const WayMemoConfig &cfg);

    LookupResult lookup(const LookupInput &in) const override;
    std::string name() const override;
    void onFlush() override;

    /** The scheme a memo miss falls back to. */
    const LookupStrategy &underlying() const { return *underlying_; }
    const WayMemoConfig &config() const { return cfg_; }

    /** Memo hits / total lookups since construction or flush. */
    std::uint64_t memoHits() const { return memo_hits_; }
    std::uint64_t memoLookups() const { return lookups_; }

  private:
    struct Entry
    {
        std::uint32_t region = 0; ///< region id (tagged tables only)
        std::int16_t way = -1;    ///< memoized way, -1 = invalid
    };

    std::unique_ptr<LookupStrategy> underlying_;
    WayMemoConfig cfg_;
    /** Lookup state mutates on a const lookup: the memo table is a
     *  cost-model side structure, not part of the set snapshot. */
    mutable std::vector<Entry> table_;
    mutable std::uint64_t memo_hits_ = 0;
    mutable std::uint64_t lookups_ = 0;
};

/**
 * MRU way prediction: probe the predicted way first, then all
 * remaining ways at once. The prediction register is read in
 * parallel with set decode, so unlike MruLookup's list read it
 * costs no probe — only a memo-table event for the energy model.
 */
class WayPredictLookup : public LookupStrategy
{
  public:
    LookupResult lookup(const LookupInput &in) const override;
    std::string name() const override { return "WayPredict"; }

    /** Predictions made / predictions that missed their way. */
    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredictions() const { return mispredictions_; }

  private:
    mutable std::uint64_t predictions_ = 0;
    mutable std::uint64_t mispredictions_ = 0;
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_WAY_MEMO_H
