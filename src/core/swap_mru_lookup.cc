#include "core/swap_mru_lookup.h"

namespace assoc {
namespace core {

LookupResult
SwapMruLookup::lookup(const LookupInput &in) const
{
    // The physical frames hold blocks in MRU order, so scanning
    // frame 0, 1, ... is exactly scanning the recency order. We
    // price it by walking the simulator's recency order directly
    // (the simulator does not physically swap).
    LookupResult res;
    for (unsigned i = 0; i < in.assoc; ++i) {
        unsigned w = in.mru_order[i];
        ++res.probes;
        ++res.events.tag_reads;
        ++res.events.tag_compares;
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            // Restoring MRU order moves the i blocks in front of
            // the hit down one frame each.
            swaps_ += i;
            return res;
        }
    }
    // Miss: the incoming block becomes MRU; every surviving block
    // shifts down one frame.
    swaps_ += in.assoc - 1;
    return res;
}

} // namespace core
} // namespace assoc
