#include "core/lookup.h"

#include "util/logging.h"

namespace assoc {
namespace core {

LookupResult
TraditionalLookup::lookup(const LookupInput &in) const
{
    LookupResult res;
    res.probes = 1;
    for (unsigned w = 0; w < in.assoc; ++w) {
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            break;
        }
    }
    return res;
}

LookupResult
NaiveLookup::lookup(const LookupInput &in) const
{
    LookupResult res;
    for (unsigned w = 0; w < in.assoc; ++w) {
        ++res.probes;
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            return res;
        }
    }
    return res; // miss: all a tags were examined
}

} // namespace core
} // namespace assoc
