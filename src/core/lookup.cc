#include "core/lookup.h"

#include <bit>

#include "core/kernels.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace core {

LookupResult
TraditionalLookup::lookup(const LookupInput &in) const
{
    LookupResult res;
    res.probes = 1;
    // One wide probe reads and compares all a tags in parallel.
    res.events.tag_reads = in.assoc;
    res.events.tag_compares = in.assoc;
    if (in.assoc <= 64) {
        // All a ways compare in parallel in hardware — and in the
        // kernel: one eq mask, hit = lowest matching way.
        std::uint64_t e = activeKernels().eq_mask(
            in.stored_tags, in.valid, in.assoc, in.incoming_tag);
        if (e != 0) {
            res.hit = true;
            res.way = static_cast<int>(std::countr_zero(e));
        }
        return res;
    }
    for (unsigned w = 0; w < in.assoc; ++w) {
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            break;
        }
    }
    return res;
}

LookupResult
NaiveLookup::lookup(const LookupInput &in) const
{
    LookupResult res;
    if (in.assoc <= 64) {
        // Serial scan in way order: the first matching way is the
        // eq mask's lowest set bit, and every way before it (plus
        // the hit itself) cost one probe; a miss examined all a.
        std::uint64_t e = activeKernels().eq_mask(
            in.stored_tags, in.valid, in.assoc, in.incoming_tag);
        if (e != 0) {
            unsigned w = static_cast<unsigned>(std::countr_zero(e));
            res.hit = true;
            res.way = static_cast<int>(w);
            res.probes = w + 1;
        } else {
            res.probes = in.assoc;
        }
        // Each serial probe reads and compares one t-bit tag.
        res.events.tag_reads = res.probes;
        res.events.tag_compares = res.probes;
        return res;
    }
    for (unsigned w = 0; w < in.assoc; ++w) {
        ++res.probes;
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            break;
        }
    }
    res.events.tag_reads = res.probes;
    res.events.tag_compares = res.probes;
    return res; // miss: all a tags were examined
}

} // namespace core
} // namespace assoc
