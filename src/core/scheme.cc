#include "core/scheme.h"

#include "core/mru_lookup.h"
#include "core/partial_lookup.h"
#include "core/way_memo.h"
#include "util/logging.h"

namespace assoc {
namespace core {

SchemeKind
schemeKindFromString(const std::string &s)
{
    if (s == "traditional")
        return SchemeKind::Traditional;
    if (s == "naive")
        return SchemeKind::Naive;
    if (s == "mru")
        return SchemeKind::Mru;
    if (s == "partial")
        return SchemeKind::Partial;
    if (s == "waymemo")
        return SchemeKind::WayMemo;
    if (s == "waypredict")
        return SchemeKind::WayPredict;
    fatal("unknown scheme '" + s +
          "' (expected traditional|naive|mru|partial|waymemo|"
          "waypredict)");
}

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Traditional:
        return "Traditional";
      case SchemeKind::Naive:
        return "Naive";
      case SchemeKind::Mru:
        return "MRU";
      case SchemeKind::Partial:
        return "Partial";
      case SchemeKind::WayMemo:
        return "WayMemo";
      case SchemeKind::WayPredict:
        return "WayPredict";
    }
    return "unknown";
}

SchemeSpec
SchemeSpec::paperPartial(unsigned a, unsigned tag_bits, unsigned min_k)
{
    SchemeSpec spec;
    spec.kind = SchemeKind::Partial;
    spec.tag_bits = tag_bits;
    // The paper's rule (Section 2.2, answer 3): use the fewest
    // subsets that give at least min_k-bit partial compares, then
    // spend the whole tag width: k = floor(t / (a/s)). With 16-bit
    // tags and min_k = 4 this yields 1/2/4 subsets with k = 4 for
    // 4/8/16-way; with 32-bit tags the 4-way cache gets k = 8 and
    // the 8/16-way caches halve their subset counts (Figure 6).
    unsigned s = 1;
    while (s < a && tag_bits / (a / s) < min_k)
        s *= 2;
    fatalIf(tag_bits / (a / s) < 1,
            "tag width " + std::to_string(tag_bits) +
                " cannot support partial compares at associativity " +
                std::to_string(a));
    fatalIf(tag_bits / (a / s) < min_k,
            "no feasible subset count gives " +
                std::to_string(min_k) + "-bit compares with t=" +
                std::to_string(tag_bits));
    spec.partial_subsets = s;
    spec.partial_k = tag_bits / (a / s);
    return spec;
}

std::unique_ptr<LookupStrategy>
SchemeSpec::makeStrategy() const
{
    switch (kind) {
      case SchemeKind::Traditional:
        return std::make_unique<TraditionalLookup>();
      case SchemeKind::Naive:
        return std::make_unique<NaiveLookup>();
      case SchemeKind::Mru:
        return std::make_unique<MruLookup>(mru_list_len);
      case SchemeKind::Partial: {
        PartialConfig cfg;
        cfg.tag_bits = tag_bits;
        cfg.field_bits = partial_k;
        cfg.subsets = partial_subsets;
        cfg.transform = transform;
        return std::make_unique<PartialLookup>(cfg);
      }
      case SchemeKind::WayMemo: {
        fatalIf(memo_underlying == SchemeKind::WayMemo ||
                    memo_underlying == SchemeKind::WayPredict,
                "waymemo cannot wrap another memo scheme");
        SchemeSpec inner = *this;
        inner.kind = memo_underlying;
        WayMemoConfig cfg;
        cfg.entries = memo_entries;
        cfg.region_bits = memo_region_bits;
        cfg.tagged = memo_tagged;
        return std::make_unique<WayMemoLookup>(inner.makeStrategy(),
                                               cfg);
      }
      case SchemeKind::WayPredict:
        return std::make_unique<WayPredictLookup>();
    }
    panic("bad SchemeKind");
}

std::unique_ptr<ProbeMeter>
SchemeSpec::makeMeter(bool wb_optimization) const
{
    MeterConfig mcfg;
    mcfg.tag_bits = tag_bits;
    mcfg.wb_optimization = wb_optimization;
    return std::make_unique<ProbeMeter>(makeStrategy(), mcfg);
}

} // namespace core
} // namespace assoc
