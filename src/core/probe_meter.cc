#include "core/probe_meter.h"

#include "core/tagbits.h"
#include "util/logging.h"

namespace assoc {
namespace core {

double
ProbeStats::hitsMean() const
{
    MeanAccum m = read_in_hits;
    m.merge(write_backs);
    return m.mean();
}

double
ProbeStats::readInMean() const
{
    MeanAccum m = read_in_hits;
    m.merge(read_in_misses);
    return m.mean();
}

double
ProbeStats::totalMean() const
{
    MeanAccum m = read_in_hits;
    m.merge(read_in_misses);
    m.merge(write_backs);
    return m.mean();
}

void
ProbeStats::reset()
{
    read_in_hits.reset();
    read_in_misses.reset();
    write_backs.reset();
    alias_hits = 0;
    alias_wrong_way = 0;
    events = EventTotals{};
    memo_hits = 0;
    metered = 0;
}

ProbeMeter::ProbeMeter(std::unique_ptr<LookupStrategy> strategy,
                       const MeterConfig &cfg)
    : strategy_(std::move(strategy)), cfg_(cfg)
{
    panicIf(!strategy_, "ProbeMeter: null strategy");
}

void
ProbeMeter::onFlush()
{
    strategy_->onFlush();
}

void
ProbeMeter::observe(const mem::L2AccessView &view)
{
    const mem::WriteBackCache &cache = *view.cache;
    const unsigned a = cache.geom().assoc();

    if (view.type == mem::L2ReqType::WriteBack && cfg_.wb_optimization) {
        // The level-one cache knows the way: zero probes; counted
        // as a hit reference in the averages (Table 4 caption).
        stats_.write_backs.record(0.0);
        return;
    }

    // The hierarchy hands every observer one decoded snapshot of
    // the set (full tags, valid flags, MRU order); this meter only
    // slices tags down to its own stored width t. When t covers the
    // full tag the slice is the identity and the snapshot plane is
    // fed to the strategy as-is.
    const std::uint32_t *stored = view.full_tags;
    if (cfg_.tag_bits < cache.geom().fullTagBits()) {
        tags_.resize(a);
        for (unsigned w = 0; w < a; ++w)
            tags_[w] = sliceTag(view.full_tags[w], cfg_.tag_bits);
        stored = tags_.data();
    }

    LookupInput in;
    in.assoc = a;
    in.stored_tags = stored;
    in.valid = view.valid;
    in.mru_order = view.mru_order;
    in.incoming_tag = sliceTag(view.full_tag, cfg_.tag_bits);
    in.block_addr = view.block;
    in.set = view.set;

    LookupResult res = strategy_->lookup(in);

    stats_.events.add(res.events);
    ++stats_.metered;
    if (res.memo_hit)
        ++stats_.memo_hits;

    // Auditors run before the ground-truth panic below so a broken
    // strategy is reported through the checker's channel too.
    if (auditor_)
        auditor_->audit(*this, view, in, res);

    // Cross-check against the simulator's full-tag ground truth.
    bool true_hit = view.hit_way >= 0;
    if (res.hit && !true_hit)
        ++stats_.alias_hits;
    else if (res.hit && res.way != view.hit_way)
        ++stats_.alias_wrong_way;
    panicIf(true_hit && !res.hit,
            "scheme missed a block the simulator holds");

    double probes = static_cast<double>(res.probes);
    if (view.type == mem::L2ReqType::WriteBack) {
        stats_.write_backs.record(probes);
    } else if (true_hit) {
        stats_.read_in_hits.record(probes);
    } else {
        stats_.read_in_misses.record(probes);
    }
}

MruDistanceMeter::MruDistanceMeter(unsigned assoc)
    : hist_(assoc + 1)
{
}

void
MruDistanceMeter::observe(const mem::L2AccessView &view)
{
    if (view.type != mem::L2ReqType::ReadIn || view.hit_way < 0)
        return;
    const std::uint8_t *order = view.mru_order;
    const unsigned a = view.cache->geom().assoc();
    for (unsigned i = 0; i < a; ++i) {
        if (order[i] == static_cast<std::uint8_t>(view.hit_way)) {
            hist_.record(i + 1); // distance is 1-based
            return;
        }
    }
    panic("hit way missing from the recency order");
}

double
MruDistanceMeter::f(unsigned i) const
{
    return hist_.fraction(i);
}

} // namespace core
} // namespace assoc
