#include "core/hash_rehash.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace core {

HashRehashShadow::HashRehashShadow(std::uint32_t frames)
    : frames_(frames)
{
    fatalIf(!isPow2(frames_) || frames_ < 2,
            "hash-rehash needs a power-of-two frame count >= 2");
    index_bits_ = log2i(frames_);
    array_.resize(frames_);
}

std::uint32_t
HashRehashShadow::primaryIndex(mem::BlockAddr block) const
{
    return block & static_cast<std::uint32_t>(maskBits(index_bits_));
}

std::uint32_t
HashRehashShadow::rehashIndex(std::uint32_t primary) const
{
    // Flip the top index bit: the classic rehash function.
    return primary ^ (std::uint32_t{1} << (index_bits_ - 1));
}

void
HashRehashShadow::observe(const mem::L2AccessView &view)
{
    // Only read-ins exercise the lookup path (write-backs are
    // zero-probe under the optimization, as for every scheme).
    if (view.type != mem::L2ReqType::ReadIn)
        return;

    mem::BlockAddr block = view.block;
    std::uint32_t p = primaryIndex(block);
    std::uint32_t r = rehashIndex(p);

    Frame &prim = array_[p];
    if (prim.valid && prim.block == block) {
        hits_.record(true);
        hit_probes_.record(1.0);
        return;
    }

    Frame &sec = array_[r];
    if (sec.valid && sec.block == block) {
        // Rehash hit: promote to the primary slot (one swap).
        hits_.record(true);
        hit_probes_.record(2.0);
        ++rehash_hits_;
        std::swap(prim, sec);
        ++swaps_;
        return;
    }

    // Miss: both probes were spent. Fill the primary slot and
    // demote its previous occupant into the rehash slot.
    hits_.record(false);
    miss_probes_.record(2.0);
    if (prim.valid) {
        sec = prim; // the demoted block overwrites the rehash slot
        ++swaps_;
    }
    prim.block = block;
    prim.valid = true;
}

void
HashRehashShadow::onFlush()
{
    for (Frame &f : array_)
        f.valid = false;
}

double
HashRehashShadow::rehashFraction() const
{
    std::uint64_t h = hits_.hits();
    return h == 0 ? 0.0
                  : static_cast<double>(rehash_hits_) /
                        static_cast<double>(h);
}

double
HashRehashShadow::totalProbes() const
{
    MeanAccum all = hit_probes_;
    all.merge(miss_probes_);
    return all.mean();
}

} // namespace core
} // namespace assoc
