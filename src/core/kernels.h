/**
 * @file
 * Vectorized lookup kernels with runtime ISA dispatch.
 *
 * The paper's partial-compare step 1 — compare a k-bit field of all
 * a stored tags against the incoming tag — is naturally
 * data-parallel, and the SoA planes (contiguous tag / valid / order
 * arrays, see mem/cache.h) were laid out to feed exactly that. This
 * module packages the data-parallel inner loops of every lookup
 * scheme as *kernels*: small non-virtual functions over contiguous
 * planes that return per-way bitmasks (bit w = way w), plus the
 * plane decode helpers snapshotSet() is built from.
 *
 * Several implementations of the same kernel table are registered:
 *
 *  - scalar  — straight loops, the reference implementation; uses
 *              the TagTransform virtuals exactly like the original
 *              strategy code, so it *is* the old behavior.
 *  - swar    — portable branch-free loops on 64-bit words; no
 *              intrinsics, auto-vectorizable, works everywhere.
 *  - avx2    — 8-way AVX2 intrinsics (x86-64; compiled behind a
 *              function target attribute, selected only when CPUID
 *              reports AVX2 at runtime).
 *  - neon    — AArch64 registry entry; currently a stub that routes
 *              to the SWAR bodies so the dispatch path exists while
 *              real NEON bodies are pending.
 *
 * activeKernels() picks the best registered table at first use:
 * explicit ASSOC_KERNELS=<name> override, else avx2 > neon > swar >
 * scalar. Every candidate must pass kernelSelfCheck() — a smoke
 * vector sweep (including misaligned plane offsets) compared against
 * the scalar reference — before it may be selected; a failing
 * candidate is skipped with a warn()ed reason instead of crashing,
 * falling back to the next table in the chain (docs/KERNELS.md).
 *
 * Every kernel is bit-identical to the scalar reference by contract:
 * the tests/kernels suite enforces equivalence exhaustively and by
 * randomized fuzzing, and the goldens / fuzz digests downstream
 * must not move when the dispatch choice changes.
 *
 * Masks are std::uint64_t, so kernels cover associativity <= 64;
 * callers keep their scalar paths for anything wider.
 */

#ifndef ASSOC_CORE_KERNELS_H
#define ASSOC_CORE_KERNELS_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/transform.h"

namespace assoc {
namespace core {

/** Instruction sets a kernel table may be built for. */
enum class KernelIsa : std::uint8_t {
    Scalar, ///< reference loops (always registered)
    Swar,   ///< portable branch-free word parallelism (always registered)
    Avx2,   ///< x86-64 AVX2 (registered when compiled in)
    Neon,   ///< AArch64 NEON (stub; registered on AArch64)
};

/** Printable lower-case name ("scalar", "swar", "avx2", "neon"). */
const char *kernelIsaName(KernelIsa isa);

/**
 * One implementation of the kernel set. All functions are
 * free-standing (no captured state) so a table is just function
 * pointers; none may assume plane alignment beyond the element
 * type's own (the self-check probes misaligned offsets).
 */
struct LookupKernels
{
    KernelIsa isa = KernelIsa::Scalar;
    const char *name = "scalar";

    /**
     * Bit w set iff valid[w] != 0 and tags[w] == needle, for
     * w < a <= 64. The one kernel behind Traditional / Naive / MRU
     * scans: every serial order is a walk of this mask.
     */
    std::uint64_t (*eq_mask)(const std::uint32_t *tags,
                             const std::uint8_t *valid, unsigned a,
                             std::uint32_t needle);

    /**
     * eq_mask against a packed validity word instead of a byte
     * plane: bit w set iff bit w of valid_bits and vals[w] ==
     * needle (w < a <= 64). Feeds WriteBackCache::findWay straight
     * from the SoA valid bitmask.
     */
    std::uint64_t (*eq_mask_bits)(const std::uint32_t *vals,
                                  std::uint64_t valid_bits, unsigned a,
                                  std::uint32_t needle);

    /**
     * eq_mask_bits for the seqlock's optimistic read path: element
     * loads may race per-set-serialized writers, so they must be
     * torn-read tolerant. Scalar/SWAR bodies load each element
     * through a relaxed std::atomic_ref; the AVX2 body uses plain
     * vector loads (element tearing is discarded by the caller's
     * seqlock validation) except under ThreadSanitizer, where it
     * routes to the SWAR body so the formal data-race checker sees
     * only relaxed atomics (see docs/KERNELS.md).
     */
    std::uint64_t (*eq_mask_bits_relaxed)(const std::uint32_t *vals,
                                          std::uint64_t valid_bits,
                                          unsigned a,
                                          std::uint32_t needle);

    /**
     * Partial-compare step 1 over one subset of g ways (Section
     * 2.2): bit l set iff valid[l] != 0 and field l of the
     * transformed stored tag tags[l] equals inc_fields[l], for
     * l < g <= 64. The caller precomputes inc_fields[l] =
     * xf.field(xf.apply(incoming, l), l) once per lookup; the
     * stored side is evaluated per way inside the kernel (the
     * vector bodies use closed forms of the four transforms, the
     * scalar body calls @p xf exactly like the original strategy).
     *
     * @param k    field width in bits (xf.fieldBits()).
     * @param kind transform kind (selects the closed form).
     * @param xf   the strategy's transform (reference body only).
     */
    std::uint64_t (*partial_mask)(const std::uint32_t *tags,
                                  const std::uint8_t *valid, unsigned g,
                                  const std::uint32_t *inc_fields,
                                  unsigned k, TransformKind kind,
                                  const TagTransform &xf);

    /** out[i] = bit i of bits (0/1 bytes), i < n <= 64. The valid
     *  plane decode of snapshotSet(). */
    void (*expand_bits)(std::uint64_t bits, unsigned n,
                        std::uint8_t *out);

    /** out[i] = 4-bit slot i of word, i < n <= 16. The packed
     *  recency-order decode of snapshotSet(). */
    void (*expand_nibbles)(std::uint64_t word, unsigned n,
                           std::uint8_t *out);

    /** out[i] = in[i] >> shift, i < n (shift < 32). The full-tag
     *  plane decode of snapshotSet(). */
    void (*shift_tags)(const std::uint32_t *in, unsigned n,
                       unsigned shift, std::uint32_t *out);
};

/** The reference table (always available, never self-check gated). */
const LookupKernels &scalarKernels();

/** The portable branch-free table (always available). */
const LookupKernels &swarKernels();

/**
 * Every table compiled into this binary, in dispatch-preference
 * order (vector ISAs first, scalar last). AVX2 appears when it was
 * compiled in *and* CPUID reports support; NEON on AArch64.
 */
std::vector<const LookupKernels *> registeredKernels();

/**
 * Run the smoke-vector equivalence sweep on @p k against the scalar
 * reference: eq masks, partial masks under all four transforms,
 * plane decodes — each at several associativities and at misaligned
 * plane offsets. @return true when every vector matches; on
 * mismatch, false with a one-line reason in @p why (when non-null).
 */
bool kernelSelfCheck(const LookupKernels &k, std::string *why);

/**
 * The dispatch decision, as a pure function (unit-testable without
 * process-global state): pick from @p registered (preference order,
 * as from registeredKernels()) honoring @p env (the ASSOC_KERNELS
 * value, may be null), self-checking every candidate and falling
 * back — never failing, since the scalar reference always passes
 * against itself. @p reason receives a one-line explanation.
 */
const LookupKernels &
chooseKernels(const char *env,
              const std::vector<const LookupKernels *> &registered,
              std::string *reason);

/**
 * The table every strategy and plane decode dispatches through,
 * selected once at first use (thread-safe) and logged via warn()
 * when the choice involved a fallback. Override per-process with
 * ASSOC_KERNELS=scalar|swar|avx2|neon.
 */
const LookupKernels &activeKernels();

/** Why activeKernels() picked what it picked (for tools/tests). */
const std::string &kernelDispatchReason();

/**
 * Temporarily force activeKernels() to a specific table (tests:
 * the equivalence suite runs every strategy under every table).
 * Not thread-safe against concurrent lookups; restore on scope
 * exit.
 */
class ScopedKernelOverride
{
  public:
    explicit ScopedKernelOverride(const LookupKernels &k);
    ~ScopedKernelOverride();

    ScopedKernelOverride(const ScopedKernelOverride &) = delete;
    ScopedKernelOverride &
    operator=(const ScopedKernelOverride &) = delete;

  private:
    const LookupKernels *saved_;
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_KERNELS_H
