/**
 * @file
 * Intermediate tag-memory widths: the b x t designs Section 1
 * mentions ("implementations using tag widths of b*t (1 < b < a)
 * are possible and can result in intermediate costs and
 * performance, but are not considered here"). We consider them.
 *
 * A b-wide tag memory reads and compares b stored tags per probe,
 * so the serial scans shorten by a factor of b:
 *
 *   WideNaive:  hit in scan group g (0-based) -> g + 1 probes,
 *               miss -> ceil(a/b) probes.
 *   WideMru:    one probe for the MRU list, then groups of b tags
 *               in recency order.
 *
 * At b = 1 these collapse to the Naive and MRU schemes; at b = a
 * WideNaive is the traditional parallel lookup. The cost side
 * (b-wide RAM and b comparators) scales the same way, which is
 * what bench_ablation's width sweep shows.
 */

#ifndef ASSOC_CORE_WIDE_LOOKUP_H
#define ASSOC_CORE_WIDE_LOOKUP_H

#include "core/lookup.h"

namespace assoc {
namespace core {

/** Serial scan reading @p width tags per probe, in way order. */
class WideNaiveLookup : public LookupStrategy
{
  public:
    /** @param width tags read per probe (b in the paper). */
    explicit WideNaiveLookup(unsigned width);

    LookupResult lookup(const LookupInput &in) const override;

    std::string name() const override;

    unsigned width() const { return width_; }

  private:
    unsigned width_;
};

/** MRU-ordered scan reading @p width tags per probe. */
class WideMruLookup : public LookupStrategy
{
  public:
    explicit WideMruLookup(unsigned width);

    LookupResult lookup(const LookupInput &in) const override;

    std::string name() const override;

    unsigned width() const { return width_; }

  private:
    unsigned width_;
};

namespace analytic {

/** Expected probes of the b-wide naive scan on a hit / miss. */
double wideNaiveHit(unsigned a, unsigned b);
double wideNaiveMiss(unsigned a, unsigned b);

} // namespace analytic

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_WIDE_LOOKUP_H
