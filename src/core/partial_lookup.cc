#include "core/partial_lookup.h"

#include <bit>

#include "core/kernels.h"
#include "core/kernels_inl.h"
#include "util/logging.h"

namespace assoc {
namespace core {

PartialLookup::PartialLookup(const PartialConfig &cfg)
    : cfg_(cfg),
      xform_(TagTransform::make(cfg.transform, cfg.tag_bits,
                                cfg.field_bits))
{
    fatalIf(cfg_.subsets == 0, "partial compare needs >= 1 subset");
}

std::string
PartialLookup::name() const
{
    std::string n = "Partial(k=" + std::to_string(cfg_.field_bits) +
                    ",s=" + std::to_string(cfg_.subsets) + "," +
                    xform_->name() + ")";
    return n;
}

void
PartialLookup::validate(unsigned a) const
{
    const unsigned s = cfg_.subsets;
    fatalIf(s > a || a % s != 0,
            "subset count must divide the associativity");
    fatalIf((a / s) * cfg_.field_bits > cfg_.tag_bits,
            "k * (a/s) exceeds the tag width " +
                std::to_string(cfg_.tag_bits));
    validated_assoc_ = a;
    inc_fields_.resize(a / s);
}

LookupResult
PartialLookup::lookup(const LookupInput &in) const
{
    const unsigned a = in.assoc;
    const unsigned s = cfg_.subsets;
    // Validate once per (config, associativity) pair, not per
    // access: every set of one cache shares the associativity.
    if (a != validated_assoc_)
        validate(a);
    const unsigned g = a / s; // ways per subset (g * k <= t <= 32,
                              // so g <= 32 and masks always fit)
    const unsigned k = cfg_.field_bits;
    const TransformKind kind = cfg_.transform;

    // The incoming tag's collection fields, once per lookup via the
    // transforms' closed forms (kernels_inl.h) — the pre-kernel
    // loop re-derived them through virtual apply()/field() calls
    // for every way of every subset.
    std::uint32_t *inc = inc_fields_.data();
    for (unsigned l = 0; l < g; ++l)
        inc[l] = kdetail::partialStoredField(in.incoming_tag, l, k,
                                             kind);

    const LookupKernels &kern = activeKernels();
    LookupResult res;

    for (unsigned sub = 0; sub < s; ++sub) {
        // Step 1: one probe partially compares all g ways of this
        // subset, each through its own k-bit collection.
        ++res.probes;
        res.events.field_reads += g;
        const unsigned base = sub * g;
        std::uint64_t cand = kern.partial_mask(
            in.stored_tags + base, in.valid + base, g, inc, k, kind,
            *xform_);

        // Step 2: full compares of the partial matches, in
        // collection order. The transforms are bijections per way
        // slot, so comparing raw tags decides exactly what the
        // pre-kernel transformed-tag compare decided.
        while (cand != 0) {
            unsigned l =
                static_cast<unsigned>(std::countr_zero(cand));
            cand &= cand - 1;
            ++res.probes;
            ++res.events.tag_reads;
            ++res.events.tag_compares;
            if (in.stored_tags[base + l] == in.incoming_tag) {
                res.hit = true;
                res.way = static_cast<int>(base + l);
                return res;
            }
        }
    }
    return res; // miss: s step-1 probes + one per false match
}

} // namespace core
} // namespace assoc
