#include "core/partial_lookup.h"

#include "util/logging.h"

namespace assoc {
namespace core {

PartialLookup::PartialLookup(const PartialConfig &cfg)
    : cfg_(cfg),
      xform_(TagTransform::make(cfg.transform, cfg.tag_bits,
                                cfg.field_bits))
{
    fatalIf(cfg_.subsets == 0, "partial compare needs >= 1 subset");
}

std::string
PartialLookup::name() const
{
    std::string n = "Partial(k=" + std::to_string(cfg_.field_bits) +
                    ",s=" + std::to_string(cfg_.subsets) + "," +
                    xform_->name() + ")";
    return n;
}

void
PartialLookup::validate(unsigned a) const
{
    const unsigned s = cfg_.subsets;
    fatalIf(s > a || a % s != 0,
            "subset count must divide the associativity");
    fatalIf((a / s) * cfg_.field_bits > cfg_.tag_bits,
            "k * (a/s) exceeds the tag width " +
                std::to_string(cfg_.tag_bits));
    validated_assoc_ = a;
}

LookupResult
PartialLookup::lookup(const LookupInput &in) const
{
    const unsigned a = in.assoc;
    const unsigned s = cfg_.subsets;
    // Validate once per (config, associativity) pair, not per
    // access: every set of one cache shares the associativity.
    if (a != validated_assoc_)
        validate(a);
    const unsigned g = a / s; // ways per subset

    LookupResult res;

    for (unsigned sub = 0; sub < s; ++sub) {
        // Step 1: one probe partially compares all g ways of this
        // subset, each through its own k-bit collection.
        ++res.probes;

        // Collect partial matches, then step 2: full compares in
        // collection order.
        for (unsigned l = 0; l < g; ++l) {
            unsigned w = sub * g + l;
            if (!in.valid[w])
                continue;
            std::uint32_t stored = xform_->apply(in.stored_tags[w], l);
            std::uint32_t incoming = xform_->apply(in.incoming_tag, l);
            // g*k <= t guarantees l < nfields, so collection l
            // always reads a complete field.
            if (xform_->field(stored, l) != xform_->field(incoming, l))
                continue; // filtered out by the partial compare

            // Step 2 probe: full-width compare of this way.
            ++res.probes;
            if (stored == incoming) {
                res.hit = true;
                res.way = static_cast<int>(w);
                return res;
            }
        }
    }
    return res; // miss: s step-1 probes + one per false match
}

} // namespace core
} // namespace assoc
