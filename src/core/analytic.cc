#include "core/analytic.h"

#include <cmath>

#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace core {
namespace analytic {

double
traditionalHit()
{
    return 1.0;
}

double
traditionalMiss()
{
    return 1.0;
}

double
naiveHit(unsigned a)
{
    fatalIf(a == 0, "associativity must be positive");
    return (a - 1) / 2.0 + 1.0;
}

double
naiveMiss(unsigned a)
{
    fatalIf(a == 0, "associativity must be positive");
    return static_cast<double>(a);
}

double
mruHit(const std::vector<double> &f)
{
    double probes = 1.0; // reading the MRU list
    for (std::size_t i = 1; i < f.size(); ++i)
        probes += static_cast<double>(i) * f[i];
    return probes;
}

double
mruMiss(unsigned a)
{
    fatalIf(a == 0, "associativity must be positive");
    return 1.0 + static_cast<double>(a);
}

double
mruReducedHit(const std::vector<double> &f, unsigned list_len)
{
    fatalIf(f.size() < 2, "distribution needs at least one entry");
    unsigned a = static_cast<unsigned>(f.size()) - 1;
    if (list_len == 0 || list_len >= a)
        return mruHit(f);

    double probes = 1.0; // the list read
    double beyond = 0.0; // probability mass past the list
    for (unsigned i = 1; i <= a; ++i) {
        if (i <= list_len)
            probes += static_cast<double>(i) * f[i];
        else
            beyond += f[i];
    }
    // Out-of-list hits: all L list ways probed, then on average
    // half of the remaining a - L ways (uncorrelated order).
    probes += beyond * (list_len + (a - list_len + 1) / 2.0);
    return probes;
}

double
partialHit(unsigned a, unsigned k, unsigned s)
{
    fatalIf(a == 0 || s == 0 || a % s != 0,
            "subsets must divide the associativity");
    fatalIf(k == 0 || k > 32, "field width must be in [1, 32]");
    double g = static_cast<double>(a) / s; // tags per subset
    double p = std::ldexp(1.0, -static_cast<int>(k)); // 1 / 2^k
    // Subset holding the match is uniform over the s subsets:
    // E[step-1 probes] = (s+1)/2. Earlier subsets contribute all
    // their false matches, the matching subset contributes half of
    // its other tags' false matches, plus the matching full compare.
    return (s + 1) / 2.0 + ((s - 1) / 2.0) * g * p +
           (g - 1) * p / 2.0 + 1.0;
}

double
partialMiss(unsigned a, unsigned k, unsigned s)
{
    fatalIf(a == 0 || s == 0 || a % s != 0,
            "subsets must divide the associativity");
    fatalIf(k == 0 || k > 32, "field width must be in [1, 32]");
    double p = std::ldexp(1.0, -static_cast<int>(k));
    return static_cast<double>(s) + static_cast<double>(a) * p;
}

double
combined(double hit_probes, double miss_probes, double miss_ratio)
{
    fatalIf(miss_ratio < 0.0 || miss_ratio > 1.0,
            "miss ratio must be in [0, 1]");
    return hit_probes * (1.0 - miss_ratio) + miss_probes * miss_ratio;
}

double
kOpt(unsigned t)
{
    fatalIf(t == 0, "tag width must be positive");
    return std::log2(static_cast<double>(t)) - 0.5;
}

unsigned
partialWidth(unsigned a, unsigned t, unsigned s)
{
    fatalIf(a == 0 || s == 0 || a % s != 0,
            "subsets must divide the associativity");
    unsigned g = a / s;
    unsigned k = t / g;
    if (k > t)
        k = t;
    return k;
}

unsigned
chooseSubsets(unsigned a, unsigned t, double miss_ratio)
{
    fatalIf(!isPow2(a), "associativity must be a power of two");
    unsigned best_s = 1;
    double best_cost = -1.0;
    for (unsigned s = 1; s <= a; s *= 2) {
        unsigned k = partialWidth(a, t, s);
        if (k == 0)
            continue; // too many tags per subset for this tag width
        double cost = combined(partialHit(a, k, s),
                               partialMiss(a, k, s), miss_ratio);
        if (best_cost < 0.0 || cost < best_cost) {
            best_cost = cost;
            best_s = s;
        }
    }
    fatalIf(best_cost < 0.0, "no feasible subset count");
    return best_s;
}

} // namespace analytic
} // namespace core
} // namespace assoc
