/**
 * @file
 * The lookup-strategy interface: how a set-associative cache
 * implementation searches the stored tags of one set, and what it
 * costs in *probes* (tag-memory read + compare, the paper's cost
 * unit).
 *
 * A strategy is a pure function of the set's pre-access state: it
 * declares hit/miss itself from t-bit tag compares (as the hardware
 * would), so tag-width truncation effects are faithfully modeled.
 */

#ifndef ASSOC_CORE_LOOKUP_H
#define ASSOC_CORE_LOOKUP_H

#include <cstdint>
#include <memory>
#include <string>

namespace assoc {
namespace core {

/** Pre-access snapshot of one set, with t-bit sliced tags. */
struct LookupInput
{
    unsigned assoc = 0;                     ///< number of ways
    const std::uint32_t *stored_tags = nullptr; ///< t-bit tag per way
    const std::uint8_t *valid = nullptr;        ///< 0/1 per way
    /** Way indices from most- to least-recently used. */
    const std::uint8_t *mru_order = nullptr;
    std::uint32_t incoming_tag = 0;         ///< t-bit incoming tag
    /** Incoming block address (set + full tag, unsliced). Lets
     *  address-indexed strategies (way memoization) key their state;
     *  tag-only strategies ignore it. */
    std::uint32_t block_addr = 0;
    std::uint32_t set = 0;                  ///< set index of this access
};

/**
 * Per-access micro-event counts underneath the probe total: what
 * hardware structure each probe actually touched. Probes remain the
 * paper's cost unit; events are the energy model's (src/hw) — a
 * k-bit field read, a full t-bit tag read, and a memo-table access
 * cost different energy even when each is "one probe".
 */
struct ProbeEvents
{
    std::uint32_t tag_reads = 0;    ///< full t-bit tag-array reads
    std::uint32_t field_reads = 0;  ///< k-bit partial-field reads
    std::uint32_t tag_compares = 0; ///< full-width tag compares
    std::uint32_t list_reads = 0;   ///< MRU-list reads
    std::uint32_t memo_reads = 0;   ///< memo/prediction-table reads
    std::uint32_t memo_writes = 0;  ///< memo/prediction-table updates

    ProbeEvents &
    operator+=(const ProbeEvents &o)
    {
        tag_reads += o.tag_reads;
        field_reads += o.field_reads;
        tag_compares += o.tag_compares;
        list_reads += o.list_reads;
        memo_reads += o.memo_reads;
        memo_writes += o.memo_writes;
        return *this;
    }
};

/** What a lookup concluded and what it cost. */
struct LookupResult
{
    bool hit = false;
    int way = -1;        ///< matching way (valid when hit)
    unsigned probes = 0; ///< tag-memory probes consumed
    ProbeEvents events;  ///< event breakdown behind the probe count
    /** True when a memo table supplied the way and every tag probe
     *  was skipped (probes == 0). Only WayMemo sets it. */
    bool memo_hit = false;
};

/** Abstract search strategy over one set. */
class LookupStrategy
{
  public:
    virtual ~LookupStrategy() = default;

    /** Search the set; count probes. */
    virtual LookupResult lookup(const LookupInput &in) const = 0;

    /** Display name ("Traditional", "Naive", "MRU", "Partial"). */
    virtual std::string name() const = 0;

    /**
     * The hierarchy was flushed (cold-start boundary): any
     * address-keyed strategy state (memo tables) is now stale and
     * must be dropped. Stateless strategies ignore it.
     */
    virtual void onFlush() {}
};

/**
 * The traditional implementation (Figure 1a): all a tags are read
 * and compared in parallel — always exactly one probe.
 */
class TraditionalLookup : public LookupStrategy
{
  public:
    LookupResult lookup(const LookupInput &in) const override;
    std::string name() const override { return "Traditional"; }
};

/**
 * The naive serial implementation (Figure 1b): scan stored tags in
 * physical way order until a match or exhaustion.
 */
class NaiveLookup : public LookupStrategy
{
  public:
    LookupResult lookup(const LookupInput &in) const override;
    std::string name() const override { return "Naive"; }
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_LOOKUP_H
