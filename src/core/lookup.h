/**
 * @file
 * The lookup-strategy interface: how a set-associative cache
 * implementation searches the stored tags of one set, and what it
 * costs in *probes* (tag-memory read + compare, the paper's cost
 * unit).
 *
 * A strategy is a pure function of the set's pre-access state: it
 * declares hit/miss itself from t-bit tag compares (as the hardware
 * would), so tag-width truncation effects are faithfully modeled.
 */

#ifndef ASSOC_CORE_LOOKUP_H
#define ASSOC_CORE_LOOKUP_H

#include <cstdint>
#include <memory>
#include <string>

namespace assoc {
namespace core {

/** Pre-access snapshot of one set, with t-bit sliced tags. */
struct LookupInput
{
    unsigned assoc = 0;                     ///< number of ways
    const std::uint32_t *stored_tags = nullptr; ///< t-bit tag per way
    const std::uint8_t *valid = nullptr;        ///< 0/1 per way
    /** Way indices from most- to least-recently used. */
    const std::uint8_t *mru_order = nullptr;
    std::uint32_t incoming_tag = 0;         ///< t-bit incoming tag
};

/** What a lookup concluded and what it cost. */
struct LookupResult
{
    bool hit = false;
    int way = -1;        ///< matching way (valid when hit)
    unsigned probes = 0; ///< tag-memory probes consumed
};

/** Abstract search strategy over one set. */
class LookupStrategy
{
  public:
    virtual ~LookupStrategy() = default;

    /** Search the set; count probes. */
    virtual LookupResult lookup(const LookupInput &in) const = 0;

    /** Display name ("Traditional", "Naive", "MRU", "Partial"). */
    virtual std::string name() const = 0;
};

/**
 * The traditional implementation (Figure 1a): all a tags are read
 * and compared in parallel — always exactly one probe.
 */
class TraditionalLookup : public LookupStrategy
{
  public:
    LookupResult lookup(const LookupInput &in) const override;
    std::string name() const override { return "Traditional"; }
};

/**
 * The naive serial implementation (Figure 1b): scan stored tags in
 * physical way order until a match or exhaustion.
 */
class NaiveLookup : public LookupStrategy
{
  public:
    LookupResult lookup(const LookupInput &in) const override;
    std::string name() const override { return "Naive"; }
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_LOOKUP_H
