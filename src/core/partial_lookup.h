/**
 * @file
 * The partial-compare lookup (Section 2.2, Figure 2b).
 *
 * The a ways of a set are split into s subsets of g = a/s ways.
 * For each subset in turn:
 *   step 1 — one probe reads the k-bit field assigned to each of
 *            the subset's g ways (collection l reads field l) and
 *            compares them with the corresponding fields of the
 *            incoming tag;
 *   step 2 — every way that partially matched is full-compared
 *            serially (one probe each) until a match is found.
 * The search stops at the first full match; a miss costs the step-1
 * probe of every subset plus one probe per false partial match.
 *
 * Stored and incoming tags are hashed by a TagTransform so the
 * compared fields are closer to uniform (see transform.h).
 */

#ifndef ASSOC_CORE_PARTIAL_LOOKUP_H
#define ASSOC_CORE_PARTIAL_LOOKUP_H

#include <memory>
#include <vector>

#include "core/lookup.h"
#include "core/transform.h"

namespace assoc {
namespace core {

/** Configuration of a partial-compare lookup. */
struct PartialConfig
{
    unsigned tag_bits = 16;  ///< t, the stored tag width
    unsigned field_bits = 4; ///< k, the partial-compare width
    unsigned subsets = 1;    ///< s
    TransformKind transform = TransformKind::XorLow;
};

class PartialLookup : public LookupStrategy
{
  public:
    /**
     * @param cfg geometry of the partial compares. Requires
     *        k * (a/s) <= t at lookup time; construction validates
     *        only k <= t.
     */
    explicit PartialLookup(const PartialConfig &cfg);

    LookupResult lookup(const LookupInput &in) const override;

    std::string name() const override;

    const PartialConfig &config() const { return cfg_; }
    const TagTransform &transform() const { return *xform_; }

  private:
    /** Config validation against one associativity (subset count
     *  divides a, g*k fits the tag width). Hot lookups skip it once
     *  an associativity has been validated; like the meters' scratch
     *  buffers, the memoization assumes one thread per instance. */
    void validate(unsigned assoc) const;

    PartialConfig cfg_;
    std::unique_ptr<TagTransform> xform_;
    mutable unsigned validated_assoc_ = 0;
    /** Scratch: field l of apply(incoming_tag, l) for l < g,
     *  computed once per lookup and fed to the partial-mask kernel
     *  (the original loop recomputed it per subset per way). Sized
     *  by validate(); same one-thread-per-instance contract as the
     *  validation memoization. */
    mutable std::vector<std::uint32_t> inc_fields_;
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_PARTIAL_LOOKUP_H
