/**
 * @file
 * The MRU serial lookup (Section 2.1, Figure 2a): read the per-set
 * recency list (one probe), then scan stored tags from most- to
 * least-recently used.
 *
 * With a *reduced* list of L < a entries (Figure 5), only the L
 * most-recent positions are known; the remaining ways are scanned
 * afterwards in an arbitrary (here: ascending way-index) order.
 */

#ifndef ASSOC_CORE_MRU_LOOKUP_H
#define ASSOC_CORE_MRU_LOOKUP_H

#include "core/lookup.h"

namespace assoc {
namespace core {

class MruLookup : public LookupStrategy
{
  public:
    /**
     * @param list_len entries in the MRU list; 0 means a full list
     *        (as long as the associativity).
     */
    explicit MruLookup(unsigned list_len = 0) : list_len_(list_len) {}

    LookupResult lookup(const LookupInput &in) const override;

    std::string name() const override;

    unsigned listLen() const { return list_len_; }

  private:
    unsigned list_len_;
};

} // namespace core
} // namespace assoc

#endif // ASSOC_CORE_MRU_LOOKUP_H
