#include "core/mru_lookup.h"

#include <algorithm>
#include <bit>

#include "core/kernels.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace assoc {
namespace core {

std::string
MruLookup::name() const
{
    if (list_len_ == 0)
        return "MRU";
    return "MRU-" + std::to_string(list_len_);
}

LookupResult
MruLookup::lookup(const LookupInput &in) const
{
    panicIf(in.assoc > 64, "MruLookup supports associativity <= 64");
    LookupResult res;
    // One probe-equivalent to read the MRU ordering information
    // before any tag can be examined (Section 2.1).
    res.probes = 1;
    res.events.list_reads = 1;

    unsigned list_len = list_len_ == 0 ? in.assoc
                                       : std::min(list_len_, in.assoc);

    // All tag compares up front, as one kernel eq mask; the serial
    // scans below only walk bit positions. Probe accounting is
    // unchanged: one probe per list entry examined, then one per
    // not-yet-searched way in ascending order.
    std::uint64_t e = activeKernels().eq_mask(
        in.stored_tags, in.valid, in.assoc, in.incoming_tag);

    // Track which ways the list portion already examined. assoc is
    // <= 64 so a bitmap suffices.
    std::uint64_t searched = 0;

    for (unsigned i = 0; i < list_len; ++i) {
        unsigned w = in.mru_order[i];
        ++res.probes;
        ++res.events.tag_reads;
        ++res.events.tag_compares;
        searched |= std::uint64_t{1} << w;
        if ((e >> w) & 1) {
            res.hit = true;
            res.way = static_cast<int>(w);
            return res;
        }
    }

    // Remaining ways in arbitrary order (ascending way index): the
    // hit is the lowest eq bit outside the searched set, and the
    // probe count is the number of remaining ways up to and
    // including it (all of them on a miss).
    std::uint64_t rem = maskBits(in.assoc) & ~searched;
    std::uint64_t rem_hits = e & rem;
    if (rem_hits != 0) {
        unsigned w =
            static_cast<unsigned>(std::countr_zero(rem_hits));
        res.hit = true;
        res.way = static_cast<int>(w);
        unsigned n = popcount(rem & maskBits(w + 1));
        res.probes += n;
        res.events.tag_reads += n;
        res.events.tag_compares += n;
        return res;
    }
    unsigned n = popcount(rem);
    res.probes += n;
    res.events.tag_reads += n;
    res.events.tag_compares += n;
    return res; // miss: 1 + a probes in total
}

} // namespace core
} // namespace assoc
