#include "core/mru_lookup.h"

#include <algorithm>

#include "util/logging.h"

namespace assoc {
namespace core {

std::string
MruLookup::name() const
{
    if (list_len_ == 0)
        return "MRU";
    return "MRU-" + std::to_string(list_len_);
}

LookupResult
MruLookup::lookup(const LookupInput &in) const
{
    panicIf(in.assoc > 64, "MruLookup supports associativity <= 64");
    LookupResult res;
    // One probe-equivalent to read the MRU ordering information
    // before any tag can be examined (Section 2.1).
    res.probes = 1;

    unsigned list_len = list_len_ == 0 ? in.assoc
                                       : std::min(list_len_, in.assoc);

    // Track which ways the list portion already examined. assoc is
    // <= 255 so a small bitmap suffices.
    std::uint64_t searched = 0;

    for (unsigned i = 0; i < list_len; ++i) {
        unsigned w = in.mru_order[i];
        ++res.probes;
        searched |= std::uint64_t{1} << w;
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            return res;
        }
    }

    // Remaining ways in arbitrary order (ascending way index).
    for (unsigned w = 0; w < in.assoc; ++w) {
        if (searched & (std::uint64_t{1} << w))
            continue;
        ++res.probes;
        if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
            res.hit = true;
            res.way = static_cast<int>(w);
            return res;
        }
    }
    return res; // miss: 1 + a probes in total
}

} // namespace core
} // namespace assoc
