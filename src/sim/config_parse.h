/**
 * @file
 * Textual configuration parsing for command-line drivers.
 *
 * Cache specs use the paper's notation, optionally extended with an
 * associativity: "16K-16" (direct-mapped), "256K-32:4" (4-way),
 * "1M-64:8". Sizes accept K/M suffixes or plain byte counts.
 *
 * Scheme specs are comma-separated lists of:
 *   traditional | naive | mru | mru:<len> | swapmru |
 *   widenaive:<b> | widemru:<b> |
 *   partial | partial:k=<k>,s=<s>,tr=<none|xor|improved|swap> |
 *   waypredict | waymemo | waymemo:e=<entries>;r=<region_bits>;
 *   tag=<0|1>;u=<underlying scheme>
 * ("partial" alone uses the paper's rule for the current
 * associativity and tag width; "waymemo" alone memoizes per block
 * with 64 tagged entries over a traditional lookup — see
 * docs/ENERGY.md).
 */

#ifndef ASSOC_SIM_CONFIG_PARSE_H
#define ASSOC_SIM_CONFIG_PARSE_H

#include <memory>
#include <string>
#include <vector>

#include "core/lookup.h"
#include "core/scheme.h"
#include "mem/cache.h"
#include "mem/geometry.h"

namespace assoc {
namespace sim {

/** Parse "256K-32:4" into a CacheGeometry; fatal() on bad input. */
mem::CacheGeometry parseCacheSpec(const std::string &spec);

/** Parse a byte size with optional K/M suffix ("256K", "1M"). */
std::uint32_t parseSize(const std::string &text);

/** One parsed scheme entry. */
struct ParsedScheme
{
    std::string text;       ///< the original token
    core::SchemeSpec spec;  ///< ready-to-use scheme description
    /** Set for the strategies SchemeSpec cannot express
     *  (swapmru / widenaive / widemru): build via makeStrategy. */
    enum class Extra { None, SwapMru, WideNaive, WideMru } extra =
        Extra::None;
    unsigned extra_width = 1; ///< b for the wide variants

    /** Build the lookup strategy this entry describes. */
    std::unique_ptr<core::LookupStrategy> makeStrategy() const;
};

/**
 * Parse a comma-separated scheme list.
 * @param assoc level-two associativity (for "partial").
 * @param tag_bits stored tag width (propagated to every entry).
 */
std::vector<ParsedScheme> parseSchemeList(const std::string &list,
                                          unsigned assoc,
                                          unsigned tag_bits);

/** Parse "lru" / "fifo" / "random". */
mem::ReplPolicy parseReplPolicy(const std::string &text);

} // namespace sim
} // namespace assoc

#endif // ASSOC_SIM_CONFIG_PARSE_H
