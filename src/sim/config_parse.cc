#include "sim/config_parse.h"

#include <algorithm>
#include <cctype>

#include "core/mru_lookup.h"
#include "core/swap_mru_lookup.h"
#include "core/wide_lookup.h"
#include "util/logging.h"

namespace assoc {
namespace sim {

namespace {

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::uint32_t
parseUnsigned(const std::string &text, const std::string &what)
{
    fatalIf(text.empty(), what + ": empty number");
    std::uint64_t v = 0;
    for (char c : text) {
        fatalIf(!std::isdigit(static_cast<unsigned char>(c)),
                what + ": '" + text + "' is not a number");
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        fatalIf(v > 0xffffffffull, what + ": '" + text +
                "' is out of range");
    }
    return static_cast<std::uint32_t>(v);
}

} // namespace

std::uint32_t
parseSize(const std::string &text)
{
    fatalIf(text.empty(), "empty size");
    std::string body = text;
    std::uint32_t scale = 1;
    char last = static_cast<char>(
        std::toupper(static_cast<unsigned char>(body.back())));
    if (last == 'K') {
        scale = 1024;
        body.pop_back();
    } else if (last == 'M') {
        scale = 1024 * 1024;
        body.pop_back();
    }
    std::uint32_t n = parseUnsigned(body, "size");
    fatalIf(n > 0xffffffffu / scale, "size '" + text +
            "' is out of range");
    return n * scale;
}

mem::CacheGeometry
parseCacheSpec(const std::string &spec)
{
    // SIZE-BLOCK[:ASSOC]
    auto colon = split(spec, ':');
    fatalIf(colon.empty() || colon.size() > 2,
            "bad cache spec '" + spec + "' (want SIZE-BLOCK[:ASSOC])");
    std::uint32_t assoc =
        colon.size() == 2 ? parseUnsigned(colon[1], "associativity")
                          : 1;
    auto dash = split(colon[0], '-');
    fatalIf(dash.size() != 2,
            "bad cache spec '" + spec + "' (want SIZE-BLOCK[:ASSOC])");
    return mem::CacheGeometry(parseSize(dash[0]),
                              parseUnsigned(dash[1], "block size"),
                              assoc);
}

std::unique_ptr<core::LookupStrategy>
ParsedScheme::makeStrategy() const
{
    switch (extra) {
      case Extra::SwapMru:
        return std::make_unique<core::SwapMruLookup>();
      case Extra::WideNaive:
        return std::make_unique<core::WideNaiveLookup>(extra_width);
      case Extra::WideMru:
        return std::make_unique<core::WideMruLookup>(extra_width);
      case Extra::None:
        break;
    }
    return spec.makeStrategy();
}

std::vector<ParsedScheme>
parseSchemeList(const std::string &list, unsigned assoc,
                unsigned tag_bits)
{
    std::vector<ParsedScheme> out;
    for (const std::string &token : split(list, ',')) {
        if (token.empty())
            continue;
        // Options inside a token use ';' (e.g. partial:k=4;s=2) so
        // ',' stays the list separator.
        ParsedScheme parsed;
        parsed.text = token;
        parsed.spec.tag_bits = tag_bits;

        auto parts = split(token, ':');
        const std::string &name = parts[0];
        if (name == "traditional") {
            parsed.spec.kind = core::SchemeKind::Traditional;
        } else if (name == "naive") {
            parsed.spec.kind = core::SchemeKind::Naive;
        } else if (name == "mru") {
            parsed.spec.kind = core::SchemeKind::Mru;
            if (parts.size() == 2)
                parsed.spec.mru_list_len =
                    parseUnsigned(parts[1], "MRU list length");
        } else if (name == "swapmru") {
            parsed.extra = ParsedScheme::Extra::SwapMru;
        } else if (name == "widenaive" || name == "widemru") {
            fatalIf(parts.size() != 2,
                    name + " needs a width, e.g. " + name + ":2");
            parsed.extra = name == "widenaive"
                               ? ParsedScheme::Extra::WideNaive
                               : ParsedScheme::Extra::WideMru;
            parsed.extra_width =
                parseUnsigned(parts[1], "tag-memory width");
        } else if (name == "partial") {
            parsed.spec =
                core::SchemeSpec::paperPartial(assoc, tag_bits);
            if (parts.size() == 2) {
                for (const std::string &opt : split(parts[1], ';')) {
                    auto kv = split(opt, '=');
                    fatalIf(kv.size() != 2,
                            "bad partial option '" + opt + "'");
                    if (kv[0] == "k") {
                        parsed.spec.partial_k =
                            parseUnsigned(kv[1], "k");
                    } else if (kv[0] == "s") {
                        parsed.spec.partial_subsets =
                            parseUnsigned(kv[1], "subsets");
                    } else if (kv[0] == "tr") {
                        parsed.spec.transform =
                            core::transformKindFromString(kv[1]);
                    } else {
                        fatal("unknown partial option '" + kv[0] +
                              "' (k, s or tr)");
                    }
                }
            }
        } else if (name == "waypredict") {
            parsed.spec.kind = core::SchemeKind::WayPredict;
        } else if (name == "waymemo") {
            parsed.spec.kind = core::SchemeKind::WayMemo;
            if (parts.size() == 2) {
                for (const std::string &opt : split(parts[1], ';')) {
                    auto kv = split(opt, '=');
                    fatalIf(kv.size() != 2,
                            "bad waymemo option '" + opt + "'");
                    if (kv[0] == "e") {
                        parsed.spec.memo_entries =
                            parseUnsigned(kv[1], "memo entries");
                    } else if (kv[0] == "r") {
                        parsed.spec.memo_region_bits =
                            parseUnsigned(kv[1], "memo region bits");
                    } else if (kv[0] == "tag") {
                        fatalIf(kv[1] != "0" && kv[1] != "1",
                                "memo tag option must be 0 or 1");
                        parsed.spec.memo_tagged = kv[1] == "1";
                    } else if (kv[0] == "u") {
                        core::SchemeKind under =
                            core::schemeKindFromString(kv[1]);
                        fatalIf(under == core::SchemeKind::WayMemo ||
                                    under ==
                                        core::SchemeKind::WayPredict,
                                "waymemo cannot wrap another memo "
                                "scheme");
                        parsed.spec.memo_underlying = under;
                    } else {
                        fatal("unknown waymemo option '" + kv[0] +
                              "' (e, r, tag or u)");
                    }
                }
            }
            if (parsed.spec.memo_underlying ==
                core::SchemeKind::Partial) {
                core::SchemeSpec p =
                    core::SchemeSpec::paperPartial(assoc, tag_bits);
                parsed.spec.partial_k = p.partial_k;
                parsed.spec.partial_subsets = p.partial_subsets;
                parsed.spec.transform = p.transform;
            }
        } else {
            fatal("unknown scheme '" + name +
                  "' (traditional|naive|mru[:len]|swapmru|"
                  "widenaive:<b>|widemru:<b>|partial[:opts]|"
                  "waypredict|waymemo[:opts])");
        }
        out.push_back(std::move(parsed));
    }
    fatalIf(out.empty(), "empty scheme list");
    return out;
}

mem::ReplPolicy
parseReplPolicy(const std::string &text)
{
    if (text == "lru")
        return mem::ReplPolicy::Lru;
    if (text == "fifo")
        return mem::ReplPolicy::Fifo;
    if (text == "random")
        return mem::ReplPolicy::Random;
    fatal("unknown replacement policy '" + text +
          "' (lru|fifo|random)");
}

} // namespace sim
} // namespace assoc
