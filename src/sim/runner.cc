#include "sim/runner.h"

#include "util/logging.h"

namespace assoc {
namespace sim {

RunOutput
runTrace(trace::TraceSource &src, const RunSpec &spec)
{
    mem::TwoLevelHierarchy hier(spec.hier);

    // The hierarchy's line planes are the run's dominant allocation;
    // charge them before streaming so a spec too big for its budget
    // fails in microseconds, not after a billion accesses.
    MemCharge hier_charge;
    if (spec.budget) {
        Expected<MemCharge> c = MemCharge::charge(
            spec.budget, hier.footprintBytes(),
            "cache hierarchy " +
                cacheName(spec.hier.l1.sizeBytes(),
                          spec.hier.l1.blockBytes()) +
                "/" +
                cacheName(spec.hier.l2.sizeBytes(),
                          spec.hier.l2.blockBytes()));
        if (!c.ok())
            throwError(Error(c.error())
                           .withContext("allocating the hierarchy"));
        hier_charge = c.take();
    }

    std::vector<std::unique_ptr<core::ProbeMeter>> meters;
    meters.reserve(spec.schemes.size());
    for (const core::SchemeSpec &scheme : spec.schemes) {
        meters.push_back(scheme.makeMeter(spec.wb_optimization));
        meters.back()->setAuditor(spec.auditor);
        hier.addObserver(meters.back().get());
    }
    for (mem::L2Observer *obs : spec.extra_observers)
        hier.addObserver(obs);

    std::unique_ptr<core::MruDistanceMeter> dist;
    if (spec.with_distances) {
        dist = std::make_unique<core::MruDistanceMeter>(
            spec.hier.l2.assoc());
        hier.addObserver(dist.get());
    }

    RunOutput out;

    if (spec.cancel == nullptr && spec.coherency_rate == 0.0 &&
        spec.occupancy_sample_period == 0) {
        // Fast path: plain streaming, exactly as without any of the
        // optional machinery. Cancellation checkpoints only exist on
        // the manual loop below, so specs without a token (every
        // benchmark) pay nothing.
        hier.run(src, spec.batch_size);
    } else {
        mem::CoherencyTraffic remote(spec.coherency_rate);
        trace::MemRef r;
        src.reset();
        std::uint64_t n = 0;
        double occ_sum = 0.0;
        std::uint64_t occ_samples = 0;
        const CancelToken *cancel = spec.cancel;
        const std::uint64_t every =
            spec.checkpoint_every ? spec.checkpoint_every : 1;
        std::uint64_t until_checkpoint = every;
        if (cancel) {
            // Checkpoint zero: a token tripped before the stream
            // starts stops the job without touching the trace.
            Expected<void> go = cancel->checkpoint();
            if (!go.ok())
                throwError(Error(go.error())
                               .withContext("before streaming"));
        }
        while (src.next(r)) {
            hier.access(r);
            if (spec.coherency_rate > 0.0)
                remote.step(hier);
            ++n;
            if (cancel && --until_checkpoint == 0) {
                until_checkpoint = every;
                Expected<void> go = cancel->checkpoint();
                if (!go.ok())
                    throwError(Error(go.error())
                                   .withContext(
                                       "after " + std::to_string(n) +
                                       " accesses"));
            }
            if (spec.occupancy_sample_period != 0 &&
                n % spec.occupancy_sample_period == 0) {
                occ_sum += mem::l2ValidFraction(hier);
                ++occ_samples;
            }
        }
        if (occ_samples != 0)
            out.mean_occupancy = occ_sum / occ_samples;
        out.coherency_invalidations = remote.invalidations();
    }

    // Distinguish "stream ended" from "stream died": a reader that
    // stopped on a malformed record must fail the run, not quietly
    // produce statistics over a prefix.
    if (src.failed()) {
        Error e(src.error());
        throwError(std::move(e.withContext("streaming the trace")));
    }

    out.skipped_records = src.skippedRecords();
    out.stats = hier.stats();
    for (const auto &meter : meters) {
        out.names.push_back(meter->name());
        out.probes.push_back(meter->stats());
    }
    if (dist) {
        out.f.assign(spec.hier.l2.assoc() + 1, 0.0);
        for (unsigned i = 1; i <= spec.hier.l2.assoc(); ++i)
            out.f[i] = dist->f(i);
    }
    return out;
}

std::string
cacheName(std::uint32_t bytes, std::uint32_t block)
{
    // One shared formatter with CacheGeometry::name(): sub-1 KiB
    // sizes are spelled in bytes ("512B-16"), larger ones in K/M.
    return mem::sizeLabel(bytes) + "-" + std::to_string(block);
}

const std::vector<Table4Config> &
table4Configs()
{
    static const std::vector<Table4Config> configs = {
        {16384, 16, 262144, 32}, {16384, 16, 262144, 16},
        {16384, 32, 262144, 32}, {4096, 16, 262144, 64},
        {4096, 16, 262144, 32},  {4096, 16, 262144, 16},
        {4096, 16, 65536, 32},   {4096, 16, 65536, 16},
    };
    return configs;
}

} // namespace sim
} // namespace assoc
