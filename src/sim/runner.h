/**
 * @file
 * One-call experiment runner: stream a trace through a two-level
 * hierarchy with any number of lookup schemes attached, and collect
 * every statistic the paper's evaluation reports.
 *
 * This is the library-level API the bench harnesses and examples
 * are built on; use it for custom sweeps:
 *
 * @code
 *   sim::RunSpec spec;
 *   spec.hier = {mem::CacheGeometry(16384, 16, 1),
 *                mem::CacheGeometry(262144, 32, 4), true};
 *   spec.schemes = {core::SchemeSpec::paperPartial(4)};
 *   trace::AtumLikeGenerator trace({});
 *   sim::RunOutput out = sim::runTrace(trace, spec);
 *   double probes = out.probes[0].totalMean();
 * @endcode
 */

#ifndef ASSOC_SIM_RUNNER_H
#define ASSOC_SIM_RUNNER_H

#include <memory>
#include <string>
#include <vector>

#include "core/probe_meter.h"
#include "core/scheme.h"
#include "mem/coherency.h"
#include "mem/hierarchy.h"
#include "trace/trace_source.h"
#include "util/cancel.h"

namespace assoc {
namespace sim {

/** One simulation request: a hierarchy plus schemes to price. */
struct RunSpec
{
    /** Defaults to the paper's Figure 3 configuration. */
    mem::HierarchyConfig hier{mem::CacheGeometry(16384, 16, 1),
                              mem::CacheGeometry(262144, 32, 4),
                              true};
    /** Schemes to price (one ProbeMeter each). */
    std::vector<core::SchemeSpec> schemes;
    /** Model the write-back optimization (paper default). */
    bool wb_optimization = true;
    /** Also collect the MRU-distance distribution (Figure 5). */
    bool with_distances = false;
    /** Remote coherency-invalidation rate per reference (0 = a
     *  uniprocessor, the paper's setting). */
    double coherency_rate = 0.0;
    /** Sample level-two occupancy every this many references
     *  (0 = never). */
    std::uint64_t occupancy_sample_period = 0;
    /** Invariant auditor attached to every scheme's meter (not
     *  owned; see src/check). */
    core::LookupAuditor *auditor = nullptr;
    /** Additional observers attached to the hierarchy (not owned),
     *  e.g. the invariant checkers in src/check. */
    std::vector<mem::L2Observer *> extra_observers;

    /**
     * References pulled per TraceSource::nextBatch call on the
     * streaming fast path (with set-plane prefetch between
     * accesses; see mem::TwoLevelHierarchy::run). 0 or 1 disables
     * batching. Results are bit-identical at every batch size, so
     * hashSpecs() ignores this too; the checkpointed loop below
     * streams one reference at a time regardless, keeping
     * cancellation latency in accesses, not batches.
     */
    unsigned batch_size = 64;

    // --- runaway-work defenses (see util/cancel.h). None of these
    // --- influence results, so hashSpecs() ignores them.

    /** Cooperative cancel/deadline token, polled every
     *  checkpoint_every accesses (not owned; null = never stop).
     *  When null the streaming fast path is untouched. */
    const CancelToken *cancel = nullptr;
    /**
     * Accesses between cancellation checkpoints. A fixed cadence in
     * observed accesses (not wall time) keeps cancellation latency
     * bounded *and* deterministic: a cancel delivered before access
     * k is honored at the same checkpoint on every machine.
     */
    std::uint64_t checkpoint_every = 4096;
    /** Budget the hierarchy's plane allocations are charged to
     *  (not owned; null = no accounting). */
    MemBudget *budget = nullptr;
};

/** What one simulation produced. */
struct RunOutput
{
    mem::HierarchyStats stats;
    std::vector<std::string> names;       ///< parallel to schemes
    std::vector<core::ProbeStats> probes; ///< parallel to schemes
    std::vector<double> f; ///< f[1..a] when with_distances
    double mean_occupancy = 0.0; ///< when sampling was requested
    std::uint64_t coherency_invalidations = 0;
    /** Records the trace source skipped as damaged/malformed under
     *  ErrorMode::Skip — surfaced so damage is visible in sweep
     *  reports, never silent. */
    std::uint64_t skipped_records = 0;
};

/**
 * Stream @p src (reset first) through the hierarchy of @p spec with
 * one probe meter per scheme.
 */
RunOutput runTrace(trace::TraceSource &src, const RunSpec &spec);

/** The paper's notation for a cache, e.g. "16K-16". */
std::string cacheName(std::uint32_t bytes, std::uint32_t block);

/** One (L1, L2) configuration of the Table 4 sweep. */
struct Table4Config
{
    std::uint32_t l1_bytes, l1_block;
    std::uint32_t l2_bytes, l2_block;
};

/** The eight configurations of Table 4, in table order. */
const std::vector<Table4Config> &table4Configs();

} // namespace sim
} // namespace assoc

#endif // ASSOC_SIM_RUNNER_H
