#include "exec/journal.h"

#include <cstdio>
#include <cstring>
#include <sstream>

namespace assoc {
namespace exec {

namespace {

constexpr std::uint64_t kFnvInit = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

std::uint64_t
fnvString(const std::string &s)
{
    std::uint64_t h = kFnvInit;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t
doubleBits(double d)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

double
bitsDouble(std::uint64_t u)
{
    double d = 0.0;
    std::memcpy(&d, &u, sizeof(d));
    return d;
}

/** Hex-encode a string (names may contain spaces). */
std::string
hexString(const std::string &s)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(s.size() * 2);
    for (char c : s) {
        unsigned char u = static_cast<unsigned char>(c);
        out += digits[u >> 4];
        out += digits[u & 0xf];
    }
    return out.empty() ? "-" : out;
}

bool
unhexString(const std::string &h, std::string &out)
{
    out.clear();
    if (h == "-")
        return true;
    if (h.size() % 2 != 0)
        return false;
    auto nib = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    for (std::size_t i = 0; i < h.size(); i += 2) {
        int hi = nib(h[i]), lo = nib(h[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out += static_cast<char>((hi << 4) | lo);
    }
    return true;
}

/** Token-level reader with failure latching. */
class TokenReader
{
  public:
    explicit TokenReader(const std::string &s) : iss_(s) {}

    bool
    word(std::string &out)
    {
        return static_cast<bool>(iss_ >> out);
    }

    bool
    u64(std::uint64_t &out)
    {
        std::string tok;
        if (!word(tok))
            return false;
        try {
            std::size_t pos = 0;
            out = std::stoull(tok, &pos, 10);
            return pos == tok.size();
        } catch (const std::logic_error &) {
            return false;
        }
    }

    bool
    hexU64(std::uint64_t &out)
    {
        std::string tok;
        if (!word(tok))
            return false;
        try {
            std::size_t pos = 0;
            out = std::stoull(tok, &pos, 16);
            return pos == tok.size();
        } catch (const std::logic_error &) {
            return false;
        }
    }

    bool
    bitsDoubleTok(double &out)
    {
        std::uint64_t u = 0;
        if (!hexU64(u))
            return false;
        out = bitsDouble(u);
        return true;
    }

    /** Expect the literal keyword @p kw next. */
    bool
    keyword(const char *kw)
    {
        std::string tok;
        return word(tok) && tok == kw;
    }

  private:
    std::istringstream iss_;
};

void
encodeAccum(std::ostringstream &os, const MeanAccum &a)
{
    os << " " << hex64(doubleBits(a.sum())) << " "
       << hex64(doubleBits(a.sumSquares())) << " " << a.count();
}

bool
decodeAccum(TokenReader &r, MeanAccum &a)
{
    double sum = 0.0, sumsq = 0.0;
    std::uint64_t n = 0;
    if (!r.bitsDoubleTok(sum) || !r.bitsDoubleTok(sumsq) || !r.u64(n))
        return false;
    a = MeanAccum::fromRaw(sum, sumsq, n);
    return true;
}

} // namespace

namespace {

/** Fold one spec's result-relevant fields into @p h. */
void
fnvMixSpec(std::uint64_t &h, const sim::RunSpec &spec)
{
    for (const mem::CacheGeometry *g :
         {&spec.hier.l1, &spec.hier.l2}) {
        fnvMix(h, g->sizeBytes());
        fnvMix(h, g->blockBytes());
        fnvMix(h, g->assoc());
    }
    fnvMix(h, spec.hier.allocate_on_wb_miss);
    fnvMix(h, spec.hier.enforce_inclusion);
    fnvMix(h, static_cast<std::uint64_t>(spec.hier.write_policy));
    fnvMix(h, static_cast<std::uint64_t>(spec.hier.l2_replacement));
    fnvMix(h, spec.schemes.size());
    for (const core::SchemeSpec &s : spec.schemes) {
        fnvMix(h, static_cast<std::uint64_t>(s.kind));
        fnvMix(h, s.mru_list_len);
        fnvMix(h, s.partial_k);
        fnvMix(h, s.partial_subsets);
        fnvMix(h, static_cast<std::uint64_t>(s.transform));
        fnvMix(h, s.tag_bits);
        fnvMix(h, s.memo_entries);
        fnvMix(h, s.memo_region_bits);
        fnvMix(h, s.memo_tagged);
        fnvMix(h, static_cast<std::uint64_t>(s.memo_underlying));
    }
    fnvMix(h, spec.wb_optimization);
    fnvMix(h, spec.with_distances);
    fnvMix(h, doubleBits(spec.coherency_rate));
    fnvMix(h, spec.occupancy_sample_period);
}

} // namespace

std::uint64_t
hashSpecs(const std::vector<sim::RunSpec> &specs, std::uint64_t salt)
{
    std::uint64_t h = kFnvInit;
    fnvMix(h, salt);
    fnvMix(h, specs.size());
    for (const sim::RunSpec &spec : specs)
        fnvMixSpec(h, spec);
    return h;
}

std::uint64_t
hashSpec(const sim::RunSpec &spec)
{
    std::uint64_t h = kFnvInit;
    fnvMixSpec(h, spec);
    return h;
}

std::string
encodeRunOutput(const sim::RunOutput &out)
{
    std::ostringstream os;
    const mem::HierarchyStats &st = out.stats;
    os << "v2 stats";
    for (std::uint64_t v :
         {st.proc_refs, st.l1_hits, st.l1_misses, st.read_ins,
          st.read_in_hits, st.read_in_misses, st.write_backs,
          st.write_back_hits, st.write_back_misses, st.hint_correct,
          st.hint_wrong, st.flushes, st.inclusion_invalidations,
          st.inclusion_dirty_invalidations,
          st.coherency_invalidations})
        os << " " << v;
    os << " schemes " << out.probes.size();
    for (std::size_t i = 0; i < out.probes.size(); ++i) {
        const core::ProbeStats &p = out.probes[i];
        os << " " << hexString(i < out.names.size() ? out.names[i]
                                                    : std::string());
        encodeAccum(os, p.read_in_hits);
        encodeAccum(os, p.read_in_misses);
        encodeAccum(os, p.write_backs);
        os << " " << p.alias_hits << " " << p.alias_wrong_way;
    }
    os << " f " << out.f.size();
    for (double v : out.f)
        os << " " << hex64(doubleBits(v));
    os << " occ " << hex64(doubleBits(out.mean_occupancy));
    os << " coh " << out.coherency_invalidations;
    os << " skips " << out.skipped_records;
    return os.str();
}

Expected<sim::RunOutput>
decodeRunOutput(const std::string &payload)
{
    Error bad = Error::data("corrupt journal payload");
    TokenReader r(payload);
    std::string version;
    if (!r.word(version) || (version != "v1" && version != "v2") ||
        !r.keyword("stats"))
        return bad;

    sim::RunOutput out;
    mem::HierarchyStats &st = out.stats;
    for (std::uint64_t *v :
         {&st.proc_refs, &st.l1_hits, &st.l1_misses, &st.read_ins,
          &st.read_in_hits, &st.read_in_misses, &st.write_backs,
          &st.write_back_hits, &st.write_back_misses, &st.hint_correct,
          &st.hint_wrong, &st.flushes, &st.inclusion_invalidations,
          &st.inclusion_dirty_invalidations,
          &st.coherency_invalidations})
        if (!r.u64(*v))
            return bad;

    std::uint64_t n = 0;
    if (!r.keyword("schemes") || !r.u64(n) || n > 1000)
        return bad;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string hexname, name;
        if (!r.word(hexname) || !unhexString(hexname, name))
            return bad;
        core::ProbeStats p;
        if (!decodeAccum(r, p.read_in_hits) ||
            !decodeAccum(r, p.read_in_misses) ||
            !decodeAccum(r, p.write_backs) || !r.u64(p.alias_hits) ||
            !r.u64(p.alias_wrong_way))
            return bad;
        out.names.push_back(std::move(name));
        out.probes.push_back(p);
    }

    if (!r.keyword("f") || !r.u64(n) || n > 100000)
        return bad;
    out.f.resize(n);
    for (std::uint64_t i = 0; i < n; ++i)
        if (!r.bitsDoubleTok(out.f[i]))
            return bad;

    if (!r.keyword("occ") || !r.bitsDoubleTok(out.mean_occupancy))
        return bad;
    if (!r.keyword("coh") || !r.u64(out.coherency_invalidations))
        return bad;
    // v1 predates skip accounting; those journals decode with 0.
    if (version == "v2" &&
        (!r.keyword("skips") || !r.u64(out.skipped_records)))
        return bad;
    return out;
}

Expected<JournalData>
readJournal(const std::string &path, MemBudget *budget)
{
    std::ifstream in(path);
    if (!in)
        return Error::io("cannot open journal '" + path + "'");

    JournalData data;
    std::string line;
    bool have_meta = false;
    std::uint64_t lineno = 0;
    // Guards the reader's buffers: every journal byte read is
    // charged until the entries are handed to the caller, so a
    // runaway journal file fails with a budget error, not an OOM.
    MemCharge read_charge;
    std::uint64_t charged = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (budget && !line.empty()) {
            // Re-charge the running total (release first so the old
            // and new charges never overlap).
            read_charge.release();
            Expected<MemCharge> c = MemCharge::charge(
                budget, charged + line.size(),
                "journal '" + path + "' read buffers");
            if (!c.ok())
                return Error(c.error())
                    .withContext("reading journal line " +
                                 std::to_string(lineno));
            read_charge = c.take();
            charged += line.size();
        }
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream iss(line);
        std::string kind;
        iss >> kind;
        if (kind == "meta") {
            std::string hash_kv, jobs_kv;
            iss >> hash_kv >> jobs_kv;
            if (hash_kv.rfind("hash=", 0) != 0 ||
                jobs_kv.rfind("jobs=", 0) != 0)
                return Error::data("journal '" + path +
                                   "': bad meta line")
                    .withContext("line " + std::to_string(lineno));
            try {
                data.spec_hash = std::stoull(hash_kv.substr(5),
                                             nullptr, 16);
                data.jobs = std::stoull(jobs_kv.substr(5));
            } catch (const std::logic_error &) {
                return Error::data("journal '" + path +
                                   "': bad meta line")
                    .withContext("line " + std::to_string(lineno));
            }
            have_meta = true;
            continue;
        }
        if (kind != "job") {
            ++data.dropped_lines; // unknown/torn line
            continue;
        }
        std::string idx_tok, d_kv;
        iss >> idx_tok >> d_kv;
        std::size_t index = 0;
        std::uint64_t digest = 0;
        try {
            index = std::stoull(idx_tok);
            if (d_kv.rfind("d=", 0) != 0)
                throw std::invalid_argument("digest");
            digest = std::stoull(d_kv.substr(2), nullptr, 16);
        } catch (const std::logic_error &) {
            ++data.dropped_lines;
            continue;
        }
        std::string payload;
        std::getline(iss, payload);
        if (!payload.empty() && payload[0] == ' ')
            payload.erase(0, 1);
        if (fnvString(payload) != digest) {
            ++data.dropped_lines; // torn or corrupted record
            continue;
        }
        Expected<sim::RunOutput> out = decodeRunOutput(payload);
        if (!out) {
            ++data.dropped_lines;
            continue;
        }
        data.entries[index] = out.take(); // duplicates: last wins
    }
    if (!have_meta)
        return Error::data("journal '" + path +
                           "' has no meta line (not a journal, or "
                           "the header write was lost)");
    return data;
}

Error
JournalWriter::open(const std::string &path, std::uint64_t spec_hash,
                    std::uint64_t jobs, bool append)
{
    path_ = path;
    bool write_header = true;
    if (append) {
        std::ifstream probe(path);
        write_header = !probe || probe.peek() == EOF;
    }
    out_.open(path, append ? (std::ios::out | std::ios::app)
                           : (std::ios::out | std::ios::trunc));
    if (!out_)
        return Error::io("cannot open journal '" + path +
                         "' for writing");
    if (write_header) {
        out_ << "# assoc sweep journal v1\n";
        out_ << "meta hash=" << hex64(spec_hash) << " jobs=" << jobs
             << "\n";
        out_.flush();
        if (!out_.good())
            return Error::io("error writing journal '" + path + "'");
    }
    return Error();
}

Error
JournalWriter::append(std::size_t index, const sim::RunOutput &out)
{
    std::string payload = encodeRunOutput(out);
    out_ << "job " << index << " d=" << hex64(fnvString(payload)) << " "
         << payload << "\n";
    out_.flush();
    if (!out_.good())
        return Error::io("error appending to journal '" + path_ + "'");
    return Error();
}

Error
JournalWriter::close()
{
    if (!out_.is_open())
        return Error();
    out_.flush();
    bool good = out_.good();
    out_.close();
    if (!good || !out_)
        return Error::io("error closing journal '" + path_ + "'");
    return Error();
}

} // namespace exec
} // namespace assoc
