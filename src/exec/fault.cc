#include "exec/fault.h"

#include <csignal>
#include <fstream>

#include "util/rng.h"

namespace assoc {
namespace exec {

namespace {

volatile std::sig_atomic_t g_sigint = 0;

void
onSigint(int)
{
    g_sigint = 1;
}

} // namespace

bool
CancelToken::sigintSeen()
{
    return g_sigint != 0;
}

void
installSigintHandler()
{
    static bool installed = false;
    if (installed)
        return;
    std::signal(SIGINT, onSigint);
    installed = true;
}

void
clearSigintForTests()
{
    g_sigint = 0;
}

void
FaultInjector::onJobStart(std::size_t index, unsigned attempt)
{
    if (plan_.fail_job < 0 ||
        index != static_cast<std::size_t>(plan_.fail_job))
        return;
    if (attempt > plan_.fail_attempts)
        return;
    injected_.fetch_add(1, std::memory_order_relaxed);
    std::string what = "injected fault: job " + std::to_string(index) +
                       " attempt " + std::to_string(attempt) +
                       " (seed " + std::to_string(plan_.seed) + ")";
    if (plan_.transient)
        throwError(Error::io(what));
    throwError(Error::data(what));
}

void
FaultInjector::onJobDone(std::size_t)
{
    std::uint64_t done =
        completions_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cancel_ && plan_.cancel_after >= 0 &&
        done >= static_cast<std::uint64_t>(plan_.cancel_after))
        cancel_->cancel();
}

std::uint64_t
FaultInjector::corruptBytes(const std::string &path, std::uint64_t seed,
                            unsigned flips, std::uint64_t skip)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    if (!f)
        return 0;
    f.seekg(0, std::ios::end);
    std::uint64_t size = static_cast<std::uint64_t>(f.tellg());
    if (size <= skip)
        return 0;
    std::uint64_t body = size - skip;

    SplitMix64 rng(seed);
    std::uint64_t flipped = 0;
    for (unsigned i = 0; i < flips; ++i) {
        std::uint64_t off = skip + rng.next() % body;
        f.seekg(static_cast<std::streamoff>(off));
        char c = 0;
        f.read(&c, 1);
        c = static_cast<char>(c ^
                              static_cast<char>(1 + rng.next() % 255));
        f.seekp(static_cast<std::streamoff>(off));
        f.write(&c, 1);
        ++flipped;
    }
    f.flush();
    return flipped;
}

void
FaultInjector::truncateFile(const std::string &path,
                            std::uint64_t keep_bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    if (data.size() > keep_bytes)
        data.resize(keep_bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size()));
}

void
ThrowingAuditor::audit(const core::ProbeMeter &, const mem::L2AccessView &,
                       const core::LookupInput &,
                       const core::LookupResult &)
{
    std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (throw_at_ != 0 && n == throw_at_)
        throwError(Error::internal(
            "injected lookup fault at audit " + std::to_string(n)));
}

} // namespace exec
} // namespace assoc
