#include "exec/fault.h"

#include <chrono>
#include <fstream>
#include <thread>
#include <vector>

#include "trace/ftr_format.h"
#include "util/rng.h"

namespace assoc {
namespace exec {

const char *
svcFaultKindName(SvcFaultKind kind)
{
    switch (kind) {
      case SvcFaultKind::None:
        return "none";
      case SvcFaultKind::LockHolderStall:
        return "lock-holder-stall";
      case SvcFaultKind::TenantFlood:
        return "tenant-flood";
      case SvcFaultKind::BudgetSqueeze:
        return "budget-squeeze";
      case SvcFaultKind::DeadlineStorm:
        return "deadline-storm";
    }
    return "unknown";
}

std::function<void(std::uint32_t)>
FaultInjector::lockStallHook()
{
    if (plan_.svc_fault != SvcFaultKind::LockHolderStall)
        return {};
    std::uint64_t every =
        plan_.svc_stall_every ? plan_.svc_stall_every : 1;
    std::uint64_t spins = plan_.svc_stall_spins;
    // Captures this: the injector must outlive the engine it arms.
    return [this, every, spins](std::uint32_t) {
        std::uint64_t n =
            locked_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (n % every != 0)
            return;
        injected_.fetch_add(1, std::memory_order_relaxed);
        // A compiler-opaque busy loop: the lock holder really does
        // occupy its stripe for the whole stall.
        volatile std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < spins; ++i)
            sink = sink + i;
    };
}

void
FaultInjector::onJobStart(std::size_t index, unsigned attempt)
{
    if (plan_.fail_job < 0 ||
        index != static_cast<std::size_t>(plan_.fail_job))
        return;
    if (attempt > plan_.fail_attempts)
        return;
    injected_.fetch_add(1, std::memory_order_relaxed);
    std::string what = "injected fault: job " + std::to_string(index) +
                       " attempt " + std::to_string(attempt) +
                       " (seed " + std::to_string(plan_.seed) + ")";
    if (plan_.transient)
        throwError(Error::io(what));
    throwError(Error::data(what));
}

void
FaultInjector::onJobDone(std::size_t)
{
    std::uint64_t done =
        completions_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cancel_ && plan_.cancel_after >= 0 &&
        done >= static_cast<std::uint64_t>(plan_.cancel_after))
        cancel_->cancel();
}

namespace {

/**
 * Trace wrapper realizing the runaway fault kinds. All behavior is
 * a pure function of (plan, access index), so a retried attempt
 * misbehaves identically.
 */
class RunawayTraceSource : public trace::TraceSource
{
  public:
    RunawayTraceSource(std::unique_ptr<trace::TraceSource> inner,
                       const FaultPlan &plan, const CancelToken *token,
                       MemBudget *budget)
        : inner_(std::move(inner)), plan_(plan), token_(token),
          budget_(budget)
    {}

    bool
    next(trace::MemRef &ref) override
    {
        if (error_.failed())
            return false;
        if (n_ == plan_.runaway_at && !engage())
            return false;
        if (plan_.runaway == RunawayKind::Slow &&
            n_ >= plan_.runaway_at &&
            (n_ - plan_.runaway_at) % plan_.slow_every == 0)
            stall();
        if (!inner_->next(ref))
            return false;
        ++n_;
        return true;
    }

    void
    reset() override
    {
        inner_->reset();
        n_ = 0;
        error_ = Error();
        balloon_.clear();
    }

    const Error &
    error() const override
    {
        return error_.failed() ? error_ : inner_->error();
    }

    std::uint64_t
    skippedRecords() const override
    {
        return inner_->skippedRecords();
    }

  private:
    /** Fire the planned fault. @return true to keep streaming. */
    bool
    engage()
    {
        switch (plan_.runaway) {
          case RunawayKind::None:
          case RunawayKind::Slow:
            return true;
          case RunawayKind::Hang:
            return hang();
          case RunawayKind::Oom:
            return balloon();
        }
        return true;
    }

    /**
     * Model a worker stuck in non-checkpointing code: poll only for
     * a *delivered* cancel (the watchdog's cancelTimeout, an
     * explicit cancel, SIGINT) — never read the deadline clock
     * ourselves — then surface the token's structured error.
     */
    bool
    hang()
    {
        if (!token_) {
            error_ = Error::internal(
                "hang fault injected without a cancel token");
            return false;
        }
        while (!token_->signalled())
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        Expected<void> state = token_->checkpoint();
        error_ = state.ok() ? Error::internal(
                                  "hang released but token not tripped")
                            : Error(state.error());
        error_.withContext("hang fault at access " +
                           std::to_string(n_));
        return false;
    }

    /** Charge the budget in chunks until it runs out (or the plan's
     *  balloon size is reached — then the fault fizzles, which only
     *  happens when no budget limit is armed). */
    bool
    balloon()
    {
        constexpr std::uint64_t chunk = 1ull << 20;
        std::uint64_t total = 0;
        while (total < plan_.oom_bytes) {
            Expected<MemCharge> c = MemCharge::charge(
                budget_, chunk, "oom fault balloon");
            if (!c.ok()) {
                error_ = Error(c.error());
                error_.withContext("oom fault at access " +
                                   std::to_string(n_));
                balloon_.clear();
                return false;
            }
            if (c.value().bytes() == 0)
                return true; // no budget attached: nothing to exhaust
            balloon_.push_back(c.take());
            total += chunk;
        }
        return true;
    }

    /** Seeded busy-wait; wall time only, never results. */
    void
    stall()
    {
        SplitMix64 rng(plan_.seed ^ n_);
        std::uint64_t ns =
            plan_.slow_ns / 2 + rng.next() % (plan_.slow_ns + 1);
        auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(ns);
        while (std::chrono::steady_clock::now() < until) {
        }
    }

    std::unique_ptr<trace::TraceSource> inner_;
    FaultPlan plan_;
    const CancelToken *token_;
    MemBudget *budget_;
    std::uint64_t n_ = 0;
    std::vector<MemCharge> balloon_;
    Error error_;
};

} // namespace

std::unique_ptr<trace::TraceSource>
FaultInjector::wrapJobTrace(std::unique_ptr<trace::TraceSource> src,
                            std::size_t index,
                            const CancelToken *token,
                            MemBudget *budget) const
{
    if (plan_.runaway == RunawayKind::None || plan_.runaway_job < 0 ||
        index != static_cast<std::size_t>(plan_.runaway_job))
        return src;
    return std::make_unique<RunawayTraceSource>(std::move(src), plan_,
                                                token, budget);
}

std::uint64_t
FaultInjector::corruptBytes(const std::string &path, std::uint64_t seed,
                            unsigned flips, std::uint64_t skip)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    if (!f)
        return 0;
    f.seekg(0, std::ios::end);
    std::uint64_t size = static_cast<std::uint64_t>(f.tellg());
    if (size <= skip)
        return 0;
    std::uint64_t body = size - skip;

    SplitMix64 rng(seed);
    std::uint64_t flipped = 0;
    for (unsigned i = 0; i < flips; ++i) {
        std::uint64_t off = skip + rng.next() % body;
        f.seekg(static_cast<std::streamoff>(off));
        char c = 0;
        f.read(&c, 1);
        c = static_cast<char>(c ^
                              static_cast<char>(1 + rng.next() % 255));
        f.seekp(static_cast<std::streamoff>(off));
        f.write(&c, 1);
        ++flipped;
    }
    f.flush();
    return flipped;
}

void
FaultInjector::truncateFile(const std::string &path,
                            std::uint64_t keep_bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    if (data.size() > keep_bytes)
        data.resize(keep_bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size()));
}

std::uint64_t
FaultInjector::tearFooter(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return 0;
    std::uint64_t size = static_cast<std::uint64_t>(in.tellg());
    if (size < trace::ftr::kTrailerBytes)
        return 0;
    std::uint8_t tr[trace::ftr::kTrailerBytes] = {};
    in.seekg(static_cast<std::streamoff>(size - sizeof(tr)));
    in.read(reinterpret_cast<char *>(tr), sizeof(tr));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(tr)) ||
        trace::ftr::getU32(tr + 4) != trace::ftr::kTrailerMagic)
        return 0;
    std::uint64_t cut =
        trace::ftr::getU32(tr) + trace::ftr::kTrailerBytes;
    if (cut > size)
        return 0;
    in.close();
    truncateFile(path, size - cut);
    return cut;
}

bool
FaultInjector::unpatchHeader(const std::string &path)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    if (!f)
        return false;
    std::uint8_t hdr[trace::ftr::kHeaderBytes] = {};
    f.read(reinterpret_cast<char *>(hdr), sizeof(hdr));
    if (f.gcount() != static_cast<std::streamsize>(sizeof(hdr)))
        return false;
    Expected<trace::ftr::FileHeader> h =
        trace::ftr::decodeFileHeader(hdr, sizeof(hdr));
    if (!h.ok())
        return false;
    trace::ftr::FileHeader zeroed = h.take();
    zeroed.total_records = 0;
    trace::ftr::encodeFileHeader(hdr, zeroed);
    f.clear();
    f.seekp(0);
    f.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));
    f.flush();
    return f.good();
}

void
ThrowingAuditor::audit(const core::ProbeMeter &, const mem::L2AccessView &,
                       const core::LookupInput &,
                       const core::LookupResult &)
{
    std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (throw_at_ != 0 && n == throw_at_)
        throwError(Error::internal(
            "injected lookup fault at audit " + std::to_string(n)));
}

} // namespace exec
} // namespace assoc
