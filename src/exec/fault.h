/**
 * @file
 * Deterministic fault injection and cooperative cancellation.
 *
 * Every degradation path in the sweep engine is exercised by tests
 * and by `fuzz_diff --inject-faults`, not just written: a seeded
 * FaultInjector can fail the Nth job (hard or transiently), corrupt
 * trace bytes on disk, or throw from inside a lookup via
 * ThrowingAuditor. CancelToken + the SIGINT handler give sweeps a
 * clean drain-and-checkpoint shutdown.
 */

#ifndef ASSOC_EXEC_FAULT_H
#define ASSOC_EXEC_FAULT_H

#include <atomic>
#include <cstdint>
#include <string>

#include "core/probe_meter.h"
#include "util/error.h"

namespace assoc {
namespace exec {

/**
 * Cooperative cancellation flag shared between a sweep and its
 * owner. Optionally also observes the process SIGINT flag so ^C
 * cancels without any wiring at the call site.
 */
class CancelToken
{
  public:
    void cancel() { flag_.store(true, std::memory_order_relaxed); }

    bool
    cancelled() const
    {
        if (flag_.load(std::memory_order_relaxed))
            return true;
        return watch_sigint_ && sigintSeen();
    }

    /** Also treat a delivered SIGINT as cancellation. */
    void watchSigint(bool watch = true) { watch_sigint_ = watch; }

    /** True when the process received SIGINT (handler installed). */
    static bool sigintSeen();

  private:
    std::atomic<bool> flag_{false};
    bool watch_sigint_ = false;
};

/**
 * Install a SIGINT handler that records the signal instead of
 * killing the process (idempotent). Sweeps with a journal install
 * it so ^C drains in-flight jobs, checkpoints, and exits 130.
 */
void installSigintHandler();

/** Clear the recorded SIGINT (tests re-raise repeatedly). */
void clearSigintForTests();

/** What a FaultInjector does, all derived from the seed. */
struct FaultPlan
{
    std::uint64_t seed = 0;

    /** Job index whose attempts fail (-1 = none). */
    std::int64_t fail_job = -1;
    /** How many leading attempts of fail_job fail; the default
     *  (huge) fails every attempt. */
    unsigned fail_attempts = 0xffffffffu;
    /** Injected failures are transient Io errors (retry-eligible)
     *  instead of hard Data errors. */
    bool transient = false;

    /** Cancel the attached token after this many completed jobs
     *  (-1 = never). */
    std::int64_t cancel_after = -1;
};

/**
 * Seeded, deterministic fault source for tests and fuzzing. The
 * sweep engine calls the hooks; with a default plan they are no-ops.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan,
                           CancelToken *cancel = nullptr)
        : plan_(plan), cancel_(cancel)
    {}

    /** Called as attempt @p attempt (1-based) of job @p index
     *  starts; throws the planned Error when armed. */
    void onJobStart(std::size_t index, unsigned attempt);

    /** Called when a job completes; may trip the cancel token. */
    void onJobDone(std::size_t index);

    /** Faults thrown so far. */
    std::uint64_t injected() const
    {
        return injected_.load(std::memory_order_relaxed);
    }

    const FaultPlan &plan() const { return plan_; }

    /**
     * Flip @p flips seeded pseudo-random bytes of the file body at
     * @p path (offsets past @p skip, which protects e.g. a header).
     * Returns the number of bytes actually flipped.
     */
    static std::uint64_t corruptBytes(const std::string &path,
                                      std::uint64_t seed,
                                      unsigned flips,
                                      std::uint64_t skip = 0);

    /** Truncate the file at @p path to @p keep_bytes. */
    static void truncateFile(const std::string &path,
                             std::uint64_t keep_bytes);

  private:
    FaultPlan plan_;
    CancelToken *cancel_;
    std::atomic<std::uint64_t> completions_{0};
    std::atomic<std::uint64_t> injected_{0};
};

/**
 * LookupAuditor that throws an injected Internal error at the Nth
 * audited lookup: the "throw inside a lookup" fault, driven through
 * the real ProbeMeter audit hook.
 */
class ThrowingAuditor : public core::LookupAuditor
{
  public:
    /** @param throw_at 1-based audit count that throws (0 = never). */
    explicit ThrowingAuditor(std::uint64_t throw_at)
        : throw_at_(throw_at)
    {}

    void audit(const core::ProbeMeter &meter,
               const mem::L2AccessView &view,
               const core::LookupInput &in,
               const core::LookupResult &res) override;

    std::uint64_t
    audited() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count_{0};
    std::uint64_t throw_at_;
};

} // namespace exec
} // namespace assoc

#endif // ASSOC_EXEC_FAULT_H
