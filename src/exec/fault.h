/**
 * @file
 * Deterministic fault injection and cooperative cancellation.
 *
 * Every degradation path in the sweep engine is exercised by tests
 * and by `fuzz_diff --inject-faults`, not just written: a seeded
 * FaultInjector can fail the Nth job (hard or transiently), corrupt
 * trace bytes on disk, or throw from inside a lookup via
 * ThrowingAuditor. CancelToken + the SIGINT handler give sweeps a
 * clean drain-and-checkpoint shutdown.
 */

#ifndef ASSOC_EXEC_FAULT_H
#define ASSOC_EXEC_FAULT_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/probe_meter.h"
#include "trace/trace_source.h"
#include "util/cancel.h"
#include "util/error.h"

namespace assoc {
namespace exec {

// The cancellation primitives live in util/cancel.h (runner and
// trace readers need them without depending on exec); re-exported
// here so existing exec:: call sites keep reading naturally.
using assoc::CancelToken;
using assoc::clearSigintForTests;
using assoc::installSigintHandler;

/** Runaway-work fault kinds (see FaultPlan::runaway). */
enum class RunawayKind : std::uint8_t {
    None, ///< no runaway fault
    Hang, ///< block mid-stream until a cancel is delivered
    Slow, ///< inject a seeded per-access delay (output unchanged)
    Oom,  ///< charge the memory budget until it is exhausted
};

/**
 * Service-layer fault kinds (see FaultPlan::svc_fault). The svc
 * chaos campaign (check/svc_chaos.h) interprets these against a
 * CacheService: exec stays svc-agnostic — it only carries the plan
 * and builds the one hook (lockStallHook) that needs shared state.
 */
enum class SvcFaultKind : std::uint8_t {
    None,            ///< no service fault
    LockHolderStall, ///< locked engine ops periodically spin while
                     ///< holding their stripe lock (a preempted
                     ///< lock holder)
    TenantFlood,     ///< one tenant's request stream is multiplied
                     ///< by svc_flood_factor
    BudgetSqueeze,   ///< the victim's quota bucket is drained to
                     ///< zero mid-stream (at op svc_at)
    DeadlineStorm,   ///< the victim issues a burst of requests with
                     ///< already-expired deadlines
};

/** Printable fault-kind name ("lock-holder-stall", ...). */
const char *svcFaultKindName(SvcFaultKind kind);

/** What a FaultInjector does, all derived from the seed. */
struct FaultPlan
{
    std::uint64_t seed = 0;

    /** Job index whose attempts fail (-1 = none). */
    std::int64_t fail_job = -1;
    /** How many leading attempts of fail_job fail; the default
     *  (huge) fails every attempt. */
    unsigned fail_attempts = 0xffffffffu;
    /** Injected failures are transient Io errors (retry-eligible)
     *  instead of hard Data errors. */
    bool transient = false;

    /** Cancel the attached token after this many completed jobs
     *  (-1 = never). */
    std::int64_t cancel_after = -1;

    // --- runaway faults (trace-stream wrappers) ---

    /** Which runaway behavior to inject (None = nothing). */
    RunawayKind runaway = RunawayKind::None;
    /** Job index whose trace misbehaves (-1 = none). */
    std::int64_t runaway_job = -1;
    /** Access index at which the fault engages. */
    std::uint64_t runaway_at = 1000;
    /** Slow: stall every Nth access past the engage point. */
    std::uint64_t slow_every = 64;
    /** Slow: mean stall per hit, nanoseconds (seeded jitter). */
    std::uint64_t slow_ns = 20000;
    /** Oom: bytes the balloon tries to charge (accounting only —
     *  no real memory is allocated). */
    std::uint64_t oom_bytes = 1ull << 30;

    // --- service-layer faults (svc chaos campaign) ---

    /** Which service fault to inject (None = nothing). */
    SvcFaultKind svc_fault = SvcFaultKind::None;
    /** Tenant index the fault targets (-1 = none; LockHolderStall
     *  ignores this — any tenant's locked op can stall). */
    std::int64_t svc_victim = -1;
    /** Victim-stream op index at which the fault engages. */
    std::uint64_t svc_at = 100;
    /** LockHolderStall: stall every Nth locked op (1 = all). */
    std::uint64_t svc_stall_every = 64;
    /** LockHolderStall: busy spins per stall. */
    std::uint64_t svc_stall_spins = 4000;
    /** TenantFlood: the victim's stream-length multiplier. */
    std::uint64_t svc_flood_factor = 8;
    /** DeadlineStorm: expired-deadline requests starting at
     *  svc_at. */
    std::uint64_t svc_storm_span = 64;
};

/**
 * Seeded, deterministic fault source for tests and fuzzing. The
 * sweep engine calls the hooks; with a default plan they are no-ops.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan,
                           CancelToken *cancel = nullptr)
        : plan_(plan), cancel_(cancel)
    {}

    /** Called as attempt @p attempt (1-based) of job @p index
     *  starts; throws the planned Error when armed. */
    void onJobStart(std::size_t index, unsigned attempt);

    /** Called when a job completes; may trip the cancel token. */
    void onJobDone(std::size_t index);

    /**
     * Wrap job @p index's trace with the planned runaway behavior
     * (hang / slow / oom); other jobs pass through untouched.
     * @p token is what a hang polls for release (the per-job token
     * the watchdog cancels) and @p budget is what an oom balloon
     * charges; both may be null, in which case the affected fault
     * degrades to an immediate structured error rather than an
     * unbounded stall.
     */
    std::unique_ptr<trace::TraceSource>
    wrapJobTrace(std::unique_ptr<trace::TraceSource> src,
                 std::size_t index, const CancelToken *token,
                 MemBudget *budget) const;

    /**
     * The LockHolderStall hook: a callable for
     * ConcurrentCacheConfig::lock_hold_hook that busy-spins
     * svc_stall_spins iterations on every svc_stall_every'th locked
     * operation (service-wide, counted here). Empty unless the plan
     * arms LockHolderStall. The stall perturbs thread scheduling
     * only — it must never change a deterministic counter, which is
     * exactly what the chaos campaign asserts.
     */
    std::function<void(std::uint32_t)> lockStallHook();

    /** Faults thrown so far. */
    std::uint64_t injected() const
    {
        return injected_.load(std::memory_order_relaxed);
    }

    const FaultPlan &plan() const { return plan_; }

    /**
     * Flip @p flips seeded pseudo-random bytes of the file body at
     * @p path (offsets past @p skip, which protects e.g. a header).
     * Returns the number of bytes actually flipped.
     */
    static std::uint64_t corruptBytes(const std::string &path,
                                      std::uint64_t seed,
                                      unsigned flips,
                                      std::uint64_t skip = 0);

    /** Truncate the file at @p path to @p keep_bytes. */
    static void truncateFile(const std::string &path,
                             std::uint64_t keep_bytes);

    /**
     * Tear the frame-index footer (block + trailer) off the
     * *finished* ftr file at @p path: a damaged/overwritten index
     * whose header still carries the patched record total. This is
     * NOT the crash shape — a writer killed before
     * FtrWriter::finish() also leaves the header total at zero;
     * compose with unpatchHeader() for that. Returns the bytes
     * removed (0 when the file carries no valid trailer).
     */
    static std::uint64_t tearFooter(const std::string &path);

    /**
     * Rewrite the ftr file header at @p path with a zero record
     * total (re-CRC'd, other fields kept). Together with
     * tearFooter() this is the exact shape a writer crash before
     * FtrWriter::finish() leaves behind: valid header, zero total,
     * intact flushed frames, no footer. Returns false when the file
     * has no valid ftr header to rewrite.
     */
    static bool unpatchHeader(const std::string &path);

  private:
    FaultPlan plan_;
    CancelToken *cancel_;
    std::atomic<std::uint64_t> completions_{0};
    std::atomic<std::uint64_t> injected_{0};
    std::atomic<std::uint64_t> locked_ops_{0}; ///< stall cadence
};

/**
 * LookupAuditor that throws an injected Internal error at the Nth
 * audited lookup: the "throw inside a lookup" fault, driven through
 * the real ProbeMeter audit hook.
 */
class ThrowingAuditor : public core::LookupAuditor
{
  public:
    /** @param throw_at 1-based audit count that throws (0 = never). */
    explicit ThrowingAuditor(std::uint64_t throw_at)
        : throw_at_(throw_at)
    {}

    void audit(const core::ProbeMeter &meter,
               const mem::L2AccessView &view,
               const core::LookupInput &in,
               const core::LookupResult &res) override;

    std::uint64_t
    audited() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count_{0};
    std::uint64_t throw_at_;
};

} // namespace exec
} // namespace assoc

#endif // ASSOC_EXEC_FAULT_H
