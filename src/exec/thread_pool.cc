#include "exec/thread_pool.h"

namespace assoc {
namespace exec {

unsigned
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    for (unsigned i = 0; i < threads; ++i)
        workers_[i]->thread =
            std::thread(&ThreadPool::workerLoop, this, i);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stopping_ = true;
    }
    sleep_cv_.notify_all();
    for (auto &w : workers_)
        if (w->thread.joinable())
            w->thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(done_mutex_);
        ++submitted_;
    }
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(submit_mutex_);
        target = next_worker_;
        next_worker_ = (next_worker_ + 1) % workers_.size();
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->tasks.push_back(std::move(task));
    }
    sleep_cv_.notify_all();
}

bool
ThreadPool::popOwn(std::size_t self, std::function<void()> &task)
{
    Worker &w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.tasks.empty())
        return false;
    task = std::move(w.tasks.back());
    w.tasks.pop_back();
    return true;
}

bool
ThreadPool::steal(std::size_t self, std::function<void()> &task)
{
    // Scan victims starting just past ourselves so thieves spread
    // out instead of all hammering worker 0.
    const std::size_t n = workers_.size();
    for (std::size_t off = 1; off < n; ++off) {
        Worker &victim = *workers_[(self + off) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.tasks.empty())
            continue;
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::finishTask()
{
    bool all_done;
    {
        std::lock_guard<std::mutex> lock(done_mutex_);
        ++completed_;
        all_done = completed_ == submitted_;
    }
    if (all_done)
        done_cv_.notify_all();
}

void
ThreadPool::workerLoop(std::size_t self)
{
    std::function<void()> task;
    for (;;) {
        if (popOwn(self, task) || steal(self, task)) {
            try {
                task();
            } catch (...) {
                std::lock_guard<std::mutex> lock(done_mutex_);
                if (!first_error_)
                    first_error_ = std::current_exception();
            }
            task = nullptr; // release captures promptly
            finishTask();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        // Re-check the deques under the sleep lock: a submit()
        // between our scan and this wait would otherwise be missed.
        // Do it before honouring stopping_ so shutdown drains any
        // work still queued.
        bool any = false;
        for (const auto &w : workers_) {
            std::lock_guard<std::mutex> wl(w->mutex);
            if (!w->tasks.empty()) {
                any = true;
                break;
            }
        }
        if (any)
            continue;
        if (stopping_)
            return;
        sleep_cv_.wait(lock);
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [&] { return completed_ == submitted_; });
    if (first_error_) {
        std::exception_ptr e = first_error_;
        first_error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(e);
    }
}

std::uint64_t
ThreadPool::completedTasks() const
{
    std::lock_guard<std::mutex> lock(done_mutex_);
    return completed_;
}

} // namespace exec
} // namespace assoc
