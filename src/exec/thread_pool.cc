#include "exec/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/logging.h"

namespace assoc {
namespace exec {

unsigned
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    for (unsigned i = 0; i < threads; ++i)
        workers_[i]->thread =
            std::thread(&ThreadPool::workerLoop, this, i);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stopping_ = true;
    }
    sleep_cv_.notify_all();
    for (auto &w : workers_)
        if (w->thread.joinable())
            w->thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(done_mutex_);
        ++submitted_;
    }
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(submit_mutex_);
        target = next_worker_;
        next_worker_ = (next_worker_ + 1) % workers_.size();
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->tasks.push_back(std::move(task));
    }
    sleep_cv_.notify_all();
}

bool
ThreadPool::popOwn(std::size_t self, std::function<void()> &task)
{
    Worker &w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.tasks.empty())
        return false;
    task = std::move(w.tasks.back());
    w.tasks.pop_back();
    return true;
}

bool
ThreadPool::steal(std::size_t self, std::function<void()> &task)
{
    // Scan victims starting just past ourselves so thieves spread
    // out instead of all hammering worker 0.
    const std::size_t n = workers_.size();
    for (std::size_t off = 1; off < n; ++off) {
        Worker &victim = *workers_[(self + off) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.tasks.empty())
            continue;
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::finishTask()
{
    bool all_done;
    {
        std::lock_guard<std::mutex> lock(done_mutex_);
        ++completed_;
        all_done = completed_ == submitted_;
    }
    if (all_done)
        done_cv_.notify_all();
}

void
ThreadPool::workerLoop(std::size_t self)
{
    std::function<void()> task;
    for (;;) {
        if (popOwn(self, task) || steal(self, task)) {
            try {
                task();
            } catch (...) {
                std::lock_guard<std::mutex> lock(done_mutex_);
                if (!first_error_)
                    first_error_ = std::current_exception();
            }
            task = nullptr; // release captures promptly
            finishTask();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        // Re-check the deques under the sleep lock: a submit()
        // between our scan and this wait would otherwise be missed.
        // Do it before honouring stopping_ so shutdown drains any
        // work still queued.
        bool any = false;
        for (const auto &w : workers_) {
            std::lock_guard<std::mutex> wl(w->mutex);
            if (!w->tasks.empty()) {
                any = true;
                break;
            }
        }
        if (any)
            continue;
        if (stopping_)
            return;
        sleep_cv_.wait(lock);
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [&] { return completed_ == submitted_; });
    if (first_error_) {
        std::exception_ptr e = first_error_;
        first_error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(e);
    }
}

std::uint64_t
ThreadPool::completedTasks() const
{
    std::lock_guard<std::mutex> lock(done_mutex_);
    return completed_;
}

Watchdog::Watchdog(const Options &opts) : opts_(opts)
{
    thread_ = std::thread(&Watchdog::samplerLoop, this);
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
Watchdog::arm(std::size_t job, CancelToken *token, Deadline deadline,
              std::uint64_t spec_hash, std::string phase,
              const MemBudget *budget)
{
    Watch w;
    w.job = job;
    w.token = token;
    w.deadline = deadline;
    w.spec_hash = spec_hash;
    w.phase = std::move(phase);
    w.budget = budget;
    w.started = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    watches_.push_back(std::move(w));
}

void
Watchdog::disarm(std::size_t job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    watches_.erase(std::remove_if(watches_.begin(), watches_.end(),
                                  [job](const Watch &w) {
                                      return w.job == job;
                                  }),
                   watches_.end());
}

std::vector<StallReport>
Watchdog::reports() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reports_;
}

std::size_t
Watchdog::armedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return watches_.size();
}

StallReport
Watchdog::describe(const Watch &w, unsigned misses) const
{
    StallReport r;
    r.job = w.job;
    r.spec_hash = w.spec_hash;
    r.phase = w.phase;
    r.elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - w.started)
            .count());
    r.heartbeats = w.token ? w.token->heartbeats() : 0;
    r.bytes_charged = w.budget ? w.budget->used() : 0;
    r.misses = misses;
    return r;
}

void
Watchdog::scan()
{
    auto now = std::chrono::steady_clock::now();
    std::vector<StallReport> fresh;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (Watch &w : watches_) {
            if (w.misses == 0) {
                if (w.deadline.isNever() || now < w.deadline.expiry())
                    continue;
                // ARMED -> CANCELLED: trip the token; a cooperative
                // job unwinds at its next checkpoint, a wedged one
                // at least releases anything polling the token.
                if (w.token)
                    w.token->cancelTimeout();
                w.misses = 1;
                w.cancelled_at = now;
                fresh.push_back(describe(w, 1));
            } else if (w.misses == 1) {
                if (now - w.cancelled_at <
                    std::chrono::nanoseconds(opts_.grace_ns))
                    continue;
                // CANCELLED -> ESCALATED: the job ignored the trip
                // for a whole grace period. Report it as wedged; the
                // pool is deliberately left alive so well-behaved
                // siblings still drain.
                w.misses = 2;
                fresh.push_back(describe(w, 2));
            }
        }
        for (const StallReport &r : fresh)
            reports_.push_back(r);
    }
    if (!opts_.log) {
        return;
    }
    char hash[32];
    for (const StallReport &r : fresh) {
        std::snprintf(hash, sizeof(hash), "%016llx",
                      static_cast<unsigned long long>(r.spec_hash));
        warn("watchdog: job " + std::to_string(r.job) + " (spec " +
             hash + ", " + r.phase + ") " +
             (r.misses >= 2 ? "still wedged after cancellation"
                            : "past its deadline; cancelling") +
             ": elapsed " + formatDuration(r.elapsed_ns) + ", " +
             std::to_string(r.heartbeats) + " checkpoints, " +
             formatBytes(r.bytes_charged) + " charged");
    }
}

void
Watchdog::samplerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        lock.unlock();
        scan();
        lock.lock();
        if (stopping_)
            break;
        cv_.wait_for(lock, std::chrono::nanoseconds(opts_.sample_ns));
    }
}

} // namespace exec
} // namespace assoc
