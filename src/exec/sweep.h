/**
 * @file
 * Deterministic parallel sweep execution.
 *
 * Paper sweeps replay a seed-regenerated trace through many
 * independent RunSpecs; no mutable state is shared between runs, so
 * they are embarrassingly parallel. runSweep() fans a vector of
 * specs across a work-stealing ThreadPool — each job constructs its
 * own TraceSource from the shared seed via a caller-supplied
 * factory, so workers never share a generator — and returns the
 * RunOutputs *in submission order* regardless of completion order:
 * the result vector is bit-identical to what the old serial loop
 * produced.
 *
 * With jobs == 1 the sweep bypasses the pool entirely and runs each
 * spec inline, in order, on the calling thread: the exact old
 * serial path.
 *
 * @code
 *   std::vector<sim::RunSpec> specs = ...;
 *   exec::SweepOptions opt;
 *   opt.jobs = 4;
 *   std::vector<sim::RunOutput> outs = exec::runSweep(
 *       specs, exec::atumTraceFactory(trace_cfg), opt);
 * @endcode
 */

#ifndef ASSOC_EXEC_SWEEP_H
#define ASSOC_EXEC_SWEEP_H

#include <functional>
#include <string>
#include <vector>

#include "exec/job_result.h"
#include "exec/report.h"
#include "exec/thread_pool.h"
#include "sim/runner.h"
#include "trace/atum_like.h"
#include "trace/trace_file.h"
#include "util/cancel.h"

namespace assoc {
namespace exec {

class FaultInjector;

/** How a sweep is executed. */
struct SweepOptions
{
    /** Worker threads; 0 = all hardware threads, 1 = serial inline
     *  (no pool). More jobs than specs never hurts: the pool is
     *  sized to min(jobs, specs). */
    unsigned jobs = 0;
    /** Optional completed-job sink (ticked once per job, from the
     *  worker that finished it). Not owned. */
    ProgressMeter *progress = nullptr;

    // --- fault tolerance; honored by runSweepChecked() only ---

    /** Extra attempts per job after the first fails. Only transient
     *  (Io) errors are retried unless retry_all_errors is set;
     *  retries are deterministic — the factory rebuilds the same
     *  trace, so a genuinely deterministic failure fails again. */
    unsigned max_retries = 1;
    /** Retry every failure class, not just transient Io errors. */
    bool retry_all_errors = false;
    /** Fault source for tests/fuzzing (not owned; may be null). */
    FaultInjector *inject = nullptr;
    /** Cooperative cancellation (not owned; may be null). Jobs not
     *  yet started when it trips are marked Cancelled; running jobs
     *  drain normally. */
    CancelToken *cancel = nullptr;
    /** Write a fresh checkpoint journal here ("" = none). */
    std::string journal_path;
    /** Resume from this journal: slots it holds are restored
     *  verbatim and only the rest run ("" = none). New completions
     *  are appended to it. */
    std::string resume_path;
    /** Spec/trace identity hash stamped into the journal header and
     *  validated on resume (see hashSpecs()). */
    std::uint64_t spec_hash = 0;

    // --- runaway-work defenses (see util/cancel.h) ---

    /** Per-job deadline, nanoseconds (0 = none). A job past it is
     *  cancelled by the watchdog, marked TimedOut, and retried once
     *  under the normal max_retries policy (timeouts count as
     *  transient: the machine may simply have been overloaded). */
    std::uint64_t job_timeout_ns = 0;
    /** Whole-sweep deadline, nanoseconds from entry (0 = none).
     *  When it passes, running jobs are cancelled and unstarted
     *  jobs are marked TimedOut without running. */
    std::uint64_t sweep_deadline_ns = 0;
    /** Global memory budget for all concurrent jobs, bytes
     *  (0 = unlimited). */
    std::uint64_t mem_budget = 0;
    /** Per-job memory budget, bytes (0 = unlimited); charges also
     *  count against mem_budget. */
    std::uint64_t job_mem_budget = 0;
    /** Accesses between cancellation checkpoints inside a job (see
     *  sim::RunSpec::checkpoint_every). */
    std::uint64_t checkpoint_every = 4096;
    /** Watchdog sampling/escalation tuning (log=false in tests). */
    Watchdog::Options watchdog;
};

/**
 * Builds one fresh TraceSource per job. Called once per job, from
 * that job's worker thread, with the job's submission index; must
 * be callable concurrently (it should only read shared config).
 */
using TraceFactory =
    std::function<std::unique_ptr<trace::TraceSource>(std::size_t)>;

/** A TraceFactory producing one AtumLikeGenerator per job from the
 *  shared config (every job replays the identical stream). */
TraceFactory atumTraceFactory(const trace::AtumLikeConfig &cfg);

/**
 * A TraceFactory that opens @p path once per job, with the format
 * (din / bin / ftr) detected from extension or magic. @p policy
 * governs damaged-record handling; under ErrorMode::Skip every job
 * sees the identical post-skip stream, so sweep results stay
 * deterministic even over a damaged trace.
 */
TraceFactory fileTraceFactory(const std::string &path,
                              ErrorPolicy policy = ErrorPolicy());

/**
 * Run every spec in @p specs against its own trace from
 * @p make_trace and return the outputs in submission order.
 * Exceptions from any job are rethrown (first one wins) after the
 * remaining jobs finish.
 */
std::vector<sim::RunOutput>
runSweep(const std::vector<sim::RunSpec> &specs,
         const TraceFactory &make_trace,
         const SweepOptions &opts = {});

/**
 * Lower-level entry: run arbitrary independent thunks. Each job
 * must write its results into its own pre-allocated slot; jobs must
 * not share mutable state. With opts.jobs == 1 the jobs run inline
 * in vector order (the exact serial path); otherwise completion
 * order is unspecified. Exceptions are rethrown after all jobs
 * finish (first one wins).
 */
void runJobs(std::vector<std::function<void()>> jobs,
             const SweepOptions &opts = {});

/**
 * Fault-isolated sweep: like runSweep(), but each slot records its
 * own JobResult instead of the first exception aborting the whole
 * run. Per job: bounded deterministic retry (opts.max_retries, Io
 * errors only by default), wall-time measurement, optional journal
 * checkpointing and resume, and cooperative cancellation.
 *
 * Slots completed by earlier attempts are bit-identical to what the
 * serial path produces — isolation only wraps the job boundary, it
 * never alters the simulation.
 *
 * Throws ErrorException only for caller mistakes (unreadable resume
 * journal, spec-hash mismatch, unwritable journal path); job
 * failures are reported in the result, never thrown.
 */
SweepResult
runSweepChecked(const std::vector<sim::RunSpec> &specs,
                const TraceFactory &make_trace,
                const SweepOptions &opts = {});

} // namespace exec
} // namespace assoc

#endif // ASSOC_EXEC_SWEEP_H
