/**
 * @file
 * A fixed-size work-stealing thread pool for running independent
 * simulation jobs.
 *
 * Each worker owns a deque: the owner pushes and pops work at the
 * back (LIFO, cache-friendly for task trees), idle workers steal
 * from the front of a victim's deque (FIFO, Chase-Lev style), so
 * contention between an owner and its thieves is limited to the
 * ends of the deque. Submission round-robins across the workers to
 * seed every deque.
 *
 * Exceptions thrown by tasks are captured; the first one is
 * rethrown from wait(). The destructor drains outstanding work and
 * joins all workers (exceptions raised during that final drain are
 * captured but, as in any destructor, cannot propagate).
 */

#ifndef ASSOC_EXEC_THREAD_POOL_H
#define ASSOC_EXEC_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.h"

namespace assoc {
namespace exec {

/** Fixed-size work-stealing pool. Thread-safe submit() and wait(). */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = defaultThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow
     * the first exception any task raised since the last wait()
     * (clearing it). The pool is reusable after wait() returns or
     * throws.
     */
    void wait();

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Tasks finished since construction (monotonic). */
    std::uint64_t completedTasks() const;

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned defaultThreads();

  private:
    /** One worker's deque; the owner uses the back, thieves the
     *  front. A plain mutex guards each deque: tasks here are whole
     *  trace simulations, so queue operations are never hot. */
    struct Worker
    {
        std::deque<std::function<void()>> tasks;
        std::mutex mutex;
        std::thread thread;
    };

    void workerLoop(std::size_t self);
    bool popOwn(std::size_t self, std::function<void()> &task);
    bool steal(std::size_t self, std::function<void()> &task);
    void finishTask();

    std::vector<std::unique_ptr<Worker>> workers_;

    /** Signals "new work or shutdown" to sleeping workers. */
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;

    /** Signals "all submitted work done" to wait(). */
    mutable std::mutex done_mutex_;
    std::condition_variable done_cv_;

    std::uint64_t submitted_ = 0;   ///< guarded by done_mutex_
    std::uint64_t completed_ = 0;   ///< guarded by done_mutex_
    std::exception_ptr first_error_; ///< guarded by done_mutex_

    std::size_t next_worker_ = 0; ///< round-robin cursor (submit)
    std::mutex submit_mutex_;

    bool stopping_ = false; ///< guarded by sleep_mutex_
};

/** One watchdog observation of a job past its deadline. */
struct StallReport
{
    std::size_t job = 0;          ///< sweep slot index
    std::uint64_t spec_hash = 0;  ///< identity of the stalled spec
    std::string phase;            ///< what the job was doing
    std::uint64_t elapsed_ns = 0; ///< run time when observed
    std::uint64_t heartbeats = 0; ///< checkpoints the job had taken
    std::uint64_t bytes_charged = 0; ///< its MemBudget::used()
    unsigned misses = 1; ///< grace periods missed (2 = escalated)
};

/**
 * Background deadline enforcement for pool jobs. Workers arm() a
 * watch as a job starts (its cancel token, absolute deadline and
 * identity) and disarm() it when the job ends, however it ends. The
 * watchdog thread samples every armed watch on a fixed period; a
 * watch past its deadline gets its token cancelled (cancelTimeout())
 * and a stall report logged. The job itself is *not* killed — it is
 * expected to observe the token at its next checkpoint (or, if it
 * is stuck in non-checkpointing code, at least release waiters that
 * poll the token). A watch still armed one grace period after
 * cancellation is reported again and marked escalated; the pool is
 * never torn down, so well-behaved siblings keep their results.
 *
 * State machine per watch:
 *   ARMED --deadline missed--> CANCELLED (token tripped, report)
 *   CANCELLED --grace missed--> ESCALATED (second report; job is
 *       presumed wedged, its slot will be reported TimedOut by the
 *       engine once — if ever — it returns)
 *   any state --disarm()--> gone
 */
class Watchdog
{
  public:
    struct Options
    {
        /** Sampling period between deadline scans, nanoseconds. */
        std::uint64_t sample_ns = 1000 * 1000;
        /** Grace period after cancellation before a watch is
         *  declared wedged and escalated, nanoseconds. */
        std::uint64_t grace_ns = 250ull * 1000 * 1000;
        /** Log stall reports via util/logging warn() lines. */
        bool log = true;
    };

    Watchdog() : Watchdog(Options()) {}
    explicit Watchdog(const Options &opts);

    /** Stops and joins the sampler thread (no tokens are tripped). */
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Start watching job @p job. @p token is cancelled when
     * @p deadline passes (never-deadline watches are heartbeat-only
     * and cannot stall). @p budget may be null.
     */
    void arm(std::size_t job, CancelToken *token, Deadline deadline,
             std::uint64_t spec_hash, std::string phase,
             const MemBudget *budget);

    /** Stop watching job @p job (idempotent). */
    void disarm(std::size_t job);

    /** Stall reports collected so far (snapshot; thread-safe). */
    std::vector<StallReport> reports() const;

    /** Watches currently armed (tests). */
    std::size_t armedCount() const;

  private:
    struct Watch
    {
        std::size_t job = 0;
        CancelToken *token = nullptr;
        Deadline deadline;
        std::uint64_t spec_hash = 0;
        std::string phase;
        const MemBudget *budget = nullptr;
        std::chrono::steady_clock::time_point started;
        /** When the token was timeout-cancelled (grace anchor). */
        std::chrono::steady_clock::time_point cancelled_at;
        unsigned misses = 0; ///< 0 armed, 1 cancelled, 2 escalated
    };

    void samplerLoop();
    void scan();
    StallReport describe(const Watch &w, unsigned misses) const;

    Options opts_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Watch> watches_;      ///< guarded by mutex_
    std::vector<StallReport> reports_; ///< guarded by mutex_
    bool stopping_ = false;            ///< guarded by mutex_
    std::thread thread_;
};

} // namespace exec
} // namespace assoc

#endif // ASSOC_EXEC_THREAD_POOL_H
