/**
 * @file
 * A fixed-size work-stealing thread pool for running independent
 * simulation jobs.
 *
 * Each worker owns a deque: the owner pushes and pops work at the
 * back (LIFO, cache-friendly for task trees), idle workers steal
 * from the front of a victim's deque (FIFO, Chase-Lev style), so
 * contention between an owner and its thieves is limited to the
 * ends of the deque. Submission round-robins across the workers to
 * seed every deque.
 *
 * Exceptions thrown by tasks are captured; the first one is
 * rethrown from wait(). The destructor drains outstanding work and
 * joins all workers (exceptions raised during that final drain are
 * captured but, as in any destructor, cannot propagate).
 */

#ifndef ASSOC_EXEC_THREAD_POOL_H
#define ASSOC_EXEC_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace assoc {
namespace exec {

/** Fixed-size work-stealing pool. Thread-safe submit() and wait(). */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = defaultThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow
     * the first exception any task raised since the last wait()
     * (clearing it). The pool is reusable after wait() returns or
     * throws.
     */
    void wait();

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Tasks finished since construction (monotonic). */
    std::uint64_t completedTasks() const;

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned defaultThreads();

  private:
    /** One worker's deque; the owner uses the back, thieves the
     *  front. A plain mutex guards each deque: tasks here are whole
     *  trace simulations, so queue operations are never hot. */
    struct Worker
    {
        std::deque<std::function<void()>> tasks;
        std::mutex mutex;
        std::thread thread;
    };

    void workerLoop(std::size_t self);
    bool popOwn(std::size_t self, std::function<void()> &task);
    bool steal(std::size_t self, std::function<void()> &task);
    void finishTask();

    std::vector<std::unique_ptr<Worker>> workers_;

    /** Signals "new work or shutdown" to sleeping workers. */
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;

    /** Signals "all submitted work done" to wait(). */
    mutable std::mutex done_mutex_;
    std::condition_variable done_cv_;

    std::uint64_t submitted_ = 0;   ///< guarded by done_mutex_
    std::uint64_t completed_ = 0;   ///< guarded by done_mutex_
    std::exception_ptr first_error_; ///< guarded by done_mutex_

    std::size_t next_worker_ = 0; ///< round-robin cursor (submit)
    std::mutex submit_mutex_;

    bool stopping_ = false; ///< guarded by sleep_mutex_
};

} // namespace exec
} // namespace assoc

#endif // ASSOC_EXEC_THREAD_POOL_H
