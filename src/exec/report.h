/**
 * @file
 * Sweep result sinks: a thread-safe progress meter (completed-job
 * counter with optional stderr lines) and a JSON results writer so
 * sweeps can emit machine-readable output alongside the paper-style
 * tables.
 */

#ifndef ASSOC_EXEC_REPORT_H
#define ASSOC_EXEC_REPORT_H

#include <atomic>
#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "exec/job_result.h"
#include "sim/runner.h"

namespace assoc {
namespace exec {

/**
 * Counts completed jobs across worker threads. When verbose,
 * prints one "label: k/N" line to stderr per completion; progress
 * goes to stderr only, so stdout stays byte-identical whether or
 * not it is enabled.
 */
class ProgressMeter
{
  public:
    /**
     * @param total   jobs expected (for the "k/N" rendering)
     * @param verbose emit stderr lines on every tick
     * @param label   prefix for the stderr lines
     */
    explicit ProgressMeter(std::size_t total, bool verbose = false,
                           std::string label = "sweep");

    /** Record one finished job (thread-safe). */
    void tick();

    /** Jobs recorded so far. */
    std::size_t completed() const
    {
        return done_.load(std::memory_order_relaxed);
    }

    std::size_t total() const { return total_; }

  private:
    std::atomic<std::size_t> done_{0};
    std::size_t total_;
    bool verbose_;
    std::string label_;
    std::mutex io_mutex_;
};

/** Escape @p s for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Write one sweep's results as JSON: an object with a "runs" array,
 * one element per (spec, output) pair, carrying the hierarchy
 * names, miss-ratio statistics and per-scheme probe means. The two
 * vectors must be parallel.
 */
void writeSweepJson(std::ostream &os,
                    const std::vector<sim::RunSpec> &specs,
                    const std::vector<sim::RunOutput> &outs);

/**
 * Checked-sweep variant: every run additionally carries "status"
 * ("ok" / "failed" / "cancelled" / "timed-out" / "over-budget") and
 * "attempts"; runs without results carry an "error" object ({code,
 * message, context}) instead of statistics — these are the "gap
 * rows" a deadline leaves behind. The trailing summary records the
 * failure / cancellation / timeout / budget counts, the number of
 * watchdog stall reports, and whether the sweep was interrupted.
 */
void writeSweepJson(std::ostream &os,
                    const std::vector<sim::RunSpec> &specs,
                    const SweepResult &result);

/**
 * File variants of the two writeSweepJson forms, written atomically
 * (temp file + fsync + rename, util/atomic_file.h): a process
 * killed mid-write never leaves a torn JSON under the final name.
 * @p path "-" streams to stdout instead (nothing to tear).
 */
Expected<void>
writeSweepJsonFile(const std::string &path,
                   const std::vector<sim::RunSpec> &specs,
                   const std::vector<sim::RunOutput> &outs);

Expected<void> writeSweepJsonFile(const std::string &path,
                                  const std::vector<sim::RunSpec> &specs,
                                  const SweepResult &result);

} // namespace exec
} // namespace assoc

#endif // ASSOC_EXEC_REPORT_H
