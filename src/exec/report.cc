#include "exec/report.h"

#include <cstdio>
#include <iostream>

#include "util/atomic_file.h"
#include "util/logging.h"

namespace assoc {
namespace exec {

ProgressMeter::ProgressMeter(std::size_t total, bool verbose,
                             std::string label)
    : total_(total), verbose_(verbose), label_(std::move(label))
{}

void
ProgressMeter::tick()
{
    std::size_t k = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!verbose_)
        return;
    std::lock_guard<std::mutex> lock(io_mutex_);
    std::fprintf(stderr, "%s: %zu/%zu\n", label_.c_str(), k, total_);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Shortest round-trippable rendering of a double. */
std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

namespace {

/** The shared per-run body: identity, miss ratios, scheme means. */
void
writeRunBody(std::ostream &os, const sim::RunSpec &spec,
             const sim::RunOutput &out)
{
    os << "      \"l1\": \"" << jsonEscape(spec.hier.l1.name())
       << "\",\n";
    os << "      \"l2\": \"" << jsonEscape(spec.hier.l2.name())
       << "\",\n";
    os << "      \"wb_optimization\": "
       << (spec.wb_optimization ? "true" : "false") << ",\n";
    os << "      \"l1_miss_ratio\": "
       << jsonNum(out.stats.l1MissRatio()) << ",\n";
    os << "      \"global_miss_ratio\": "
       << jsonNum(out.stats.globalMissRatio()) << ",\n";
    os << "      \"local_miss_ratio\": "
       << jsonNum(out.stats.localMissRatio()) << ",\n";
    os << "      \"write_back_fraction\": "
       << jsonNum(out.stats.writeBackFraction()) << ",\n";
    if (out.skipped_records != 0)
        os << "      \"skipped_records\": " << out.skipped_records
           << ",\n";
    os << "      \"schemes\": [";
    for (std::size_t s = 0; s < out.probes.size(); ++s) {
        const core::ProbeStats &p = out.probes[s];
        if (s)
            os << ",";
        os << "\n        {\"name\": \"" << jsonEscape(out.names[s])
           << "\", "
           << "\"hits_mean\": " << jsonNum(p.hitsMean()) << ", "
           << "\"read_in_hits_mean\": "
           << jsonNum(p.read_in_hits.mean()) << ", "
           << "\"read_in_misses_mean\": "
           << jsonNum(p.read_in_misses.mean()) << ", "
           << "\"total_mean\": " << jsonNum(p.totalMean()) << "}";
    }
    if (!out.probes.empty())
        os << "\n      ";
    os << "]";
    if (!out.f.empty()) {
        os << ",\n      \"f\": [";
        for (std::size_t k = 0; k < out.f.size(); ++k)
            os << (k ? ", " : "") << jsonNum(out.f[k]);
        os << "]";
    }
}

void
writeErrorObject(std::ostream &os, const Error &e)
{
    os << "      \"error\": {\"code\": \"" << errorCodeName(e.code())
       << "\", \"message\": \"" << jsonEscape(e.message()) << "\"";
    if (!e.context().empty()) {
        os << ", \"context\": [";
        for (std::size_t i = 0; i < e.context().size(); ++i)
            os << (i ? ", " : "") << "\""
               << jsonEscape(e.context()[i]) << "\"";
        os << "]";
    }
    os << "}";
}

} // namespace

void
writeSweepJson(std::ostream &os,
               const std::vector<sim::RunSpec> &specs,
               const std::vector<sim::RunOutput> &outs)
{
    panicIf(specs.size() != outs.size(),
            "writeSweepJson: specs and outputs differ in length");
    os << "{\n  \"runs\": [\n";
    for (std::size_t i = 0; i < outs.size(); ++i) {
        os << "    {\n";
        writeRunBody(os, specs[i], outs[i]);
        os << "\n    }" << (i + 1 < outs.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
writeSweepJson(std::ostream &os,
               const std::vector<sim::RunSpec> &specs,
               const SweepResult &result)
{
    panicIf(specs.size() != result.jobs.size(),
            "writeSweepJson: specs and job results differ in length");
    os << "{\n  \"runs\": [\n";
    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        const JobResult &job = result.jobs[i];
        os << "    {\n";
        os << "      \"status\": \"" << jobStatusName(job.status)
           << "\",\n";
        os << "      \"attempts\": " << job.attempts << ",\n";
        if (job.from_journal)
            os << "      \"from_journal\": true,\n";
        if (job.ok()) {
            writeRunBody(os, specs[i], job.output);
        } else {
            // Identity only: the statistics never materialized.
            os << "      \"l1\": \""
               << jsonEscape(specs[i].hier.l1.name()) << "\",\n";
            os << "      \"l2\": \""
               << jsonEscape(specs[i].hier.l2.name()) << "\",\n";
            os << "      \"wb_optimization\": "
               << (specs[i].wb_optimization ? "true" : "false")
               << ",\n";
            writeErrorObject(os, job.error);
        }
        os << "\n    }"
           << (i + 1 < result.jobs.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"failures\": " << result.failures() << ",\n";
    os << "  \"cancelled\": " << result.cancelled() << ",\n";
    os << "  \"timed_out\": " << result.timedOut() << ",\n";
    os << "  \"over_budget\": " << result.overBudget() << ",\n";
    os << "  \"stalls\": " << result.stalls.size() << ",\n";
    os << "  \"resumed\": " << result.resumed << ",\n";
    os << "  \"interrupted\": "
       << (result.interrupted ? "true" : "false") << "\n";
    os << "}\n";
}

Expected<void>
writeSweepJsonFile(const std::string &path,
                   const std::vector<sim::RunSpec> &specs,
                   const std::vector<sim::RunOutput> &outs)
{
    if (path == "-") {
        writeSweepJson(std::cout, specs, outs);
        return {};
    }
    return writeFileAtomic(path, [&](std::ostream &os) {
        writeSweepJson(os, specs, outs);
    });
}

Expected<void>
writeSweepJsonFile(const std::string &path,
                   const std::vector<sim::RunSpec> &specs,
                   const SweepResult &result)
{
    if (path == "-") {
        writeSweepJson(std::cout, specs, result);
        return {};
    }
    return writeFileAtomic(path, [&](std::ostream &os) {
        writeSweepJson(os, specs, result);
    });
}

} // namespace exec
} // namespace assoc
