/**
 * @file
 * Append-only sweep checkpoint journal.
 *
 * A journal records completed job outputs so an interrupted sweep
 * can be resumed with a bit-identical merged result. Format (text,
 * one record per line, written with an explicit flush per record):
 *
 *   # assoc sweep journal v1
 *   meta hash=<spec-hash hex16> jobs=<N>
 *   job <index> d=<digest hex16> <payload>
 *
 * The spec hash covers every field of every RunSpec that influences
 * results, so resuming against a different sweep is rejected. Each
 * job line carries an FNV-1a digest of its payload; doubles are
 * serialized as the hex of their IEEE-754 bit pattern, so restored
 * outputs are bit-exact. The reader is tolerant: a torn final line
 * (the process died mid-write) or a corrupted line is skipped, and
 * a duplicated index keeps the last valid record.
 */

#ifndef ASSOC_EXEC_JOURNAL_H
#define ASSOC_EXEC_JOURNAL_H

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "util/cancel.h"
#include "util/error.h"

namespace assoc {
namespace exec {

/**
 * Hash every result-relevant field of @p specs (FNV-1a). @p salt
 * folds in trace identity (seed, segment count) so a journal from
 * the same spec list over a different trace is rejected too.
 */
std::uint64_t hashSpecs(const std::vector<sim::RunSpec> &specs,
                        std::uint64_t salt = 0);

/** Identity hash of one spec (same fields hashSpecs() covers); what
 *  watchdog stall reports and timeout error contexts carry. */
std::uint64_t hashSpec(const sim::RunSpec &spec);

/** Serialize one RunOutput as a single journal payload line. */
std::string encodeRunOutput(const sim::RunOutput &out);

/** Parse a payload produced by encodeRunOutput (bit-exact). */
Expected<sim::RunOutput> decodeRunOutput(const std::string &payload);

/** Everything a journal file held. */
struct JournalData
{
    std::uint64_t spec_hash = 0;
    std::uint64_t jobs = 0;
    std::map<std::size_t, sim::RunOutput> entries;
    std::uint64_t dropped_lines = 0; ///< torn/corrupt lines skipped
};

/**
 * Load @p path. Unreadable files and bad headers are Errors;
 * individually corrupt job lines are tolerated (counted in
 * dropped_lines) because a SIGKILL mid-append legitimately tears
 * the final line. When @p budget is given, the bytes buffered while
 * reading (lines + decoded entries) are charged against it, so a
 * runaway journal fails with a structured budget error instead of
 * ballooning the process.
 */
Expected<JournalData> readJournal(const std::string &path,
                                  MemBudget *budget = nullptr);

/** Appends one digest-stamped record per completed job. */
class JournalWriter
{
  public:
    /**
     * Open @p path. With @p append the file is extended (resume)
     * and the header is only written when the file is empty or new;
     * otherwise the file is truncated and a fresh header written.
     */
    Error open(const std::string &path, std::uint64_t spec_hash,
               std::uint64_t jobs, bool append);

    bool isOpen() const { return out_.is_open(); }

    /** Append one record and flush it to the OS. */
    Error append(std::size_t index, const sim::RunOutput &out);

    /** Final flush + close (the drain path; idempotent). */
    Error close();

  private:
    std::ofstream out_;
    std::string path_;
};

} // namespace exec
} // namespace assoc

#endif // ASSOC_EXEC_JOURNAL_H
