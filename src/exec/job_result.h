/**
 * @file
 * Per-job sweep results: one isolated outcome slot per spec.
 *
 * runSweepChecked() never lets one failing job poison the pool —
 * every slot independently records either a RunOutput or the Error
 * that killed it, plus how many attempts were made and how long the
 * winning (or last) attempt ran.
 */

#ifndef ASSOC_EXEC_JOB_RESULT_H
#define ASSOC_EXEC_JOB_RESULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "sim/runner.h"
#include "util/error.h"

namespace assoc {
namespace exec {

/** Terminal state of one sweep slot. */
enum class JobStatus {
    Ok,         ///< output is valid
    Failed,     ///< error describes the final attempt's failure
    Cancelled,  ///< never ran (SIGINT or explicit cancellation)
    TimedOut,   ///< killed by a job timeout or the sweep deadline
    OverBudget, ///< killed by a memory-budget exhaustion
};

/** "ok" / "failed" / "cancelled" / "timed-out" / "over-budget"
 *  (used in JSON and messages). */
const char *jobStatusName(JobStatus status);

/** Outcome of one sweep slot. */
struct JobResult
{
    JobStatus status = JobStatus::Cancelled;
    sim::RunOutput output; ///< valid only when status == Ok
    Error error;           ///< set when status != Ok
    unsigned attempts = 0; ///< runs tried (0 when cancelled unstarted)
    std::uint64_t wall_ns = 0; ///< wall time of the last attempt
    bool from_journal = false; ///< restored by --resume, not re-run

    bool ok() const { return status == JobStatus::Ok; }
};

/** Outcome of a whole checked sweep. */
struct SweepResult
{
    std::vector<JobResult> jobs; ///< parallel to the spec vector

    bool interrupted = false;   ///< a cancellation cut the sweep short
    std::uint64_t resumed = 0;  ///< slots restored from a journal
    /** Watchdog observations (deadline misses and escalations). */
    std::vector<StallReport> stalls;

    bool
    allOk() const
    {
        for (const JobResult &j : jobs)
            if (!j.ok())
                return false;
        return true;
    }

    std::size_t
    failures() const
    {
        std::size_t n = 0;
        for (const JobResult &j : jobs)
            n += j.status == JobStatus::Failed;
        return n;
    }

    std::size_t
    cancelled() const
    {
        std::size_t n = 0;
        for (const JobResult &j : jobs)
            n += j.status == JobStatus::Cancelled;
        return n;
    }

    std::size_t
    timedOut() const
    {
        std::size_t n = 0;
        for (const JobResult &j : jobs)
            n += j.status == JobStatus::TimedOut;
        return n;
    }

    std::size_t
    overBudget() const
    {
        std::size_t n = 0;
        for (const JobResult &j : jobs)
            n += j.status == JobStatus::OverBudget;
        return n;
    }

    /** Jobs killed by a runaway-work policy (deadline or budget). */
    std::size_t
    resourceKilled() const
    {
        return timedOut() + overBudget();
    }

    /** First non-ok slot's error (ok Error when allOk()). */
    const Error &
    firstError() const
    {
        for (const JobResult &j : jobs)
            if (!j.ok())
                return j.error;
        static const Error ok;
        return ok;
    }
};

} // namespace exec
} // namespace assoc

#endif // ASSOC_EXEC_JOB_RESULT_H
