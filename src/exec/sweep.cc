#include "exec/sweep.h"

#include <algorithm>

#include "exec/thread_pool.h"

namespace assoc {
namespace exec {

TraceFactory
atumTraceFactory(const trace::AtumLikeConfig &cfg)
{
    return [cfg](std::size_t) {
        return std::make_unique<trace::AtumLikeGenerator>(cfg);
    };
}

void
runJobs(std::vector<std::function<void()>> jobs,
        const SweepOptions &opts)
{
    unsigned want = opts.jobs == 0 ? ThreadPool::defaultThreads()
                                   : opts.jobs;
    ProgressMeter *progress = opts.progress;

    if (want == 1 || jobs.size() <= 1) {
        // The exact old serial path: no pool, no worker threads.
        for (auto &job : jobs) {
            job();
            if (progress)
                progress->tick();
        }
        return;
    }

    unsigned threads = static_cast<unsigned>(
        std::min<std::size_t>(want, jobs.size()));
    ThreadPool pool(threads);
    for (auto &job : jobs) {
        pool.submit([job = std::move(job), progress] {
            job();
            if (progress)
                progress->tick();
        });
    }
    pool.wait();
}

std::vector<sim::RunOutput>
runSweep(const std::vector<sim::RunSpec> &specs,
         const TraceFactory &make_trace, const SweepOptions &opts)
{
    std::vector<sim::RunOutput> outs(specs.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        jobs.push_back([&specs, &outs, &make_trace, i] {
            std::unique_ptr<trace::TraceSource> src = make_trace(i);
            outs[i] = sim::runTrace(*src, specs[i]);
        });
    }
    runJobs(std::move(jobs), opts);
    return outs;
}

} // namespace exec
} // namespace assoc
