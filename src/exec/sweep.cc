#include "exec/sweep.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "exec/fault.h"
#include "exec/journal.h"
#include "exec/thread_pool.h"
#include "util/logging.h"

namespace assoc {
namespace exec {

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::Cancelled: return "cancelled";
    }
    return "unknown";
}

TraceFactory
atumTraceFactory(const trace::AtumLikeConfig &cfg)
{
    return [cfg](std::size_t) {
        return std::make_unique<trace::AtumLikeGenerator>(cfg);
    };
}

void
runJobs(std::vector<std::function<void()>> jobs,
        const SweepOptions &opts)
{
    unsigned want = opts.jobs == 0 ? ThreadPool::defaultThreads()
                                   : opts.jobs;
    ProgressMeter *progress = opts.progress;

    if (want == 1 || jobs.size() <= 1) {
        // The exact old serial path: no pool, no worker threads.
        for (auto &job : jobs) {
            job();
            if (progress)
                progress->tick();
        }
        return;
    }

    unsigned threads = static_cast<unsigned>(
        std::min<std::size_t>(want, jobs.size()));
    ThreadPool pool(threads);
    for (auto &job : jobs) {
        pool.submit([job = std::move(job), progress] {
            job();
            if (progress)
                progress->tick();
        });
    }
    pool.wait();
}

std::vector<sim::RunOutput>
runSweep(const std::vector<sim::RunSpec> &specs,
         const TraceFactory &make_trace, const SweepOptions &opts)
{
    std::vector<sim::RunOutput> outs(specs.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        jobs.push_back([&specs, &outs, &make_trace, i] {
            std::unique_ptr<trace::TraceSource> src = make_trace(i);
            outs[i] = sim::runTrace(*src, specs[i]);
        });
    }
    runJobs(std::move(jobs), opts);
    return outs;
}

namespace {

/** Map any exception from one attempt onto an Error. */
Error
errorFromAttempt()
{
    try {
        throw;
    } catch (const ErrorException &e) {
        return e.error();
    } catch (const PanicError &e) {
        return Error::internal(e.what());
    } catch (const FatalError &e) {
        return Error::usage(e.what());
    } catch (const std::exception &e) {
        return Error::internal(e.what());
    } catch (...) {
        return Error::internal("unknown exception");
    }
}

/** Run one slot with retry, timing, and fault hooks. */
JobResult
runOneJob(const std::vector<sim::RunSpec> &specs,
          const TraceFactory &make_trace, const SweepOptions &opts,
          std::size_t i)
{
    JobResult res;
    unsigned attempts_allowed = 1 + opts.max_retries;
    for (unsigned attempt = 1; attempt <= attempts_allowed; ++attempt) {
        if (opts.cancel && opts.cancel->cancelled()) {
            if (res.status != JobStatus::Failed) {
                res.status = JobStatus::Cancelled;
                res.error = Error::cancelled(
                    "job " + std::to_string(i) +
                    " cancelled before attempt " +
                    std::to_string(attempt));
            }
            return res;
        }
        res.attempts = attempt;
        auto t0 = std::chrono::steady_clock::now();
        try {
            if (opts.inject)
                opts.inject->onJobStart(i, attempt);
            std::unique_ptr<trace::TraceSource> src = make_trace(i);
            res.output = sim::runTrace(*src, specs[i]);
            res.status = JobStatus::Ok;
            res.error = Error();
        } catch (...) {
            res.status = JobStatus::Failed;
            res.error = errorFromAttempt().withContext(
                "job " + std::to_string(i) + " attempt " +
                std::to_string(attempt));
        }
        auto t1 = std::chrono::steady_clock::now();
        res.wall_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t1 - t0)
                .count());
        if (res.ok())
            break;
        if (!opts.retry_all_errors && !res.error.transient())
            break;
    }
    if (opts.inject)
        opts.inject->onJobDone(i);
    return res;
}

} // namespace

SweepResult
runSweepChecked(const std::vector<sim::RunSpec> &specs,
                const TraceFactory &make_trace, const SweepOptions &opts)
{
    SweepResult result;
    result.jobs.resize(specs.size());

    // Restore finished slots from the resume journal, if any.
    std::vector<bool> have(specs.size(), false);
    if (!opts.resume_path.empty()) {
        Expected<JournalData> data = readJournal(opts.resume_path);
        if (!data)
            throwError(Error(data.error())
                           .withContext("resuming sweep from '" +
                                        opts.resume_path + "'"));
        if (data.value().spec_hash != opts.spec_hash)
            throwError(Error::data(
                "journal '" + opts.resume_path +
                "' was written for a different sweep (spec hash " +
                std::to_string(data.value().spec_hash) + " vs " +
                std::to_string(opts.spec_hash) + ")"));
        for (auto &[idx, out] : data.value().entries) {
            if (idx >= specs.size())
                continue; // stale entry from a larger sweep shape
            JobResult &slot = result.jobs[idx];
            slot.status = JobStatus::Ok;
            slot.output = std::move(out);
            slot.from_journal = true;
            slot.attempts = 0;
            have[idx] = true;
            ++result.resumed;
        }
    }

    // Open the journal we append new completions to. When both
    // --journal and --resume are given, the fresh journal also
    // receives the restored slots, producing a compacted, complete
    // checkpoint.
    JournalWriter writer;
    std::mutex journal_mutex;
    const std::string &sink = !opts.journal_path.empty()
                                  ? opts.journal_path
                                  : opts.resume_path;
    if (!sink.empty()) {
        bool append = opts.journal_path.empty();
        Error e = writer.open(sink, opts.spec_hash, specs.size(),
                              append);
        if (e.failed())
            throwError(std::move(e));
        if (!opts.journal_path.empty()) {
            for (std::size_t i = 0; i < specs.size(); ++i) {
                if (!have[i])
                    continue;
                Error ae = writer.append(i, result.jobs[i].output);
                if (ae.failed())
                    throwError(std::move(ae));
            }
        }
    }

    std::vector<std::function<void()>> jobs;
    jobs.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (have[i]) {
            if (opts.progress)
                opts.progress->tick();
            continue;
        }
        jobs.push_back([&specs, &make_trace, &opts, &result, &writer,
                        &journal_mutex, i] {
            JobResult r = runOneJob(specs, make_trace, opts, i);
            if (r.ok() && writer.isOpen()) {
                std::lock_guard<std::mutex> lock(journal_mutex);
                Error e = writer.append(i, r.output);
                if (e.failed())
                    warn(e.text()); // the result itself is still good
            }
            result.jobs[i] = std::move(r);
        });
    }

    // Jobs never throw (every attempt's exception is folded into the
    // slot), so runJobs' first-exception rethrow stays dormant and
    // the pool always drains fully.
    SweepOptions pool_opts;
    pool_opts.jobs = opts.jobs;
    pool_opts.progress = opts.progress;
    runJobs(std::move(jobs), pool_opts);

    for (const JobResult &j : result.jobs)
        if (j.status == JobStatus::Cancelled)
            result.interrupted = true;
    return result;
}

} // namespace exec
} // namespace assoc
