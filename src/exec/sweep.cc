#include "exec/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "exec/fault.h"
#include "exec/journal.h"
#include "exec/thread_pool.h"
#include "util/logging.h"

namespace assoc {
namespace exec {

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::Cancelled: return "cancelled";
      case JobStatus::TimedOut: return "timed-out";
      case JobStatus::OverBudget: return "over-budget";
    }
    return "unknown";
}

TraceFactory
atumTraceFactory(const trace::AtumLikeConfig &cfg)
{
    return [cfg](std::size_t) {
        return std::make_unique<trace::AtumLikeGenerator>(cfg);
    };
}

TraceFactory
fileTraceFactory(const std::string &path, ErrorPolicy policy)
{
    // Each job opens its own reader: jobs run on pool threads, and
    // TraceSource instances are single-threaded by contract. Open
    // failures surface through the source's sticky error when the
    // job first streams it, which routes through the normal
    // per-job retry/failure machinery.
    return [path, policy](std::size_t) {
        return trace::openTraceFile(path, policy);
    };
}

void
runJobs(std::vector<std::function<void()>> jobs,
        const SweepOptions &opts)
{
    unsigned want = opts.jobs == 0 ? ThreadPool::defaultThreads()
                                   : opts.jobs;
    ProgressMeter *progress = opts.progress;

    if (want == 1 || jobs.size() <= 1) {
        // The exact old serial path: no pool, no worker threads.
        for (auto &job : jobs) {
            job();
            if (progress)
                progress->tick();
        }
        return;
    }

    unsigned threads = static_cast<unsigned>(
        std::min<std::size_t>(want, jobs.size()));
    ThreadPool pool(threads);
    for (auto &job : jobs) {
        pool.submit([job = std::move(job), progress] {
            job();
            if (progress)
                progress->tick();
        });
    }
    pool.wait();
}

std::vector<sim::RunOutput>
runSweep(const std::vector<sim::RunSpec> &specs,
         const TraceFactory &make_trace, const SweepOptions &opts)
{
    std::vector<sim::RunOutput> outs(specs.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        jobs.push_back([&specs, &outs, &make_trace, i] {
            std::unique_ptr<trace::TraceSource> src = make_trace(i);
            outs[i] = sim::runTrace(*src, specs[i]);
        });
    }
    runJobs(std::move(jobs), opts);
    return outs;
}

namespace {

/** Map any exception from one attempt onto an Error. */
Error
errorFromAttempt()
{
    try {
        throw;
    } catch (const ErrorException &e) {
        return e.error();
    } catch (const PanicError &e) {
        return Error::internal(e.what());
    } catch (const FatalError &e) {
        return Error::usage(e.what());
    } catch (const std::exception &e) {
        return Error::internal(e.what());
    } catch (...) {
        return Error::internal("unknown exception");
    }
}

/** Shared runaway-defense state for one checked sweep. */
struct SweepGuards
{
    /** Sweep-wide token: chains to the caller's (SIGINT, explicit
     *  cancel) and carries the sweep deadline. Null when the sweep
     *  has no cancellation sources at all. */
    const CancelToken *cancel = nullptr;
    /** Global budget (null when no budget flags were given). */
    MemBudget *budget = nullptr;
    /** Deadline enforcement (null when no deadline flags). */
    Watchdog *watchdog = nullptr;
};

/** Classify a failed attempt's error into a slot status. */
JobStatus
statusFromError(const Error &e)
{
    switch (e.code()) {
      case ErrorCode::Cancelled: return JobStatus::Cancelled;
      case ErrorCode::Timeout: return JobStatus::TimedOut;
      case ErrorCode::Budget: return JobStatus::OverBudget;
      default: return JobStatus::Failed;
    }
}

std::string
hex16(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Run one slot with retry, timing, deadline and fault hooks. */
JobResult
runOneJob(const std::vector<sim::RunSpec> &specs,
          const TraceFactory &make_trace, const SweepOptions &opts,
          const SweepGuards &guards, std::size_t i)
{
    JobResult res;
    const std::uint64_t spec_hash = hashSpec(specs[i]);
    unsigned attempts_allowed = 1 + opts.max_retries;
    for (unsigned attempt = 1; attempt <= attempts_allowed; ++attempt) {
        if (guards.cancel && guards.cancel->cancelled()) {
            // The sweep as a whole is over: deadline (TimedOut) or
            // cancellation (Cancelled). Keep an earlier attempt's
            // Failed status — it is more informative than "never
            // retried".
            if (res.status != JobStatus::Failed) {
                bool timed = guards.cancel->reason() ==
                             CancelToken::Reason::TimedOut;
                res.status = timed ? JobStatus::TimedOut
                                   : JobStatus::Cancelled;
                Error e = timed
                              ? Error::timeout(
                                    "sweep deadline exceeded before "
                                    "job " + std::to_string(i) +
                                    " attempt " +
                                    std::to_string(attempt))
                              : Error::cancelled(
                                    "job " + std::to_string(i) +
                                    " cancelled before attempt " +
                                    std::to_string(attempt));
                if (timed)
                    e.withContext("job spec hash " +
                                  hex16(spec_hash));
                res.error = std::move(e);
            }
            return res;
        }

        // Per-attempt token: the job deadline, chained to the
        // sweep-wide token. Fresh each attempt so a retried timeout
        // gets a full timeslice again.
        CancelToken token;
        token.setParent(guards.cancel);
        if (opts.job_timeout_ns != 0)
            token.setDeadline(Deadline::after(opts.job_timeout_ns));
        MemBudget job_budget(opts.job_mem_budget, guards.budget);
        MemBudget *budget =
            (opts.job_mem_budget != 0 || guards.budget)
                ? &job_budget
                : nullptr;
        bool guarded = guards.cancel != nullptr ||
                       opts.job_timeout_ns != 0;

        sim::RunSpec spec = specs[i];
        if (guarded) {
            spec.cancel = &token;
            spec.checkpoint_every = opts.checkpoint_every;
        }
        spec.budget = budget;

        if (guards.watchdog)
            guards.watchdog->arm(i, &token, token.deadline(),
                                 spec_hash,
                                 "attempt " + std::to_string(attempt),
                                 budget);

        res.attempts = attempt;
        auto t0 = std::chrono::steady_clock::now();
        try {
            if (opts.inject)
                opts.inject->onJobStart(i, attempt);
            std::unique_ptr<trace::TraceSource> src = make_trace(i);
            if (guarded)
                src->setCancelToken(&token);
            if (budget)
                src->setMemBudget(budget);
            if (opts.inject)
                src = opts.inject->wrapJobTrace(std::move(src), i,
                                                &token, budget);
            res.output = sim::runTrace(*src, spec);
            res.status = JobStatus::Ok;
            res.error = Error();
        } catch (...) {
            Error e = errorFromAttempt().withContext(
                "job " + std::to_string(i) + " attempt " +
                std::to_string(attempt));
            res.status = statusFromError(e);
            if (res.status == JobStatus::TimedOut ||
                res.status == JobStatus::OverBudget)
                e.withContext("job spec hash " + hex16(spec_hash));
            res.error = std::move(e);
        }
        if (guards.watchdog)
            guards.watchdog->disarm(i);
        auto t1 = std::chrono::steady_clock::now();
        res.wall_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t1 - t0)
                .count());
        if (res.ok())
            break;
        if (res.status == JobStatus::Cancelled)
            break; // the sweep is being torn down; don't re-run
        if (res.status == JobStatus::OverBudget)
            break; // deterministic: the same spec blows the same budget
        if (res.status == JobStatus::TimedOut)
            continue; // retryable under max_retries (load may clear)
        if (!opts.retry_all_errors && !res.error.transient())
            break;
    }
    if (opts.inject)
        opts.inject->onJobDone(i);
    return res;
}

} // namespace

SweepResult
runSweepChecked(const std::vector<sim::RunSpec> &specs,
                const TraceFactory &make_trace, const SweepOptions &opts)
{
    SweepResult result;
    result.jobs.resize(specs.size());

    // Sweep-wide runaway defenses. The sweep token carries the
    // whole-sweep deadline and chains to the caller's token (SIGINT,
    // explicit cancel); per-job tokens chain to it in runOneJob.
    SweepGuards guards;
    CancelToken sweep_token;
    if (opts.cancel || opts.sweep_deadline_ns != 0) {
        sweep_token.setParent(opts.cancel);
        if (opts.sweep_deadline_ns != 0)
            sweep_token.setDeadline(
                Deadline::after(opts.sweep_deadline_ns));
        guards.cancel = &sweep_token;
    }
    MemBudget global_budget(opts.mem_budget);
    if (opts.mem_budget != 0 || opts.job_mem_budget != 0)
        guards.budget = &global_budget;

    // Restore finished slots from the resume journal, if any.
    std::vector<bool> have(specs.size(), false);
    if (!opts.resume_path.empty()) {
        Expected<JournalData> data =
            readJournal(opts.resume_path, guards.budget);
        if (!data)
            throwError(Error(data.error())
                           .withContext("resuming sweep from '" +
                                        opts.resume_path + "'"));
        if (data.value().spec_hash != opts.spec_hash)
            throwError(Error::data(
                "journal '" + opts.resume_path +
                "' was written for a different sweep (spec hash " +
                std::to_string(data.value().spec_hash) + " vs " +
                std::to_string(opts.spec_hash) + ")"));
        for (auto &[idx, out] : data.value().entries) {
            if (idx >= specs.size())
                continue; // stale entry from a larger sweep shape
            JobResult &slot = result.jobs[idx];
            slot.status = JobStatus::Ok;
            slot.output = std::move(out);
            slot.from_journal = true;
            slot.attempts = 0;
            have[idx] = true;
            ++result.resumed;
        }
    }

    // Open the journal we append new completions to. When both
    // --journal and --resume are given, the fresh journal also
    // receives the restored slots, producing a compacted, complete
    // checkpoint.
    JournalWriter writer;
    std::mutex journal_mutex;
    const std::string &sink = !opts.journal_path.empty()
                                  ? opts.journal_path
                                  : opts.resume_path;
    if (!sink.empty()) {
        bool append = opts.journal_path.empty();
        Error e = writer.open(sink, opts.spec_hash, specs.size(),
                              append);
        if (e.failed())
            throwError(std::move(e));
        if (!opts.journal_path.empty()) {
            for (std::size_t i = 0; i < specs.size(); ++i) {
                if (!have[i])
                    continue;
                Error ae = writer.append(i, result.jobs[i].output);
                if (ae.failed())
                    throwError(std::move(ae));
            }
        }
    }

    // Deadline enforcement. Scoped so the watchdog thread is joined
    // before the journal drain below: once jobs are done, nothing
    // can trip tokens or log stall lines concurrently with the
    // final flush.
    {
        std::unique_ptr<Watchdog> watchdog;
        if (opts.job_timeout_ns != 0 || opts.sweep_deadline_ns != 0) {
            watchdog = std::make_unique<Watchdog>(opts.watchdog);
            guards.watchdog = watchdog.get();
        }

        std::vector<std::function<void()>> jobs;
        jobs.reserve(specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (have[i]) {
                if (opts.progress)
                    opts.progress->tick();
                continue;
            }
            jobs.push_back([&specs, &make_trace, &opts, &guards,
                            &result, &writer, &journal_mutex, i] {
                JobResult r = runOneJob(specs, make_trace, opts,
                                        guards, i);
                if (r.ok() && writer.isOpen()) {
                    std::lock_guard<std::mutex> lock(journal_mutex);
                    Error e = writer.append(i, r.output);
                    if (e.failed())
                        warn(e.text()); // the result itself is good
                }
                result.jobs[i] = std::move(r);
            });
        }

        // Jobs never throw (every attempt's exception is folded into
        // the slot), so runJobs' first-exception rethrow stays
        // dormant and the pool always drains fully.
        SweepOptions pool_opts;
        pool_opts.jobs = opts.jobs;
        pool_opts.progress = opts.progress;
        runJobs(std::move(jobs), pool_opts);

        if (watchdog)
            result.stalls = watchdog->reports();
    }

    // Drain: final flush + close under the journal mutex. A SIGINT
    // (or watchdog grace-period escalation) that lands while workers
    // are still appending cannot race this — appends hold the same
    // mutex, and the pool and watchdog are both gone by now.
    if (writer.isOpen()) {
        std::lock_guard<std::mutex> lock(journal_mutex);
        Error e = writer.close();
        if (e.failed())
            warn(e.text());
    }

    for (const JobResult &j : result.jobs)
        if (j.status == JobStatus::Cancelled)
            result.interrupted = true;
    return result;
}

} // namespace exec
} // namespace assoc
