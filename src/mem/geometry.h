/**
 * @file
 * Cache geometry: size / block size / associativity and the address
 * arithmetic they imply.
 */

#ifndef ASSOC_MEM_GEOMETRY_H
#define ASSOC_MEM_GEOMETRY_H

#include <cstdint>
#include <string>

#include "trace/memref.h"
#include "util/bitops.h"

namespace assoc {
namespace mem {

using trace::Addr;

/** Block addresses are byte addresses shifted right by the block
 *  offset width. */
using BlockAddr = std::uint32_t;

/**
 * Compact byte-size label in the paper's notation: "512B", "4K",
 * "2M". The single formatter behind both CacheGeometry::name() and
 * sim::cacheName(), so report labels and bench labels always agree.
 */
std::string sizeLabel(std::uint32_t bytes);

/**
 * Geometry of one cache level. All three parameters must be powers
 * of two and size must be divisible by block * assoc.
 */
class CacheGeometry
{
  public:
    /**
     * @param size_bytes total capacity in bytes.
     * @param block_bytes block (line) size in bytes.
     * @param assoc associativity (1 = direct mapped).
     */
    CacheGeometry(std::uint32_t size_bytes, std::uint32_t block_bytes,
                  std::uint32_t assoc);

    std::uint32_t sizeBytes() const { return size_; }
    std::uint32_t blockBytes() const { return block_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t sets() const { return sets_; }

    unsigned offsetBits() const { return offset_bits_; }
    unsigned indexBits() const { return index_bits_; }

    /** Block address containing byte address @p a. */
    BlockAddr
    blockAddrOf(Addr a) const
    {
        return a >> offset_bits_;
    }

    /** Set index of block @p b. */
    std::uint32_t
    setOf(BlockAddr b) const
    {
        return b & maskBits(index_bits_);
    }

    /** Full (untruncated) tag of block @p b. */
    std::uint32_t
    fullTagOf(BlockAddr b) const
    {
        return b >> index_bits_;
    }

    /** Reconstruct a block address from tag and set. */
    BlockAddr
    blockAddrFrom(std::uint32_t full_tag, std::uint32_t set) const
    {
        return (full_tag << index_bits_) | set;
    }

    /** First byte address of block @p b. */
    Addr
    byteAddrOf(BlockAddr b) const
    {
        return b << offset_bits_;
    }

    /** Number of full-tag bits for 32-bit byte addresses. */
    unsigned
    fullTagBits() const
    {
        return 32 - offset_bits_ - index_bits_;
    }

    /** Short name like "256K-32" (paper notation), with
     *  associativity when it is not 1. */
    std::string name() const;

    bool
    operator==(const CacheGeometry &o) const
    {
        return size_ == o.size_ && block_ == o.block_ &&
               assoc_ == o.assoc_;
    }

  private:
    std::uint32_t size_;
    std::uint32_t block_;
    std::uint32_t assoc_;
    std::uint32_t sets_;
    unsigned offset_bits_;
    unsigned index_bits_;
};

} // namespace mem
} // namespace assoc

#endif // ASSOC_MEM_GEOMETRY_H
