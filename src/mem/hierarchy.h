/**
 * @file
 * The paper's evaluation substrate: a direct-mapped write-back
 * level-one cache in front of an a-way set-associative write-back
 * level-two cache (Table 3).
 *
 * The level-one cache turns the processor reference stream into a
 * stream of *read-in* and *write-back* requests; on a miss that
 * displaces a dirty block, the read-in is issued first, then the
 * write-back. The hierarchy also maintains the per-line level-two
 * way *hints* that implement the paper's write-back optimization
 * and monitors how often multi-level inclusion would be violated.
 *
 * Lookup-cost observers (src/core) attach here and are shown every
 * level-two access before it commits.
 */

#ifndef ASSOC_MEM_HIERARCHY_H
#define ASSOC_MEM_HIERARCHY_H

#include <cstdint>
#include <vector>

#include "mem/cache.h"
#include "trace/trace_source.h"

namespace assoc {
namespace mem {

/** Kind of request the level-one cache sends to the level-two. */
enum class L2ReqType : std::uint8_t {
    ReadIn,    ///< fetch a block missing from the level-one cache
    WriteBack, ///< write a dirty displaced block to the level two
};

/**
 * What an observer sees for one level-two access, *before* the
 * access updates any state.
 *
 * The per-way planes (full_tags / valid / mru_order) are a decoded
 * scratch view of the accessed set, produced once per access by the
 * hierarchy and shared by every observer: they alias hierarchy
 * scratch buffers and are only valid for the duration of observe().
 * They carry exactly what core::LookupInput needs, so probe meters
 * feed strategies without touching the cache's packed state; @c
 * cache remains available for anything else (auditors, tests).
 */
struct L2AccessView
{
    L2ReqType type;
    std::uint32_t set;            ///< level-two set index
    BlockAddr block;              ///< incoming block address
    std::uint32_t full_tag;       ///< incoming full tag
    const WriteBackCache *cache;  ///< pre-access level-two state
    int hit_way;                  ///< way that hits, or -1 on a miss
    int hint_way;                 ///< L1's way hint (write-backs), -1 none

    /** Full (untruncated) tag per way of the accessed set. */
    const std::uint32_t *full_tags = nullptr;
    /** 0/1 valid flag per way. */
    const std::uint8_t *valid = nullptr;
    /** Way indices from most- to least-recently used. */
    const std::uint8_t *mru_order = nullptr;
};

/** Interface for lookup-cost observers (probe meters). */
class L2Observer
{
  public:
    virtual ~L2Observer() = default;

    /** Called once per level-two access, before state updates. */
    virtual void observe(const L2AccessView &view) = 0;

    /** Called when the hierarchy is flushed (cold-start boundary). */
    virtual void onFlush() {}
};

/**
 * The memory side of the level-two cache. By default level-two
 * misses are served by an ideal memory; installing a MemorySide
 * lets a further cache level (see ThirdLevelCache) or any custom
 * backend service that traffic — the paper's "level two (or
 * higher) caches".
 */
class MemorySide
{
  public:
    virtual ~MemorySide() = default;

    /** The level two missed: fetch @p l2_block. */
    virtual void fetch(BlockAddr l2_block) = 0;

    /** The level two evicted a dirty line holding @p l2_block. */
    virtual void writeBack(BlockAddr l2_block) = 0;

    /** The hierarchy was flushed. */
    virtual void onFlush() {}
};

/** Counters gathered while running a trace. */
struct HierarchyStats
{
    std::uint64_t proc_refs = 0;   ///< processor references
    std::uint64_t l1_hits = 0;
    std::uint64_t l1_misses = 0;

    std::uint64_t read_ins = 0;
    std::uint64_t read_in_hits = 0;
    std::uint64_t read_in_misses = 0;

    std::uint64_t write_backs = 0;
    std::uint64_t write_back_hits = 0;
    std::uint64_t write_back_misses = 0; ///< inclusion-violation proxy

    std::uint64_t hint_correct = 0; ///< write-back hint pointed at the block
    std::uint64_t hint_wrong = 0;   ///< block moved or was replaced

    std::uint64_t flushes = 0;

    /** Level-one lines invalidated to keep inclusion (when
     *  enforce_inclusion is set). */
    std::uint64_t inclusion_invalidations = 0;
    /** Inclusion invalidations that hit a dirty level-one line
     *  (its data travels to memory with the level-two victim). */
    std::uint64_t inclusion_dirty_invalidations = 0;

    /** Remote (coherency) invalidations that found the block. */
    std::uint64_t coherency_invalidations = 0;

    /** Level-one miss ratio: misses / processor references. */
    double l1MissRatio() const;

    /** Fraction of processor references missing both levels
     *  (the paper's *global miss ratio*). */
    double globalMissRatio() const;

    /** Fraction of level-two requests (read-ins + write-backs) that
     *  miss (the paper's *local miss ratio*). */
    double localMissRatio() const;

    /** Fraction of level-two requests that are write-backs. */
    double writeBackFraction() const;

    /** Fraction of write-backs whose way hint was correct. */
    double hintAccuracy() const;
};

/** How the level-one cache handles processor writes. */
enum class L1WritePolicy : std::uint8_t {
    /** Dirty lines written back on replacement (the paper's
     *  configuration, chosen to minimize inter-level traffic). */
    WriteBack,
    /** Every write is forwarded to the level two immediately; lines
     *  never become dirty, so replacements are silent. [Shor88]
     *  found this inferior — the write_policy ablation shows why. */
    WriteThrough,
};

/** Configuration of the two-level hierarchy. */
struct HierarchyConfig
{
    CacheGeometry l1;
    CacheGeometry l2;
    /**
     * Allocate a line when a write-back misses in the level two
     * (inclusion was violated). The paper's configuration does not
     * enforce inclusion but monitors these misses; allocating keeps
     * the data consistent.
     */
    bool allocate_on_wb_miss = true;
    /**
     * Enforce multi-level inclusion [Baer88]: when the level two
     * evicts a block, invalidate every level-one line it contains.
     * Guarantees write-backs always hit (enabling the write-back
     * optimization without hints being "hints"), at the price of
     * extra level-one misses. The paper extrapolated the effect to
     * be very small; the inclusion ablation measures it.
     */
    bool enforce_inclusion = false;
    /** Processor-write handling at the level one. */
    L1WritePolicy write_policy = L1WritePolicy::WriteBack;
    /**
     * Level-two victim selection. The paper uses LRU (whose per-set
     * state doubles as the MRU scheme's search list); Fifo and
     * Random are provided for replacement-policy ablations.
     */
    ReplPolicy l2_replacement = ReplPolicy::Lru;
};

/** The two-level write-back hierarchy. */
class TwoLevelHierarchy
{
  public:
    explicit TwoLevelHierarchy(const HierarchyConfig &cfg);

    /** Attach a lookup-cost observer (not owned). */
    void addObserver(L2Observer *obs);

    /** Install the level-two's memory side (not owned; optional). */
    void setMemorySide(MemorySide *mem);

    /** Apply one processor reference (or flush marker). */
    void access(const trace::MemRef &ref);

    /**
     * Stream an entire trace through the hierarchy. With @p batch
     * > 1, references are pulled @p batch at a time (one
     * TraceSource::nextBatch call instead of @p batch virtual
     * next() calls) and each access prefetches the next
     * reference's level-one and level-two set planes while the
     * current one executes. Accesses still commit strictly in
     * trace order, one at a time — the statistics are bit-for-bit
     * identical for every batch size (tests/kernels enforces it).
     */
    void run(trace::TraceSource &src, unsigned batch = 1);

    /** Invalidate both levels (cold start). */
    void flushAll();

    /**
     * Coherency invalidation from a remote processor: drop the
     * level-two line holding @p l2_block (its dirty data would go
     * to the requester) and every level-one line it contains.
     * @return true when the block was resident.
     */
    bool remoteInvalidate(BlockAddr l2_block);

    const HierarchyStats &stats() const { return stats_; }
    const WriteBackCache &l1() const { return l1_; }
    const WriteBackCache &l2() const { return l2_; }
    const HierarchyConfig &config() const { return cfg_; }

    /** Bytes held by both levels' line planes plus the way-hint and
     *  observer scratch planes (what a MemBudget is charged). */
    std::uint64_t
    footprintBytes() const
    {
        return l1_.footprintBytes() + l2_.footprintBytes() +
               way_hint_.size() * sizeof(std::int16_t) +
               scratch_tags_.size() * sizeof(std::uint32_t) +
               scratch_valid_.size() + scratch_order_.size();
    }

  private:
    /** Issue a read-in; @return the level-two way holding the block
     *  after the access. */
    int l2ReadIn(BlockAddr l2_block);

    /** Issue a write-back (or write-through store) carrying the
     *  level-one way hint. */
    void l2WriteBack(BlockAddr l2_block, int hint_way);

    /** Invalidate every level-one line inside an evicted level-two
     *  block (inclusion enforcement). */
    void enforceInclusion(BlockAddr evicted_l2_block);

    /** Decode the accessed set into the scratch view planes and
     *  deliver @p view to every observer. */
    void notify(L2AccessView &view);

    HierarchyConfig cfg_;
    WriteBackCache l1_;
    WriteBackCache l2_;

    // Scratch planes backing L2AccessView's decoded set view; sized
    // to the level-two associativity, refilled once per observed
    // access (skipped entirely when no observer is attached).
    std::vector<std::uint32_t> scratch_tags_;
    std::vector<std::uint8_t> scratch_valid_;
    std::vector<std::uint8_t> scratch_order_;

    /** Per level-one line: which level-two way holds its block
     *  (-1 unknown). Indexed like the level-one line array. */
    std::vector<std::int16_t> way_hint_;

    std::vector<L2Observer *> observers_;
    MemorySide *mem_side_ = nullptr;
    HierarchyStats stats_;
};

} // namespace mem
} // namespace assoc

#endif // ASSOC_MEM_HIERARCHY_H
