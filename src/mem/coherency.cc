#include "mem/coherency.h"

#include "util/logging.h"

namespace assoc {
namespace mem {

CoherencyTraffic::CoherencyTraffic(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed, 0x51deCa11)
{
    fatalIf(rate < 0.0 || rate > 1.0,
            "invalidation rate must be in [0, 1]");
}

void
CoherencyTraffic::step(TwoLevelHierarchy &hier)
{
    if (rate_ == 0.0 || !rng_.chance(rate_))
        return;
    // Choose a random frame; if it holds a block, invalidate that
    // block. Remote writes hit *resident* shared data more often
    // than not, so retry a few times before giving up.
    const WriteBackCache &l2 = hier.l2();
    const CacheGeometry &geom = l2.geom();
    for (int attempt = 0; attempt < 4; ++attempt) {
        std::uint32_t set = rng_.below(geom.sets());
        std::uint32_t way = rng_.below(geom.assoc());
        const Line &line = l2.line(set, static_cast<int>(way));
        if (!line.valid)
            continue;
        bool hit = hier.remoteInvalidate(line.block);
        panicIf(!hit, "resident block failed to invalidate");
        ++invalidations_;
        return;
    }
    ++misses_;
}

double
l2ValidFraction(const TwoLevelHierarchy &hier)
{
    const WriteBackCache &l2 = hier.l2();
    const CacheGeometry &geom = l2.geom();
    std::uint64_t valid = 0;
    for (std::uint32_t set = 0; set < geom.sets(); ++set)
        valid += l2.validCount(set);
    return static_cast<double>(valid) /
           (static_cast<double>(geom.sets()) * geom.assoc());
}

} // namespace mem
} // namespace assoc
