#include "mem/third_level.h"

#include "util/logging.h"

namespace assoc {
namespace mem {

double
ThirdLevelStats::localMissRatio() const
{
    std::uint64_t reqs = read_ins + write_backs;
    return reqs == 0 ? 0.0
                     : static_cast<double>(read_in_misses +
                                           write_back_misses) /
                           reqs;
}

double
ThirdLevelStats::writeBackFraction() const
{
    std::uint64_t reqs = read_ins + write_backs;
    return reqs == 0 ? 0.0 : static_cast<double>(write_backs) / reqs;
}

ThirdLevelCache::ThirdLevelCache(const CacheGeometry &l3,
                                 const CacheGeometry &l2,
                                 ReplPolicy policy)
    : l2_geom_(l2), l3_(l3, policy), scratch_tags_(l3.assoc()),
      scratch_valid_(l3.assoc()), scratch_order_(l3.assoc())
{
    fatalIf(l2.blockBytes() > l3.blockBytes(),
            "level-two block size exceeds level-three block size");
}

void
ThirdLevelCache::addObserver(L2Observer *obs)
{
    panicIf(obs == nullptr, "null observer");
    observers_.push_back(obs);
}

BlockAddr
ThirdLevelCache::l3BlockOf(BlockAddr l2_block) const
{
    return l3_.geom().blockAddrOf(l2_geom_.byteAddrOf(l2_block));
}

void
ThirdLevelCache::notify(L2AccessView &view)
{
    if (observers_.empty())
        return;
    l3_.snapshotSet(view.set, scratch_tags_.data(),
                    scratch_valid_.data(), scratch_order_.data());
    view.full_tags = scratch_tags_.data();
    view.valid = scratch_valid_.data();
    view.mru_order = scratch_order_.data();
    for (L2Observer *obs : observers_)
        obs->observe(view);
}

void
ThirdLevelCache::access(BlockAddr l3_block, L2ReqType type)
{
    int way = l3_.findWay(l3_block);

    L2AccessView view;
    view.type = type;
    view.set = l3_.geom().setOf(l3_block);
    view.block = l3_block;
    view.full_tag = l3_.geom().fullTagOf(l3_block);
    view.cache = &l3_;
    view.hit_way = way;
    view.hint_way = -1;
    notify(view);

    if (type == L2ReqType::ReadIn) {
        ++stats_.read_ins;
        if (way >= 0) {
            ++stats_.read_in_hits;
            l3_.touch(view.set, way);
        } else {
            ++stats_.read_in_misses;
            // Fetch from memory; dirty victims go to memory.
            l3_.fill(l3_block, false);
        }
    } else {
        ++stats_.write_backs;
        if (way >= 0) {
            ++stats_.write_back_hits;
            l3_.setDirty(view.set, way);
            l3_.touch(view.set, way);
        } else {
            ++stats_.write_back_misses;
            l3_.fill(l3_block, true);
        }
    }
}

void
ThirdLevelCache::fetch(BlockAddr l2_block)
{
    access(l3BlockOf(l2_block), L2ReqType::ReadIn);
}

void
ThirdLevelCache::writeBack(BlockAddr l2_block)
{
    access(l3BlockOf(l2_block), L2ReqType::WriteBack);
}

void
ThirdLevelCache::onFlush()
{
    l3_.flush();
    for (L2Observer *obs : observers_)
        obs->onFlush();
}

} // namespace mem
} // namespace assoc
