#include "mem/cache.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace assoc {
namespace mem {

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::Lru:
        return "LRU";
      case ReplPolicy::Fifo:
        return "FIFO";
      case ReplPolicy::Random:
        return "Random";
      case ReplPolicy::TreePlru:
        return "TreePLRU";
    }
    return "unknown";
}

WriteBackCache::WriteBackCache(const CacheGeometry &geom,
                               ReplPolicy policy, std::uint64_t seed)
    : geom_(geom), policy_(policy), rng_(seed, 0xbadc0de),
      lines_(static_cast<std::size_t>(geom.sets()) * geom.assoc()),
      mru_(geom.sets()), fifo_(geom.sets()), plru_(geom.sets(), 0)
{
    fatalIf(geom_.assoc() > 255, "associativity above 255 unsupported");
    fatalIf(policy_ == ReplPolicy::TreePlru && geom_.assoc() > 64,
            "tree PLRU supports associativity up to 64");
    for (std::uint32_t set = 0; set < geom_.sets(); ++set) {
        mru_[set].resize(geom_.assoc());
        fifo_[set].resize(geom_.assoc());
        resetOrder(set);
    }
}

void
WriteBackCache::resetOrder(std::uint32_t set)
{
    // After reset the recency state is arbitrary; rotate it by the
    // set index so that cold-cache fills are not correlated with
    // physical way order across sets (a real cache's power-on LRU
    // state has no such correlation, and the serial schemes' scan
    // costs would otherwise be biased).
    auto &order = mru_[set];
    std::uint32_t a = geom_.assoc();
    for (std::uint32_t i = 0; i < a; ++i)
        order[i] = static_cast<std::uint8_t>((i + set) % a);
    fifo_[set] = order;
}

int
WriteBackCache::findWay(BlockAddr b) const
{
    std::uint32_t set = geom_.setOf(b);
    for (std::uint32_t w = 0; w < geom_.assoc(); ++w) {
        const Line &l = lines_[index(set, static_cast<int>(w))];
        if (l.valid && l.block == b)
            return static_cast<int>(w);
    }
    return -1;
}

void
WriteBackCache::makeMru(std::uint32_t set, int way)
{
    auto &order = mru_[set];
    auto it = std::find(order.begin(), order.end(),
                        static_cast<std::uint8_t>(way));
    panicIf(it == order.end(), "way missing from recency order");
    order.erase(it);
    order.insert(order.begin(), static_cast<std::uint8_t>(way));
}

void
WriteBackCache::plruTouch(std::uint32_t set, int way)
{
    // Point every tree node on the path to @p way at the *other*
    // subtree, protecting the touched leaf.
    std::uint64_t &bits = plru_[set];
    unsigned levels = log2i(geom_.assoc());
    unsigned node = 1;
    for (unsigned l = levels; l > 0; --l) {
        bool right = (static_cast<unsigned>(way) >> (l - 1)) & 1;
        if (right)
            bits &= ~(std::uint64_t{1} << node);
        else
            bits |= std::uint64_t{1} << node;
        node = 2 * node + (right ? 1 : 0);
    }
}

int
WriteBackCache::plruVictim(std::uint32_t set) const
{
    // Follow the direction bits from the root (bit set = go right).
    std::uint64_t bits = plru_[set];
    unsigned levels = log2i(geom_.assoc());
    unsigned node = 1, way = 0;
    for (unsigned l = 0; l < levels; ++l) {
        bool right = (bits >> node) & 1;
        way = (way << 1) | (right ? 1u : 0u);
        node = 2 * node + (right ? 1 : 0);
    }
    return static_cast<int>(way);
}

void
WriteBackCache::touch(std::uint32_t set, int way)
{
    panicIf(way < 0 || static_cast<std::uint32_t>(way) >= geom_.assoc(),
            "touch: bad way");
    makeMru(set, way);
    if (policy_ == ReplPolicy::TreePlru && geom_.assoc() > 1)
        plruTouch(set, way);
}

void
WriteBackCache::setDirty(std::uint32_t set, int way)
{
    Line &l = lines_[index(set, way)];
    panicIf(!l.valid, "setDirty on an invalid line");
    l.dirty = true;
}

int
WriteBackCache::victimWay(std::uint32_t set) const
{
    // Invalid frames always occupy a suffix of the recency order
    // (they are pushed to the LRU end on flush and invalidation and
    // only leave it by being filled), so the back of the order is
    // an empty frame whenever one exists (a miss can fill any empty
    // block frame of the set), under every policy.
    int back = static_cast<int>(mru_[set].back());
    if (!lines_[index(set, back)].valid)
        return back;
    switch (policy_) {
      case ReplPolicy::Lru:
        return back;
      case ReplPolicy::Fifo:
        return static_cast<int>(fifo_[set].back());
      case ReplPolicy::Random:
        return static_cast<int>(rng_.below(geom_.assoc()));
      case ReplPolicy::TreePlru:
        return geom_.assoc() == 1 ? 0 : plruVictim(set);
    }
    panic("bad replacement policy");
}

FillResult
WriteBackCache::fill(BlockAddr b, bool dirty)
{
    panicIf(findWay(b) >= 0, "fill: block already present");
    std::uint32_t set = geom_.setOf(b);
    FillResult res;
    res.way = victimWay(set);

    Line &l = lines_[index(set, res.way)];
    if (l.valid) {
        res.evicted = true;
        res.victim_block = l.block;
        res.victim_dirty = l.dirty;
        ++evictions_;
        if (l.dirty)
            ++dirty_evictions_;
    }
    l.block = b;
    l.valid = true;
    l.dirty = dirty;
    ++fills_;
    makeMru(set, res.way);

    // Fill-age bookkeeping (drives the Fifo policy; cheap enough to
    // maintain unconditionally).
    auto &ages = fifo_[set];
    auto it = std::find(ages.begin(), ages.end(),
                        static_cast<std::uint8_t>(res.way));
    panicIf(it == ages.end(), "way missing from fill-age order");
    ages.erase(it);
    ages.insert(ages.begin(), static_cast<std::uint8_t>(res.way));
    if (policy_ == ReplPolicy::TreePlru && geom_.assoc() > 1)
        plruTouch(set, res.way);
    return res;
}

bool
WriteBackCache::invalidate(BlockAddr b)
{
    int way = findWay(b);
    if (way < 0)
        return false;
    std::uint32_t set = geom_.setOf(b);
    Line &l = lines_[index(set, way)];
    bool was_dirty = l.dirty;
    l.valid = false;
    l.dirty = false;
    // Demote the invalidated way to the LRU end so empty frames are
    // reused first.
    auto &order = mru_[set];
    auto it = std::find(order.begin(), order.end(),
                        static_cast<std::uint8_t>(way));
    order.erase(it);
    order.push_back(static_cast<std::uint8_t>(way));
    return was_dirty;
}

void
WriteBackCache::flush()
{
    for (auto &l : lines_) {
        l.valid = false;
        l.dirty = false;
    }
    for (std::uint32_t set = 0; set < geom_.sets(); ++set)
        resetOrder(set);
    std::fill(plru_.begin(), plru_.end(), 0);
}

unsigned
WriteBackCache::validCount(std::uint32_t set) const
{
    unsigned n = 0;
    for (std::uint32_t w = 0; w < geom_.assoc(); ++w)
        if (lines_[index(set, static_cast<int>(w))].valid)
            ++n;
    return n;
}

} // namespace mem
} // namespace assoc
