#include "mem/cache.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "core/kernels.h"
#include "util/logging.h"

namespace assoc {
namespace mem {

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::Lru:
        return "LRU";
      case ReplPolicy::Fifo:
        return "FIFO";
      case ReplPolicy::Random:
        return "Random";
      case ReplPolicy::TreePlru:
        return "TreePLRU";
    }
    return "unknown";
}

namespace {

/**
 * Publish one plane store as a relaxed atomic (a plain mov on
 * mainstream ISAs). Mutators are serialized per set by the caller
 * (src/svc's stripe locks), but probeRelaxed() readers race with
 * these stores by design — relaxed atomics make that defined
 * behavior and keep ThreadSanitizer quiet; the seqlock above
 * discards any torn view.
 */
template <class T>
inline void
planeStore(T &loc, T v)
{
    std::atomic_ref<T>(loc).store(v, std::memory_order_relaxed);
}

/** Matching relaxed atomic load for the optimistic read path. */
template <class T>
inline T
planeLoad(const T &loc)
{
    return std::atomic_ref<T>(const_cast<T &>(loc))
        .load(std::memory_order_relaxed);
}

/** A 1 in the low bit of each 4-bit slot. */
constexpr std::uint64_t kNibbleLsb = 0x1111111111111111ull;
/** A 1 in the high bit of each 4-bit slot. */
constexpr std::uint64_t kNibbleMsb = 0x8888888888888888ull;

/** Mask covering packed slots [0, n), n <= 16. */
inline std::uint64_t
slotMask(unsigned n)
{
    return n >= 16 ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << (4 * n)) - 1);
}

/**
 * Position of the slot holding @p way among the first @p a slots of
 * @p w. SWAR zero-nibble scan: XOR against the broadcast way turns
 * the match into a zero nibble; borrow propagation can only set
 * false-positive bits *above* the lowest true zero, so the lowest
 * set bit of the detector is always the first match.
 */
inline unsigned
slotFind(std::uint64_t w, unsigned a, unsigned way)
{
    std::uint64_t x = (w ^ (way * kNibbleLsb)) | ~slotMask(a);
    std::uint64_t zero = (x - kNibbleLsb) & ~x & kNibbleMsb;
    panicIf(zero == 0, "way missing from packed recency order");
    return static_cast<unsigned>(std::countr_zero(zero)) / 4;
}

/** Move the slot at @p pos to slot 0, shifting [0, pos) up one. */
inline std::uint64_t
slotPromote(std::uint64_t w, unsigned pos)
{
    std::uint64_t way = (w >> (4 * pos)) & 0xf;
    std::uint64_t below = w & slotMask(pos);
    std::uint64_t above = w & ~slotMask(pos + 1);
    return above | (below << 4) | way;
}

/** Move the slot at @p pos to slot a-1, shifting (pos, a) down. */
inline std::uint64_t
slotDemote(std::uint64_t w, unsigned pos, unsigned a)
{
    std::uint64_t way = (w >> (4 * pos)) & 0xf;
    std::uint64_t low = w & slotMask(pos);
    std::uint64_t high = w & ~slotMask(a);
    std::uint64_t mid = (w & (slotMask(a) & ~slotMask(pos + 1))) >> 4;
    return high | (way << (4 * (a - 1))) | mid | low;
}

} // namespace

WriteBackCache::WriteBackCache(const CacheGeometry &geom,
                               ReplPolicy policy, std::uint64_t seed)
    : geom_(geom), policy_(policy), rng_(seed, 0xbadc0de),
      assoc_(geom.assoc()), vwords_((geom.assoc() + 63) / 64),
      packed_(geom.assoc() <= 16),
      blocks_(static_cast<std::size_t>(geom.sets()) * geom.assoc(), 0),
      valid_(static_cast<std::size_t>(geom.sets()) * vwords_, 0),
      dirty_(static_cast<std::size_t>(geom.sets()) * vwords_, 0),
      plru_(geom.sets(), 0)
{
    fatalIf(geom_.assoc() > 255, "associativity above 255 unsupported");
    fatalIf(policy_ == ReplPolicy::TreePlru && geom_.assoc() > 64,
            "tree PLRU supports associativity up to 64");
    if (packed_) {
        mru_packed_.assign(geom_.sets(), 0);
        fifo_packed_.assign(geom_.sets(), 0);
    } else {
        mru_wide_.assign(blocks_.size(), 0);
        fifo_wide_.assign(blocks_.size(), 0);
    }
    for (std::uint32_t set = 0; set < geom_.sets(); ++set)
        resetOrder(set);
}

void
WriteBackCache::resetOrder(std::uint32_t set)
{
    // After reset the recency state is arbitrary; rotate it by the
    // set index so that cold-cache fills are not correlated with
    // physical way order across sets (a real cache's power-on LRU
    // state has no such correlation, and the serial schemes' scan
    // costs would otherwise be biased).
    if (packed_) {
        std::uint64_t w = 0;
        for (unsigned i = 0; i < assoc_; ++i)
            w |= static_cast<std::uint64_t>((i + set) % assoc_)
                 << (4 * i);
        mru_packed_[set] = w;
        fifo_packed_[set] = w;
    } else {
        std::uint8_t *mru = &mru_wide_[index(set, 0)];
        std::uint8_t *fifo = &fifo_wide_[index(set, 0)];
        for (unsigned i = 0; i < assoc_; ++i)
            mru[i] = static_cast<std::uint8_t>((i + set) % assoc_);
        std::memcpy(fifo, mru, assoc_);
    }
}

int
WriteBackCache::findWay(BlockAddr b) const
{
    std::uint32_t set = geom_.setOf(b);
    // Direct-mapped fast path: one bit, one compare.
    if (assoc_ == 1)
        return ((valid_[set] & 1) != 0 && blocks_[set] == b) ? 0
                                                             : -1;
    const BlockAddr *blk = &blocks_[index(set, 0)];
    const std::uint64_t *vw =
        &valid_[static_cast<std::size_t>(set) * vwords_];
    if (assoc_ <= 64) {
        // One kernel eq mask over the set's block plane; the lowest
        // set bit is the first valid way holding b (ways are
        // unique, but the lowest-bit pick also matches the old
        // valid-order scan exactly).
        std::uint64_t e = core::activeKernels().eq_mask_bits(
            blk, vw[0], assoc_, b);
        return e != 0
                   ? static_cast<int>(std::countr_zero(e))
                   : -1;
    }
    for (unsigned i = 0; i < vwords_; ++i) {
        std::uint64_t m = vw[i];
        while (m != 0) {
            unsigned w =
                i * 64 + static_cast<unsigned>(std::countr_zero(m));
            if (blk[w] == b)
                return static_cast<int>(w);
            m &= m - 1;
        }
    }
    return -1;
}

int
WriteBackCache::probeRelaxed(BlockAddr b, unsigned *probes) const
{
    const std::uint32_t set = geom_.setOf(b);
    if (assoc_ == 1) {
        *probes = 1;
        bool hit = (planeLoad(valid_[set]) & 1) != 0 &&
                   planeLoad(blocks_[set]) == b;
        return hit ? 0 : -1;
    }
    const std::size_t base = index(set, 0);
    const std::size_t vbase = static_cast<std::size_t>(set) * vwords_;
    // Walk the recency order from MRU to LRU so the probe count
    // prices the paper's serial MRU scan. A concurrently mutating
    // writer can tear the view (duplicate or out-of-range ways);
    // bounds are guarded so a torn decode cannot fault, and the
    // caller's seqlock validation discards the result.
    if (assoc_ <= 64) {
        // Tag compares as one torn-read-tolerant kernel eq mask
        // (the AVX2 body trades per-element relaxed loads for plain
        // vector loads outside TSan — see core/kernels.h); the
        // order walk then only tests bit membership.
        std::uint64_t vbits = planeLoad(valid_[vbase]);
        std::uint64_t e =
            core::activeKernels().eq_mask_bits_relaxed(
                &blocks_[base], vbits, assoc_, b);
        std::uint64_t packed_order = 0;
        if (packed_)
            packed_order = planeLoad(mru_packed_[set]);
        for (unsigned pos = 0; pos < assoc_; ++pos) {
            unsigned way =
                packed_
                    ? static_cast<unsigned>(
                          (packed_order >> (4 * pos)) & 0xf)
                    : planeLoad(mru_wide_[base + pos]);
            if (way >= assoc_)
                break; // torn order word; validation will reject
            if ((e >> way) & 1) {
                *probes = pos + 1;
                return static_cast<int>(way);
            }
        }
        *probes = assoc_;
        return -1;
    }
    for (unsigned pos = 0; pos < assoc_; ++pos) {
        unsigned way = planeLoad(mru_wide_[base + pos]);
        if (way >= assoc_)
            break; // torn order word; validation will reject
        bool valid =
            ((planeLoad(valid_[vbase + (way >> 6)]) >> (way & 63)) &
             1) != 0;
        if (valid && planeLoad(blocks_[base + way]) == b) {
            *probes = pos + 1;
            return static_cast<int>(way);
        }
    }
    *probes = assoc_;
    return -1;
}

void
WriteBackCache::orderPromote(std::vector<std::uint64_t> &packed,
                             std::vector<std::uint8_t> &wide,
                             std::uint32_t set, unsigned way)
{
    if (packed_) {
        std::uint64_t w = packed[set];
        planeStore(packed[set],
                   slotPromote(w, slotFind(w, assoc_, way)));
        return;
    }
    std::uint8_t *order = &wide[index(set, 0)];
    std::uint8_t *it = static_cast<std::uint8_t *>(
        std::memchr(order, static_cast<int>(way), assoc_));
    panicIf(it == nullptr, "way missing from recency order");
    // Shift [0, pos) up one slot, back to front, as atomic byte
    // stores (memmove would be an unpublished plain write).
    for (std::uint8_t *p = it; p != order; --p)
        planeStore(*p, *(p - 1));
    planeStore(order[0], static_cast<std::uint8_t>(way));
}

void
WriteBackCache::orderDemote(std::vector<std::uint64_t> &packed,
                            std::vector<std::uint8_t> &wide,
                            std::uint32_t set, unsigned way)
{
    if (packed_) {
        std::uint64_t w = packed[set];
        planeStore(packed[set],
                   slotDemote(w, slotFind(w, assoc_, way), assoc_));
        return;
    }
    std::uint8_t *order = &wide[index(set, 0)];
    std::uint8_t *it = static_cast<std::uint8_t *>(
        std::memchr(order, static_cast<int>(way), assoc_));
    panicIf(it == nullptr, "way missing from recency order");
    for (std::uint8_t *p = it; p != order + assoc_ - 1; ++p)
        planeStore(*p, *(p + 1));
    planeStore(order[assoc_ - 1], static_cast<std::uint8_t>(way));
}

unsigned
WriteBackCache::orderBack(const std::vector<std::uint64_t> &packed,
                          const std::vector<std::uint8_t> &wide,
                          std::uint32_t set) const
{
    if (packed_)
        return static_cast<unsigned>(
            (packed[set] >> (4 * (assoc_ - 1))) & 0xf);
    return wide[index(set, 0) + assoc_ - 1];
}

void
WriteBackCache::orderDecode(const std::vector<std::uint64_t> &packed,
                            const std::vector<std::uint8_t> &wide,
                            std::uint32_t set, std::uint8_t *out) const
{
    if (packed_) {
        core::activeKernels().expand_nibbles(packed[set], assoc_,
                                             out);
        return;
    }
    std::memcpy(out, &wide[index(set, 0)], assoc_);
}

void
WriteBackCache::makeMru(std::uint32_t set, int way)
{
    orderPromote(mru_packed_, mru_wide_, set,
                 static_cast<unsigned>(way));
}

void
WriteBackCache::plruTouch(std::uint32_t set, int way)
{
    // Point every tree node on the path to @p way at the *other*
    // subtree, protecting the touched leaf.
    std::uint64_t &bits = plru_[set];
    unsigned levels = log2i(geom_.assoc());
    unsigned node = 1;
    for (unsigned l = levels; l > 0; --l) {
        bool right = (static_cast<unsigned>(way) >> (l - 1)) & 1;
        if (right)
            bits &= ~(std::uint64_t{1} << node);
        else
            bits |= std::uint64_t{1} << node;
        node = 2 * node + (right ? 1 : 0);
    }
}

int
WriteBackCache::plruVictim(std::uint32_t set) const
{
    // Follow the direction bits from the root (bit set = go right).
    std::uint64_t bits = plru_[set];
    unsigned levels = log2i(geom_.assoc());
    unsigned node = 1, way = 0;
    for (unsigned l = 0; l < levels; ++l) {
        bool right = (bits >> node) & 1;
        way = (way << 1) | (right ? 1u : 0u);
        node = 2 * node + (right ? 1 : 0);
    }
    return static_cast<int>(way);
}

void
WriteBackCache::touch(std::uint32_t set, int way)
{
    panicIf(way < 0 || static_cast<std::uint32_t>(way) >= assoc_,
            "touch: bad way");
    if (assoc_ == 1)
        return; // a one-entry order cannot change
    makeMru(set, way);
    if (policy_ == ReplPolicy::TreePlru)
        plruTouch(set, way);
}

void
WriteBackCache::setDirty(std::uint32_t set, int way)
{
    unsigned w = static_cast<unsigned>(way);
    panicIf(!validBit(set, w), "setDirty on an invalid line");
    std::size_t mi = maskIndex(set, w);
    planeStore(dirty_[mi],
               dirty_[mi] | (std::uint64_t{1} << (w & 63)));
}

int
WriteBackCache::victimWay(std::uint32_t set) const
{
    // Invalid frames always occupy a suffix of the recency order
    // (they are pushed to the LRU end on flush and invalidation and
    // only leave it by being filled), so the back of the order is
    // an empty frame whenever one exists (a miss can fill any empty
    // block frame of the set), under every policy.
    unsigned back = orderBack(mru_packed_, mru_wide_, set);
    if (!validBit(set, back))
        return static_cast<int>(back);
    switch (policy_) {
      case ReplPolicy::Lru:
        return static_cast<int>(back);
      case ReplPolicy::Fifo:
        return static_cast<int>(orderBack(fifo_packed_, fifo_wide_,
                                          set));
      case ReplPolicy::Random:
        return static_cast<int>(rng_.below(assoc_));
      case ReplPolicy::TreePlru:
        return assoc_ == 1 ? 0 : plruVictim(set);
    }
    panic("bad replacement policy");
}

FillResult
WriteBackCache::fill(BlockAddr b, bool dirty)
{
    panicIf(findWay(b) >= 0, "fill: block already present");
    std::uint32_t set = geom_.setOf(b);
    FillResult res;
    res.way = victimWay(set);

    unsigned w = static_cast<unsigned>(res.way);
    std::size_t mi = maskIndex(set, w);
    std::uint64_t bit = std::uint64_t{1} << (w & 63);
    std::size_t idx = index(set, res.way);
    if (valid_[mi] & bit) {
        res.evicted = true;
        res.victim_block = blocks_[idx];
        res.victim_dirty = (dirty_[mi] & bit) != 0;
        evictions_.fetch_add(1, std::memory_order_relaxed);
        if (res.victim_dirty)
            dirty_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    planeStore(blocks_[idx], b);
    planeStore(valid_[mi], valid_[mi] | bit);
    if (dirty)
        planeStore(dirty_[mi], dirty_[mi] | bit);
    else
        planeStore(dirty_[mi], dirty_[mi] & ~bit);
    fills_.fetch_add(1, std::memory_order_relaxed);
    makeMru(set, res.way);

    // Fill-age bookkeeping (drives the Fifo policy; cheap enough to
    // maintain unconditionally).
    orderPromote(fifo_packed_, fifo_wide_, set, w);
    if (policy_ == ReplPolicy::TreePlru && assoc_ > 1)
        plruTouch(set, res.way);
    return res;
}

bool
WriteBackCache::invalidate(BlockAddr b)
{
    int way = findWay(b);
    if (way < 0)
        return false;
    std::uint32_t set = geom_.setOf(b);
    unsigned w = static_cast<unsigned>(way);
    std::size_t mi = maskIndex(set, w);
    std::uint64_t bit = std::uint64_t{1} << (w & 63);
    bool was_dirty = (dirty_[mi] & bit) != 0;
    planeStore(valid_[mi], valid_[mi] & ~bit);
    planeStore(dirty_[mi], dirty_[mi] & ~bit);
    // Demote the invalidated way to the LRU/oldest end of *both*
    // orders so empty frames are reused first and invalid frames
    // stay a suffix of the fill-age order too (victimWay() under
    // Fifo and the order checkers rely on the suffix invariant).
    orderDemote(mru_packed_, mru_wide_, set, w);
    orderDemote(fifo_packed_, fifo_wide_, set, w);
    return was_dirty;
}

void
WriteBackCache::flush()
{
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    for (std::uint32_t set = 0; set < geom_.sets(); ++set)
        resetOrder(set);
    std::fill(plru_.begin(), plru_.end(), 0);
}

std::vector<std::uint8_t>
WriteBackCache::mruOrder(std::uint32_t set) const
{
    std::vector<std::uint8_t> out(assoc_);
    orderDecode(mru_packed_, mru_wide_, set, out.data());
    return out;
}

std::vector<std::uint8_t>
WriteBackCache::fifoOrder(std::uint32_t set) const
{
    std::vector<std::uint8_t> out(assoc_);
    orderDecode(fifo_packed_, fifo_wide_, set, out.data());
    return out;
}

void
WriteBackCache::snapshotSet(std::uint32_t set,
                            std::uint32_t *full_tags,
                            std::uint8_t *valid,
                            std::uint8_t *mru) const
{
    const core::LookupKernels &kern = core::activeKernels();
    if (full_tags != nullptr) {
        // fullTagOf() is a uniform right shift of the block plane.
        kern.shift_tags(&blocks_[index(set, 0)], assoc_,
                        geom_.indexBits(), full_tags);
    }
    if (valid != nullptr) {
        const std::uint64_t *vw =
            &valid_[static_cast<std::size_t>(set) * vwords_];
        unsigned w = 0;
        for (unsigned i = 0; i < vwords_; ++i, w += 64)
            kern.expand_bits(vw[i],
                             assoc_ - w < 64 ? assoc_ - w : 64,
                             valid + w);
    }
    if (mru != nullptr)
        orderDecode(mru_packed_, mru_wide_, set, mru);
}

unsigned
WriteBackCache::validCount(std::uint32_t set) const
{
    unsigned n = 0;
    const std::uint64_t *vw =
        &valid_[static_cast<std::size_t>(set) * vwords_];
    for (unsigned i = 0; i < vwords_; ++i)
        n += popcount(vw[i]);
    return n;
}

} // namespace mem
} // namespace assoc
