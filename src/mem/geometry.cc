#include "mem/geometry.h"

#include "util/logging.h"

namespace assoc {
namespace mem {

CacheGeometry::CacheGeometry(std::uint32_t size_bytes,
                             std::uint32_t block_bytes,
                             std::uint32_t assoc)
    : size_(size_bytes), block_(block_bytes), assoc_(assoc)
{
    fatalIf(!isPow2(size_), "cache size must be a power of two");
    fatalIf(!isPow2(block_), "block size must be a power of two");
    fatalIf(!isPow2(assoc_), "associativity must be a power of two");
    fatalIf(block_ < 4, "block size must be at least 4 bytes");
    std::uint64_t frames = std::uint64_t{size_} / block_;
    fatalIf(frames == 0 || frames < assoc_,
            "cache too small for this block size and associativity");
    sets_ = static_cast<std::uint32_t>(frames / assoc_);
    offset_bits_ = log2i(block_);
    index_bits_ = log2i(sets_);
    fatalIf(offset_bits_ + index_bits_ >= 32,
            "cache index leaves no tag bits in a 32-bit address");
}

std::string
sizeLabel(std::uint32_t bytes)
{
    if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0)
        return std::to_string(bytes / (1024 * 1024)) + "M";
    if (bytes >= 1024 && bytes % 1024 == 0)
        return std::to_string(bytes / 1024) + "K";
    return std::to_string(bytes) + "B";
}

std::string
CacheGeometry::name() const
{
    std::string n = sizeLabel(size_) + "-" + std::to_string(block_);
    if (assoc_ != 1)
        n += " " + std::to_string(assoc_) + "-way";
    return n;
}

} // namespace mem
} // namespace assoc
