/**
 * @file
 * Coherency-invalidation traffic model.
 *
 * Footnote 1 of the paper: "a miss to a set-associative cache can
 * fill any empty block frame in the set, whereas a miss to a
 * direct-mapped cache can fill only a single frame. Increasing
 * associativity increases the chance that an invalidated block
 * frame will be quickly used again" — the paper's preliminary-model
 * claim that associativity improves cache utilization under
 * frequent coherency invalidations.
 *
 * The paper's traces are uniprocessor, so we model the *remote*
 * side of a multiprocessor synthetically: a Bernoulli process that
 * invalidates a random resident level-two block every processor
 * reference with a configurable probability (remote writes hitting
 * shared data). bench_coherency measures average level-two
 * occupancy and miss ratio versus associativity and invalidation
 * rate, testing the footnote's claim.
 */

#ifndef ASSOC_MEM_COHERENCY_H
#define ASSOC_MEM_COHERENCY_H

#include <cstdint>

#include "mem/hierarchy.h"
#include "util/rng.h"

namespace assoc {
namespace mem {

/** Synthetic remote-invalidation source. */
class CoherencyTraffic
{
  public:
    /**
     * @param rate probability of one remote invalidation per
     *        processor reference.
     * @param seed RNG seed (independent of the trace).
     */
    CoherencyTraffic(double rate, std::uint64_t seed = 0xC0137E11);

    /**
     * Advance one processor reference: possibly invalidate a random
     * resident block of @p hier's level two (and its level-one
     * copies, as a real invalidation would).
     */
    void step(TwoLevelHierarchy &hier);

    /** Invalidations actually performed (resident victim found). */
    std::uint64_t invalidations() const { return invalidations_; }

    /** Attempts that found no valid block in the chosen set. */
    std::uint64_t misses() const { return misses_; }

  private:
    double rate_;
    Pcg32 rng_;
    std::uint64_t invalidations_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Fraction of level-two frames currently valid (cache occupancy /
 * utilization; 1 - this is the footnote's "empty block frames").
 */
double l2ValidFraction(const TwoLevelHierarchy &hier);

} // namespace mem
} // namespace assoc

#endif // ASSOC_MEM_COHERENCY_H
