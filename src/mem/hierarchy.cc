#include "mem/hierarchy.h"

#include "util/logging.h"

namespace assoc {
namespace mem {

double
HierarchyStats::l1MissRatio() const
{
    return proc_refs == 0 ? 0.0
                          : static_cast<double>(l1_misses) / proc_refs;
}

double
HierarchyStats::globalMissRatio() const
{
    return proc_refs == 0 ? 0.0
                          : static_cast<double>(read_in_misses) /
                                proc_refs;
}

double
HierarchyStats::localMissRatio() const
{
    std::uint64_t reqs = read_ins + write_backs;
    return reqs == 0 ? 0.0
                     : static_cast<double>(read_in_misses +
                                           write_back_misses) /
                           reqs;
}

double
HierarchyStats::writeBackFraction() const
{
    std::uint64_t reqs = read_ins + write_backs;
    return reqs == 0 ? 0.0 : static_cast<double>(write_backs) / reqs;
}

double
HierarchyStats::hintAccuracy() const
{
    std::uint64_t n = hint_correct + hint_wrong;
    return n == 0 ? 0.0 : static_cast<double>(hint_correct) / n;
}

TwoLevelHierarchy::TwoLevelHierarchy(const HierarchyConfig &cfg)
    : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2, cfg.l2_replacement),
      scratch_tags_(cfg.l2.assoc()), scratch_valid_(cfg.l2.assoc()),
      scratch_order_(cfg.l2.assoc()),
      way_hint_(static_cast<std::size_t>(cfg.l1.sets()) *
                    cfg.l1.assoc(),
                -1)
{
    fatalIf(cfg_.l1.blockBytes() > cfg_.l2.blockBytes(),
            "level-one block size exceeds level-two block size");
}

void
TwoLevelHierarchy::addObserver(L2Observer *obs)
{
    panicIf(obs == nullptr, "null observer");
    observers_.push_back(obs);
}

void
TwoLevelHierarchy::setMemorySide(MemorySide *mem)
{
    panicIf(mem == nullptr, "null memory side");
    mem_side_ = mem;
}

void
TwoLevelHierarchy::notify(L2AccessView &view)
{
    if (observers_.empty())
        return;
    // Decode the accessed set once for every observer: the packed
    // cache state becomes the flat per-way planes core::LookupInput
    // expects, and meters stop re-reading lines per strategy.
    l2_.snapshotSet(view.set, scratch_tags_.data(),
                    scratch_valid_.data(), scratch_order_.data());
    view.full_tags = scratch_tags_.data();
    view.valid = scratch_valid_.data();
    view.mru_order = scratch_order_.data();
    for (L2Observer *obs : observers_)
        obs->observe(view);
}

int
TwoLevelHierarchy::l2ReadIn(BlockAddr l2_block)
{
    ++stats_.read_ins;
    std::uint32_t set = cfg_.l2.setOf(l2_block);
    int way = l2_.findWay(l2_block);

    if (!observers_.empty()) {
        L2AccessView view;
        view.type = L2ReqType::ReadIn;
        view.set = set;
        view.block = l2_block;
        view.full_tag = cfg_.l2.fullTagOf(l2_block);
        view.cache = &l2_;
        view.hit_way = way;
        view.hint_way = -1;
        notify(view);
    }

    if (way >= 0) {
        ++stats_.read_in_hits;
        l2_.touch(set, way);
        return way;
    }
    ++stats_.read_in_misses;
    // Fetch from the memory side; the line arrives clean. The
    // read-in precedes the victim write-back, mirroring the L1-L2
    // protocol.
    if (mem_side_)
        mem_side_->fetch(l2_block);
    FillResult fr = l2_.fill(l2_block, false);
    if (cfg_.enforce_inclusion && fr.evicted)
        enforceInclusion(fr.victim_block);
    if (fr.evicted && fr.victim_dirty && mem_side_)
        mem_side_->writeBack(fr.victim_block);
    return fr.way;
}

void
TwoLevelHierarchy::enforceInclusion(BlockAddr evicted_l2_block)
{
    // Every level-one line inside the evicted level-two block must
    // leave the level one as well [Baer88].
    std::uint32_t ratio = cfg_.l2.blockBytes() / cfg_.l1.blockBytes();
    trace::Addr base = cfg_.l2.byteAddrOf(evicted_l2_block);
    for (std::uint32_t i = 0; i < ratio; ++i) {
        BlockAddr l1_block =
            cfg_.l1.blockAddrOf(base + i * cfg_.l1.blockBytes());
        std::uint32_t set = cfg_.l1.setOf(l1_block);
        int way = l1_.findWay(l1_block);
        if (way < 0)
            continue;
        ++stats_.inclusion_invalidations;
        if (l1_.line(set, way).dirty) {
            // The dirty words travel to memory with the level-two
            // victim (not modeled beyond counting).
            ++stats_.inclusion_dirty_invalidations;
        }
        l1_.invalidate(l1_block);
        way_hint_[static_cast<std::size_t>(set) * cfg_.l1.assoc() +
                  way] = -1;
    }
}

void
TwoLevelHierarchy::l2WriteBack(BlockAddr l2_block, int hint_way)
{
    ++stats_.write_backs;
    std::uint32_t set = cfg_.l2.setOf(l2_block);
    int way = l2_.findWay(l2_block);

    if (!observers_.empty()) {
        L2AccessView view;
        view.type = L2ReqType::WriteBack;
        view.set = set;
        view.block = l2_block;
        view.full_tag = cfg_.l2.fullTagOf(l2_block);
        view.cache = &l2_;
        view.hit_way = way;
        view.hint_way = hint_way;
        notify(view);
    }

    if (hint_way >= 0) {
        if (way == hint_way)
            ++stats_.hint_correct;
        else
            ++stats_.hint_wrong;
    }

    if (way >= 0) {
        ++stats_.write_back_hits;
        l2_.setDirty(set, way);
        l2_.touch(set, way);
        return;
    }
    // The block was replaced in the level two while still live in
    // the level one: an inclusion violation.
    ++stats_.write_back_misses;
    if (cfg_.allocate_on_wb_miss) {
        if (mem_side_)
            mem_side_->fetch(l2_block); // write-allocate
        FillResult fr = l2_.fill(l2_block, true);
        if (cfg_.enforce_inclusion && fr.evicted)
            enforceInclusion(fr.victim_block);
        if (fr.evicted && fr.victim_dirty && mem_side_)
            mem_side_->writeBack(fr.victim_block);
    } else if (mem_side_) {
        // Without allocation the dirty data goes straight through.
        mem_side_->writeBack(l2_block);
    }
}

void
TwoLevelHierarchy::access(const trace::MemRef &ref)
{
    if (ref.isFlush()) {
        flushAll();
        ++stats_.flushes;
        return;
    }

    ++stats_.proc_refs;
    BlockAddr l1_block = cfg_.l1.blockAddrOf(ref.addr);
    std::uint32_t l1_set = cfg_.l1.setOf(l1_block);
    int l1_way = l1_.findWay(l1_block);

    if (l1_way >= 0) {
        ++stats_.l1_hits;
        l1_.touch(l1_set, l1_way);
        if (ref.isWrite()) {
            if (cfg_.write_policy == L1WritePolicy::WriteBack) {
                l1_.setDirty(l1_set, l1_way);
            } else {
                // Write-through: the store goes straight to the
                // level two, guided by the way hint.
                int hint =
                    way_hint_[static_cast<std::size_t>(l1_set) *
                                  cfg_.l1.assoc() +
                              l1_way];
                l2WriteBack(cfg_.l2.blockAddrOf(ref.addr), hint);
            }
        }
        return;
    }

    ++stats_.l1_misses;

    // Read-in first: the missing block is obtained before the
    // write-back of the displaced dirty block is issued (Table 3).
    BlockAddr l2_block = cfg_.l2.blockAddrOf(ref.addr);
    int l2_way = l2ReadIn(l2_block);

    // The fill happens after the read-in (whose inclusion
    // invalidations may have emptied level-one frames); the
    // FillResult carries the displaced victim's address and dirty
    // state, and its frame's level-two way hint is read before the
    // slot is overwritten with the new block's.
    bool fill_dirty = ref.isWrite() &&
                      cfg_.write_policy == L1WritePolicy::WriteBack;
    FillResult fr = l1_.fill(l1_block, fill_dirty);
    std::size_t hint_idx =
        static_cast<std::size_t>(l1_set) * cfg_.l1.assoc() +
        static_cast<std::size_t>(fr.way);
    int victim_hint = way_hint_[hint_idx];
    way_hint_[hint_idx] = static_cast<std::int16_t>(l2_way);

    // Then the write-back of the displaced dirty block (write-back
    // policy only; write-through lines are never dirty).
    if (fr.evicted && fr.victim_dirty) {
        trace::Addr victim_byte =
            cfg_.l1.byteAddrOf(fr.victim_block);
        l2WriteBack(cfg_.l2.blockAddrOf(victim_byte), victim_hint);
    }

    // A write-through store that missed the level one still goes to
    // the level two after the read-in.
    if (ref.isWrite() &&
        cfg_.write_policy == L1WritePolicy::WriteThrough)
        l2WriteBack(l2_block, l2_way);
}

void
TwoLevelHierarchy::run(trace::TraceSource &src, unsigned batch)
{
    src.reset();
    if (batch <= 1) {
        trace::MemRef r;
        while (src.next(r))
            access(r);
        return;
    }
    std::vector<trace::MemRef> buf(batch);
    for (;;) {
        std::size_t n = src.nextBatch(buf.data(), batch);
        if (n == 0)
            return;
        for (std::size_t i = 0; i < n; ++i) {
            // Warm the next reference's set planes while this one
            // executes; flush markers touch no set.
            if (i + 1 < n && !buf[i + 1].isFlush()) {
                l1_.prefetchSet(cfg_.l1.blockAddrOf(buf[i + 1].addr));
                l2_.prefetchSet(cfg_.l2.blockAddrOf(buf[i + 1].addr));
            }
            access(buf[i]);
        }
    }
}

bool
TwoLevelHierarchy::remoteInvalidate(BlockAddr l2_block)
{
    int way = l2_.findWay(l2_block);
    if (way < 0)
        return false;
    ++stats_.coherency_invalidations;
    l2_.invalidate(l2_block);
    // The invalidation propagates to the level one (as coherency
    // protocols require of an inclusive hierarchy; and without
    // inclusion, stale level-one copies must still die).
    std::uint32_t ratio = cfg_.l2.blockBytes() / cfg_.l1.blockBytes();
    trace::Addr base = cfg_.l2.byteAddrOf(l2_block);
    for (std::uint32_t i = 0; i < ratio; ++i) {
        BlockAddr l1_block =
            cfg_.l1.blockAddrOf(base + i * cfg_.l1.blockBytes());
        std::uint32_t set = cfg_.l1.setOf(l1_block);
        int l1_way = l1_.findWay(l1_block);
        if (l1_way < 0)
            continue;
        l1_.invalidate(l1_block);
        way_hint_[static_cast<std::size_t>(set) * cfg_.l1.assoc() +
                  l1_way] = -1;
    }
    return true;
}

void
TwoLevelHierarchy::flushAll()
{
    l1_.flush();
    l2_.flush();
    std::fill(way_hint_.begin(), way_hint_.end(),
              static_cast<std::int16_t>(-1));
    for (L2Observer *obs : observers_)
        obs->onFlush();
    if (mem_side_)
        mem_side_->onFlush();
}

} // namespace mem
} // namespace assoc
