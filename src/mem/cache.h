/**
 * @file
 * A generic a-way set-associative write-back cache model with true
 * LRU replacement.
 *
 * This models cache *state* only (tags, valid/dirty bits, per-set
 * recency order). Lookup cost (probes) is priced separately by the
 * observers in src/core, which read this state before each access
 * commits — that separation lets one simulation pass price every
 * lookup scheme of the paper on an identical reference stream.
 *
 * Storage layout (the simulation hot path — see docs/PERFORMANCE.md):
 *  - Line state is structure-of-arrays: one contiguous block-address
 *    plane plus per-set valid/dirty bitmasks, so findWay() is a
 *    bit-scan over the valid mask instead of a stride over structs.
 *  - The per-set MRU and fill-age (FIFO) orders are packed into one
 *    std::uint64_t of 4-bit way slots each when assoc <= 16 (slot 0
 *    = most recent); promotion and demotion are shift/mask updates.
 *    Larger associativities fall back to flat byte arrays.
 * Both layouts are observationally identical to the original
 * vector-of-Line / vector-of-vector representation (enforced by the
 * randomized equivalence tests in tests/mem/test_recency_packed.cc).
 *
 * Concurrency contract (the substrate of src/svc's seqlock): every
 * mutator publishes its plane stores as relaxed std::atomic_ref
 * stores (a plain mov on mainstream ISAs, so the single-threaded
 * hot path is unchanged) and the lifetime counters are relaxed
 * atomics. That makes the following discipline race-free, and
 * ThreadSanitizer-clean: writers externally serialized *per set*
 * (src/svc stripes a lock table over the sets), readers either
 * holding the same lock or calling probeRelaxed() under a seqlock
 * validation loop. flush() and the Random replacement policy are
 * excluded — both touch cross-set state (bulk fills, the shared
 * RNG) and may only run quiesced.
 */

#ifndef ASSOC_MEM_CACHE_H
#define ASSOC_MEM_CACHE_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "mem/geometry.h"
#include "util/rng.h"

namespace assoc {
namespace mem {

/**
 * One cache line (tag state only; data is not modeled). Lines are
 * stored structure-of-arrays internally; this struct is the
 * per-line *view* that line() materializes for observers and tests.
 */
struct Line
{
    BlockAddr block = 0; ///< block address stored here
    bool valid = false;
    bool dirty = false;
};

/** Result of allocating a block into a set. */
struct FillResult
{
    int way = -1;               ///< frame the block landed in
    bool evicted = false;       ///< a valid victim was displaced
    BlockAddr victim_block = 0; ///< victim's block address
    bool victim_dirty = false;  ///< victim needed writing back
};

/**
 * Replacement policy. The paper assumes LRU ("the least-recently-
 * used entry in a set is replaced") and notes that any policy
 * other than random needs extra per-set memory — which the MRU
 * scheme can share. Fifo and Random are provided for ablations;
 * the recency order used by the lookup-cost observers is
 * maintained regardless of the victim-selection policy.
 */
enum class ReplPolicy : std::uint8_t {
    Lru,    ///< true LRU (the paper's configuration)
    Fifo,   ///< replace the oldest-filled line
    Random, ///< replace a pseudo-random line (no extra memory)
    /**
     * Tree pseudo-LRU: a - 1 bits per set instead of the full LRU
     * list. The practical middle ground — if a design chooses it
     * over true LRU, the MRU scheme loses its free search list
     * (Section 2.1's cost argument in reverse).
     */
    TreePlru,
};

/** Printable policy name. */
const char *replPolicyName(ReplPolicy policy);

/**
 * The cache. Blocks never migrate between ways after they are
 * filled (a property the paper's write-back optimization relies
 * on: the level-one cache can remember which level-two way holds
 * each of its blocks).
 */
class WriteBackCache
{
  public:
    /**
     * @param geom shape of the cache.
     * @param policy victim selection (default: the paper's LRU).
     * @param seed RNG seed for the Random policy.
     */
    explicit WriteBackCache(const CacheGeometry &geom,
                            ReplPolicy policy = ReplPolicy::Lru,
                            std::uint64_t seed = 0x5eed);

    const CacheGeometry &geom() const { return geom_; }

    /** The victim-selection policy in use. */
    ReplPolicy policy() const { return policy_; }

    /**
     * Pure lookup: which way holds block @p b?
     * @return way index, or -1 on miss. No state changes.
     */
    int findWay(BlockAddr b) const;

    /**
     * Pure lookup for the concurrent service's optimistic read path:
     * scan @p b's set in MRU order through relaxed atomic loads, so
     * the scan may legally race with a concurrent (per-set
     * serialized) mutator. The result is only meaningful once the
     * caller's seqlock validation confirms no writer intervened; a
     * torn view never faults, it just returns an arbitrary miss/hit
     * that validation will discard.
     *
     * @param probes MRU-scan cost in the paper's probe currency:
     *        1-based position of the hit way in the recency order,
     *        or the associativity on a miss (a full Naive scan).
     * @return way index, or -1 on miss.
     */
    int probeRelaxed(BlockAddr b, unsigned *probes) const;

    /** Promote (set, way) to most recently used. */
    void touch(std::uint32_t set, int way);

    /** Mark (set, way) dirty (a write hit or write-back arrival). */
    void setDirty(std::uint32_t set, int way);

    /**
     * Allocate block @p b, evicting the least-recently-used line of
     * its set if the set is full. The new line becomes MRU.
     * @param dirty initial dirty state of the new line.
     * @pre findWay(b) < 0 (the block must not already be present).
     */
    FillResult fill(BlockAddr b, bool dirty);

    /**
     * The way that fill() would victimize for @p set right now
     * (an invalid way if one exists, else the LRU way).
     */
    int victimWay(std::uint32_t set) const;

    /**
     * Drop block @p b if present. The freed frame is demoted to the
     * tail of both the MRU and the fill-age orders so empty frames
     * always form a suffix of each (the invariant victimWay() and
     * the src/check order checkers rely on).
     * @return true when the invalidated line was valid and dirty.
     */
    bool invalidate(BlockAddr b);

    /** Invalidate every line and reset recency state. */
    void flush();

    /** Read one line (decoded view; for observers and tests). */
    Line
    line(std::uint32_t set, int way) const
    {
        std::size_t i = index(set, way);
        Line l;
        l.block = blocks_[i];
        l.valid = validBit(set, static_cast<unsigned>(way));
        l.dirty = dirtyBit(set, static_cast<unsigned>(way));
        return l;
    }

    /**
     * Recency order of @p set: way indices from most- to least-
     * recently used. Invalid ways occupy the tail. Decoded from the
     * packed representation: a snapshot, not a live reference.
     */
    std::vector<std::uint8_t> mruOrder(std::uint32_t set) const;

    /**
     * Fill-age order of @p set: way indices from youngest to oldest
     * fill. Invalid ways occupy the tail (see invalidate()).
     */
    std::vector<std::uint8_t> fifoOrder(std::uint32_t set) const;

    /**
     * Decode the pre-access state of @p set into caller scratch
     * buffers of assoc() elements each: full (untruncated) tags,
     * 0/1 valid flags and the MRU order. This is the hot-path
     * export used by TwoLevelHierarchy to hand lookup schemes a
     * core::LookupInput-compatible view without per-way line()
     * calls. Any pointer may be null to skip that plane.
     */
    void snapshotSet(std::uint32_t set, std::uint32_t *full_tags,
                     std::uint8_t *valid, std::uint8_t *mru) const;

    /** Number of valid lines in @p set. */
    unsigned validCount(std::uint32_t set) const;

    /**
     * Hint the hardware prefetcher at the planes of @p b's set (the
     * batched replay path warms the next access's lines while the
     * current one executes). Read-only and result-free.
     */
    void
    prefetchSet(BlockAddr b) const
    {
#if defined(__GNUC__) || defined(__clang__)
        std::uint32_t set = geom_.setOf(b);
        __builtin_prefetch(&blocks_[index(set, 0)]);
        __builtin_prefetch(
            &valid_[static_cast<std::size_t>(set) * vwords_]);
        if (packed_)
            __builtin_prefetch(&mru_packed_[set]);
        else
            __builtin_prefetch(&mru_wide_[index(set, 0)]);
#else
        (void)b;
#endif
    }

    /**
     * Bytes held by the line planes (tag, valid/dirty masks and
     * recency orders). What a MemBudget is charged for this cache;
     * exact for the planes, which dominate every other member.
     */
    std::uint64_t
    footprintBytes() const
    {
        return blocks_.size() * sizeof(BlockAddr) +
               (valid_.size() + dirty_.size() + mru_packed_.size() +
                fifo_packed_.size() + plru_.size()) *
                   sizeof(std::uint64_t) +
               mru_wide_.size() + fifo_wide_.size();
    }

    // --- lifetime counters (relaxed atomics: exact under per-set
    // --- serialization, monotonic snapshots while concurrent) ---
    std::uint64_t
    fills() const
    {
        return fills_.load(std::memory_order_relaxed);
    }
    std::uint64_t
    evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }
    std::uint64_t
    dirtyEvictions() const
    {
        return dirty_evictions_.load(std::memory_order_relaxed);
    }

  private:
    std::size_t
    index(std::uint32_t set, int way) const
    {
        return static_cast<std::size_t>(set) * assoc_ +
               static_cast<std::size_t>(way);
    }

    bool
    validBit(std::uint32_t set, unsigned way) const
    {
        return (valid_[maskIndex(set, way)] >> (way & 63)) & 1;
    }

    bool
    dirtyBit(std::uint32_t set, unsigned way) const
    {
        return (dirty_[maskIndex(set, way)] >> (way & 63)) & 1;
    }

    std::size_t
    maskIndex(std::uint32_t set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * vwords_ + (way >> 6);
    }

    void makeMru(std::uint32_t set, int way);
    void resetOrder(std::uint32_t set);

    /** Move @p way to the front (MRU / youngest) of one order. */
    void orderPromote(std::vector<std::uint64_t> &packed,
                      std::vector<std::uint8_t> &wide,
                      std::uint32_t set, unsigned way);
    /** Move @p way to the back (LRU / oldest) of one order. */
    void orderDemote(std::vector<std::uint64_t> &packed,
                     std::vector<std::uint8_t> &wide,
                     std::uint32_t set, unsigned way);
    /** Way at the back of one order. */
    unsigned orderBack(const std::vector<std::uint64_t> &packed,
                       const std::vector<std::uint8_t> &wide,
                       std::uint32_t set) const;
    /** Decode one order into @p out (assoc bytes). */
    void orderDecode(const std::vector<std::uint64_t> &packed,
                     const std::vector<std::uint8_t> &wide,
                     std::uint32_t set, std::uint8_t *out) const;

    void plruTouch(std::uint32_t set, int way);
    int plruVictim(std::uint32_t set) const;

    CacheGeometry geom_;
    ReplPolicy policy_;
    mutable Pcg32 rng_; ///< Random-policy victim draws

    unsigned assoc_;  ///< cached geom_.assoc()
    unsigned vwords_; ///< 64-bit mask words per set
    bool packed_;     ///< 4-bit packed orders (assoc <= 16)

    /** Block-address plane, sets * assoc contiguous entries.
     *  Invalid frames keep their last block (or 0 when never
     *  filled), matching the historical Line semantics. */
    std::vector<BlockAddr> blocks_;
    /** Valid bitmasks, vwords_ words per set. */
    std::vector<std::uint64_t> valid_;
    /** Dirty bitmasks, vwords_ words per set. */
    std::vector<std::uint64_t> dirty_;

    /** Packed MRU order (assoc <= 16): 4-bit way slots, slot 0 =
     *  most recently used. One word per set. */
    std::vector<std::uint64_t> mru_packed_;
    /** Packed fill-age order (front = youngest), Fifo policy. */
    std::vector<std::uint64_t> fifo_packed_;
    /** Fallback orders for assoc > 16: flat sets * assoc bytes. */
    std::vector<std::uint8_t> mru_wide_;
    std::vector<std::uint8_t> fifo_wide_;

    /** Tree-PLRU direction bits, one word per set (TreePlru). */
    std::vector<std::uint64_t> plru_;

    std::atomic<std::uint64_t> fills_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> dirty_evictions_{0};
};

} // namespace mem
} // namespace assoc

#endif // ASSOC_MEM_CACHE_H
