/**
 * @file
 * A generic a-way set-associative write-back cache model with true
 * LRU replacement.
 *
 * This models cache *state* only (tags, valid/dirty bits, per-set
 * recency order). Lookup cost (probes) is priced separately by the
 * observers in src/core, which read this state before each access
 * commits — that separation lets one simulation pass price every
 * lookup scheme of the paper on an identical reference stream.
 */

#ifndef ASSOC_MEM_CACHE_H
#define ASSOC_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "mem/geometry.h"
#include "util/rng.h"

namespace assoc {
namespace mem {

/** One cache line (tag state only; data is not modeled). */
struct Line
{
    BlockAddr block = 0; ///< block address stored here
    bool valid = false;
    bool dirty = false;
};

/** Result of allocating a block into a set. */
struct FillResult
{
    int way = -1;               ///< frame the block landed in
    bool evicted = false;       ///< a valid victim was displaced
    BlockAddr victim_block = 0; ///< victim's block address
    bool victim_dirty = false;  ///< victim needed writing back
};

/**
 * Replacement policy. The paper assumes LRU ("the least-recently-
 * used entry in a set is replaced") and notes that any policy
 * other than random needs extra per-set memory — which the MRU
 * scheme can share. Fifo and Random are provided for ablations;
 * the recency order used by the lookup-cost observers is
 * maintained regardless of the victim-selection policy.
 */
enum class ReplPolicy : std::uint8_t {
    Lru,    ///< true LRU (the paper's configuration)
    Fifo,   ///< replace the oldest-filled line
    Random, ///< replace a pseudo-random line (no extra memory)
    /**
     * Tree pseudo-LRU: a - 1 bits per set instead of the full LRU
     * list. The practical middle ground — if a design chooses it
     * over true LRU, the MRU scheme loses its free search list
     * (Section 2.1's cost argument in reverse).
     */
    TreePlru,
};

/** Printable policy name. */
const char *replPolicyName(ReplPolicy policy);

/**
 * The cache. Blocks never migrate between ways after they are
 * filled (a property the paper's write-back optimization relies
 * on: the level-one cache can remember which level-two way holds
 * each of its blocks).
 */
class WriteBackCache
{
  public:
    /**
     * @param geom shape of the cache.
     * @param policy victim selection (default: the paper's LRU).
     * @param seed RNG seed for the Random policy.
     */
    explicit WriteBackCache(const CacheGeometry &geom,
                            ReplPolicy policy = ReplPolicy::Lru,
                            std::uint64_t seed = 0x5eed);

    const CacheGeometry &geom() const { return geom_; }

    /** The victim-selection policy in use. */
    ReplPolicy policy() const { return policy_; }

    /**
     * Pure lookup: which way holds block @p b?
     * @return way index, or -1 on miss. No state changes.
     */
    int findWay(BlockAddr b) const;

    /** Promote (set, way) to most recently used. */
    void touch(std::uint32_t set, int way);

    /** Mark (set, way) dirty (a write hit or write-back arrival). */
    void setDirty(std::uint32_t set, int way);

    /**
     * Allocate block @p b, evicting the least-recently-used line of
     * its set if the set is full. The new line becomes MRU.
     * @param dirty initial dirty state of the new line.
     * @pre findWay(b) < 0 (the block must not already be present).
     */
    FillResult fill(BlockAddr b, bool dirty);

    /**
     * The way that fill() would victimize for @p set right now
     * (an invalid way if one exists, else the LRU way).
     */
    int victimWay(std::uint32_t set) const;

    /**
     * Drop block @p b if present.
     * @return true when the invalidated line was valid and dirty.
     */
    bool invalidate(BlockAddr b);

    /** Invalidate every line and reset recency state. */
    void flush();

    /** Read one line (for observers and tests). */
    const Line &
    line(std::uint32_t set, int way) const
    {
        return lines_[index(set, way)];
    }

    /**
     * Recency order of @p set: way indices from most- to least-
     * recently used. Invalid ways occupy the tail.
     */
    const std::vector<std::uint8_t> &
    mruOrder(std::uint32_t set) const
    {
        return mru_[set];
    }

    /** Number of valid lines in @p set. */
    unsigned validCount(std::uint32_t set) const;

    // --- lifetime counters ---
    std::uint64_t fills() const { return fills_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t dirtyEvictions() const { return dirty_evictions_; }

  private:
    std::size_t
    index(std::uint32_t set, int way) const
    {
        return static_cast<std::size_t>(set) * geom_.assoc() +
               static_cast<std::size_t>(way);
    }

    void makeMru(std::uint32_t set, int way);
    void resetOrder(std::uint32_t set);

    void plruTouch(std::uint32_t set, int way);
    int plruVictim(std::uint32_t set) const;

    CacheGeometry geom_;
    ReplPolicy policy_;
    mutable Pcg32 rng_; ///< Random-policy victim draws
    std::vector<Line> lines_;
    std::vector<std::vector<std::uint8_t>> mru_;
    /** Fill-age order per set (front = youngest), Fifo policy. */
    std::vector<std::vector<std::uint8_t>> fifo_;
    /** Tree-PLRU direction bits, one word per set (TreePlru). */
    std::vector<std::uint64_t> plru_;

    std::uint64_t fills_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t dirty_evictions_ = 0;
};

} // namespace mem
} // namespace assoc

#endif // ASSOC_MEM_CACHE_H
