/**
 * @file
 * A third cache level: the "level two (or higher) caches" the
 * paper's abstract targets for the cheap associativity schemes.
 *
 * ThirdLevelCache implements the level-two's MemorySide: it
 * services level-two read misses (fetch) and dirty evictions
 * (writeBack) with an a-way write-back cache of its own, and
 * re-exposes the L2Observer hook so the same probe meters price
 * lookups at the third level. Its reference stream is the paper's
 * argument taken one level further — twice-filtered, so hit times
 * matter even less and the serial schemes are even more attractive.
 *
 * The write-back optimization generalizes: the level two can retain
 * a way hint for each of its blocks in the level three, so
 * level-two write-backs are priced at zero probes by meters with
 * wb_optimization set (write-backs arrive as L2ReqType::WriteBack
 * views, exactly as at the second level).
 */

#ifndef ASSOC_MEM_THIRD_LEVEL_H
#define ASSOC_MEM_THIRD_LEVEL_H

#include <vector>

#include "mem/cache.h"
#include "mem/hierarchy.h"

namespace assoc {
namespace mem {

/** Statistics of the third level. */
struct ThirdLevelStats
{
    std::uint64_t read_ins = 0;
    std::uint64_t read_in_hits = 0;
    std::uint64_t read_in_misses = 0;
    std::uint64_t write_backs = 0;
    std::uint64_t write_back_hits = 0;
    std::uint64_t write_back_misses = 0;

    /** Fraction of level-three requests that miss. */
    double localMissRatio() const;
    /** Fraction of level-three requests that are write-backs. */
    double writeBackFraction() const;
};

/** The level-three cache behind a TwoLevelHierarchy. */
class ThirdLevelCache : public MemorySide
{
  public:
    /**
     * @param l3 geometry of the third level (block size must be
     *        >= the level-two block size).
     * @param l2 geometry of the level two feeding this cache.
     * @param policy victim selection (paper default: LRU).
     */
    ThirdLevelCache(const CacheGeometry &l3, const CacheGeometry &l2,
                    ReplPolicy policy = ReplPolicy::Lru);

    /** Attach a lookup-cost observer (not owned). */
    void addObserver(L2Observer *obs);

    void fetch(BlockAddr l2_block) override;
    void writeBack(BlockAddr l2_block) override;
    void onFlush() override;

    const ThirdLevelStats &stats() const { return stats_; }
    const WriteBackCache &cache() const { return l3_; }

  private:
    BlockAddr l3BlockOf(BlockAddr l2_block) const;
    /** Decode the accessed set into the scratch planes and deliver
     *  @p view to every observer (same contract as the two-level
     *  hierarchy's notify). */
    void notify(L2AccessView &view);
    void access(BlockAddr l3_block, L2ReqType type);

    CacheGeometry l2_geom_;
    WriteBackCache l3_;
    std::vector<L2Observer *> observers_;
    ThirdLevelStats stats_;

    // Scratch planes backing L2AccessView's decoded set view.
    std::vector<std::uint32_t> scratch_tags_;
    std::vector<std::uint8_t> scratch_valid_;
    std::vector<std::uint8_t> scratch_order_;
};

} // namespace mem
} // namespace assoc

#endif // ASSOC_MEM_THIRD_LEVEL_H
