/**
 * @file
 * CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
 *
 * The checksum guarding every frame of the ftr trace format
 * (src/trace/ftr_format.h). Castagnoli rather than the zlib CRC32
 * because its error-detection properties are better at the frame
 * sizes we use and because it is the polynomial hardware accelerates
 * (SSE4.2 crc32, ARMv8 CRC) — the portable slice-by-8 implementation
 * here decodes multiple gigabytes per second, fast enough that
 * verification never becomes the streaming bottleneck, while staying
 * bit-identical on every platform.
 */

#ifndef ASSOC_UTIL_CRC32C_H
#define ASSOC_UTIL_CRC32C_H

#include <cstddef>
#include <cstdint>

namespace assoc {

/**
 * Extend a running CRC32C over @p len bytes at @p data. Start with
 * @p crc = 0 for a fresh checksum; feed chunks in order to checksum
 * a stream piecewise. The standard "123456789" test vector yields
 * 0xE3069283.
 */
std::uint32_t crc32c(std::uint32_t crc, const void *data,
                     std::size_t len);

/** One-shot convenience: crc32c(0, data, len). */
inline std::uint32_t
crc32c(const void *data, std::size_t len)
{
    return crc32c(0, data, len);
}

} // namespace assoc

#endif // ASSOC_UTIL_CRC32C_H
