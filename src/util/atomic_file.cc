#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace assoc {

namespace {

Error
ioError(const std::string &what, const std::string &path)
{
    return Error::io(what + " '" + path + "': " +
                     std::strerror(errno));
}

/** Flush the named file's bytes to stable storage. */
Expected<void>
fsyncPath(const std::string &path)
{
#ifdef _WIN32
    (void)path; // no fsync; rename atomicity is best-effort here
    return {};
#else
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return ioError("cannot reopen for fsync", path);
    int rc = ::fsync(fd);
    int saved = errno;
    ::close(fd);
    if (rc != 0) {
        errno = saved;
        return ioError("cannot fsync", path);
    }
    return {};
#endif
}

int
processId()
{
#ifdef _WIN32
    return _getpid();
#else
    return static_cast<int>(::getpid());
#endif
}

} // namespace

Expected<void>
writeFileAtomic(const std::string &path, const FileContentWriter &write)
{
    std::ostringstream pidded;
    pidded << path << ".tmp." << processId();
    const std::string tmp = pidded.str();

    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            errno = errno ? errno : EACCES;
            return ioError("cannot create temp file", tmp);
        }
        try {
            write(os);
        } catch (...) {
            os.close();
            std::remove(tmp.c_str());
            throw;
        }
        os.flush();
        if (!os) {
            std::remove(tmp.c_str());
            errno = errno ? errno : EIO;
            return ioError("short write to temp file", tmp);
        }
    }

    Expected<void> synced = fsyncPath(tmp);
    if (!synced.ok()) {
        std::remove(tmp.c_str());
        return synced.takeError().withContext("writing '" + path +
                                              "' atomically");
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        Error e = ioError("cannot rename temp file over", path);
        std::remove(tmp.c_str());
        return e;
    }
    return {};
}

} // namespace assoc
