#include "util/backoff.h"

#include <chrono>
#include <thread>

namespace assoc {

std::uint64_t
Backoff::nextDelayNs()
{
    // ceil = initial * multiplier^attempts, saturated at max_ns
    // (the loop below cannot overflow: it stops growing at the cap).
    std::uint64_t ceil = policy_.initial_ns;
    for (unsigned k = 0; k < attempts_; ++k) {
        if (policy_.multiplier <= 1)
            break;
        if (ceil >= policy_.max_ns / policy_.multiplier) {
            ceil = policy_.max_ns;
            break;
        }
        ceil *= policy_.multiplier;
    }
    if (ceil > policy_.max_ns)
        ceil = policy_.max_ns;
    ++attempts_;
    if (ceil == 0)
        return 0;
    // Equal jitter: uniform in [ceil/2, ceil]. Draw the span with
    // one 32-bit draw scaled up; span fits easily (delays are
    // sub-second).
    std::uint64_t half = ceil / 2;
    std::uint64_t span = ceil - half + 1;
    std::uint64_t off =
        span > 1
            ? (rng_.next64() % span) // span << 2^64: bias negligible
            : 0;
    return half + off;
}

void
backoffSleep(std::uint64_t ns)
{
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

RetryOutcome
retryOverloaded(const std::function<Error()> &op,
                const BackoffPolicy &policy, unsigned max_attempts,
                const CancelToken *cancel,
                const BackoffSleeper &sleep)
{
    RetryOutcome out;
    Backoff backoff(policy);
    const BackoffSleeper &snooze =
        sleep ? sleep : BackoffSleeper(backoffSleep);
    if (max_attempts == 0)
        max_attempts = 1;
    for (;;) {
        if (cancel) {
            Expected<void> alive = cancel->checkpoint();
            if (!alive.ok()) {
                out.error = alive.takeError().withContext(
                    "retrying an overloaded request");
                return out;
            }
        }
        ++out.attempts;
        out.error = op();
        bool retryable = out.error.code() == ErrorCode::Overloaded ||
                         out.error.transient();
        if (out.error.ok() || !retryable ||
            out.attempts >= max_attempts)
            return out;
        std::uint64_t ns = backoff.nextDelayNs();
        out.waited_ns += ns;
        snooze(ns);
    }
}

} // namespace assoc
