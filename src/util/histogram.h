/**
 * @file
 * Fixed-bucket and sparse histograms for distribution statistics
 * (e.g. the MRU-distance distribution f_i of Figure 5).
 */

#ifndef ASSOC_UTIL_HISTOGRAM_H
#define ASSOC_UTIL_HISTOGRAM_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace assoc {

/**
 * Histogram over small non-negative integers with an overflow
 * bucket. Bucket i counts samples equal to i; samples >= size go to
 * the overflow bucket.
 */
class Histogram
{
  public:
    /** @param size number of exact buckets. */
    explicit Histogram(std::size_t size = 0) : buckets_(size, 0) {}

    /** Record one sample of value @p v. */
    void
    record(std::uint64_t v)
    {
        ++total_;
        sum_ += v;
        if (v < buckets_.size())
            ++buckets_[v];
        else
            ++overflow_;
    }

    /** Number of exact buckets. */
    std::size_t size() const { return buckets_.size(); }

    /** Count in bucket @p i. */
    std::uint64_t count(std::size_t i) const { return buckets_.at(i); }

    /** Count of samples >= size(). */
    std::uint64_t overflow() const { return overflow_; }

    /** Total number of recorded samples. */
    std::uint64_t total() const { return total_; }

    /** Fraction of samples in bucket @p i (0 when empty). */
    double
    fraction(std::size_t i) const
    {
        std::uint64_t c = buckets_.at(i);
        return total_ == 0 ? 0.0
                           : static_cast<double>(c) /
                                 static_cast<double>(total_);
    }

    /** Mean of all recorded samples (0 when empty). */
    double
    mean() const
    {
        return total_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(total_);
    }

    /** Reset all counts (bucket count is preserved). */
    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        overflow_ = 0;
        total_ = 0;
        sum_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

} // namespace assoc

#endif // ASSOC_UTIL_HISTOGRAM_H
