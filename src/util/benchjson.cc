#include "util/benchjson.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace assoc {

namespace {

/**
 * Minimal recursive-descent JSON reader. Only the shapes
 * google-benchmark emits are needed, but the grammar is implemented
 * in full so a context field with an unexpected nesting never kills
 * the parse: values we don't care about are parsed and discarded.
 */
class JsonCursor
{
  public:
    explicit JsonCursor(const std::string &text) : s_(text) {}

    bool failed() const { return failed_; }
    const std::string &message() const { return message_; }

    void ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        ws();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    char peek()
    {
        ws();
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void fail(const std::string &what)
    {
        if (!failed_) {
            failed_ = true;
            message_ = what + " at offset " + std::to_string(pos_);
        }
    }

    bool parseString(std::string &out)
    {
        out.clear();
        if (!consume('"')) {
            fail("expected string");
            return false;
        }
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    break;
                char e = s_[pos_++];
                switch (e) {
                case 'n': out.push_back('\n'); break;
                case 't': out.push_back('\t'); break;
                case 'r': out.push_back('\r'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'u':
                    // Tolerated, not transcoded: benchmark names
                    // are plain ASCII; keep the escape verbatim.
                    out.push_back('?');
                    pos_ += (pos_ + 4 <= s_.size()) ? 4 : 0;
                    break;
                default: out.push_back(e); break;
                }
            } else {
                out.push_back(c);
            }
        }
        fail("unterminated string");
        return false;
    }

    bool parseNumber(double &out)
    {
        ws();
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        out = std::strtod(start, &end);
        if (end == start) {
            fail("expected number");
            return false;
        }
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool parseLiteral(const char *lit)
    {
        ws();
        std::size_t n = 0;
        while (lit[n])
            ++n;
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        fail("bad literal");
        return false;
    }

    /** Parse and discard one value of any type. */
    bool skipValue()
    {
        switch (peek()) {
        case '{': {
            consume('{');
            if (consume('}'))
                return true;
            do {
                std::string key;
                if (!parseString(key) || !consume(':') ||
                    !skipValue())
                    return false;
            } while (consume(','));
            if (!consume('}')) {
                fail("expected }");
                return false;
            }
            return true;
        }
        case '[': {
            consume('[');
            if (consume(']'))
                return true;
            do {
                if (!skipValue())
                    return false;
            } while (consume(','));
            if (!consume(']')) {
                fail("expected ]");
                return false;
            }
            return true;
        }
        case '"': {
            std::string s;
            return parseString(s);
        }
        case 't': return parseLiteral("true");
        case 'f': return parseLiteral("false");
        case 'n': return parseLiteral("null");
        default: {
            double d;
            return parseNumber(d);
        }
        }
    }

    /**
     * Parse one object of the "benchmarks" array into @p entry,
     * keeping the known scalar fields and discarding the rest.
     */
    bool parseBenchEntry(BenchEntry &entry)
    {
        if (!consume('{')) {
            fail("expected benchmark object");
            return false;
        }
        if (consume('}'))
            return true;
        do {
            std::string key;
            if (!parseString(key) || !consume(':')) {
                fail("expected key");
                return false;
            }
            if (key == "name" || key == "run_type" ||
                key == "time_unit") {
                std::string val;
                if (!parseString(val))
                    return false;
                if (key == "name")
                    entry.name = val;
                else if (key == "run_type")
                    entry.run_type = val;
                else
                    entry.time_unit = val;
            } else if (key == "real_time" || key == "cpu_time") {
                double val;
                if (!parseNumber(val))
                    return false;
                (key == "real_time" ? entry.real_time
                                    : entry.cpu_time) = val;
            } else if (!skipValue()) {
                return false;
            }
        } while (consume(','));
        if (!consume('}')) {
            fail("expected }");
            return false;
        }
        return true;
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string message_;
};

} // namespace

Error
parseBenchJson(const std::string &text, std::vector<BenchEntry> &out)
{
    out.clear();
    JsonCursor cur(text);
    if (!cur.consume('{'))
        return Error(ErrorCode::Data,
                     "benchmark JSON: expected top-level object");
    bool saw_benchmarks = false;
    if (!cur.consume('}')) {
        do {
            std::string key;
            if (!cur.parseString(key) || !cur.consume(':'))
                break;
            if (key == "benchmarks") {
                saw_benchmarks = true;
                if (!cur.consume('['))
                    return Error(ErrorCode::Data,
                                 "benchmark JSON: \"benchmarks\" is "
                                 "not an array");
                if (!cur.consume(']')) {
                    do {
                        BenchEntry e;
                        if (!cur.parseBenchEntry(e))
                            break;
                        // Aggregate rows (mean/median/stddev from
                        // --benchmark_repetitions) would double-count.
                        if (e.run_type != "aggregate")
                            out.push_back(std::move(e));
                    } while (cur.consume(','));
                    if (!cur.failed() && !cur.consume(']'))
                        cur.fail("expected ]");
                }
            } else if (!cur.skipValue()) {
                break;
            }
        } while (cur.consume(','));
    }
    if (cur.failed())
        return Error(ErrorCode::Data,
                     "benchmark JSON: " + cur.message());
    if (!saw_benchmarks)
        return Error(ErrorCode::Data,
                     "benchmark JSON: no \"benchmarks\" array");
    return Error();
}

Error
loadBenchJson(const std::string &path, std::vector<BenchEntry> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Error(ErrorCode::Io, "cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    Error err = parseBenchJson(text.str(), out);
    if (!err.ok())
        err.withContext("while reading " + path);
    return err;
}

double
benchTimeNs(const BenchEntry &e, BenchMetric metric)
{
    double t = metric == BenchMetric::CpuTime ? e.cpu_time
                                              : e.real_time;
    if (e.time_unit == "us")
        return t * 1e3;
    if (e.time_unit == "ms")
        return t * 1e6;
    if (e.time_unit == "s")
        return t * 1e9;
    return t; // "ns" (and the benchmark library's default)
}

std::vector<BenchEntry>
filterBenchEntries(const std::vector<BenchEntry> &entries,
                   const std::string &needle)
{
    if (needle.empty())
        return entries;
    std::vector<BenchEntry> out;
    for (const BenchEntry &e : entries)
        if (e.name.find(needle) != std::string::npos)
            out.push_back(e);
    return out;
}

BenchComparison
compareBench(const std::vector<BenchEntry> &baseline,
             const std::vector<BenchEntry> &current,
             BenchMetric metric)
{
    BenchComparison cmp;
    std::map<std::string, double> base_ns;
    for (const BenchEntry &e : baseline)
        base_ns[e.name] = benchTimeNs(e, metric);
    std::map<std::string, bool> seen;
    for (const BenchEntry &e : current) {
        auto it = base_ns.find(e.name);
        if (it == base_ns.end()) {
            cmp.added.push_back(e.name);
            continue;
        }
        seen[e.name] = true;
        if (it->second <= 0.0)
            continue;
        BenchDelta d;
        d.name = e.name;
        d.baseline_ns = it->second;
        d.current_ns = benchTimeNs(e, metric);
        d.ratio = d.current_ns / d.baseline_ns;
        if (d.ratio > cmp.worst_ratio) {
            cmp.worst_ratio = d.ratio;
            cmp.worst_name = d.name;
        }
        cmp.deltas.push_back(std::move(d));
    }
    for (const auto &[name, ns] : base_ns) {
        (void)ns;
        if (!seen.count(name))
            cmp.missing.push_back(name);
    }
    return cmp;
}

} // namespace assoc
