/**
 * @file
 * LEB128 varints and zigzag mapping for the delta-encoded ftr trace
 * frames (src/trace/ftr_format.h).
 *
 * Address deltas between consecutive references are small and
 * sign-mixed, so zigzag-mapping the signed delta and LEB128-encoding
 * the result stores the common case in one byte instead of four.
 * Decoding is defensive by design: these bytes arrive from possibly
 * corrupted files, so the decoder never reads past its bound and
 * rejects over-long encodings instead of silently wrapping.
 */

#ifndef ASSOC_UTIL_VARINT_H
#define ASSOC_UTIL_VARINT_H

#include <cstddef>
#include <cstdint>

namespace assoc {

/** Map a signed value onto unsigned so small magnitudes of either
 *  sign become small numbers: 0,-1,1,-2,... -> 0,1,2,3,... */
inline std::uint32_t
zigzagEncode32(std::int32_t v)
{
    return (static_cast<std::uint32_t>(v) << 1) ^
           static_cast<std::uint32_t>(v >> 31);
}

/** Inverse of zigzagEncode32. */
inline std::int32_t
zigzagDecode32(std::uint32_t v)
{
    return static_cast<std::int32_t>((v >> 1) ^ (0u - (v & 1u)));
}

/** Longest LEB128 encoding of a 32-bit value. */
constexpr std::size_t kMaxVarint32Bytes = 5;

/**
 * Append the LEB128 encoding of @p v at @p out (which must have
 * room for kMaxVarint32Bytes). @return bytes written (1..5).
 */
inline std::size_t
putVarint32(std::uint8_t *out, std::uint32_t v)
{
    std::size_t n = 0;
    while (v >= 0x80) {
        out[n++] = static_cast<std::uint8_t>(v | 0x80);
        v >>= 7;
    }
    out[n++] = static_cast<std::uint8_t>(v);
    return n;
}

/**
 * Decode one LEB128 varint from the @p len bytes at @p in. Returns
 * bytes consumed (1..5), or 0 when the input is exhausted
 * mid-varint or the encoding is over-long / overflows 32 bits —
 * the caller treats 0 as data corruption.
 */
inline std::size_t
getVarint32(const std::uint8_t *in, std::size_t len, std::uint32_t &out)
{
    std::uint32_t v = 0;
    for (std::size_t n = 0; n < len && n < kMaxVarint32Bytes; ++n) {
        std::uint32_t byte = in[n];
        if (n == kMaxVarint32Bytes - 1 && (byte & 0xf0) != 0)
            return 0; // the 5th byte may only carry bits 32..34 clear
        v |= (byte & 0x7f) << (7 * n);
        if ((byte & 0x80) == 0) {
            out = v;
            return n + 1;
        }
    }
    return 0;
}

} // namespace assoc

#endif // ASSOC_UTIL_VARINT_H
