/**
 * @file
 * Small bit-manipulation helpers used throughout the cache models.
 */

#ifndef ASSOC_UTIL_BITOPS_H
#define ASSOC_UTIL_BITOPS_H

#include <bit>
#include <cstdint>

#include "util/logging.h"

namespace assoc {

/** True iff @p x is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/**
 * Integer base-2 logarithm of a power of two.
 * @pre isPow2(x)
 */
inline unsigned
log2i(std::uint64_t x)
{
    panicIf(!isPow2(x), "log2i: argument not a power of two");
    return static_cast<unsigned>(std::countr_zero(x));
}

/** Ceiling of log2 (log2Ceil(1) == 0, log2Ceil(3) == 2). */
inline unsigned
log2Ceil(std::uint64_t x)
{
    panicIf(x == 0, "log2Ceil: argument is zero");
    return static_cast<unsigned>(64 - std::countl_zero(x - 1));
}

/** A mask with the low @p bits bits set; bits may be 0..64. */
constexpr std::uint64_t
maskBits(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << bits) - 1);
}

/** Extract @p len bits of @p x starting at bit @p lo. */
constexpr std::uint64_t
bitField(std::uint64_t x, unsigned lo, unsigned len)
{
    return (x >> lo) & maskBits(len);
}

/** Population count convenience wrapper. */
constexpr unsigned
popcount(std::uint64_t x)
{
    return static_cast<unsigned>(std::popcount(x));
}

} // namespace assoc

#endif // ASSOC_UTIL_BITOPS_H
