#include "util/crc32c.h"

#include <array>

namespace assoc {

namespace {

/**
 * Slice-by-8 tables, built once at first use. Table 0 is the plain
 * byte-at-a-time table for the reflected polynomial; table k folds a
 * byte that is k positions deeper into the 8-byte block.
 */
struct Crc32cTables
{
    std::uint32_t t[8][256];

    Crc32cTables()
    {
        constexpr std::uint32_t poly = 0x82F63B78u;
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int b = 0; b < 8; ++b)
                crc = (crc >> 1) ^ (poly & (0u - (crc & 1u)));
            t[0][i] = crc;
        }
        for (std::uint32_t i = 0; i < 256; ++i)
            for (int k = 1; k < 8; ++k)
                t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
    }
};

const Crc32cTables &
tables()
{
    static const Crc32cTables tbl;
    return tbl;
}

} // namespace

std::uint32_t
crc32c(std::uint32_t crc, const void *data, std::size_t len)
{
    const Crc32cTables &tbl = tables();
    const unsigned char *p = static_cast<const unsigned char *>(data);
    crc = ~crc;

    // Byte-wise until... the slice-by-8 loop reads bytes
    // individually (no aligned loads), so it is safe at any
    // alignment; endianness never enters because bytes are combined
    // explicitly.
    while (len >= 8) {
        std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                  (static_cast<std::uint32_t>(p[1]) << 8) |
                                  (static_cast<std::uint32_t>(p[2]) << 16) |
                                  (static_cast<std::uint32_t>(p[3]) << 24));
        crc = tbl.t[7][lo & 0xff] ^ tbl.t[6][(lo >> 8) & 0xff] ^
              tbl.t[5][(lo >> 16) & 0xff] ^ tbl.t[4][lo >> 24] ^
              tbl.t[3][p[4]] ^ tbl.t[2][p[5]] ^ tbl.t[1][p[6]] ^
              tbl.t[0][p[7]];
        p += 8;
        len -= 8;
    }
    while (len--)
        crc = (crc >> 8) ^ tbl.t[0][(crc ^ *p++) & 0xff];
    return ~crc;
}

} // namespace assoc
