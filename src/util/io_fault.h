/**
 * @file
 * Seeded IO-fault injection at the stream layer.
 *
 * The trace readers (din/bin/ftr) accept any std::istream, so fault
 * tests and the `fuzz_diff --inject-faults` campaign wrap a real
 * file in a FaultyStreamBuf that misbehaves at a planned byte
 * offset: a *short read* (the file ends early, as if the tail was
 * torn off by a crashed writer or a truncated download) or a *hard
 * IO error* (EIO from a dying disk — surfaces as badbit on the
 * stream). Readers must turn both into structured Errors; in
 * particular a hard error must never be mistaken for a clean
 * end-of-file (that would silently compute statistics over a
 * prefix).
 *
 * Everything is a pure function of the plan, so a failing fuzz case
 * replays byte-identically.
 */

#ifndef ASSOC_UTIL_IO_FAULT_H
#define ASSOC_UTIL_IO_FAULT_H

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <streambuf>
#include <string>

namespace assoc {

/** Where the wrapped stream misbehaves (byte offsets from start). */
struct IoFaultPlan
{
    /** No fault at this offset. */
    static constexpr std::uint64_t kNever = ~0ull;

    /** Reads at or past this offset see end-of-file (torn tail). */
    std::uint64_t short_read_at = kNever;
    /** Reads at or past this offset fail hard (badbit, like EIO).
     *  Takes precedence over short_read_at when both are armed. */
    std::uint64_t io_error_at = kNever;

    bool armed() const
    {
        return short_read_at != kNever || io_error_at != kNever;
    }
};

/**
 * A read-only streambuf over a file that injects the planned fault.
 * Seeks are forwarded to the underlying file (the readers rewind on
 * reset()), and the fault re-arms after a seek: it is a property of
 * the byte offset, not of elapsed reads.
 */
class FaultyStreamBuf : public std::streambuf
{
  public:
    FaultyStreamBuf(const std::string &path, const IoFaultPlan &plan);

    /** False when the underlying file failed to open. */
    bool isOpen() const { return file_.is_open(); }

  protected:
    int_type underflow() override;
    pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                     std::ios_base::openmode which) override;
    pos_type seekpos(pos_type pos,
                     std::ios_base::openmode which) override;

  private:
    /** Bytes readable before the armed fault bites (0 = at fault). */
    std::uint64_t budgetLeft() const;

    std::filebuf file_;
    IoFaultPlan plan_;
    std::uint64_t pos_ = 0;
    char buf_[4096];
};

/**
 * Open @p path for reading with @p plan injected. Returns a stream
 * whose failbit is set when the file cannot be opened (matching
 * std::ifstream), so reader constructors need no special casing.
 */
std::unique_ptr<std::istream>
openFaultyFile(const std::string &path, const IoFaultPlan &plan);

} // namespace assoc

#endif // ASSOC_UTIL_IO_FAULT_H
