/**
 * @file
 * Reader and comparator for google-benchmark `--benchmark_format=json`
 * output, used by tools/bench_compare and the CI perf gate.
 *
 * The parser is deliberately tolerant: it accepts any JSON document
 * with a top-level "benchmarks" array of objects, reads the fields
 * it knows (name, run_type, real_time, cpu_time, time_unit) and
 * ignores everything else, so upgrades of the benchmark library
 * (which add context fields and counters) never break the gate.
 * Failures are reported as Error values (ErrorCode::Data), never by
 * throwing, matching the recoverable-reader convention of
 * trace/trace_source.h.
 */

#ifndef ASSOC_UTIL_BENCHJSON_H
#define ASSOC_UTIL_BENCHJSON_H

#include <string>
#include <vector>

#include "util/error.h"

namespace assoc {

/** One benchmark repetition/aggregate from the "benchmarks" array. */
struct BenchEntry
{
    std::string name;      ///< e.g. "BM_CacheFindWay/4"
    std::string run_type;  ///< "iteration" or "aggregate" ("" if absent)
    double real_time = 0.0;
    double cpu_time = 0.0;
    std::string time_unit = "ns"; ///< "ns", "us", "ms" or "s"
};

/** Which per-entry time the comparison reads. */
enum class BenchMetric { CpuTime, RealTime };

/**
 * Parse @p text as a google-benchmark JSON document.
 * Aggregate entries (mean/median/stddev rows emitted with
 * --benchmark_repetitions) are skipped; plain iterations are kept.
 * @return Error(Data) on malformed JSON or a missing/ill-typed
 *         "benchmarks" array; ok() with @p out filled otherwise.
 */
Error parseBenchJson(const std::string &text,
                     std::vector<BenchEntry> &out);

/** parseBenchJson on the contents of @p path (Error(Io) if unreadable). */
Error loadBenchJson(const std::string &path,
                    std::vector<BenchEntry> &out);

/** @p e's selected metric converted to nanoseconds. */
double benchTimeNs(const BenchEntry &e, BenchMetric metric);

/**
 * Entries whose name contains @p needle, in input order (all of
 * them when @p needle is empty). Backs bench_compare's --filter so
 * a speedup gate can target one benchmark family, e.g. "Lookup".
 */
std::vector<BenchEntry>
filterBenchEntries(const std::vector<BenchEntry> &entries,
                   const std::string &needle);

/** Comparison of one benchmark present in both files. */
struct BenchDelta
{
    std::string name;
    double baseline_ns = 0.0;
    double current_ns = 0.0;
    double ratio = 0.0; ///< current / baseline (>1 means slower)
};

/** Outcome of comparing a current run against a baseline. */
struct BenchComparison
{
    std::vector<BenchDelta> deltas; ///< benchmarks in both files
    /** In the baseline but not the current run (renamed/removed
     *  benchmarks are reported, not failed). */
    std::vector<std::string> missing;
    /** In the current run but not the baseline (new benchmarks
     *  pass trivially until the baseline is refreshed). */
    std::vector<std::string> added;
    double worst_ratio = 0.0;       ///< max over deltas (0 if none)
    std::string worst_name;
};

/**
 * Compare @p current against @p baseline on @p metric, matching
 * entries by exact name. Baseline entries with a non-positive time
 * are skipped (a ratio against zero is meaningless).
 */
BenchComparison compareBench(const std::vector<BenchEntry> &baseline,
                             const std::vector<BenchEntry> &current,
                             BenchMetric metric);

} // namespace assoc

#endif // ASSOC_UTIL_BENCHJSON_H
