#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace assoc {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(Row{std::move(row), false});
}

void
TextTable::addRule()
{
    rows_.push_back(Row{{}, true});
}

std::string
TextTable::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
TextTable::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::size_t
TextTable::rowCount() const
{
    std::size_t n = 0;
    for (const auto &r : rows_)
        if (!r.rule)
            ++n;
    return n;
}

void
TextTable::print(std::ostream &os, Format fmt) const
{
    // Compute column widths over header and all rows.
    std::size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.cells.size());

    std::vector<std::size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        if (!r.rule)
            widen(r.cells);

    auto emit_csv = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < ncols; ++i) {
            if (i)
                os << ',';
            if (i < cells.size())
                os << cells[i];
        }
        os << '\n';
    };

    // A cell is emitted as a bare JSON number when strtod consumes
    // it entirely and the value is finite; anything else (including
    // starred cells like "*1.23" and the empty string) is quoted.
    auto json_numeric = [](const std::string &c) {
        if (c.empty())
            return false;
        char *end = nullptr;
        double v = std::strtod(c.c_str(), &end);
        return end == c.c_str() + c.size() && std::isfinite(v);
    };

    auto json_escape = [](const std::string &s) {
        std::string out;
        for (char ch : s) {
            if (ch == '"' || ch == '\\')
                out += '\\';
            out += ch;
        }
        return out;
    };

    auto emit_md = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t i = 0; i < ncols; ++i) {
            os << ' ' << (i < cells.size() ? cells[i] : "") << " |";
        }
        os << '\n';
    };

    auto emit_text = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < ncols; ++i) {
            const std::string &c = i < cells.size() ? cells[i] : "";
            os << c << std::string(width[i] - c.size() + 2, ' ');
        }
        os << '\n';
    };

    switch (fmt) {
      case Format::Csv:
        if (!header_.empty())
            emit_csv(header_);
        for (const auto &r : rows_)
            if (!r.rule)
                emit_csv(r.cells);
        break;
      case Format::Markdown:
        if (!header_.empty()) {
            emit_md(header_);
            os << '|';
            for (std::size_t i = 0; i < ncols; ++i)
                os << "---|";
            os << '\n';
        }
        for (const auto &r : rows_)
            if (!r.rule)
                emit_md(r.cells);
        break;
      case Format::Json: {
        os << "[\n";
        bool first = true;
        for (const auto &r : rows_) {
            if (r.rule)
                continue;
            os << (first ? "" : ",\n") << "  {";
            for (std::size_t i = 0; i < ncols; ++i) {
                const std::string key =
                    i < header_.size() && !header_[i].empty()
                        ? header_[i]
                        : "c" + std::to_string(i);
                const std::string &c =
                    i < r.cells.size() ? r.cells[i] : "";
                os << (i ? ", " : "") << '"' << json_escape(key)
                   << "\": ";
                if (json_numeric(c))
                    os << c;
                else
                    os << '"' << json_escape(c) << '"';
            }
            os << '}';
            first = false;
        }
        os << "\n]\n";
        break;
      }
      case Format::Text:
      default: {
        std::size_t total = 0;
        for (std::size_t w : width)
            total += w + 2;
        if (!header_.empty()) {
            emit_text(header_);
            os << std::string(total, '-') << '\n';
        }
        for (const auto &r : rows_) {
            if (r.rule)
                os << std::string(total, '-') << '\n';
            else
                emit_text(r.cells);
        }
        break;
      }
    }
}

std::string
TextTable::toString(Format fmt) const
{
    std::ostringstream oss;
    print(oss, fmt);
    return oss.str();
}

} // namespace assoc
