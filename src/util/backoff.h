/**
 * @file
 * Seeded-jitter exponential backoff for retrying shed requests.
 *
 * An overloaded service tells its clients to go away (a structured
 * Error::overloaded()); a polite client waits before retrying, and a
 * fleet of polite clients must not wait the *same* amount or they
 * re-arrive in lockstep and re-overload the server (the thundering
 * herd). Backoff produces the classic exponentially-growing delay
 * with full-range seeded jitter: deterministic for a (seed, attempt)
 * pair — so tests and the chaos campaign replay byte-identical
 * schedules — yet decorrelated across client seeds.
 *
 * retryOverloaded() wraps the common client loop: run an operation,
 * sleep-and-retry while it sheds (Overloaded) or fails transiently
 * (Io), give up after max_attempts or when the caller's CancelToken
 * trips. The sleeper is injectable so unit tests and simulations run
 * the schedule without real wall-clock waits.
 */

#ifndef ASSOC_UTIL_BACKOFF_H
#define ASSOC_UTIL_BACKOFF_H

#include <cstdint>
#include <functional>
#include <string>

#include "util/cancel.h"
#include "util/error.h"
#include "util/rng.h"

namespace assoc {

/** Backoff shape knobs. */
struct BackoffPolicy
{
    /** Mean of the first delay, nanoseconds. */
    std::uint64_t initial_ns = 100 * 1000; // 100us
    /** Cap on the (pre-jitter) delay, nanoseconds. */
    std::uint64_t max_ns = 100ull * 1000 * 1000; // 100ms
    /** Pre-jitter delay doubles every attempt by default. */
    unsigned multiplier = 2;
    /** Jitter seed; two clients with different seeds draw
     *  decorrelated schedules. */
    std::uint64_t seed = 1;
};

/**
 * One retry loop's delay schedule. nextDelayNs() draws attempt k's
 * delay: uniform in [ceil/2, ceil] where ceil doubles (per
 * multiplier) from initial_ns up to max_ns — "equal jitter", which
 * keeps the expected delay growing exponentially while never
 * returning a degenerate zero wait. The sequence is a pure function
 * of (policy.seed, attempt index).
 */
class Backoff
{
  public:
    explicit Backoff(const BackoffPolicy &policy = {})
        : policy_(policy), rng_(policy.seed, 0xb0ff)
    {}

    /** Delay before the next retry, nanoseconds; advances the
     *  attempt counter. */
    std::uint64_t nextDelayNs();

    /** Retries drawn so far. */
    unsigned attempts() const { return attempts_; }

    /** Restart the schedule (e.g. after a success). */
    void
    reset()
    {
        attempts_ = 0;
        rng_.reseed(policy_.seed, 0xb0ff);
    }

  private:
    BackoffPolicy policy_;
    Pcg32 rng_;
    unsigned attempts_ = 0;
};

/** Sleeps for a backoff delay; injectable for tests. */
using BackoffSleeper = std::function<void(std::uint64_t ns)>;

/** The default sleeper: std::this_thread::sleep_for. */
void backoffSleep(std::uint64_t ns);

/** What a retryOverloaded() loop did, for client-side accounting. */
struct RetryOutcome
{
    Error error;                  ///< final status (ok on success)
    unsigned attempts = 0;        ///< operation invocations
    std::uint64_t waited_ns = 0;  ///< total backoff slept
};

/**
 * Run @p op (returning Expected<void>-like status via Error; ok() =
 * success) with backoff retries on Overloaded and transient Io
 * errors. Stops on success, on any other error class, after
 * @p max_attempts invocations, or when @p cancel trips (checked
 * before every sleep; a tripped token reports the token's own
 * structured error). @p sleep defaults to a real wall-clock sleep.
 */
RetryOutcome retryOverloaded(const std::function<Error()> &op,
                             const BackoffPolicy &policy,
                             unsigned max_attempts,
                             const CancelToken *cancel = nullptr,
                             const BackoffSleeper &sleep = {});

} // namespace assoc

#endif // ASSOC_UTIL_BACKOFF_H
