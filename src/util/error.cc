#include "util/error.h"

#include <exception>
#include <iostream>

#include "util/cancel.h"

namespace assoc {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::None: return "ok";
      case ErrorCode::Usage: return "usage";
      case ErrorCode::Data: return "data";
      case ErrorCode::Io: return "io";
      case ErrorCode::Cancelled: return "cancelled";
      case ErrorCode::Timeout: return "timeout";
      case ErrorCode::Budget: return "budget";
      case ErrorCode::Overloaded: return "overloaded";
      case ErrorCode::Internal: return "internal";
    }
    return "unknown";
}

int
exitCode(ErrorCode code)
{
    switch (code) {
      case ErrorCode::None: return 0;
      case ErrorCode::Usage: return 1;
      case ErrorCode::Data: return 2;
      case ErrorCode::Io: return 2;
      case ErrorCode::Cancelled: return 130; // 128 + SIGINT
      case ErrorCode::Timeout: return 4;
      case ErrorCode::Budget: return 4;
      case ErrorCode::Overloaded: return 5;
      case ErrorCode::Internal: return 3;
    }
    return 3;
}

std::string
Error::text() const
{
    if (ok())
        return "ok";
    std::string s = std::string(errorCodeName(code_)) + " error: " +
                    message_;
    if (!context_.empty()) {
        s += " [";
        for (std::size_t i = 0; i < context_.size(); ++i) {
            if (i)
                s += "; ";
            s += "while " + context_[i];
        }
        s += "]";
    }
    return s;
}

void
throwError(Error err)
{
    throw ErrorException(std::move(err));
}

Expected<ErrorMode>
errorModeFromString(const std::string &s)
{
    if (s == "fail-fast" || s == "failfast")
        return ErrorMode::FailFast;
    if (s == "skip")
        return ErrorMode::Skip;
    if (s == "strict")
        return ErrorMode::Strict;
    return Error::usage("unknown error mode '" + s +
                        "' (want fail-fast|skip|strict)");
}

int
guardedMain(const std::string &prog, const std::function<int()> &body)
{
    try {
        return body();
    } catch (const ErrorException &e) {
        std::cerr << prog << ": " << e.what() << "\n";
        // A cancellation caused by a delivered shutdown signal exits
        // by the shell convention for *that* signal: 130 for SIGINT,
        // 143 for SIGTERM. Plain (programmatic) cancels keep 130.
        if (e.error().code() == ErrorCode::Cancelled &&
            deliveredShutdownSignal() != 0)
            return 128 + deliveredShutdownSignal();
        return exitCode(e.error().code());
    } catch (const FatalError &e) {
        std::cerr << prog << ": " << e.what() << "\n";
        return 1;
    } catch (const PanicError &e) {
        std::cerr << prog << ": internal error: " << e.what() << "\n";
        return 3;
    } catch (const std::exception &e) {
        std::cerr << prog << ": internal error: " << e.what() << "\n";
        return 3;
    }
}

} // namespace assoc
