#include "util/cancel.h"

#include <cctype>
#include <csignal>
#include <cstdio>

namespace assoc {

static_assert(kSigtermSignal == SIGTERM,
              "kSigtermSignal must match the platform's SIGTERM");

namespace {

// Read cross-thread (workers, watchdog) and written from the signal
// handler: must be a lock-free atomic, not a bare sig_atomic_t — the
// latter is only safe against the handler interrupting its *own*
// thread. Holds the delivered signal number (0 = none); the first
// delivery wins so a ^C followed by an orchestrator's SIGTERM still
// reports — and exits — as the interrupt the user saw first.
std::atomic<int> g_shutdown_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "the shutdown-signal latch must be async-signal-safe");

void
onShutdownSignal(int sig)
{
    int expect = 0;
    g_shutdown_signal.compare_exchange_strong(
        expect, sig, std::memory_order_relaxed);
}

} // namespace

bool
CancelToken::sigintSeen()
{
    return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int
deliveredShutdownSignal()
{
    return g_shutdown_signal.load(std::memory_order_relaxed);
}

void
installSigintHandler()
{
    static bool installed = false;
    if (installed)
        return;
    std::signal(SIGINT, onShutdownSignal);
    std::signal(SIGTERM, onShutdownSignal);
    installed = true;
}

void
clearSigintForTests()
{
    g_shutdown_signal.store(0, std::memory_order_relaxed);
}

Expected<void>
MemBudget::tryCharge(std::uint64_t bytes, const std::string &what)
{
    // Parent first: on our own failure the parent charge must be
    // unwound, and doing it in this order means a failing ancestor
    // never leaves partial charges below it.
    if (parent_) {
        Expected<void> up = parent_->tryCharge(bytes, what);
        if (!up.ok())
            return up;
    }
    std::uint64_t cur = used_.load(std::memory_order_relaxed);
    for (;;) {
        if (limit_ != 0 && cur + bytes > limit_) {
            if (parent_)
                parent_->release(bytes);
            return Error::budget(
                "memory budget exhausted: " + what + " needs " +
                formatBytes(bytes) + " but only " +
                formatBytes(limit_ - (cur < limit_ ? cur : limit_)) +
                " of " + formatBytes(limit_) + " remain");
        }
        if (used_.compare_exchange_weak(cur, cur + bytes,
                                        std::memory_order_relaxed))
            break;
    }
    std::uint64_t now = cur + bytes;
    std::uint64_t hi = peak_.load(std::memory_order_relaxed);
    while (hi < now &&
           !peak_.compare_exchange_weak(hi, now,
                                        std::memory_order_relaxed)) {
    }
    return {};
}

void
MemBudget::release(std::uint64_t bytes)
{
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    if (parent_)
        parent_->release(bytes);
}

Expected<MemCharge>
MemCharge::charge(MemBudget *budget, std::uint64_t bytes,
                  const std::string &what)
{
    MemCharge guard;
    if (!budget)
        return Expected<MemCharge>(std::move(guard));
    Expected<void> ok = budget->tryCharge(bytes, what);
    if (!ok.ok())
        return ok.takeError();
    guard.budget_ = budget;
    guard.bytes_ = bytes;
    return Expected<MemCharge>(std::move(guard));
}

namespace {

/** Split "<digits><suffix>": @return false on empty/non-numeric. */
bool
splitNumber(const std::string &s, std::uint64_t &value,
            std::string &suffix)
{
    std::size_t i = 0;
    while (i < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    if (i == 0)
        return false;
    value = 0;
    for (std::size_t k = 0; k < i; ++k) {
        if (value > UINT64_MAX / 10)
            return false;
        value = value * 10 + static_cast<std::uint64_t>(s[k] - '0');
    }
    suffix = s.substr(i);
    return true;
}

} // namespace

Expected<std::uint64_t>
parseDuration(const std::string &s)
{
    std::uint64_t value = 0;
    std::string unit;
    if (!splitNumber(s, value, unit))
        return Error::usage("bad duration '" + s +
                            "' (want e.g. 30s, 500ms, 100us)");
    std::uint64_t scale = 0;
    if (unit == "ns")
        scale = 1;
    else if (unit == "us")
        scale = 1000;
    else if (unit == "ms")
        scale = 1000 * 1000;
    else if (unit == "s")
        scale = 1000ull * 1000 * 1000;
    else if (unit == "m")
        scale = 60ull * 1000 * 1000 * 1000;
    else
        return Error::usage("bad duration unit '" + unit + "' in '" +
                            s + "' (want ns, us, ms, s or m)");
    if (value != 0 && scale > UINT64_MAX / value)
        return Error::usage("duration '" + s + "' overflows");
    return value * scale;
}

Expected<std::uint64_t>
parseByteSize(const std::string &s)
{
    std::uint64_t value = 0;
    std::string unit;
    if (!splitNumber(s, value, unit))
        return Error::usage("bad byte size '" + s +
                            "' (want e.g. 1024, 64K, 512M, 2G)");
    std::uint64_t scale = 1;
    if (unit == "" || unit == "B")
        scale = 1;
    else if (unit == "K" || unit == "KiB")
        scale = 1024ull;
    else if (unit == "M" || unit == "MiB")
        scale = 1024ull * 1024;
    else if (unit == "G" || unit == "GiB")
        scale = 1024ull * 1024 * 1024;
    else
        return Error::usage("bad byte-size unit '" + unit + "' in '" +
                            s + "' (want K, M or G)");
    if (value != 0 && scale > UINT64_MAX / value)
        return Error::usage("byte size '" + s + "' overflows");
    return value * scale;
}

std::string
formatDuration(std::uint64_t ns)
{
    char buf[32];
    if (ns >= 1000ull * 1000 * 1000) {
        std::snprintf(buf, sizeof(buf), "%.1fs",
                      static_cast<double>(ns) / 1e9);
    } else if (ns >= 1000 * 1000) {
        std::snprintf(buf, sizeof(buf), "%.0fms",
                      static_cast<double>(ns) / 1e6);
    } else if (ns >= 1000) {
        std::snprintf(buf, sizeof(buf), "%.0fus",
                      static_cast<double>(ns) / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%lluns",
                      static_cast<unsigned long long>(ns));
    }
    return buf;
}

std::string
formatBytes(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= 1024ull * 1024 * 1024) {
        std::snprintf(buf, sizeof(buf), "%.1f GiB",
                      static_cast<double>(bytes) /
                          (1024.0 * 1024.0 * 1024.0));
    } else if (bytes >= 1024 * 1024) {
        std::snprintf(buf, sizeof(buf), "%.1f MiB",
                      static_cast<double>(bytes) / (1024.0 * 1024.0));
    } else if (bytes >= 1024) {
        std::snprintf(buf, sizeof(buf), "%.1f KiB",
                      static_cast<double>(bytes) / 1024.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

} // namespace assoc
