/**
 * @file
 * Structured, recoverable errors.
 *
 * Complements logging.h: fatal()/panic() abort a computation by
 * throwing, which is right for command-line argument validation and
 * internal invariants, but wrong for data-plane failures (a corrupt
 * trace record, one bad job in a 100-point sweep) where the caller
 * wants to decide whether to skip, retry, or give up. Those paths
 * report an Error value instead.
 *
 * Error carries a coarse ErrorCode classifying the failure, a
 * human-readable message, and a context chain (innermost first) that
 * call sites extend as the error propagates outward. exitCode() maps
 * codes onto the process exit-code convention shared by every tool
 * and bench in this repo:
 *
 *   0   success
 *   1   usage error (bad flags, invalid configuration)
 *   2   data error  (corrupt/truncated/unreadable input)
 *   3   internal error (a bug in this library)
 *   4   resource limit exceeded (deadline or memory budget)
 *   5   overloaded (admission control shed the request)
 *   130 interrupted (SIGINT; 128 + signal number, shell convention)
 *   143 terminated  (SIGTERM; 128 + signal number, shell convention)
 */

#ifndef ASSOC_UTIL_ERROR_H
#define ASSOC_UTIL_ERROR_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace assoc {

/** Coarse failure classification; determines the process exit code. */
enum class ErrorCode {
    None,      ///< not an error
    Usage,     ///< bad flags or invalid configuration
    Data,      ///< malformed or inconsistent input data
    Io,        ///< the environment failed us (open/read/write);
               ///< considered transient and hence retry-eligible
    Cancelled, ///< interrupted (SIGINT/SIGTERM or an explicit cancel)
    Timeout,   ///< a deadline expired (job timeout, sweep deadline)
    Budget,    ///< a memory budget was exhausted
    Overloaded,///< admission control shed the request (retry later)
    Internal,  ///< an internal invariant was violated
};

/** Short lowercase name ("usage", "data", ...) for messages/JSON. */
const char *errorCodeName(ErrorCode code);

/** Map an ErrorCode onto the shared tool exit-code convention. */
int exitCode(ErrorCode code);

/**
 * A recoverable error value: code + message + context chain.
 *
 * A default-constructed Error means "no error" (ok() is true), so
 * the type doubles as an always-present status slot in readers.
 */
class Error
{
  public:
    Error() = default;

    Error(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    static Error usage(std::string m)
    {
        return Error(ErrorCode::Usage, std::move(m));
    }
    static Error data(std::string m)
    {
        return Error(ErrorCode::Data, std::move(m));
    }
    static Error io(std::string m)
    {
        return Error(ErrorCode::Io, std::move(m));
    }
    static Error cancelled(std::string m)
    {
        return Error(ErrorCode::Cancelled, std::move(m));
    }
    static Error timeout(std::string m)
    {
        return Error(ErrorCode::Timeout, std::move(m));
    }
    static Error budget(std::string m)
    {
        return Error(ErrorCode::Budget, std::move(m));
    }
    static Error overloaded(std::string m)
    {
        return Error(ErrorCode::Overloaded, std::move(m));
    }
    static Error internal(std::string m)
    {
        return Error(ErrorCode::Internal, std::move(m));
    }

    bool ok() const { return code_ == ErrorCode::None; }
    bool failed() const { return !ok(); }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }
    const std::vector<std::string> &context() const { return context_; }

    /** Io errors are environmental and worth one deterministic retry. */
    bool transient() const { return code_ == ErrorCode::Io; }

    /** Append one context frame (innermost first). Chainable. */
    Error &
    withContext(std::string frame)
    {
        context_.push_back(std::move(frame));
        return *this;
    }

    /** Full rendering: "data error: <msg> [while a; while b]". */
    std::string text() const;

  private:
    ErrorCode code_ = ErrorCode::None;
    std::string message_;
    std::vector<std::string> context_;
};

/**
 * Exception carrier for an Error crossing a boundary that cannot
 * return one (constructors, deep call stacks). Derives from
 * FatalError so existing catch sites and tests keep working; new
 * code catches ErrorException first to recover the full Error.
 */
class ErrorException : public FatalError
{
  public:
    explicit ErrorException(Error err)
        : FatalError(err.text()), error_(std::move(err))
    {}

    const Error &error() const { return error_; }

  private:
    Error error_;
};

/** Throw @p err wrapped in an ErrorException. */
[[noreturn]] void throwError(Error err);

/**
 * Minimal Expected: either a value or an Error. Deliberately tiny —
 * just enough to return parse results without exceptions.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}
    Expected(Error err) : error_(std::move(err)) {}

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    const T &value() const { return *value_; }
    T &value() { return *value_; }
    T take() { return std::move(*value_); }

    const Error &error() const { return error_; }

  private:
    std::optional<T> value_;
    Error error_;
};

/**
 * Expected<void>: a bare success/failure status. Default
 * construction means success, so `return {};` reads as "ok" at
 * checkpoint-style call sites.
 */
template <>
class Expected<void>
{
  public:
    Expected() = default;
    Expected(Error err) : error_(std::move(err)) {}

    bool ok() const { return error_.ok(); }
    explicit operator bool() const { return ok(); }

    const Error &error() const { return error_; }
    Error takeError() { return std::move(error_); }

  private:
    Error error_;
};

/** How a reader reacts to malformed records in its input. */
enum class ErrorMode {
    FailFast, ///< stop with a structured error at the first bad record
    Skip,     ///< skip bad records, up to ErrorPolicy::max_skips
    Strict,   ///< FailFast, plus reject oddities FailFast tolerates
              ///< (trailing junk, out-of-range fields)
};

/** Parse "fail-fast" / "skip" / "strict"; Usage error otherwise. */
Expected<ErrorMode> errorModeFromString(const std::string &s);

/** Reader-side error policy: mode + skip budget. */
struct ErrorPolicy {
    ErrorMode mode = ErrorMode::FailFast;
    std::uint64_t max_skips = 100; ///< Skip mode gives up past this
};

/**
 * Run a tool body with the shared exit-code convention applied:
 * ErrorException exits with exitCode(code), FatalError with 1,
 * PanicError with 3, any other exception with 3. The error text is
 * printed to stderr prefixed with @p prog.
 */
int guardedMain(const std::string &prog, const std::function<int()> &body);

} // namespace assoc

#endif // ASSOC_UTIL_ERROR_H
