/**
 * @file
 * Minimal text-table writer used by the benchmark harnesses to print
 * paper-style tables (aligned text, CSV, or Markdown).
 */

#ifndef ASSOC_UTIL_TABLE_H
#define ASSOC_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace assoc {

/**
 * A simple row/column table. Cells are strings; helpers format
 * doubles with a fixed precision. Render as aligned text (default),
 * CSV, Markdown, or JSON (an array of one object per row, keyed by
 * the header; cells that parse fully as finite numbers are emitted
 * unquoted so downstream tooling needs no post-processing).
 */
class TextTable
{
  public:
    enum class Format { Text, Csv, Markdown, Json };

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (may be ragged; short rows are padded). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator (Text format only). */
    void addRule();

    /** Format a double with @p prec digits after the decimal point. */
    static std::string num(double v, int prec = 2);

    /** Format an integer. */
    static std::string num(std::uint64_t v);

    /** Render to a stream. */
    void print(std::ostream &os, Format fmt = Format::Text) const;

    /** Render to a string. */
    std::string toString(Format fmt = Format::Text) const;

    /** Number of data rows (excluding header and rules). */
    std::size_t rowCount() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool rule = false;
    };

    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace assoc

#endif // ASSOC_UTIL_TABLE_H
