/**
 * @file
 * A tiny command-line flag parser shared by the examples and the
 * benchmark harnesses (--key=value and --key value forms, --help).
 */

#ifndef ASSOC_UTIL_ARGPARSE_H
#define ASSOC_UTIL_ARGPARSE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace assoc {

/**
 * Declarative flag parser. Register flags with defaults and help
 * text, then parse(argc, argv); typed getters fetch the values.
 */
class ArgParser
{
  public:
    /** @param prog program name, @param description one-line help. */
    ArgParser(std::string prog, std::string description);

    /** Register a flag (name without leading dashes). */
    void addFlag(const std::string &name, const std::string &def,
                 const std::string &help);

    /** Register a boolean switch (off by default; present = true). */
    void addSwitch(const std::string &name, const std::string &help);

    /**
     * Parse the command line.
     * @return false when --help was requested (usage printed);
     *         calls fatal() on unknown or malformed flags.
     */
    bool parse(int argc, const char *const *argv);

    /** String value of flag @p name (the default if not given). */
    std::string getString(const std::string &name) const;

    /** Integer value of flag @p name. */
    std::int64_t getInt(const std::string &name) const;

    /** Unsigned integer value of flag @p name. */
    std::uint64_t getUint(const std::string &name) const;

    /** Floating-point value of flag @p name. */
    double getDouble(const std::string &name) const;

    /** Boolean value ("1"/"true"/"yes"/"on" are true). */
    bool getBool(const std::string &name) const;

    /** True when the user supplied the flag explicitly. */
    bool given(const std::string &name) const;

    /** Positional (non-flag) arguments, in order. */
    const std::vector<std::string> &positional() const;

    /** Usage text. */
    std::string usage() const;

  private:
    struct Flag
    {
        std::string def;
        std::string help;
        std::string value;
        bool is_switch = false;
        bool given = false;
    };

    const Flag &find(const std::string &name) const;

    std::string prog_;
    std::string description_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
    std::vector<std::string> positional_;
};

} // namespace assoc

#endif // ASSOC_UTIL_ARGPARSE_H
