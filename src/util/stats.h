/**
 * @file
 * Scalar statistics accumulators: running means and ratios.
 */

#ifndef ASSOC_UTIL_STATS_H
#define ASSOC_UTIL_STATS_H

#include <cmath>
#include <cstdint>

namespace assoc {

/**
 * Running mean and variance of a stream of doubles. Sums of squares
 * are kept alongside the plain sum (probe counts are small, so this
 * is numerically safe) to make merging accumulators trivial.
 */
class MeanAccum
{
  public:
    /** Record one sample. */
    void
    record(double v)
    {
        sum_ += v;
        sumsq_ += v * v;
        ++n_;
    }

    /** Record @p v with integer weight @p w. */
    void
    record(double v, std::uint64_t w)
    {
        sum_ += v * static_cast<double>(w);
        sumsq_ += v * v * static_cast<double>(w);
        n_ += w;
    }

    /** Number of samples. */
    std::uint64_t count() const { return n_; }

    /** Sum of samples. */
    double sum() const { return sum_; }

    /** Sum of squared samples (raw state, for serialization). */
    double sumSquares() const { return sumsq_; }

    /**
     * Rebuild an accumulator from its raw state. Used by the sweep
     * checkpoint journal to round-trip accumulators bit-exactly.
     */
    static MeanAccum
    fromRaw(double sum, double sumsq, std::uint64_t n)
    {
        MeanAccum a;
        a.sum_ = sum;
        a.sumsq_ = sumsq;
        a.n_ = n;
        return a;
    }

    /** Mean (0 when empty). */
    double
    mean() const
    {
        return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
    }

    /** Population variance (0 when empty). */
    double
    variance() const
    {
        if (n_ == 0)
            return 0.0;
        double m = mean();
        double v = sumsq_ / static_cast<double>(n_) - m * m;
        return v < 0.0 ? 0.0 : v; // clamp rounding noise
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Reset to empty. */
    void
    reset()
    {
        sum_ = 0.0;
        sumsq_ = 0.0;
        n_ = 0;
    }

    /** Merge another accumulator into this one. */
    void
    merge(const MeanAccum &other)
    {
        sum_ += other.sum_;
        sumsq_ += other.sumsq_;
        n_ += other.n_;
    }

  private:
    double sum_ = 0.0;
    double sumsq_ = 0.0;
    std::uint64_t n_ = 0;
};

/** A hits-out-of-tries ratio counter. */
class RatioAccum
{
  public:
    /** Record one trial with outcome @p hit. */
    void
    record(bool hit)
    {
        ++tries_;
        if (hit)
            ++hits_;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return tries_ - hits_; }
    std::uint64_t tries() const { return tries_; }

    /** hits / tries (0 when empty). */
    double
    ratio() const
    {
        return tries_ == 0 ? 0.0
                           : static_cast<double>(hits_) /
                                 static_cast<double>(tries_);
    }

    /** Reset to empty. */
    void
    reset()
    {
        hits_ = 0;
        tries_ = 0;
    }

  private:
    std::uint64_t hits_ = 0;
    std::uint64_t tries_ = 0;
};

} // namespace assoc

#endif // ASSOC_UTIL_STATS_H
