/**
 * @file
 * Deadlines, cooperative cancellation, and memory budgets: the
 * primitives behind the sweep engine's runaway-work defenses.
 *
 * A Deadline is a steady-clock expiry instant. A CancelToken is the
 * cooperative stop signal a long computation polls: it trips on an
 * explicit cancel(), on a watchdog's cancelTimeout(), on its
 * Deadline expiring, on a delivered SIGINT or SIGTERM (when
 * watching), or transitively through a parent token (per-job tokens
 * chain to the sweep-wide one). Workers call checkpoint() every N units of work;
 * a tripped token yields a structured Error::timeout() /
 * Error::cancelled() that unwinds through the normal error path, so
 * cancellation latency is bounded by the checkpoint cadence and
 * nothing is ever killed mid-write.
 *
 * A MemBudget is byte accounting for the big allocations (cache
 * planes, reader buffers, journal maps): charges are RAII-guarded
 * by MemCharge and chain to a parent budget, so one job ballooning
 * past its share fails with a structured Error::budget() instead of
 * inviting the OOM killer to erase the whole sweep.
 */

#ifndef ASSOC_UTIL_CANCEL_H
#define ASSOC_UTIL_CANCEL_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/error.h"

namespace assoc {

/** A steady-clock expiry instant; default-constructed = never. */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    Deadline() : expiry_(Clock::time_point::max()) {}

    /** A deadline that never expires (same as default construction). */
    static Deadline never() { return Deadline(); }

    /** Expire @p ns nanoseconds from now (0 = already expired). */
    static Deadline
    after(std::uint64_t ns)
    {
        Deadline d;
        d.expiry_ = Clock::now() + std::chrono::nanoseconds(ns);
        return d;
    }

    /** Expire at @p when. */
    static Deadline
    at(Clock::time_point when)
    {
        Deadline d;
        d.expiry_ = when;
        return d;
    }

    /** The sooner of two deadlines (never loses to anything). */
    static Deadline
    earlier(const Deadline &a, const Deadline &b)
    {
        return a.expiry_ <= b.expiry_ ? a : b;
    }

    bool isNever() const { return expiry_ == Clock::time_point::max(); }

    bool
    expired() const
    {
        return !isNever() && Clock::now() >= expiry_;
    }

    /**
     * Nanoseconds until expiry: negative once past it, INT64_MAX
     * when the deadline never expires.
     */
    std::int64_t
    remainingNs() const
    {
        if (isNever())
            return INT64_MAX;
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   expiry_ - Clock::now())
            .count();
    }

    Clock::time_point expiry() const { return expiry_; }

  private:
    Clock::time_point expiry_;
};

/** SIGTERM's number, exposed so headers need not include
 *  <csignal> (POSIX fixes it at 15). */
constexpr int kSigtermSignal = 15;

/**
 * The shutdown signal delivered so far: 0 while none, otherwise the
 * signal number (SIGINT or SIGTERM; the first delivery wins).
 * guardedMain consults this to turn a Cancelled error into the
 * shell-convention 128+signal exit code.
 */
int deliveredShutdownSignal();

/**
 * Cooperative cancellation flag shared between a sweep and its
 * owner. Trips explicitly (cancel / cancelTimeout), on its deadline,
 * on SIGINT (when watching), or through a parent token. Configure
 * (setParent / setDeadline / watchSigint) before sharing it across
 * threads; cancel / cancelTimeout / checkpoint are thread-safe.
 */
class CancelToken
{
  public:
    /** Why a token tripped. */
    enum class Reason : std::uint8_t {
        None = 0,    ///< still running
        Cancelled,   ///< explicit cancel() or SIGINT
        TimedOut,    ///< deadline expiry or watchdog cancelTimeout()
    };

    /** Trip the token: cancellation (SIGINT-equivalent). */
    void
    cancel()
    {
        std::uint8_t expect = 0;
        reason_.compare_exchange_strong(
            expect, static_cast<std::uint8_t>(Reason::Cancelled),
            std::memory_order_relaxed);
    }

    /** Trip the token: deadline exceeded (the watchdog's verb). */
    void
    cancelTimeout()
    {
        std::uint8_t expect = 0;
        reason_.compare_exchange_strong(
            expect, static_cast<std::uint8_t>(Reason::TimedOut),
            std::memory_order_relaxed);
    }

    /** Chain to @p parent: its trip (and deadline) trips this token
     *  too. Not owned; must outlive this token. */
    void setParent(const CancelToken *parent) { parent_ = parent; }

    /** Arm a deadline; expiry makes the token report TimedOut. */
    void setDeadline(Deadline d) { deadline_ = d; }

    const Deadline &deadline() const { return deadline_; }

    /** Also treat a delivered SIGINT / SIGTERM as cancellation. */
    void watchSigint(bool watch = true) { watch_sigint_ = watch; }

    /** True when the process received SIGINT or SIGTERM (handler
     *  installed). */
    static bool sigintSeen();

    /** Why the token is tripped (None while still running). The
     *  first delivered reason wins; an unexpired deadline never
     *  overrides a delivered cancel. */
    Reason
    reason() const
    {
        Reason own = static_cast<Reason>(
            reason_.load(std::memory_order_relaxed));
        if (own != Reason::None)
            return own;
        if (watch_sigint_ && sigintSeen())
            return Reason::Cancelled;
        if (deadline_.expired())
            return Reason::TimedOut;
        if (parent_)
            return parent_->reason();
        return Reason::None;
    }

    /** True when tripped for any reason (deadline checks included). */
    bool cancelled() const { return reason() != Reason::None; }

    /**
     * True only when a cancel was *delivered* (explicit cancel,
     * watchdog cancelTimeout, or SIGINT) on this token or an
     * ancestor — deadline clocks are not consulted. This is what
     * non-checkpointing code (and the injected hang fault) polls:
     * it models a worker that only a watchdog can release.
     */
    bool
    signalled() const
    {
        if (reason_.load(std::memory_order_relaxed) != 0)
            return true;
        if (watch_sigint_ && sigintSeen())
            return true;
        return parent_ && parent_->signalled();
    }

    /**
     * The cooperative cancellation point: bump the heartbeat and
     * report the token's state as an Expected. Cheap when running
     * (one relaxed atomic increment + loads; the deadline clock is
     * read only when armed), structured Error::timeout() /
     * Error::cancelled() once tripped.
     */
    Expected<void>
    checkpoint() const
    {
        beats_.fetch_add(1, std::memory_order_relaxed);
        switch (reason()) {
          case Reason::None: return {};
          case Reason::TimedOut:
            return Error::timeout("deadline exceeded");
          case Reason::Cancelled:
            if (watch_sigint_ && sigintSeen())
                return Error::cancelled(
                    deliveredShutdownSignal() == kSigtermSignal
                        ? "terminated (SIGTERM)"
                        : "interrupted (SIGINT)");
            return Error::cancelled("cancelled");
        }
        return Error::internal("unreachable cancel reason");
    }

    /** Checkpoints taken so far (the watchdog's liveness signal). */
    std::uint64_t
    heartbeats() const
    {
        return beats_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint8_t> reason_{0};
    mutable std::atomic<std::uint64_t> beats_{0};
    const CancelToken *parent_ = nullptr;
    Deadline deadline_;
    bool watch_sigint_ = false;
};

/**
 * Install SIGINT *and* SIGTERM handlers that record the signal
 * instead of killing the process (idempotent). Sweeps with a
 * journal install them so both ^C and an orchestrator's `kill`
 * drain in-flight jobs, checkpoint, and exit 128+signal (130 for
 * SIGINT, 143 for SIGTERM).
 */
void installSigintHandler();

/** Clear the recorded signal (tests re-raise repeatedly). */
void clearSigintForTests();

/**
 * Byte accounting for the big allocations. A limit of 0 means
 * unlimited (accounting only). Budgets chain: charging a per-job
 * budget also charges the sweep-global one, so both "one job
 * ballooned" and "the fleet collectively ballooned" fail cleanly.
 * Thread-safe.
 */
class MemBudget
{
  public:
    explicit MemBudget(std::uint64_t limit_bytes = 0,
                       MemBudget *parent = nullptr)
        : limit_(limit_bytes), parent_(parent)
    {}

    /**
     * Reserve @p bytes, or return a structured Error::budget()
     * naming @p what when this budget (or an ancestor) would be
     * exceeded. Nothing is charged on failure.
     */
    Expected<void> tryCharge(std::uint64_t bytes,
                             const std::string &what);

    /** Return @p bytes previously charged. */
    void release(std::uint64_t bytes);

    /** Bytes currently charged. */
    std::uint64_t
    used() const
    {
        return used_.load(std::memory_order_relaxed);
    }

    /** High-water mark of used(). */
    std::uint64_t
    peak() const
    {
        return peak_.load(std::memory_order_relaxed);
    }

    /** The limit (0 = unlimited). */
    std::uint64_t limit() const { return limit_; }

  private:
    std::atomic<std::uint64_t> used_{0};
    std::atomic<std::uint64_t> peak_{0};
    std::uint64_t limit_;
    MemBudget *parent_;
};

/**
 * RAII guard for one MemBudget charge: releases the bytes on
 * destruction. Move-only; a default-constructed (or moved-from)
 * guard holds nothing. A null budget means "no accounting" and
 * always succeeds, so call sites need no branching.
 */
class MemCharge
{
  public:
    MemCharge() = default;

    MemCharge(MemCharge &&other) noexcept
        : budget_(other.budget_), bytes_(other.bytes_)
    {
        other.budget_ = nullptr;
        other.bytes_ = 0;
    }

    MemCharge &
    operator=(MemCharge &&other) noexcept
    {
        if (this != &other) {
            release();
            budget_ = other.budget_;
            bytes_ = other.bytes_;
            other.budget_ = nullptr;
            other.bytes_ = 0;
        }
        return *this;
    }

    MemCharge(const MemCharge &) = delete;
    MemCharge &operator=(const MemCharge &) = delete;

    ~MemCharge() { release(); }

    /** Charge @p bytes of @p what against @p budget (null = no-op). */
    static Expected<MemCharge> charge(MemBudget *budget,
                                      std::uint64_t bytes,
                                      const std::string &what);

    /** Return the bytes early (idempotent). */
    void
    release()
    {
        if (budget_)
            budget_->release(bytes_);
        budget_ = nullptr;
        bytes_ = 0;
    }

    std::uint64_t bytes() const { return bytes_; }

  private:
    MemBudget *budget_ = nullptr;
    std::uint64_t bytes_ = 0;
};

/**
 * Parse a duration flag value into nanoseconds: a non-negative
 * number with a required unit suffix ns/us/ms/s/m (e.g. "30s",
 * "1ms", "500us"). Usage error otherwise.
 */
Expected<std::uint64_t> parseDuration(const std::string &s);

/**
 * Parse a byte-size flag value: a non-negative number with an
 * optional K/M/G suffix (powers of 1024), e.g. "512M". Usage error
 * otherwise.
 */
Expected<std::uint64_t> parseByteSize(const std::string &s);

/** Compact human rendering of a nanosecond count ("1.5s", "20ms"). */
std::string formatDuration(std::uint64_t ns);

/** Compact human rendering of a byte count ("512 KiB", "2.0 GiB"). */
std::string formatBytes(std::uint64_t bytes);

} // namespace assoc

#endif // ASSOC_UTIL_CANCEL_H
