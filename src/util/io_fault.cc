#include "util/io_fault.h"

#include <algorithm>

namespace assoc {

FaultyStreamBuf::FaultyStreamBuf(const std::string &path,
                                 const IoFaultPlan &plan)
    : plan_(plan)
{
    file_.open(path, std::ios::in | std::ios::binary);
    setg(buf_, buf_, buf_);
}

std::uint64_t
FaultyStreamBuf::budgetLeft() const
{
    std::uint64_t left = sizeof(buf_);
    if (plan_.io_error_at != IoFaultPlan::kNever)
        left = std::min(left, plan_.io_error_at - pos_);
    if (plan_.short_read_at != IoFaultPlan::kNever)
        left = std::min(left, plan_.short_read_at - pos_);
    return left;
}

FaultyStreamBuf::int_type
FaultyStreamBuf::underflow()
{
    if (gptr() < egptr())
        return traits_type::to_int_type(*gptr());
    // The fault bites exactly at its byte offset: reads up to it
    // succeed (clamped below), the read crossing it fails.
    if (pos_ >= plan_.io_error_at)
        throw std::ios_base::failure(
            "injected IO error at byte offset " +
            std::to_string(pos_));
    if (pos_ >= plan_.short_read_at)
        return traits_type::eof();
    std::streamsize got = file_.sgetn(
        buf_, static_cast<std::streamsize>(budgetLeft()));
    if (got <= 0)
        return traits_type::eof();
    setg(buf_, buf_, buf_ + got);
    pos_ += static_cast<std::uint64_t>(got);
    return traits_type::to_int_type(*gptr());
}

FaultyStreamBuf::pos_type
FaultyStreamBuf::seekoff(off_type off, std::ios_base::seekdir dir,
                         std::ios_base::openmode which)
{
    std::uint64_t logical =
        pos_ - static_cast<std::uint64_t>(egptr() - gptr());
    if (dir == std::ios_base::cur && off == 0)
        return static_cast<off_type>(logical); // tellg fast path
    pos_type np;
    if (dir == std::ios_base::cur)
        np = file_.pubseekpos(
            static_cast<off_type>(logical) + off, which);
    else
        np = file_.pubseekoff(off, dir, which);
    if (np == pos_type(off_type(-1)))
        return np;
    setg(buf_, buf_, buf_); // buffered bytes are stale after a seek
    pos_ = static_cast<std::uint64_t>(static_cast<off_type>(np));
    return np;
}

FaultyStreamBuf::pos_type
FaultyStreamBuf::seekpos(pos_type pos, std::ios_base::openmode which)
{
    return seekoff(static_cast<off_type>(pos), std::ios_base::beg,
                   which);
}

namespace {

/** istream owning its FaultyStreamBuf. */
class FaultyIstream : public std::istream
{
  public:
    FaultyIstream(const std::string &path, const IoFaultPlan &plan)
        : std::istream(nullptr), buf_(path, plan)
    {
        rdbuf(&buf_);
        if (!buf_.isOpen())
            setstate(std::ios::failbit);
    }

  private:
    FaultyStreamBuf buf_;
};

} // namespace

std::unique_ptr<std::istream>
openFaultyFile(const std::string &path, const IoFaultPlan &plan)
{
    return std::make_unique<FaultyIstream>(path, plan);
}

} // namespace assoc
