#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace assoc {

std::uint32_t
Pcg32::geometric(double p, std::uint32_t cap)
{
    panicIf(!(p > 0.0) || p > 1.0, "Pcg32::geometric: p out of (0, 1]");
    if (p >= 1.0)
        return 0;
    double u = uniform();
    // Avoid log(0); uniform() < 1 so 1 - u > 0.
    double k = std::floor(std::log1p(-u) / std::log1p(-p));
    if (k < 0)
        k = 0;
    if (k > cap)
        k = cap;
    return static_cast<std::uint32_t>(k);
}

void
ZipfSampler::rebuild(std::uint32_t n)
{
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
        cdf_[i] = sum;
    }
    for (std::uint32_t i = 0; i < n; ++i)
        cdf_[i] /= sum;
}

std::uint32_t
ZipfSampler::draw(Pcg32 &rng, std::uint32_t n)
{
    panicIf(n == 0, "ZipfSampler::draw: empty range");
    if (n == 1)
        return 0;
    // Grow (and occasionally shrink) the cached CDF by doubling so
    // footprint growth in the trace generator stays O(log n) rebuilds.
    if (cdf_.size() < n || cdf_.size() > 4 * static_cast<std::size_t>(n)) {
        std::uint32_t cap = 1;
        while (cap < n)
            cap *= 2;
        rebuild(cap);
    }
    // Restrict to the first n entries by scaling the draw into the
    // CDF mass of [0, n).
    double mass = cdf_[n - 1];
    double u = rng.uniform() * mass;
    auto it = std::lower_bound(cdf_.begin(), cdf_.begin() + n, u);
    return static_cast<std::uint32_t>(it - cdf_.begin());
}

} // namespace assoc
