#include "util/argparse.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace assoc {

ArgParser::ArgParser(std::string prog, std::string description)
    : prog_(std::move(prog)), description_(std::move(description))
{
}

void
ArgParser::addFlag(const std::string &name, const std::string &def,
                   const std::string &help)
{
    panicIf(flags_.count(name) != 0, "duplicate flag --" + name);
    flags_[name] = Flag{def, help, def, false, false};
    order_.push_back(name);
}

void
ArgParser::addSwitch(const std::string &name, const std::string &help)
{
    panicIf(flags_.count(name) != 0, "duplicate flag --" + name);
    flags_[name] = Flag{"false", help, "false", true, false};
    order_.push_back(name);
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name = body;
        std::string value;
        bool has_value = false;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            has_value = true;
        }
        auto it = flags_.find(name);
        fatalIf(it == flags_.end(), "unknown flag --" + name +
                "\n" + usage());
        Flag &f = it->second;
        if (f.is_switch) {
            f.value = has_value ? value : "true";
        } else if (has_value) {
            f.value = value;
        } else {
            fatalIf(i + 1 >= argc, "flag --" + name + " needs a value");
            f.value = argv[++i];
        }
        f.given = true;
    }
    return true;
}

const ArgParser::Flag &
ArgParser::find(const std::string &name) const
{
    auto it = flags_.find(name);
    panicIf(it == flags_.end(), "flag --" + name + " was never registered");
    return it->second;
}

std::string
ArgParser::getString(const std::string &name) const
{
    return find(name).value;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    const Flag &f = find(name);
    try {
        std::size_t pos = 0;
        std::int64_t v = std::stoll(f.value, &pos, 0);
        fatalIf(pos != f.value.size(), "flag --" + name +
                ": trailing junk in '" + f.value + "'");
        return v;
    } catch (const std::invalid_argument &) {
        fatal("flag --" + name + ": '" + f.value + "' is not an integer");
    } catch (const std::out_of_range &) {
        fatal("flag --" + name + ": '" + f.value + "' is out of range");
    }
}

std::uint64_t
ArgParser::getUint(const std::string &name) const
{
    std::int64_t v = getInt(name);
    fatalIf(v < 0, "flag --" + name + " must be non-negative");
    return static_cast<std::uint64_t>(v);
}

double
ArgParser::getDouble(const std::string &name) const
{
    const Flag &f = find(name);
    try {
        std::size_t pos = 0;
        double v = std::stod(f.value, &pos);
        fatalIf(pos != f.value.size(), "flag --" + name +
                ": trailing junk in '" + f.value + "'");
        return v;
    } catch (const std::invalid_argument &) {
        fatal("flag --" + name + ": '" + f.value + "' is not a number");
    } catch (const std::out_of_range &) {
        fatal("flag --" + name + ": '" + f.value + "' is out of range");
    }
}

bool
ArgParser::getBool(const std::string &name) const
{
    std::string v = find(name).value;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

bool
ArgParser::given(const std::string &name) const
{
    return find(name).given;
}

const std::vector<std::string> &
ArgParser::positional() const
{
    return positional_;
}

std::string
ArgParser::usage() const
{
    std::ostringstream oss;
    oss << prog_ << " — " << description_ << "\n\nFlags:\n";
    for (const auto &name : order_) {
        const Flag &f = flags_.at(name);
        oss << "  --" << name;
        if (!f.is_switch)
            oss << "=<" << (f.def.empty() ? "value" : f.def) << ">";
        oss << "\n      " << f.help << "\n";
    }
    oss << "  --help\n      Show this message.\n";
    return oss.str();
}

} // namespace assoc
