/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (a bug in this library), fatal() for user errors
 * (bad configuration, unreadable file), warn()/inform() for
 * non-fatal status messages.
 */

#ifndef ASSOC_UTIL_LOGGING_H
#define ASSOC_UTIL_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace assoc {

/** Error thrown by fatal(): the user asked for something invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Error thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments). Throws FatalError so library users can catch it;
 * command-line tools catch it in main() and exit(1).
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal bug: a condition that should be impossible
 * regardless of user input. Throws PanicError.
 */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr (does not stop execution). */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Globally silence warn()/inform() (used by tests). */
void setQuiet(bool quiet);

/**
 * Check a user-facing precondition; calls fatal() with @p msg when
 * @p cond is false.
 */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** Check an internal invariant; calls panic() when @p cond is false. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace assoc

#endif // ASSOC_UTIL_LOGGING_H
