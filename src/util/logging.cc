#include "util/logging.h"

#include <atomic>

namespace assoc {

namespace {
std::atomic<bool> quiet_flag{false};
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    if (!quiet_flag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quiet_flag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

} // namespace assoc
