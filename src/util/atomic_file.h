/**
 * @file
 * Crash-safe result-file writes: temp file, fsync, rename.
 *
 * Sweep JSON and bench CSV outputs feed downstream tooling that
 * half-parses whatever it finds; a process killed mid-write must
 * never leave a torn file under the final name. writeFileAtomic()
 * streams the content into `<path>.tmp.<pid>` in the same
 * directory, flushes and fsyncs it, then rename(2)s it over the
 * destination — POSIX guarantees the rename is atomic, so readers
 * see either the complete old file or the complete new one, never a
 * prefix. On any failure the temp file is removed and the
 * destination is untouched.
 */

#ifndef ASSOC_UTIL_ATOMIC_FILE_H
#define ASSOC_UTIL_ATOMIC_FILE_H

#include <functional>
#include <iosfwd>
#include <string>

#include "util/error.h"

namespace assoc {

/** Streams the file's content into the ostream it is handed. */
using FileContentWriter = std::function<void(std::ostream &os)>;

/**
 * Atomically replace @p path with the bytes @p write produces.
 * Returns a structured Io error (temp unlinked, destination intact)
 * when the temp file cannot be created, written, fsynced, or
 * renamed. Exceptions from @p write propagate after cleanup.
 */
Expected<void> writeFileAtomic(const std::string &path,
                               const FileContentWriter &write);

} // namespace assoc

#endif // ASSOC_UTIL_ATOMIC_FILE_H
