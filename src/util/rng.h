/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * We implement our own small generators (SplitMix64 for seeding,
 * PCG32 for streams) rather than using std::mt19937 so that trace
 * generation is bit-reproducible across platforms and standard
 * library versions: every experiment in this repository replays
 * the identical reference stream from a seed.
 */

#ifndef ASSOC_UTIL_RNG_H
#define ASSOC_UTIL_RNG_H

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace assoc {

/**
 * SplitMix64: tiny 64-bit generator used to expand one user seed
 * into the state of other generators (Vigna's public-domain design).
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * PCG32 (O'Neill): fast 32-bit generator with 64-bit state and a
 * selectable stream. Used for all stochastic choices in the
 * synthetic trace generator.
 */
class Pcg32
{
  public:
    /** Construct from a seed and stream id (distinct streams are
     *  statistically independent). */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        reseed(seed, stream);
    }

    /** Reset the generator to the state implied by @p seed/@p stream. */
    void
    reseed(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1;
        next();
        state_ += seed;
        next();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Next 64-bit value (two draws). */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        panicIf(bound == 0, "Pcg32::below: bound is zero");
        std::uint64_t m = std::uint64_t{next()} * bound;
        std::uint32_t lo = static_cast<std::uint32_t>(m);
        if (lo < bound) {
            std::uint32_t t = (0u - bound) % bound;
            while (lo < t) {
                m = std::uint64_t{next()} * bound;
                lo = static_cast<std::uint32_t>(m);
            }
        }
        return static_cast<std::uint32_t>(m >> 32);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric draw: number of failures before the first success
     * with success probability @p p; capped at @p cap.
     */
    std::uint32_t geometric(double p, std::uint32_t cap = 1u << 20);

  private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 1;
};

/**
 * Zipf(θ) sampler over [0, n): precomputes the CDF once and draws by
 * binary search. Used for long-tailed reuse distances in the trace
 * generator. Rebuildable as n grows (amortized via doubling).
 */
class ZipfSampler
{
  public:
    /** @param theta exponent (>0, larger = more skew). */
    explicit ZipfSampler(double theta) : theta_(theta) {}

    /** Draw a value in [0, n); n may differ call to call. */
    std::uint32_t draw(Pcg32 &rng, std::uint32_t n);

  private:
    void rebuild(std::uint32_t n);

    double theta_;
    std::vector<double> cdf_;
};

} // namespace assoc

#endif // ASSOC_UTIL_RNG_H
