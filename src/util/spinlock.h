/**
 * @file
 * A tiny test-and-test-and-set spinlock for fine-grained striping.
 *
 * The concurrent cache service (src/svc) guards each set stripe
 * with one of these: the bounded-associativity critical section is
 * a handful of cache lines (the Adas & Einziger argument), so a
 * 1-byte spinlock beats a 40-byte std::mutex on both footprint and
 * uncontended latency while thousands of stripes keep contention
 * negligible. Spins are padded with a CPU relax hint and escalate
 * to std::this_thread::yield() so oversubscribed machines (CI
 * runners, single-core VMs) make progress instead of burning a
 * whole scheduling quantum.
 *
 * Meets BasicLockable/Lockable, so std::lock_guard/std::unique_lock
 * work as guards.
 */

#ifndef ASSOC_UTIL_SPINLOCK_H
#define ASSOC_UTIL_SPINLOCK_H

#include <atomic>
#include <thread>

namespace assoc {

/** Emit the architecture's spin-wait hint (no-op elsewhere). */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

/** Test-and-test-and-set spinlock with yield escalation. */
class SpinLock
{
  public:
    SpinLock() = default;
    SpinLock(const SpinLock &) = delete;
    SpinLock &operator=(const SpinLock &) = delete;

    void
    lock()
    {
        for (;;) {
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            // Spin read-only until the lock looks free: the exchange
            // above is the only write, so waiters do not ping-pong
            // the line while the owner works.
            unsigned spins = 0;
            while (locked_.load(std::memory_order_relaxed)) {
                if (++spins < 64)
                    cpuRelax();
                else {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
        }
    }

    bool
    try_lock()
    {
        return !locked_.load(std::memory_order_relaxed) &&
               !locked_.exchange(true, std::memory_order_acquire);
    }

    void
    unlock()
    {
        locked_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> locked_{false};
};

} // namespace assoc

#endif // ASSOC_UTIL_SPINLOCK_H
