/**
 * @file
 * Differential fuzzer for the lookup schemes (src/check).
 *
 * Samples random cache hierarchies, scheme parameterizations and
 * synthetic traces, runs one ground-truth simulation per case with
 * every scheme metered, and checks each lookup against the invariant
 * catalog (probe bounds, reference re-execution, oracle agreement,
 * step-1 superset, LRU-stack integrity, inclusion) plus the exact
 * Section 2 probe-cost identities. Every failure prints a one-line
 * repro command and a minimized counterexample trace.
 *
 *   fuzz_diff --iterations=10000 --seed=1      # campaign
 *   fuzz_diff --seed=1 --config=123            # replay one case
 *   fuzz_diff --inject=naive-skip              # harness self-test
 *   fuzz_diff --digest --iterations=50         # determinism digest
 *   fuzz_diff --inject-faults --iterations=200 # fault campaign
 *   fuzz_diff --threads=4 --iterations=200     # concurrent service
 *                                              # campaign (src/svc)
 *   fuzz_diff --svc-chaos --iterations=250     # overload/shedding
 *                                              # chaos campaign
 *
 * Exit codes follow the repository convention: 0 ok, 1 usage or a
 * failing campaign, 2 data, 3 internal.
 */

#include <iostream>

#include "check/fault_campaign.h"
#include "check/fuzz.h"
#include "check/svc_chaos.h"
#include "check/svc_check.h"
#include "exec/sweep.h"
#include "sim/runner.h"
#include "trace/atum_like.h"
#include "util/argparse.h"
#include "util/error.h"
#include "util/logging.h"

namespace {

using namespace assoc;

/** Digest a short AtumLike stream: cross-process bit-identical
 *  synthetic trace generation. */
std::uint64_t
atumDigest(std::uint64_t seed)
{
    trace::AtumLikeConfig cfg;
    cfg.seed = seed;
    cfg.segments = 2;
    cfg.refs_per_segment = 20000;
    trace::AtumLikeGenerator gen(cfg);
    std::uint64_t h = check::kDigestInit;
    trace::MemRef r;
    while (gen.next(r)) {
        check::digestMix(h, r.addr);
        check::digestMix(h, static_cast<std::uint64_t>(r.type));
        check::digestMix(h, r.pid);
    }
    return h;
}

/** Digest a small parallel sweep (jobs=2): RunOutputs must be
 *  bit-identical across processes and thread schedules. */
std::uint64_t
sweepDigest(std::uint64_t seed)
{
    trace::AtumLikeConfig tcfg;
    tcfg.seed = seed;
    tcfg.segments = 1;
    tcfg.refs_per_segment = 20000;

    std::vector<sim::RunSpec> specs;
    for (unsigned a : {2u, 4u, 8u}) {
        sim::RunSpec spec;
        spec.hier = {mem::CacheGeometry(4096, 16, 1),
                     mem::CacheGeometry(65536, 32, a), true};
        core::SchemeSpec s;
        s.kind = core::SchemeKind::Naive;
        spec.schemes.push_back(s);
        s.kind = core::SchemeKind::Mru;
        spec.schemes.push_back(s);
        spec.schemes.push_back(core::SchemeSpec::paperPartial(a));
        specs.push_back(spec);
    }

    exec::SweepOptions opt;
    opt.jobs = 2;
    std::vector<sim::RunOutput> outs =
        exec::runSweep(specs, exec::atumTraceFactory(tcfg), opt);

    std::uint64_t h = check::kDigestInit;
    for (const sim::RunOutput &out : outs) {
        check::digestMix(h, out.stats.proc_refs);
        check::digestMix(h, out.stats.l1_misses);
        check::digestMix(h, out.stats.read_in_hits);
        check::digestMix(h, out.stats.write_backs);
        for (const core::ProbeStats &ps : out.probes) {
            check::digestMix(h, ps.read_in_hits.count());
            check::digestMix(
                h, static_cast<std::uint64_t>(ps.read_in_hits.sum()));
            check::digestMix(
                h,
                static_cast<std::uint64_t>(ps.read_in_misses.sum()));
            check::digestMix(
                h, static_cast<std::uint64_t>(ps.write_backs.sum()));
        }
    }
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("fuzz_diff",
                   "differential fuzzing + invariant checks for all "
                   "lookup schemes");
    args.addFlag("seed", "1", "campaign master seed");
    args.addFlag("iterations", "1000", "fuzz cases to run");
    args.addFlag("config", "",
                 "replay exactly one case index from the campaign");
    args.addFlag("inject", "none",
                 "deliberately broken scheme (harness self-test): "
                 "none|naive-skip|mru-undercount|partial-filter|"
                 "memo-stale");
    args.addFlag("max-failures", "1",
                 "stop after this many failing cases");
    args.addSwitch("no-minimize",
                   "report failing traces without ddmin shrinking");
    args.addSwitch("digest",
                   "print determinism digests (fuzz + trace + "
                   "parallel sweep) and exit");
    args.addFlag("threads", "",
                 "run the concurrent service campaign (src/svc) "
                 "with this many client threads per case instead "
                 "of the scheme fuzzer; 0 samples 2-4 threads per "
                 "case. Failing cases echo the flag in their repro "
                 "line");
    args.addSwitch("inject-faults",
                   "run the fault-injection campaign (corrupted "
                   "traces, failing jobs, cancel + resume, hang / "
                   "slow / oom runaways) instead of the scheme "
                   "fuzzer");
    args.addSwitch("svc-chaos",
                   "run the service overload/shedding chaos "
                   "campaign (lock-holder stall, tenant flood, "
                   "budget squeeze, deadline storm; each case run "
                   "twice and diffed) instead of the scheme fuzzer");
    args.addFlag("job-timeout", "",
                 "watchdog deadline for the campaign's hang cases "
                 "(e.g. 50ms; default 50ms); failing runaway cases "
                 "echo it in their repro line");
    args.addSwitch("quiet", "suppress the summary line");
    if (!args.parse(argc, argv))
        return 0;

    return guardedMain("fuzz_diff", [&]() -> int {
        if (args.getBool("svc-chaos")) {
            check::SvcChaosOptions opt;
            opt.seed = args.getUint("seed");
            opt.iterations = args.getUint("iterations");
            if (args.given("threads"))
                opt.threads =
                    static_cast<unsigned>(args.getUint("threads"));
            if (args.given("config")) {
                opt.have_only_case = true;
                opt.only_case = args.getUint("config");
            }
            opt.max_failures = static_cast<unsigned>(
                args.getUint("max-failures"));
            opt.log = &std::cerr;

            check::SvcChaosSummary sum = check::runSvcChaos(opt);
            if (args.getBool("digest")) {
                std::cout << "digest chaos=0x" << std::hex
                          << sum.digest << std::dec << "\n";
            } else if (!args.getBool("quiet")) {
                std::cout << "fuzz_diff: " << sum.cases_run
                          << " chaos cases, " << sum.ops
                          << " requests (" << sum.totals.shed()
                          << " shed, " << sum.totals.degraded
                          << " degraded, " << sum.totals.failed()
                          << " failed), " << sum.failures.size()
                          << " failing case(s)\n";
            }
            return sum.ok() ? 0 : 1;
        }

        if (args.given("threads")) {
            check::SvcFuzzOptions opt;
            opt.seed = args.getUint("seed");
            opt.iterations = args.getUint("iterations");
            opt.threads =
                static_cast<unsigned>(args.getUint("threads"));
            if (args.given("config")) {
                opt.have_only_case = true;
                opt.only_case = args.getUint("config");
            }
            opt.max_failures = static_cast<unsigned>(
                args.getUint("max-failures"));
            opt.log = &std::cerr;

            check::SvcFuzzSummary sum = check::runSvcFuzz(opt);
            if (args.getBool("digest")) {
                std::cout << "digest svc=0x" << std::hex
                          << sum.digest << std::dec << "\n";
            } else if (!args.getBool("quiet")) {
                std::cout << "fuzz_diff: " << sum.cases_run
                          << " svc cases, " << sum.ops
                          << " service ops applied, "
                          << sum.failures.size()
                          << " failing case(s)\n";
            }
            return sum.ok() ? 0 : 1;
        }

        if (args.getBool("inject-faults")) {
            check::FaultCampaignOptions opt;
            opt.seed = args.getUint("seed");
            opt.iterations = args.getUint("iterations");
            if (args.given("config")) {
                opt.have_only_case = true;
                opt.only_case = args.getUint("config");
            }
            opt.max_failures = static_cast<unsigned>(
                args.getUint("max-failures"));
            opt.log = &std::cerr;
            if (args.given("job-timeout")) {
                Expected<std::uint64_t> ns =
                    parseDuration(args.getString("job-timeout"));
                if (!ns.ok())
                    throwError(Error(ns.error())
                                   .withContext("--job-timeout"));
                opt.job_timeout_ns = ns.value();
            }

            check::FaultCampaignSummary sum =
                check::runFaultCampaign(opt);
            if (!args.getBool("quiet")) {
                std::cout << "fuzz_diff: " << sum.cases_run
                          << " fault cases, " << sum.faults_injected
                          << " faults injected, "
                          << sum.failures.size()
                          << " contract violation(s)\n";
            }
            return sum.ok() ? 0 : 1;
        }

        check::FuzzOptions opt;
        opt.seed = args.getUint("seed");
        opt.iterations = args.getUint("iterations");
        if (args.given("config")) {
            opt.have_only_case = true;
            opt.only_case = args.getUint("config");
        }
        opt.inject = check::bugInjectionFromString(
            args.getString("inject"));
        opt.max_failures = static_cast<unsigned>(
            args.getUint("max-failures"));
        opt.minimize = !args.getBool("no-minimize");
        opt.log = &std::cerr;

        check::FuzzSummary sum = check::runFuzz(opt);

        if (args.getBool("digest")) {
            std::cout << "digest fuzz=0x" << std::hex << sum.digest
                      << " atum=0x" << atumDigest(opt.seed)
                      << " sweep=0x" << sweepDigest(opt.seed)
                      << std::dec << "\n";
        } else if (!args.getBool("quiet")) {
            std::cout << "fuzz_diff: " << sum.cases_run << " cases, "
                      << sum.accesses << " lookups audited, "
                      << sum.failures.size() << " failing case(s)\n";
        }
        return sum.ok() ? 0 : 1;
    });
}
